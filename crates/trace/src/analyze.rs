//! Aggregate trace analytics: per-phase deflection heatmaps, frontier-lag
//! distributions, latency anatomy, causal chains, and empirical C+L
//! scaling ratios — everything a run leaves behind, condensed into one
//! JSON report.

use crate::schema::{Trace, TraceEvent};
use crate::timeline::{attribute_chains, build_timelines, ChainReport, PacketTimeline};
use crate::verify::{reconstruct, VerifiedInstance};
use hotpotato_sim::{ExitKind, Time};
use leveled_net::ids::DirectedEdge;
use leveled_net::Direction;
use serde::Value;
use serde_json::json;

/// Per-phase aggregates (phase 0 covers the whole run when the trace has
/// no phase events).
#[derive(Clone, Debug, Default)]
pub struct PhaseRow {
    /// Phase index.
    pub phase: u64,
    /// First step of the phase (inclusive).
    pub start_t: Time,
    /// First step after the phase (exclusive; `steps_run` for the last).
    pub end_t: Time,
    /// Moves staged during the phase.
    pub moves: u64,
    /// Deflections (safe + fallback).
    pub deflections: u64,
    /// Safe (edge-recycling) deflections.
    pub safe: u64,
    /// Fallback deflections.
    pub fallback: u64,
    /// Oscillation moves.
    pub oscillations: u64,
    /// Injections.
    pub injections: u64,
    /// Deliveries (arrival time inside the phase).
    pub deliveries: u64,
    /// Deflections per level of the node the loser departed (heatmap
    /// row; empty when the instance could not be reconstructed).
    pub deflections_by_level: Vec<u64>,
}

/// One frontier-lag observation: how far a set's slowest in-flight packet
/// trails the theoretical frontier `φ_i(k)` when it is announced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrontierLag {
    /// Phase of the announcement.
    pub phase: u64,
    /// Frontier set.
    pub set: u32,
    /// Announced frontier.
    pub frontier: i64,
    /// `max(0, frontier − min level)` over the set's undelivered packets.
    pub lag: u64,
}

/// The full analysis of one trace.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Identification (from the meta line, when present).
    pub topo: Option<String>,
    /// Workload spec.
    pub workload: Option<String>,
    /// Algorithm.
    pub algo: Option<String>,
    /// RNG seed.
    pub seed: Option<u64>,
    /// Steps covered by the trace.
    pub steps: u64,
    /// Packets (from meta or the largest id seen + 1).
    pub packets: usize,
    /// Total moves.
    pub moves: u64,
    /// Forward moves.
    pub forward: u64,
    /// Backward moves.
    pub backward: u64,
    /// Injections.
    pub injections: u64,
    /// Deliveries (trivial included).
    pub deliveries: u64,
    /// Trivial deliveries.
    pub trivial: u64,
    /// Deflections (safe + fallback).
    pub deflections: u64,
    /// Safe deflections.
    pub safe_deflections: u64,
    /// Oscillation moves.
    pub oscillations: u64,
    /// Streaming arrivals observed (schema-v3 `arrival` events).
    pub arrivals: u64,
    /// Streaming drops observed (schema-v3 `drop` events).
    pub drops: u64,
    /// Sorted admission-to-delivery latencies of streaming packets:
    /// steps from a packet's `arrival` event to its `deliver` event.
    pub arrival_latencies: Vec<u64>,
    /// Per-packet timelines.
    pub timelines: Vec<PacketTimeline>,
    /// Per-phase aggregates.
    pub phases: Vec<PhaseRow>,
    /// Frontier-lag observations (busch traces with sets + frontiers).
    pub frontier_lags: Vec<FrontierLag>,
    /// Causal deflection-chain attribution.
    pub chains: ChainReport,
    /// Instance parameters for scaling, when reconstructable:
    /// `(congestion, dilation, levels)`.
    pub instance: Option<(u32, u32, u32)>,
}

/// Latency percentile over delivered, non-trivially-routed packets.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted.get(idx.min(sorted.len() - 1)).copied().unwrap_or(0)
}

/// Analyzes a parsed trace. Reconstruction of the instance (for level
/// heatmaps and frontier lags) is attempted from the meta line and
/// silently skipped when impossible — everything derivable from the
/// event stream alone is always present.
pub fn analyze(trace: &Trace) -> Analysis {
    let mut a = Analysis::default();
    let instance: Option<VerifiedInstance> = trace.meta().and_then(|m| {
        a.topo = Some(m.topo.clone());
        a.workload = Some(m.workload.clone());
        a.algo = Some(m.algo.clone());
        a.seed = Some(m.seed);
        reconstruct(m).ok()
    });

    // Packet universe: meta if present, otherwise max id seen + 1.
    let mut n = trace.meta().map_or(0, |m| m.packets as usize);
    for ev in &trace.events {
        if let TraceEvent::Move { pkt, .. }
        | TraceEvent::Trivial { pkt, .. }
        | TraceEvent::Deliver { pkt, .. } = ev
        {
            n = n.max(*pkt as usize + 1);
        }
    }
    a.packets = n;

    // Phase boundaries: (phase id, first step after the phase).
    let mut bounds: Vec<(u64, Time)> = Vec::new();
    let mut last_t = 0;
    for ev in &trace.events {
        match *ev {
            TraceEvent::PhaseEnd { phase, t } => bounds.push((phase, t)),
            TraceEvent::Step { t, .. } => last_t = last_t.max(t + 1),
            _ => {}
        }
    }
    a.steps = trace.stats().map_or(last_t, |s| s.steps);
    if bounds.is_empty() {
        bounds.push((0, a.steps));
    }
    let num_levels = instance.as_ref().map_or(0, |i| i.net.num_levels());
    let mut phases: Vec<PhaseRow> = Vec::with_capacity(bounds.len() + 1);
    let mut start = 0;
    for &(phase, end) in &bounds {
        phases.push(PhaseRow {
            phase,
            start_t: start,
            end_t: end,
            deflections_by_level: vec![0; num_levels],
            ..PhaseRow::default()
        });
        start = end;
    }
    if start < a.steps {
        // Steps after the last recorded phase (e.g. a truncated run).
        phases.push(PhaseRow {
            phase: bounds.last().map_or(0, |&(p, _)| p + 1),
            start_t: start,
            end_t: a.steps,
            deflections_by_level: vec![0; num_levels],
            ..PhaseRow::default()
        });
    }
    let ends: Vec<Time> = phases.iter().map(|row| row.end_t).collect();
    let phase_of =
        move |t: Time| -> usize { ends.partition_point(|&end| end <= t).min(ends.len() - 1) };

    // Single pass: totals, per-phase rows, per-packet positions (for
    // frontier lags, when the instance is known).
    let mut level_of_pkt: Vec<Option<u32>> = vec![None; n];
    let mut arrival_at: Vec<Option<Time>> = vec![None; n];
    let mut delivered: Vec<bool> = vec![false; n];
    let mut sets: Option<Vec<u32>> = None;
    let mut phase_rows = phases;
    for ev in &trace.events {
        match *ev {
            TraceEvent::Move {
                t,
                pkt,
                edge,
                dir,
                kind,
            } => {
                a.moves += 1;
                let row = &mut phase_rows[phase_of(t)];
                row.moves += 1;
                match dir {
                    Direction::Forward => a.forward += 1,
                    Direction::Backward => a.backward += 1,
                }
                match kind {
                    ExitKind::Inject => {
                        a.injections += 1;
                        row.injections += 1;
                    }
                    ExitKind::Deflect { safe } => {
                        a.deflections += 1;
                        row.deflections += 1;
                        if safe {
                            a.safe_deflections += 1;
                            row.safe += 1;
                        } else {
                            row.fallback += 1;
                        }
                    }
                    ExitKind::Oscillate => {
                        a.oscillations += 1;
                        row.oscillations += 1;
                    }
                    ExitKind::Advance => {}
                }
                if let Some(inst) = &instance {
                    let mv = DirectedEdge { edge, dir };
                    if edge.index() < inst.net.num_edges() {
                        if matches!(kind, ExitKind::Deflect { .. }) {
                            let lvl = inst.net.level(inst.net.move_origin(mv)) as usize;
                            if let Some(cell) = row.deflections_by_level.get_mut(lvl) {
                                *cell += 1;
                            }
                        }
                        if let Some(slot) = level_of_pkt.get_mut(pkt as usize) {
                            *slot = Some(inst.net.level(inst.net.move_target(mv)));
                        }
                    }
                }
            }
            TraceEvent::Trivial { t, pkt } => {
                a.deliveries += 1;
                a.trivial += 1;
                phase_rows[phase_of(t)].deliveries += 1;
                if let Some(d) = delivered.get_mut(pkt as usize) {
                    *d = true;
                }
            }
            TraceEvent::Deliver { t, pkt } => {
                a.deliveries += 1;
                phase_rows[phase_of(t.saturating_sub(1))].deliveries += 1;
                if let Some(d) = delivered.get_mut(pkt as usize) {
                    *d = true;
                }
                if let Some(at) = arrival_at.get(pkt as usize).copied().flatten() {
                    a.arrival_latencies.push(t.saturating_sub(at));
                }
            }
            TraceEvent::Arrival { t, pkt } => {
                a.arrivals += 1;
                if let Some(slot) = arrival_at.get_mut(pkt as usize) {
                    *slot = Some(t);
                }
            }
            TraceEvent::Drop { .. } => a.drops += 1,
            TraceEvent::Sets { sets: ref s, .. } => sets = Some(s.clone()),
            TraceEvent::Frontier {
                phase,
                set,
                frontier,
            } => {
                // Lag of the set's slowest undelivered packet behind the
                // announced frontier, measurable once positions are known.
                if let (Some(inst), Some(sets)) = (&instance, &sets) {
                    let mut min_level: Option<i64> = None;
                    for (p, &s) in sets.iter().enumerate() {
                        if s != set || delivered.get(p).copied().unwrap_or(true) {
                            continue;
                        }
                        let lvl = match level_of_pkt.get(p).copied().flatten() {
                            Some(l) => i64::from(l),
                            // Not yet injected: still at its source level.
                            None => match inst.problem.packets().get(p) {
                                Some(spec) => i64::from(inst.net.level(spec.path.source())),
                                None => continue,
                            },
                        };
                        min_level = Some(min_level.map_or(lvl, |m: i64| m.min(lvl)));
                    }
                    if let Some(m) = min_level {
                        a.frontier_lags.push(FrontierLag {
                            phase,
                            set,
                            frontier,
                            lag: (frontier - m).max(0) as u64,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    a.phases = phase_rows;
    a.arrival_latencies.sort_unstable();
    a.timelines = build_timelines(trace, n);
    a.chains = attribute_chains(trace);
    a.instance = instance.as_ref().map(|i| {
        (
            i.problem.congestion(),
            i.problem.dilation(),
            i.net.num_levels() as u32,
        )
    });
    a
}

impl Analysis {
    /// Drops per arrival (0 when the trace has no streaming events).
    pub fn drop_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.drops as f64 / self.arrivals as f64
        }
    }

    /// Mean admission-to-delivery latency of streaming packets (0 when
    /// the trace has no streaming events).
    pub fn arrival_latency_mean(&self) -> f64 {
        if self.arrival_latencies.is_empty() {
            0.0
        } else {
            self.arrival_latencies.iter().sum::<u64>() as f64 / self.arrival_latencies.len() as f64
        }
    }

    /// Sorted latencies of delivered, non-trivial packets.
    fn latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .timelines
            .iter()
            .filter(|t| !t.trivial)
            .filter_map(super::timeline::PacketTimeline::latency)
            .collect();
        v.sort_unstable();
        v
    }

    /// Renders the analysis as a JSON report.
    pub fn to_json(&self) -> Value {
        let lat = self.latencies();
        let sum: u64 = lat.iter().sum();
        let mean = if lat.is_empty() {
            0.0
        } else {
            sum as f64 / lat.len() as f64
        };
        let home_runs: Vec<u32> = self
            .timelines
            .iter()
            .filter(|t| t.delivered_at.is_some() && !t.trivial)
            .map(|t| t.home_run)
            .collect();
        let scaling = self.instance.map(|(c, d, l)| {
            let (c, d, l) = (u64::from(c), u64::from(d), u64::from(l));
            let cl = (c + l).max(1);
            let cd = (c + d).max(1);
            let log = ((l.max(1) * self.packets.max(1) as u64) as f64)
                .ln()
                .max(1.0);
            json!({
                "congestion": c,
                "dilation": d,
                "levels": l,
                "steps_over_c_plus_l": self.steps as f64 / cl as f64,
                "steps_over_c_plus_d": self.steps as f64 / cd as f64,
                "steps_over_c_plus_l_log": self.steps as f64 / (cl as f64 * log),
            })
        });
        let phases: Vec<Value> = self
            .phases
            .iter()
            .map(|p| {
                json!({
                    "phase": p.phase,
                    "start_t": p.start_t,
                    "end_t": p.end_t,
                    "steps": p.end_t - p.start_t,
                    "moves": p.moves,
                    "deflections": p.deflections,
                    "safe": p.safe,
                    "fallback": p.fallback,
                    "oscillations": p.oscillations,
                    "injections": p.injections,
                    "deliveries": p.deliveries,
                    "deflections_by_level": p.deflections_by_level.clone(),
                })
            })
            .collect();
        // Frontier lags as a distribution: (lag, count), plus the worst.
        let mut lag_hist: Vec<(u64, u64)> = Vec::new();
        for fl in &self.frontier_lags {
            match lag_hist.iter_mut().find(|(l, _)| *l == fl.lag) {
                Some((_, c)) => *c += 1,
                None => lag_hist.push((fl.lag, 1)),
            }
        }
        lag_hist.sort_unstable();
        let worst_lag = self.frontier_lags.iter().max_by_key(|f| f.lag);
        json!({
            "topo": self.topo.clone(),
            "workload": self.workload.clone(),
            "algo": self.algo.clone(),
            "seed": self.seed,
            "totals": json!({
                "steps": self.steps,
                "packets": self.packets,
                "moves": self.moves,
                "forward": self.forward,
                "backward": self.backward,
                "injections": self.injections,
                "deliveries": self.deliveries,
                "trivial": self.trivial,
                "deflections": self.deflections,
                "safe_deflections": self.safe_deflections,
                "fallback_deflections": self.deflections - self.safe_deflections,
                "oscillations": self.oscillations,
            }),
            "latency": json!({
                "delivered": lat.len() as u64,
                "mean": mean,
                "p50": percentile(&lat, 0.50),
                "p90": percentile(&lat, 0.90),
                "p99": percentile(&lat, 0.99),
                "max": lat.last().copied().unwrap_or(0),
                "home_run_max": home_runs.iter().copied().max().unwrap_or(0),
                "home_run_mean": if home_runs.is_empty() { 0.0 } else {
                    home_runs.iter().map(|&h| u64::from(h)).sum::<u64>() as f64
                        / home_runs.len() as f64
                },
            }),
            "streaming": json!({
                "arrivals": self.arrivals,
                "drops": self.drops,
                "drop_rate": self.drop_rate(),
                "arrival_latency_mean": self.arrival_latency_mean(),
                "arrival_latency_p50": percentile(&self.arrival_latencies, 0.50),
                "arrival_latency_max": self.arrival_latencies.last().copied().unwrap_or(0),
            }),
            "phases": Value::Array(phases),
            "frontier_lag": json!({
                "observations": self.frontier_lags.len() as u64,
                "histogram": lag_hist
                    .iter()
                    .map(|&(l, c)| json!([l, c]))
                    .collect::<Vec<Value>>(),
                "worst": worst_lag.map_or(json!(null), |f| json!({
                    "phase": f.phase,
                    "set": f.set,
                    "frontier": f.frontier,
                    "lag": f.lag,
                })),
            }),
            "chains": json!({
                "deflections": self.chains.links.len() as u64,
                "roots": self.chains.roots,
                "max_depth": self.chains.max_depth,
                "depth_histogram": self
                    .chains
                    .depth_histogram
                    .iter()
                    .map(|&(d, c)| json!([d, c]))
                    .collect::<Vec<Value>>(),
                "longest_chain": self
                    .chains
                    .longest_chain
                    .iter()
                    .map(|&(p, t)| json!([p, t]))
                    .collect::<Vec<Value>>(),
            }),
            "scaling": scaling.unwrap_or(Value::Null),
        })
    }
}

/// Compares two analyses metric by metric, reporting absolute values and
/// signed deltas (`b − a`) for every shared scalar. Streaming traces
/// (schema-v3 `arrival`/`drop` events) additionally get admission
/// latency and drop-rate rows; on batch traces those rows read zero.
pub fn diff(a: &Analysis, b: &Analysis) -> Value {
    fn row(name: &str, a: u64, b: u64) -> Value {
        json!({
            "metric": name,
            "a": a,
            "b": b,
            "delta": b as i64 - a as i64,
        })
    }
    fn frow(name: &str, a: f64, b: f64) -> Value {
        json!({
            "metric": name,
            "a": a,
            "b": b,
            "delta": b - a,
        })
    }
    // The Theorem 2.6 ratio, 0.0 when the instance is unknown (bare
    // traces without a meta line) so the row is always present and
    // threshold checks (`trace diff --fail-on`) can rely on it.
    fn ratio_cl(x: &Analysis) -> f64 {
        x.instance.map_or(0.0, |(c, _, l)| {
            x.steps as f64 / u64::from(c + l).max(1) as f64
        })
    }
    let lat_a = a.latencies();
    let lat_b = b.latencies();
    let rows = vec![
        row("steps", a.steps, b.steps),
        row("moves", a.moves, b.moves),
        row("deflections", a.deflections, b.deflections),
        row("safe_deflections", a.safe_deflections, b.safe_deflections),
        row("oscillations", a.oscillations, b.oscillations),
        row("deliveries", a.deliveries, b.deliveries),
        row(
            "latency_max",
            lat_a.last().copied().unwrap_or(0),
            lat_b.last().copied().unwrap_or(0),
        ),
        row(
            "latency_p50",
            percentile(&lat_a, 0.5),
            percentile(&lat_b, 0.5),
        ),
        row(
            "chain_max_depth",
            u64::from(a.chains.max_depth),
            u64::from(b.chains.max_depth),
        ),
        row("phases", a.phases.len() as u64, b.phases.len() as u64),
        row("arrivals", a.arrivals, b.arrivals),
        row("drops", a.drops, b.drops),
        frow("steps_over_c_plus_l", ratio_cl(a), ratio_cl(b)),
        frow("drop_rate", a.drop_rate(), b.drop_rate()),
        frow(
            "arrival_latency_mean",
            a.arrival_latency_mean(),
            b.arrival_latency_mean(),
        ),
        row(
            "arrival_latency_p50",
            percentile(&a.arrival_latencies, 0.5),
            percentile(&b.arrival_latencies, 0.5),
        ),
    ];
    json!({
        "a": json!({ "topo": a.topo.clone(), "workload": a.workload.clone(), "algo": a.algo.clone(), "seed": a.seed }),
        "b": json!({ "topo": b.topo.clone(), "workload": b.workload.clone(), "algo": b.algo.clone(), "seed": b.seed }),
        "rows": Value::Array(rows),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Trace;

    #[test]
    fn analyzes_a_bare_trace_without_meta() {
        let lines = [
            r#"{"ev":"move","t":0,"pkt":0,"edge":0,"dir":"F","kind":"inj"}"#,
            r#"{"ev":"move","t":1,"pkt":0,"edge":1,"dir":"F","kind":"adv"}"#,
            r#"{"ev":"deliver","t":2,"pkt":0}"#,
            r#"{"ev":"step","t":1,"moved":1,"absorbed":1,"injected":0,"deflections":0,"fallback":0,"oscillations":0,"active":0}"#,
        ];
        let trace = Trace::parse(&(lines.join("\n") + "\n")).unwrap();
        let a = analyze(&trace);
        assert_eq!(a.packets, 1);
        assert_eq!(a.moves, 2);
        assert_eq!(a.deliveries, 1);
        assert_eq!(a.steps, 2);
        assert_eq!(a.phases.len(), 1);
        assert_eq!(a.phases[0].moves, 2);
        let report = a.to_json();
        assert_eq!(report["totals"]["moves"].as_u64(), Some(2));
        assert_eq!(report["latency"]["max"].as_u64(), Some(2));
        assert!(report["scaling"].is_null());
    }

    #[test]
    fn phase_rows_partition_the_run() {
        let lines = [
            r#"{"ev":"move","t":0,"pkt":0,"edge":0,"dir":"F","kind":"inj"}"#,
            r#"{"ev":"phase_end","phase":0,"t":2}"#,
            r#"{"ev":"move","t":2,"pkt":0,"edge":1,"dir":"B","kind":"def-free"}"#,
            r#"{"ev":"phase_end","phase":1,"t":4}"#,
        ];
        let trace = Trace::parse(&(lines.join("\n") + "\n")).unwrap();
        let a = analyze(&trace);
        assert_eq!(a.phases.len(), 2);
        assert_eq!((a.phases[0].start_t, a.phases[0].end_t), (0, 2));
        assert_eq!((a.phases[1].start_t, a.phases[1].end_t), (2, 4));
        assert_eq!(a.phases[0].moves, 1);
        assert_eq!(a.phases[1].deflections, 1);
        assert_eq!(a.chains.links.len(), 1);
    }
}
