//! Per-packet timelines and causal deflection-chain attribution.
//!
//! The hot-potato model makes per-packet latency *exactly decomposable*:
//! an in-flight packet moves every step, so
//!
//! ```text
//! delivered_at − injected_at  =  advances + deflections + oscillations
//! ```
//!
//! [`build_timelines`] reconstructs that anatomy for every packet from
//! the move stream alone. [`attribute_chains`] goes one step further:
//! a *safe* deflection (Lemma 2.1) sends the loser backward over an edge
//! recycled from an **arrival** — an edge some packet crossed forward in
//! the previous step to reach the contested node. When that packet is a
//! different one, it is the deflection's attributable proximate cause,
//! and if it was itself recently deflected, causes chain. (Losers that
//! bounce back over their *own* arrival edge are attribution roots: the
//! trace does not record which winner beat them.) The chain report
//! surfaces how deep those causal chains run — the empirical face of
//! delay-sequence arguments.

use crate::schema::{Trace, TraceEvent};
use hotpotato_sim::{ExitKind, Time};

/// Latency anatomy of one packet, reconstructed from the move stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PacketTimeline {
    /// Step of the injection move (`None` = never injected).
    pub injected_at: Option<Time>,
    /// Arrival time (staging step of the final move + 1).
    pub delivered_at: Option<Time>,
    /// Delivered trivially (source == destination, no moves).
    pub trivial: bool,
    /// Total moves (injection included).
    pub moves: u32,
    /// Forward path progress: injection + advance moves.
    pub advances: u32,
    /// Deflections suffered (safe + fallback).
    pub deflections: u32,
    /// Safe (backward edge-recycling) deflections.
    pub safe_deflections: u32,
    /// Wait-state oscillation moves.
    pub oscillations: u32,
    /// Length of the final run of uninterrupted forward progress ending
    /// in delivery (the "home-run segment"), 0 if undelivered.
    pub home_run: u32,
}

impl PacketTimeline {
    /// In-flight latency, when delivered after a real injection.
    pub fn latency(&self) -> Option<Time> {
        match (self.injected_at, self.delivered_at) {
            (Some(i), Some(d)) => Some(d - i),
            _ => None,
        }
    }
}

/// Builds one [`PacketTimeline`] per packet (`n` from the caller, so the
/// result covers packets the trace never mentions).
pub fn build_timelines(trace: &Trace, n: usize) -> Vec<PacketTimeline> {
    let mut tl = vec![PacketTimeline::default(); n];
    // Trailing forward-run length per packet, reset by any disruption.
    let mut run = vec![0u32; n];
    for ev in &trace.events {
        match *ev {
            TraceEvent::Move { t, pkt, kind, .. } => {
                let Some(p) = tl.get_mut(pkt as usize) else {
                    continue;
                };
                p.moves += 1;
                match kind {
                    ExitKind::Inject => {
                        p.injected_at = Some(t);
                        p.advances += 1;
                        run[pkt as usize] += 1;
                    }
                    ExitKind::Advance => {
                        p.advances += 1;
                        run[pkt as usize] += 1;
                    }
                    ExitKind::Deflect { safe } => {
                        p.deflections += 1;
                        if safe {
                            p.safe_deflections += 1;
                        }
                        run[pkt as usize] = 0;
                    }
                    ExitKind::Oscillate => {
                        p.oscillations += 1;
                        run[pkt as usize] = 0;
                    }
                }
            }
            TraceEvent::Trivial { t, pkt } => {
                if let Some(p) = tl.get_mut(pkt as usize) {
                    p.trivial = true;
                    p.injected_at = Some(t);
                    p.delivered_at = Some(t);
                }
            }
            TraceEvent::Deliver { t, pkt } => {
                if let Some(p) = tl.get_mut(pkt as usize) {
                    p.delivered_at = Some(t);
                    p.home_run = run[pkt as usize];
                }
            }
            _ => {}
        }
    }
    tl
}

/// One attributed deflection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainLink {
    /// The deflected packet.
    pub pkt: u32,
    /// The step of the deflection.
    pub t: Time,
    /// The packet whose forward crossing recycled the edge (safe
    /// deflections only).
    pub caused_by: Option<u32>,
    /// Causal chain depth: 1 for a root (no attributable earlier cause),
    /// `1 + depth(parent)` when the causer was itself deflected earlier.
    pub depth: u32,
}

/// Aggregate deflection-chain report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainReport {
    /// All deflections, in trace order, with attribution.
    pub links: Vec<ChainLink>,
    /// Deflections with no attributable cause (fallback deflections, or
    /// safe deflections whose causer was never deflected before).
    pub roots: u64,
    /// Deepest causal chain observed.
    pub max_depth: u32,
    /// `(depth, count)` histogram, ascending by depth.
    pub depth_histogram: Vec<(u32, u64)>,
    /// One witness of a deepest chain, oldest cause first: `(pkt, t)`.
    pub longest_chain: Vec<(u32, Time)>,
}

/// Attributes every deflection in the trace to its proximate cause and
/// computes causal chain depths (see the module docs).
pub fn attribute_chains(trace: &Trace) -> ChainReport {
    use std::collections::HashMap;
    // (t, edge) -> packet that crossed it forward at t.
    let mut forward: HashMap<(Time, u32), u32> = HashMap::new();
    for ev in &trace.events {
        if let TraceEvent::Move {
            t,
            pkt,
            edge,
            dir: leveled_net::Direction::Forward,
            ..
        } = *ev
        {
            forward.insert((t, edge.0), pkt);
        }
    }

    // Deflections in trace (= chronological) order.
    let mut links: Vec<ChainLink> = Vec::new();
    // Per packet: indices into `links` of its own deflections (ascending t).
    let mut own: HashMap<u32, Vec<usize>> = HashMap::new();
    // Parent link index per link (for witness extraction).
    let mut parent: Vec<Option<usize>> = Vec::new();
    for ev in &trace.events {
        let TraceEvent::Move {
            t,
            pkt,
            edge,
            dir,
            kind: ExitKind::Deflect { safe },
        } = *ev
        else {
            continue;
        };
        // Safe deflections recycle an arrival edge: whoever crossed it
        // forward in the previous step (if not the loser itself, going
        // back where it came from) is the attributable cause.
        let caused_by = if safe && dir == leveled_net::Direction::Backward && t > 0 {
            forward.get(&(t - 1, edge.0)).copied().filter(|&c| c != pkt)
        } else {
            None
        };
        let par = caused_by.and_then(|c| {
            own.get(&c).and_then(|idxs| {
                // Latest deflection of the causer strictly before t.
                idxs.iter().rev().copied().find(|&i| links[i].t < t)
            })
        });
        let depth = par.map_or(1, |i| links[i].depth + 1);
        let idx = links.len();
        links.push(ChainLink {
            pkt,
            t,
            caused_by,
            depth,
        });
        parent.push(par);
        own.entry(pkt).or_default().push(idx);
    }

    let mut report = ChainReport::default();
    let mut hist: HashMap<u32, u64> = HashMap::new();
    let mut deepest: Option<usize> = None;
    for (i, link) in links.iter().enumerate() {
        if link.depth == 1 {
            report.roots += 1;
        }
        *hist.entry(link.depth).or_insert(0) += 1;
        if link.depth > report.max_depth {
            report.max_depth = link.depth;
            deepest = Some(i);
        }
    }
    let mut depth_histogram: Vec<(u32, u64)> = hist.into_iter().collect();
    depth_histogram.sort_unstable();
    report.depth_histogram = depth_histogram;
    // Witness: walk parents from the deepest link back to its root.
    let mut chain = Vec::new();
    let mut cursor = deepest;
    while let Some(i) = cursor {
        chain.push((links[i].pkt, links[i].t));
        cursor = parent[i];
    }
    chain.reverse();
    report.longest_chain = chain;
    report.links = links;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Trace;

    fn mv(t: Time, pkt: u32, edge: u32, dir: &str, kind: &str) -> String {
        format!(
            r#"{{"ev":"move","t":{t},"pkt":{pkt},"edge":{edge},"dir":"{dir}","kind":"{kind}"}}"#
        )
    }

    #[test]
    fn timeline_anatomy_and_home_run() {
        let lines = [
            mv(0, 0, 0, "F", "inj"),
            mv(1, 0, 1, "F", "adv"),
            mv(2, 0, 1, "B", "def-safe"),
            mv(3, 0, 1, "F", "adv"),
            mv(4, 0, 2, "F", "adv"),
            r#"{"ev":"deliver","t":5,"pkt":0}"#.to_string(),
        ];
        let trace = Trace::parse(&(lines.join("\n") + "\n")).unwrap();
        let tl = build_timelines(&trace, 1);
        let p = &tl[0];
        assert_eq!(p.injected_at, Some(0));
        assert_eq!(p.delivered_at, Some(5));
        assert_eq!(p.latency(), Some(5));
        assert_eq!(p.moves, 5);
        assert_eq!(p.advances, 4);
        assert_eq!(p.deflections, 1);
        assert_eq!(p.oscillations, 0);
        // Latency identity: 5 = 4 advances + 1 deflection.
        assert_eq!(p.moves, p.advances + p.deflections + p.oscillations);
        // Final uninterrupted forward run: the two advances after the
        // deflection.
        assert_eq!(p.home_run, 2);
    }

    #[test]
    fn chains_attribute_safe_deflections_to_forward_crossers() {
        // t=0: pkt 0 arrives forward over edge 4.
        // t=1: pkt 1 deflected backward over pkt 0's arrival edge
        //      (root, depth 1, caused by pkt 0).
        // t=3: pkt 1 arrives forward over edge 7.
        // t=4: pkt 2 deflected backward over it — pkt 1 was itself
        //      deflected at t=1, so this chains to depth 2.
        // t=5: pkt 3 fallback-deflected (no cause, depth 1).
        let lines = [
            mv(0, 0, 4, "F", "adv"),
            mv(1, 1, 4, "B", "def-safe"),
            mv(3, 1, 7, "F", "adv"),
            mv(4, 2, 7, "B", "def-safe"),
            mv(5, 3, 9, "B", "def-free"),
        ];
        let trace = Trace::parse(&(lines.join("\n") + "\n")).unwrap();
        let rep = attribute_chains(&trace);
        assert_eq!(rep.links.len(), 3);
        assert_eq!(
            rep.links[0],
            ChainLink {
                pkt: 1,
                t: 1,
                caused_by: Some(0),
                depth: 1
            }
        );
        assert_eq!(
            rep.links[1],
            ChainLink {
                pkt: 2,
                t: 4,
                caused_by: Some(1),
                depth: 2
            }
        );
        assert_eq!(
            rep.links[2],
            ChainLink {
                pkt: 3,
                t: 5,
                caused_by: None,
                depth: 1
            }
        );
        assert_eq!(rep.roots, 2);
        assert_eq!(rep.max_depth, 2);
        assert_eq!(rep.depth_histogram, vec![(1, 2), (2, 1)]);
        assert_eq!(rep.longest_chain, vec![(1, 1), (2, 4)]);
    }
}
