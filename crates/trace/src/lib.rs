//! Trace analytics and replay verification for hotpotato JSONL event
//! streams.
//!
//! The simulator (PR 2) can stream every observable event of a run —
//! moves, deliveries, step reports, phases, frontiers, congestion audits
//! — as one JSON object per line. This crate closes the loop on that
//! stream:
//!
//! - [`schema`] — the **strict, versioned** line format: every event
//!   variant, a `meta`/`stats` envelope making traces self-contained,
//!   and a parser that rejects unknown events, unknown or missing
//!   fields, and schema-version mismatches (the stability contract).
//! - [`timeline`] — per-packet latency anatomy (the exact hot-potato
//!   identity `latency = advances + deflections + oscillations`),
//!   home-run segments, and **causal deflection-chain attribution**
//!   via Lemma 2.1 edge recycling.
//! - [`verify`] — offline replay verification: the instance is rebuilt
//!   from the envelope, every move is checked against the bufferless
//!   invariants, every step report against its event batch, the final
//!   stats against the reconstructed timelines, and (for bufferless
//!   traces) an independent in-memory auditor must concur. Corruption
//!   is reported with the first divergent line.
//! - [`analyze`](mod@analyze) — aggregate reports: per-phase deflection heatmaps,
//!   frontier-lag distributions, latency percentiles, chain depths,
//!   and empirical C+L scaling ratios, as JSON.
//! - [`stream`] — [`stream::StreamingAggregator`], a [`RouteObserver`]
//!   with a hard memory cap for runs too long to trace in full.
//! - [`binary`] — the `.hpt` varint/delta binary framing: the same
//!   version-pinned schema in a fraction of the bytes, transcoding
//!   losslessly to and from canonical JSONL.
//! - [`shard`] — sharded parallel verification: `snapshot` checkpoints
//!   split the stream into independently replayable segments fanned out
//!   over a worker pool, with deterministic first-divergence reporting
//!   and pipeline telemetry (events/s, bytes/s, peak RSS, shard
//!   utilization).
//! - [`fleet`] — cross-run aggregation for the fleet observatory:
//!   per-(topo, algo, size) ratio distributions with deterministic
//!   bootstrap confidence intervals and the log-log scaling fit whose
//!   exponent is the empirical Theorem 2.6 verdict.
//!
//! [`RouteObserver`]: hotpotato_sim::RouteObserver

pub mod analyze;
pub mod binary;
pub mod fleet;
pub mod schema;
pub mod shard;
pub mod stream;
pub mod timeline;
pub mod verify;

pub use analyze::{analyze, diff, Analysis};
pub use binary::{decode_trace, encode_trace, is_binary, BinaryError};
pub use fleet::{
    parse_fleet, validate_fleet_doc, FleetAggregator, FleetFit, FleetSample, FLEET_SCHEMA_VERSION,
    RATIO_BUCKET_BOUNDS,
};
pub use schema::{
    parse_line, parse_rollup, rollup_doc, Meta, ParseError, Rollup, Snapshot, StatsLine, Trace,
    TraceEvent, SCHEMA_VERSION,
};
pub use shard::{
    parse_jsonl_parallel, peak_rss_bytes, verify_trace_sharded, PipelineTelemetry, ShardOptions,
    ShardRun,
};
pub use stream::{report_json, Bucket, StreamingAggregator};
pub use timeline::{attribute_chains, build_timelines, ChainReport, PacketTimeline};
pub use verify::{verify_trace, Model, VerifyError, VerifyReport};
