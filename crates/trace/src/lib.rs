//! Trace analytics and replay verification for hotpotato JSONL event
//! streams.
//!
//! The simulator (PR 2) can stream every observable event of a run —
//! moves, deliveries, step reports, phases, frontiers, congestion audits
//! — as one JSON object per line. This crate closes the loop on that
//! stream:
//!
//! - [`schema`] — the **strict, versioned** line format: every event
//!   variant, a `meta`/`stats` envelope making traces self-contained,
//!   and a parser that rejects unknown events, unknown or missing
//!   fields, and schema-version mismatches (the stability contract).
//! - [`timeline`] — per-packet latency anatomy (the exact hot-potato
//!   identity `latency = advances + deflections + oscillations`),
//!   home-run segments, and **causal deflection-chain attribution**
//!   via Lemma 2.1 edge recycling.
//! - [`verify`] — offline replay verification: the instance is rebuilt
//!   from the envelope, every move is checked against the bufferless
//!   invariants, every step report against its event batch, the final
//!   stats against the reconstructed timelines, and (for bufferless
//!   traces) an independent in-memory auditor must concur. Corruption
//!   is reported with the first divergent line.
//! - [`analyze`](mod@analyze) — aggregate reports: per-phase deflection heatmaps,
//!   frontier-lag distributions, latency percentiles, chain depths,
//!   and empirical C+L scaling ratios, as JSON.
//! - [`stream`] — [`stream::StreamingAggregator`], a [`RouteObserver`]
//!   with a hard memory cap for runs too long to trace in full.
//!
//! [`RouteObserver`]: hotpotato_sim::RouteObserver

pub mod analyze;
pub mod schema;
pub mod stream;
pub mod timeline;
pub mod verify;

pub use analyze::{analyze, diff, Analysis};
pub use schema::{
    parse_line, parse_rollup, rollup_doc, Meta, ParseError, Rollup, StatsLine, Trace, TraceEvent,
    SCHEMA_VERSION,
};
pub use stream::{report_json, Bucket, StreamingAggregator};
pub use timeline::{attribute_chains, build_timelines, ChainReport, PacketTimeline};
pub use verify::{verify_trace, Model, VerifyError, VerifyReport};
