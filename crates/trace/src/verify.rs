//! Offline replay verification of a JSONL trace.
//!
//! [`verify_trace`] re-runs the *entire* event stream against the model
//! from scratch, independently of the engine that produced it:
//!
//! 1. the `meta` line identifies the instance; the problem is rebuilt
//!    from `(topo, workload, seed)` via [`routing_core::spec`] and the
//!    meta's `packets`/`levels`/`congestion`/`dilation` must match;
//! 2. every `move` is checked against the bufferless invariants — one
//!    packet per (edge, direction) slot per step, no teleports, exactly
//!    one injection per packet departing its path's first edge, no
//!    resting while active (bufferless model only), safe deflections
//!    really recycle an edge crossed forward the same step, absorption
//!    exactly on arrival — and every `step` line's counts must equal the
//!    batch it closes;
//! 3. every `snapshot` checkpoint must equal the replayed state at its
//!    position in the stream (the snapshot-consistency law) — which is
//!    also what makes checkpoints trustworthy *seeds*: the sharded
//!    verifier ([`crate::shard`]) replays each snapshot-delimited
//!    segment independently and reports the same first divergence the
//!    sequential pass would;
//! 4. the reconstructed per-packet timelines must match the `stats`
//!    envelope line **exactly** (injection step, arrival time, deflection
//!    count, per packet), and the step count must match;
//! 5. as defense in depth, the moves are folded into a
//!    [`hotpotato_sim::RunRecord`] and re-audited by the *in-memory*
//!    auditor [`hotpotato_sim::replay::verify`] — two independently
//!    written verifiers must agree (bufferless traces).
//!
//! Any divergence is reported with the 1-based line number of the first
//! offending event, so a corrupted trace names its own corruption.

use crate::schema::{Meta, Snapshot, StatsLine, Trace, TraceEvent};
use crate::timeline::{build_timelines, PacketTimeline};
use hotpotato_sim::{replay, ExitKind, MoveEvent, RouteStats, RunRecord, Time, TrivialDelivery};
use leveled_net::ids::DirectedEdge;
use leveled_net::{Direction, LeveledNetwork, NodeId};
use routing_core::{spec, PacketId, RoutingProblem};
use std::collections::HashMap;
use std::sync::Arc;

/// Which movement model the trace's algorithm obeys.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Model {
    /// Hot-potato: active packets move every step.
    Bufferless,
    /// Store-and-forward: packets may wait in queues.
    Buffered,
}

impl Model {
    /// The model implied by an algorithm name.
    pub fn for_algo(algo: &str) -> Model {
        match algo {
            "sf" | "sfrank" => Model::Buffered,
            _ => Model::Bufferless,
        }
    }
}

/// A verification failure, attributed to the first divergent line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// 1-based line of the first divergence (0 = whole-trace property).
    pub line: usize,
    /// What diverged.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "first divergence at line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for VerifyError {}

fn fail<T>(line: usize, msg: impl Into<String>) -> Result<T, VerifyError> {
    Err(VerifyError {
        line,
        msg: msg.into(),
    })
}

/// Aggregate results of a successful verification.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Packets in the instance.
    pub packets: usize,
    /// Steps verified.
    pub steps: u64,
    /// Moves verified.
    pub moves: u64,
    /// Forward moves.
    pub forward: u64,
    /// Backward moves.
    pub backward: u64,
    /// Packets delivered (including trivial).
    pub delivered: usize,
    /// Trivial deliveries.
    pub trivial: usize,
    /// Deflections seen.
    pub deflections: u64,
    /// Oscillation moves seen.
    pub oscillations: u64,
    /// Whether the independent in-memory auditor was also run (bufferless
    /// traces only) — when `true`, both verifiers agreed.
    pub replay_cross_checked: bool,
    /// The movement model verified against.
    pub model: Model,
    /// Reconstructed per-packet timelines (exactly matching the trace's
    /// `stats` line).
    pub timelines: Vec<PacketTimeline>,
}

/// The reconstructed instance a trace was verified against.
#[derive(Clone)]
pub struct VerifiedInstance {
    /// The network.
    pub net: Arc<LeveledNetwork>,
    /// The routing problem.
    pub problem: Arc<RoutingProblem>,
}

/// Rebuilds and cross-checks the instance named by a trace's meta line.
pub fn reconstruct(meta: &Meta) -> Result<VerifiedInstance, VerifyError> {
    let (topo, problem) = spec::reconstruct_problem(&meta.topo, &meta.workload, meta.seed)
        .map_err(|e| VerifyError { line: 1, msg: e })?;
    let net = Arc::clone(&topo.net);
    if problem.num_packets() as u64 != meta.packets {
        return fail(
            1,
            format!(
                "meta says {} packets but reconstruction yields {}",
                meta.packets,
                problem.num_packets()
            ),
        );
    }
    if net.num_levels() as u64 != meta.levels {
        return fail(
            1,
            format!(
                "meta says {} levels but reconstruction yields {}",
                meta.levels,
                net.num_levels()
            ),
        );
    }
    if u64::from(problem.congestion()) != meta.congestion
        || u64::from(problem.dilation()) != meta.dilation
    {
        return fail(
            1,
            format!(
                "meta says C={} D={} but reconstruction yields C={} D={}",
                meta.congestion,
                meta.dilation,
                problem.congestion(),
                problem.dilation()
            ),
        );
    }
    Ok(VerifiedInstance { net, problem })
}

/// Verifies a parsed trace end to end (see the module docs).
pub fn verify_trace(trace: &Trace) -> Result<VerifyReport, VerifyError> {
    let Some(meta) = trace.meta() else {
        return fail(1, "trace has no meta line (re-record with --trace-out)");
    };
    let Some(stats) = trace.stats() else {
        return fail(
            trace.events.len(),
            "trace has no final stats line (truncated?)",
        );
    };
    let instance = reconstruct(meta)?;
    let model = Model::for_algo(&meta.algo);
    let streaming = !meta.arrival.is_empty();
    let state = StreamState::run(trace, &instance, model, streaming)?;
    state.check_stats(stats, trace.events.len())?;

    let timelines = build_timelines(trace, state.n);
    check_timelines_against_stats(&timelines, stats, model, trace.events.len())?;

    let replay_cross_checked = if model == Model::Bufferless {
        cross_check_replay(&instance.problem, trace, stats)?;
        true
    } else {
        false
    };

    Ok(VerifyReport {
        packets: state.n,
        steps: state.now,
        moves: state.moves,
        forward: state.forward,
        backward: state.backward,
        delivered: state.delivered.iter().filter(|&&d| d).count(),
        trivial: state.trivial,
        deflections: state.deflections,
        oscillations: state.oscillations,
        replay_cross_checked,
        model,
        timelines,
    })
}

/// The streaming verifier state (one pass over the events). A fresh
/// state replays a trace from the top; [`StreamState::apply_snapshot`]
/// instead seeds it from a `snapshot` checkpoint so a snapshot-delimited
/// segment can be replayed independently (the sharded path).
pub(crate) struct StreamState {
    pub(crate) n: usize,
    pub(crate) now: Time,
    /// Streaming trace (meta's `arrival` spec is non-empty): injections
    /// must be preceded by an `arrival` event, drops are legal.
    streaming: bool,
    pos: Vec<Option<NodeId>>,
    arrived: Vec<bool>,
    dropped: Vec<bool>,
    injected: Vec<bool>,
    pub(crate) delivered: Vec<bool>,
    last_move_step: Vec<u64>,
    active: usize,
    pub(crate) moves: u64,
    pub(crate) forward: u64,
    pub(crate) backward: u64,
    pub(crate) deflections: u64,
    pub(crate) oscillations: u64,
    pub(crate) trivial: usize,
    /// Per-step accumulators, reset at every `step` line.
    batch: Batch,
    /// Forward moves of the previous step: arrivals into this step's
    /// nodes, i.e. the admissible safe-deflection recycling pool.
    prev_forward: HashMap<u32, usize>,
    num_sets: Option<u32>,
    /// Phase announced by the most recent `phase_start` line (snapshots
    /// must agree with it).
    last_phase: Option<u64>,
}

/// Per-step (batch) accumulators, reset at every `step` line.
#[derive(Default)]
struct Batch {
    moves: u64,
    injections: u64,
    deflections: u64,
    fallback: u64,
    oscillations: u64,
    delivers: u64,
    /// (slot index) -> line that used it.
    slots: HashMap<usize, usize>,
    /// Edges crossed forward this step — next step's safe-deflection
    /// recycling pool (losers bounce backward over an edge some packet
    /// *arrived* through, and arrivals are the previous step's moves).
    forward_edges: HashMap<u32, usize>,
    /// Safe backward deflections awaiting the recycling check:
    /// (edge, line).
    safe_backward: Vec<(u32, usize)>,
    /// Packets that landed on their destination this step and must be
    /// delivered before the step closes: (pkt, line of landing move).
    landed: Vec<(u32, usize)>,
}

impl StreamState {
    /// A fresh state: nothing arrived, injected, or delivered yet.
    pub(crate) fn new(n: usize, streaming: bool) -> Self {
        StreamState {
            n,
            now: 0,
            streaming,
            pos: vec![None; n],
            arrived: vec![false; n],
            dropped: vec![false; n],
            injected: vec![false; n],
            delivered: vec![false; n],
            last_move_step: vec![u64::MAX; n],
            active: 0,
            moves: 0,
            forward: 0,
            backward: 0,
            deflections: 0,
            oscillations: 0,
            trivial: 0,
            batch: Batch::default(),
            prev_forward: HashMap::new(),
            num_sets: None,
            last_phase: None,
        }
    }

    /// Replays the whole trace from a fresh state (the sequential path).
    fn run(
        trace: &Trace,
        instance: &VerifiedInstance,
        model: Model,
        streaming: bool,
    ) -> Result<Self, VerifyError> {
        let mut s = StreamState::new(instance.problem.num_packets(), streaming);
        let last = trace.events.len();
        s.run_range(trace, instance, model, 0..last, last, None)?;
        s.check_trailing(last)?;
        Ok(s)
    }

    /// Seeds the state from a `snapshot` checkpoint so replay can start
    /// at the checkpoint's position instead of line 1. The snapshot's
    /// own trustworthiness is established separately: the shard (or the
    /// sequential pass) covering the *preceding* segment checks it
    /// against replayed state via [`StreamState::check_snapshot`].
    pub(crate) fn apply_snapshot(
        &mut self,
        snap: &Snapshot,
        line: usize,
        instance: &VerifiedInstance,
    ) -> Result<(), VerifyError> {
        if snap.state.len() != self.n {
            return fail(
                line,
                format!(
                    "snapshot covers {} packets, instance has {}",
                    snap.state.len(),
                    self.n
                ),
            );
        }
        let num_nodes = instance.net.num_nodes() as u32;
        let mut ni = 0usize;
        for p in 0..self.n {
            match snap.state[p] {
                0 => {}
                1 => self.arrived[p] = true,
                2 => {
                    self.arrived[p] = true;
                    self.dropped[p] = true;
                }
                3 => {
                    let Some(&node) = snap.nodes.get(ni) else {
                        return fail(
                            line,
                            "snapshot has fewer nodes than in-flight packets".to_string(),
                        );
                    };
                    if node >= num_nodes {
                        return fail(
                            line,
                            format!("snapshot places packet {p} on nonexistent node {node}"),
                        );
                    }
                    ni += 1;
                    self.arrived[p] = true;
                    self.injected[p] = true;
                    self.pos[p] = Some(NodeId(node));
                    self.active += 1;
                }
                4 => {
                    self.arrived[p] = true;
                    self.injected[p] = true;
                    self.delivered[p] = true;
                }
                other => {
                    return fail(
                        line,
                        format!("unknown snapshot state code {other} for packet {p}"),
                    )
                }
            }
        }
        if ni != snap.nodes.len() {
            return fail(
                line,
                format!(
                    "snapshot carries {} nodes but {} in-flight packets",
                    snap.nodes.len(),
                    ni
                ),
            );
        }
        self.now = snap.t;
        self.last_phase = Some(snap.phase);
        self.moves = snap.moves;
        self.forward = snap.forward;
        self.backward = snap.backward;
        self.deflections = snap.deflections;
        self.oscillations = snap.oscillations;
        self.trivial = snap.trivial as usize;
        self.prev_forward = snap.prev_forward.iter().map(|&e| (e, line)).collect();
        self.num_sets = if snap.num_sets == 0 {
            None
        } else {
            Some(snap.num_sets)
        };
        Ok(())
    }

    // check: snapshot-consistency — every phase-entry checkpoint must
    // equal the state replayed from the event stream at its position:
    // per-packet lifecycle + kinematics, the forward-arrival recycling
    // pool, the cumulative counters, and the phase/step clocks. This is
    // both a law in its own right (the recorder's bookkeeping is audited
    // against the replayer's) and the hinge of sharded verification —
    // shard k ends by checking snapshot k+1, so a seeded segment chain
    // proves exactly what the sequential pass proves.
    pub(crate) fn check_snapshot(&self, snap: &Snapshot, line: usize) -> Result<(), VerifyError> {
        if snap.t != self.now {
            return fail(
                line,
                format!(
                    "snapshot at t={} but replay is at step {}",
                    snap.t, self.now
                ),
            );
        }
        if self.last_phase != Some(snap.phase) {
            return fail(
                line,
                format!(
                    "snapshot opens phase {} but the last phase_start announced {:?}",
                    snap.phase, self.last_phase
                ),
            );
        }
        // A snapshot must sit on a step boundary, or seeding a shard
        // from it would drop the open batch's slot bookkeeping.
        if self.batch.moves > 0 {
            return fail(line, "snapshot taken mid-step".to_string());
        }
        if snap.state.len() != self.n {
            return fail(
                line,
                format!(
                    "snapshot covers {} packets, instance has {}",
                    snap.state.len(),
                    self.n
                ),
            );
        }
        let mut ni = 0usize;
        for p in 0..self.n {
            let expect: u32 = if self.delivered[p] {
                4
            } else if self.pos[p].is_some() {
                3
            } else if self.dropped[p] {
                2
            } else if self.arrived[p] {
                1
            } else {
                0
            };
            if snap.state[p] != expect {
                return fail(
                    line,
                    format!(
                        "snapshot says packet {p} state={} but replay shows {expect}",
                        snap.state[p]
                    ),
                );
            }
            if let Some(at) = self.pos[p] {
                let claimed = snap.nodes.get(ni).copied();
                if claimed != Some(at.0) {
                    return fail(
                        line,
                        format!(
                            "snapshot places packet {p} at node {claimed:?} but replay shows {}",
                            at.0
                        ),
                    );
                }
                ni += 1;
            }
        }
        if ni != snap.nodes.len() {
            return fail(
                line,
                format!(
                    "snapshot carries {} nodes but replay shows {} in-flight packets",
                    snap.nodes.len(),
                    ni
                ),
            );
        }
        if snap.prev_forward.len() != self.prev_forward.len()
            || snap
                .prev_forward
                .iter()
                .any(|e| !self.prev_forward.contains_key(e))
        {
            return fail(
                line,
                format!(
                    "snapshot's forward-arrival pool ({} edges) disagrees with replay ({} edges)",
                    snap.prev_forward.len(),
                    self.prev_forward.len()
                ),
            );
        }
        let counters = [
            ("moves", snap.moves, self.moves),
            ("forward", snap.forward, self.forward),
            ("backward", snap.backward, self.backward),
            ("deflections", snap.deflections, self.deflections),
            ("oscillations", snap.oscillations, self.oscillations),
            ("trivial", snap.trivial, self.trivial as u64),
        ];
        for (name, claimed, counted) in counters {
            if claimed != counted {
                return fail(
                    line,
                    format!("snapshot claims {name}={claimed} but replay counted {counted}"),
                );
            }
        }
        if snap.num_sets != self.num_sets.unwrap_or(0) {
            return fail(
                line,
                format!(
                    "snapshot claims num_sets={} but replay saw {:?}",
                    snap.num_sets, self.num_sets
                ),
            );
        }
        Ok(())
    }

    /// The trailing mid-step check: only meaningful at the true end of
    /// the trace (segment ends at snapshots sit on step boundaries and
    /// are covered by [`StreamState::check_snapshot`] instead).
    pub(crate) fn check_trailing(&self, last: usize) -> Result<(), VerifyError> {
        if self.batch.moves > 0 {
            return fail(last, "trace ends mid-step (moves after the last step line)");
        }
        Ok(())
    }

    /// Replays `trace.events[range]` into the state. `last` is the
    /// whole trace's event count (envelope positions and diagnostics
    /// stay global, so a shard reports the same line numbers the
    /// sequential pass would). `tick`, when set, is called with a delta
    /// of newly processed events every few tens of thousands of events
    /// (progress reporting).
    pub(crate) fn run_range(
        &mut self,
        trace: &Trace,
        instance: &VerifiedInstance,
        model: Model,
        range: std::ops::Range<usize>,
        last: usize,
        tick: Option<&(dyn Fn(u64) + Sync)>,
    ) -> Result<(), VerifyError> {
        const TICK_EVERY: u64 = 65_536;
        let mut since_tick = 0u64;
        for i in range {
            let line = i + 1;
            self.event(&trace.events[i], line, instance, model, last)?;
            since_tick += 1;
            if since_tick == TICK_EVERY {
                if let Some(tick) = tick {
                    tick(since_tick);
                }
                since_tick = 0;
            }
        }
        if since_tick > 0 {
            if let Some(tick) = tick {
                tick(since_tick);
            }
        }
        Ok(())
    }

    /// Replays one event into the state.
    #[allow(clippy::too_many_lines)]
    fn event(
        &mut self,
        ev: &TraceEvent,
        line: usize,
        instance: &VerifiedInstance,
        model: Model,
        last: usize,
    ) -> Result<(), VerifyError> {
        let net = &instance.net;
        let problem = &instance.problem;
        let n = self.n;
        match ev {
            TraceEvent::Meta(_) => {
                if line != 1 {
                    return fail(line, "meta line not at the start of the trace");
                }
            }
            TraceEvent::Stats(_) => {
                if line != last {
                    return fail(line, "stats line not at the end of the trace");
                }
            }
            TraceEvent::Move {
                t,
                pkt,
                edge,
                dir,
                kind,
            } => {
                let (t, pkt) = (*t, *pkt);
                if t != self.now {
                    return fail(
                        line,
                        format!("move at t={t} inside step {} (out of order)", self.now),
                    );
                }
                let p = pkt as usize;
                if p >= n {
                    return fail(line, format!("packet {pkt} out of range (N={n})"));
                }
                if edge.index() >= net.num_edges() {
                    return fail(line, format!("edge {} does not exist", edge.0));
                }
                if self.delivered[p] {
                    return fail(line, format!("packet {pkt} moved after delivery"));
                }
                if self.last_move_step[p] == self.now {
                    return fail(line, format!("packet {pkt} moved twice in step {t}"));
                }
                let mv = DirectedEdge {
                    edge: *edge,
                    dir: *dir,
                };
                // check: slot-capacity — one packet per (edge, dir) slot per step.
                if let Some(prev) = self.batch.slots.insert(mv.slot_index(), line) {
                    return fail(
                        line,
                        format!(
                            "edge {e} {dir:?} slot already used in step {t} (line {prev})",
                            e = edge.0
                        ),
                    );
                }
                let origin = net.move_origin(mv);
                let target = net.move_target(mv);
                match kind {
                    // check: injection-port — one injection per packet,
                    // departing the first edge of its preselected path.
                    ExitKind::Inject => {
                        if self.injected[p] {
                            return fail(line, format!("packet {pkt} injected twice"));
                        }
                        // check: admission — streaming injections need a
                        // prior arrival and must not have been dropped.
                        if self.streaming && !self.arrived[p] {
                            return fail(
                                line,
                                format!("packet {pkt} injected before its arrival event"),
                            );
                        }
                        if self.dropped[p] {
                            return fail(
                                line,
                                format!("packet {pkt} injected after being dropped"),
                            );
                        }
                        let path = &problem.packets()[p].path;
                        let ok = !path.is_empty() && mv == DirectedEdge::forward(path.edges()[0]);
                        if !ok {
                            return fail(
                                line,
                                format!("packet {pkt} injected away from its source/first edge"),
                            );
                        }
                        self.injected[p] = true;
                        self.batch.injections += 1;
                    }
                    _ => {
                        let Some(at) = self.pos[p] else {
                            return fail(line, format!("packet {pkt} moved while not in flight"));
                        };
                        // check: locality — the move must depart the node
                        // the packet actually occupies.
                        if at != origin {
                            return fail(
                                line,
                                format!(
                                    "packet {pkt} teleported: trace departs node {} but it \
                                     is at node {}",
                                    origin.0, at.0
                                ),
                            );
                        }
                    }
                }
                match kind {
                    ExitKind::Deflect { safe } => {
                        self.batch.deflections += 1;
                        self.deflections += 1;
                        if !safe {
                            self.batch.fallback += 1;
                        } else if *dir == Direction::Backward {
                            self.batch.safe_backward.push((edge.0, line));
                        } else {
                            return fail(
                                line,
                                format!(
                                    "packet {pkt} safe-deflected forward (safe deflections \
                                     are backward recycles)"
                                ),
                            );
                        }
                    }
                    ExitKind::Oscillate => {
                        self.batch.oscillations += 1;
                        self.oscillations += 1;
                    }
                    _ => {}
                }
                match dir {
                    Direction::Forward => {
                        self.forward += 1;
                        self.batch.forward_edges.insert(edge.0, line);
                    }
                    Direction::Backward => self.backward += 1,
                }
                self.moves += 1;
                self.batch.moves += 1;
                self.last_move_step[p] = self.now;
                let dest = problem.packets()[p].path.dest(net);
                if target == dest {
                    if self.pos[p].is_some() {
                        self.active -= 1;
                    }
                    self.pos[p] = None;
                    self.batch.landed.push((pkt, line));
                } else {
                    if self.pos[p].is_none() {
                        self.active += 1;
                    }
                    self.pos[p] = Some(target);
                }
            }
            TraceEvent::Trivial { t, pkt } => {
                let p = *pkt as usize;
                if p >= n {
                    return fail(line, format!("packet {pkt} out of range (N={n})"));
                }
                if *t != self.now {
                    return fail(
                        line,
                        format!("trivial delivery at t={t} in step {}", self.now),
                    );
                }
                if self.injected[p] || self.delivered[p] {
                    return fail(line, format!("packet {pkt} delivered trivially twice"));
                }
                if self.streaming && !self.arrived[p] {
                    return fail(
                        line,
                        format!("packet {pkt} delivered trivially before its arrival event"),
                    );
                }
                if self.dropped[p] {
                    return fail(
                        line,
                        format!("packet {pkt} delivered trivially after being dropped"),
                    );
                }
                if !problem.packets()[p].path.is_empty() {
                    return fail(
                        line,
                        format!("packet {pkt} delivered trivially but its path is not trivial"),
                    );
                }
                self.injected[p] = true;
                self.delivered[p] = true;
                self.trivial += 1;
            }
            TraceEvent::Deliver { t, pkt } => {
                let p = *pkt as usize;
                if p >= n {
                    return fail(line, format!("packet {pkt} out of range (N={n})"));
                }
                if *t != self.now + 1 {
                    return fail(
                        line,
                        format!(
                            "delivery of packet {pkt} at t={t} but arrivals of step {} land \
                             at t={}",
                            self.now,
                            self.now + 1
                        ),
                    );
                }
                let Some(slot) = self.batch.landed.iter().position(|&(q, _)| q == *pkt) else {
                    return fail(
                        line,
                        format!(
                            "packet {pkt} delivered without landing on its destination this \
                             step"
                        ),
                    );
                };
                self.batch.landed.swap_remove(slot);
                if self.delivered[p] {
                    return fail(line, format!("packet {pkt} delivered twice"));
                }
                self.delivered[p] = true;
                self.batch.delivers += 1;
            }
            TraceEvent::Step {
                t,
                moved,
                absorbed,
                injected,
                deflections,
                fallback,
                oscillations,
                active,
            } => {
                if *t != self.now {
                    return fail(
                        line,
                        format!("step line t={t} but current step is {}", self.now),
                    );
                }
                // check: safe-deflection-recycling — safe deflections
                // must recycle an arrival edge: one some packet crossed
                // forward in the previous step (Lemma 2.1 edge
                // recycling).
                for &(edge, defl_line) in &self.batch.safe_backward {
                    if !self.prev_forward.contains_key(&edge) {
                        return fail(
                            defl_line,
                            format!(
                                "safe deflection over edge {edge} in step {t} but no packet \
                                 arrived forward over it in step {}",
                                t.wrapping_sub(1)
                            ),
                        );
                    }
                }
                // check: absorb-on-arrival — every packet that landed on
                // its destination this step must have been delivered
                // before the step line closed the batch.
                if let Some(&(pkt, move_line)) = self.batch.landed.first() {
                    return fail(
                        move_line,
                        format!(
                            "packet {pkt} landed on its destination in step {t} but was \
                             never delivered"
                        ),
                    );
                }
                // check: step-counter-consistency — the step line's
                // claimed counters must equal the batch it closes.
                let report = [
                    ("moved", *moved, self.batch.moves),
                    ("absorbed", *absorbed, self.batch.delivers),
                    ("injected", *injected, self.batch.injections),
                    ("deflections", *deflections, self.batch.deflections),
                    ("fallback", *fallback, self.batch.fallback),
                    ("oscillations", *oscillations, self.batch.oscillations),
                ];
                for (name, claimed, counted) in report {
                    if claimed != counted {
                        return fail(
                            line,
                            format!(
                                "step {t} claims {name}={claimed} but the event stream \
                                 shows {counted}"
                            ),
                        );
                    }
                }
                if model == Model::Bufferless {
                    if *active != self.active as u64 {
                        return fail(
                            line,
                            format!(
                                "step {t} claims active={active} but the event stream shows \
                                 {}",
                                self.active
                            ),
                        );
                    }
                    // check: no-rest — bufferless: every packet in
                    // flight at the start of the step must have moved
                    // during it.
                    if let Some(p) = (0..n)
                        .find(|&p| self.pos[p].is_some() && self.last_move_step[p] != self.now)
                    {
                        return fail(
                            line,
                            format!("packet {p} rested in step {t} (hot-potato violation)"),
                        );
                    }
                }
                self.now += 1;
                self.prev_forward = std::mem::take(&mut self.batch.forward_edges);
                self.batch = Batch::default();
            }
            TraceEvent::Sets { num_sets: k, sets } => {
                if sets.len() != n {
                    return fail(
                        line,
                        format!("sets line covers {} packets, instance has {n}", sets.len()),
                    );
                }
                if let Some(bad) = sets.iter().find(|&&x| x >= *k) {
                    return fail(line, format!("set id {bad} out of range (num_sets={k})"));
                }
                self.num_sets = Some(*k);
            }
            TraceEvent::Frontier { set, .. } | TraceEvent::Congestion { set, .. } => {
                if let Some(k) = self.num_sets {
                    if *set >= k {
                        return fail(
                            line,
                            format!("frontier-set id {set} out of range (num_sets={k})"),
                        );
                    }
                }
            }
            TraceEvent::Arrival { t, pkt } => {
                let p = *pkt as usize;
                if p >= n {
                    return fail(line, format!("packet {pkt} out of range (N={n})"));
                }
                if !self.streaming {
                    return fail(
                        line,
                        format!("arrival event for packet {pkt} in a batch trace"),
                    );
                }
                if *t != self.now {
                    return fail(line, format!("arrival at t={t} in step {}", self.now));
                }
                if self.arrived[p] {
                    return fail(line, format!("packet {pkt} arrived twice"));
                }
                // check: arrival-before-injection — the packet must not
                // already be in the network (or delivered).
                if self.injected[p] {
                    return fail(
                        line,
                        format!("packet {pkt} arrived after it was already injected"),
                    );
                }
                self.arrived[p] = true;
            }
            TraceEvent::Drop { t, pkt } => {
                let p = *pkt as usize;
                if p >= n {
                    return fail(line, format!("packet {pkt} out of range (N={n})"));
                }
                if !self.streaming {
                    return fail(
                        line,
                        format!("drop event for packet {pkt} in a batch trace"),
                    );
                }
                if *t != self.now {
                    return fail(line, format!("drop at t={t} in step {}", self.now));
                }
                // check: drop-discipline — only an arrived, never-injected,
                // never-dropped packet can be dropped by admission control.
                if !self.arrived[p] {
                    return fail(line, format!("packet {pkt} dropped before arriving"));
                }
                if self.injected[p] {
                    return fail(line, format!("packet {pkt} dropped after injection"));
                }
                if self.dropped[p] {
                    return fail(line, format!("packet {pkt} dropped twice"));
                }
                self.dropped[p] = true;
            }
            TraceEvent::Snapshot(snap) => self.check_snapshot(snap, line)?,
            TraceEvent::PhaseStart { phase, .. } => self.last_phase = Some(*phase),
            TraceEvent::PhaseEnd { .. } | TraceEvent::Section { .. } => {}
        }
        Ok(())
    }

    /// Compares the reconstructed end state with the stats envelope.
    pub(crate) fn check_stats(
        &self,
        stats: &StatsLine,
        stats_line_no: usize,
    ) -> Result<(), VerifyError> {
        if stats.steps != self.now {
            return fail(
                stats_line_no,
                format!(
                    "stats claim {} steps but the trace contains {}",
                    stats.steps, self.now
                ),
            );
        }
        for (name, len) in [
            ("injected_at", stats.injected_at.len()),
            ("delivered_at", stats.delivered_at.len()),
            ("deflections", stats.deflections.len()),
        ] {
            if len != self.n {
                return fail(
                    stats_line_no,
                    format!(
                        "stats field '{name}' covers {len} packets, instance has {}",
                        self.n
                    ),
                );
            }
        }
        for p in 0..self.n {
            let claimed = stats.delivered_at[p].is_some();
            if claimed != self.delivered[p] {
                return fail(
                    stats_line_no,
                    format!(
                        "stats and trace disagree on delivery of packet {p} \
                         (stats: {claimed}, trace: {})",
                        self.delivered[p]
                    ),
                );
            }
        }
        Ok(())
    }
}

/// Exact per-packet comparison between the reconstructed timelines and
/// the stats envelope (the acceptance contract: totals match RouteStats).
pub(crate) fn check_timelines_against_stats(
    timelines: &[PacketTimeline],
    stats: &StatsLine,
    model: Model,
    stats_line_no: usize,
) -> Result<(), VerifyError> {
    for (p, tl) in timelines.iter().enumerate() {
        let rows = [
            ("injected_at", tl.injected_at, stats.injected_at[p]),
            ("delivered_at", tl.delivered_at, stats.delivered_at[p]),
        ];
        for (name, mine, theirs) in rows {
            if mine != theirs {
                return fail(
                    stats_line_no,
                    format!("packet {p}: timeline {name}={mine:?} but stats say {theirs:?}"),
                );
            }
        }
        if tl.deflections != stats.deflections[p] {
            return fail(
                stats_line_no,
                format!(
                    "packet {p}: timeline counts {} deflections but stats say {}",
                    tl.deflections, stats.deflections[p]
                ),
            );
        }
        // The hot-potato latency identity: every in-flight step is
        // exactly one move. Buffered (store-and-forward) packets may
        // rest in queues, so the identity only binds bufferless traces.
        if model == Model::Buffered {
            continue;
        }
        if let (Some(lat), false) = (tl.latency(), tl.trivial) {
            let moves = u64::from(tl.advances + tl.deflections + tl.oscillations);
            if lat != moves {
                return fail(
                    stats_line_no,
                    format!(
                        "packet {p}: latency {lat} != anatomy total {moves} \
                         (advances + deflections + oscillations)"
                    ),
                );
            }
        }
    }
    Ok(())
}

/// Folds the trace into a [`RunRecord`] + [`RouteStats`] and runs the
/// independent in-memory auditor over them.
pub(crate) fn cross_check_replay(
    problem: &Arc<RoutingProblem>,
    trace: &Trace,
    stats: &StatsLine,
) -> Result<(), VerifyError> {
    // Bounds-check ids before handing the record to the replay engine:
    // under sharded verification the auditor runs *concurrently* with
    // the stream verifier, so it can see corrupt events the sequential
    // pass would have rejected first — they must surface as errors, not
    // out-of-range indexing.
    let packets = problem.num_packets();
    let edges = problem.network().num_edges();
    let bounds = |line: usize, what: &str, got: usize, limit: usize| VerifyError {
        line,
        msg: format!("replay auditor: {what} {got} out of range (instance has {limit})"),
    };
    let mut record = RunRecord::default();
    for (i, ev) in trace.events.iter().enumerate() {
        match *ev {
            TraceEvent::Move {
                t,
                pkt,
                edge,
                dir,
                kind,
            } => {
                if pkt as usize >= packets {
                    return Err(bounds(i + 1, "packet id", pkt as usize, packets));
                }
                if edge.index() >= edges {
                    return Err(bounds(i + 1, "edge id", edge.index(), edges));
                }
                record.moves.push(MoveEvent {
                    time: t,
                    pkt: PacketId(pkt),
                    mv: DirectedEdge { edge, dir },
                    kind,
                });
            }
            TraceEvent::Trivial { t, pkt } => {
                if pkt as usize >= packets {
                    return Err(bounds(i + 1, "packet id", pkt as usize, packets));
                }
                record.trivial.push(TrivialDelivery {
                    time: t,
                    pkt: PacketId(pkt),
                });
            }
            _ => {}
        }
    }
    let mut rs = RouteStats::new(problem.num_packets());
    rs.steps_run = stats.steps;
    rs.injected_at = stats.injected_at.clone();
    rs.delivered_at = stats.delivered_at.clone();
    rs.deflections = stats.deflections.clone();
    replay::verify(problem, &record, &rs)
        .map(|_| ())
        .map_err(|e| VerifyError {
            line: 0,
            msg: format!("independent replay auditor disagrees: {e}"),
        })
}
