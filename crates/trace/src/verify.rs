//! Offline replay verification of a JSONL trace.
//!
//! [`verify_trace`] re-runs the *entire* event stream against the model
//! from scratch, independently of the engine that produced it:
//!
//! 1. the `meta` line identifies the instance; the problem is rebuilt
//!    from `(topo, workload, seed)` via [`routing_core::spec`] and the
//!    meta's `packets`/`levels`/`congestion`/`dilation` must match;
//! 2. every `move` is checked against the bufferless invariants — one
//!    packet per (edge, direction) slot per step, no teleports, exactly
//!    one injection per packet departing its path's first edge, no
//!    resting while active (bufferless model only), safe deflections
//!    really recycle an edge crossed forward the same step, absorption
//!    exactly on arrival — and every `step` line's counts must equal the
//!    batch it closes;
//! 3. the reconstructed per-packet timelines must match the `stats`
//!    envelope line **exactly** (injection step, arrival time, deflection
//!    count, per packet), and the step count must match;
//! 4. as defense in depth, the moves are folded into a
//!    [`hotpotato_sim::RunRecord`] and re-audited by the *in-memory*
//!    auditor [`hotpotato_sim::replay::verify`] — two independently
//!    written verifiers must agree (bufferless traces).
//!
//! Any divergence is reported with the 1-based line number of the first
//! offending event, so a corrupted trace names its own corruption.

use crate::schema::{Meta, StatsLine, Trace, TraceEvent};
use crate::timeline::{build_timelines, PacketTimeline};
use hotpotato_sim::{replay, ExitKind, MoveEvent, RouteStats, RunRecord, Time, TrivialDelivery};
use leveled_net::ids::DirectedEdge;
use leveled_net::{Direction, LeveledNetwork, NodeId};
use routing_core::{spec, PacketId, RoutingProblem};
use std::collections::HashMap;
use std::sync::Arc;

/// Which movement model the trace's algorithm obeys.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Model {
    /// Hot-potato: active packets move every step.
    Bufferless,
    /// Store-and-forward: packets may wait in queues.
    Buffered,
}

impl Model {
    /// The model implied by an algorithm name.
    pub fn for_algo(algo: &str) -> Model {
        match algo {
            "sf" | "sfrank" => Model::Buffered,
            _ => Model::Bufferless,
        }
    }
}

/// A verification failure, attributed to the first divergent line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// 1-based line of the first divergence (0 = whole-trace property).
    pub line: usize,
    /// What diverged.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "first divergence at line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for VerifyError {}

fn fail<T>(line: usize, msg: impl Into<String>) -> Result<T, VerifyError> {
    Err(VerifyError {
        line,
        msg: msg.into(),
    })
}

/// Aggregate results of a successful verification.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Packets in the instance.
    pub packets: usize,
    /// Steps verified.
    pub steps: u64,
    /// Moves verified.
    pub moves: u64,
    /// Forward moves.
    pub forward: u64,
    /// Backward moves.
    pub backward: u64,
    /// Packets delivered (including trivial).
    pub delivered: usize,
    /// Trivial deliveries.
    pub trivial: usize,
    /// Deflections seen.
    pub deflections: u64,
    /// Oscillation moves seen.
    pub oscillations: u64,
    /// Whether the independent in-memory auditor was also run (bufferless
    /// traces only) — when `true`, both verifiers agreed.
    pub replay_cross_checked: bool,
    /// The movement model verified against.
    pub model: Model,
    /// Reconstructed per-packet timelines (exactly matching the trace's
    /// `stats` line).
    pub timelines: Vec<PacketTimeline>,
}

/// The reconstructed instance a trace was verified against.
pub struct VerifiedInstance {
    /// The network.
    pub net: Arc<LeveledNetwork>,
    /// The routing problem.
    pub problem: Arc<RoutingProblem>,
}

/// Rebuilds and cross-checks the instance named by a trace's meta line.
pub fn reconstruct(meta: &Meta) -> Result<VerifiedInstance, VerifyError> {
    let (topo, problem) = spec::reconstruct_problem(&meta.topo, &meta.workload, meta.seed)
        .map_err(|e| VerifyError { line: 1, msg: e })?;
    let net = Arc::clone(&topo.net);
    if problem.num_packets() as u64 != meta.packets {
        return fail(
            1,
            format!(
                "meta says {} packets but reconstruction yields {}",
                meta.packets,
                problem.num_packets()
            ),
        );
    }
    if net.num_levels() as u64 != meta.levels {
        return fail(
            1,
            format!(
                "meta says {} levels but reconstruction yields {}",
                meta.levels,
                net.num_levels()
            ),
        );
    }
    if u64::from(problem.congestion()) != meta.congestion
        || u64::from(problem.dilation()) != meta.dilation
    {
        return fail(
            1,
            format!(
                "meta says C={} D={} but reconstruction yields C={} D={}",
                meta.congestion,
                meta.dilation,
                problem.congestion(),
                problem.dilation()
            ),
        );
    }
    Ok(VerifiedInstance { net, problem })
}

/// Verifies a parsed trace end to end (see the module docs).
pub fn verify_trace(trace: &Trace) -> Result<VerifyReport, VerifyError> {
    let Some(meta) = trace.meta() else {
        return fail(1, "trace has no meta line (re-record with --trace-out)");
    };
    let Some(stats) = trace.stats() else {
        return fail(
            trace.events.len(),
            "trace has no final stats line (truncated?)",
        );
    };
    let instance = reconstruct(meta)?;
    let model = Model::for_algo(&meta.algo);
    let streaming = !meta.arrival.is_empty();
    let state = StreamState::run(trace, &instance, model, streaming)?;
    state.check_stats(stats, trace.events.len())?;

    let timelines = build_timelines(trace, state.n);
    check_timelines_against_stats(&timelines, stats, model, trace.events.len())?;

    let replay_cross_checked = if model == Model::Bufferless {
        cross_check_replay(&instance.problem, trace, stats)?;
        true
    } else {
        false
    };

    Ok(VerifyReport {
        packets: state.n,
        steps: state.now,
        moves: state.moves,
        forward: state.forward,
        backward: state.backward,
        delivered: state.delivered.iter().filter(|&&d| d).count(),
        trivial: state.trivial,
        deflections: state.deflections,
        oscillations: state.oscillations,
        replay_cross_checked,
        model,
        timelines,
    })
}

/// The streaming verifier state (one pass over the events).
struct StreamState {
    n: usize,
    now: Time,
    /// Streaming trace (meta's `arrival` spec is non-empty): injections
    /// must be preceded by an `arrival` event, drops are legal.
    streaming: bool,
    pos: Vec<Option<NodeId>>,
    arrived: Vec<bool>,
    dropped: Vec<bool>,
    injected: Vec<bool>,
    delivered: Vec<bool>,
    last_move_step: Vec<u64>,
    active: usize,
    moves: u64,
    forward: u64,
    backward: u64,
    deflections: u64,
    oscillations: u64,
    trivial: usize,
}

/// Per-step (batch) accumulators, reset at every `step` line.
#[derive(Default)]
struct Batch {
    moves: u64,
    injections: u64,
    deflections: u64,
    fallback: u64,
    oscillations: u64,
    delivers: u64,
    /// (slot index) -> line that used it.
    slots: HashMap<usize, usize>,
    /// Edges crossed forward this step — next step's safe-deflection
    /// recycling pool (losers bounce backward over an edge some packet
    /// *arrived* through, and arrivals are the previous step's moves).
    forward_edges: HashMap<u32, usize>,
    /// Safe backward deflections awaiting the recycling check:
    /// (edge, line).
    safe_backward: Vec<(u32, usize)>,
    /// Packets that landed on their destination this step and must be
    /// delivered before the step closes: (pkt, line of landing move).
    landed: Vec<(u32, usize)>,
}

impl StreamState {
    fn run(
        trace: &Trace,
        instance: &VerifiedInstance,
        model: Model,
        streaming: bool,
    ) -> Result<Self, VerifyError> {
        let net = &instance.net;
        let problem = &instance.problem;
        let n = problem.num_packets();
        let mut s = StreamState {
            n,
            now: 0,
            streaming,
            pos: vec![None; n],
            arrived: vec![false; n],
            dropped: vec![false; n],
            injected: vec![false; n],
            delivered: vec![false; n],
            last_move_step: vec![u64::MAX; n],
            active: 0,
            moves: 0,
            forward: 0,
            backward: 0,
            deflections: 0,
            oscillations: 0,
            trivial: 0,
        };
        let mut batch = Batch::default();
        // Forward moves of the previous step: arrivals into this step's
        // nodes, i.e. the admissible safe-deflection recycling pool.
        let mut prev_forward: HashMap<u32, usize> = HashMap::new();
        let mut num_sets: Option<u32> = None;
        let last = trace.events.len();

        for (i, ev) in trace.events.iter().enumerate() {
            let line = i + 1;
            match ev {
                TraceEvent::Meta(_) => {
                    if line != 1 {
                        return fail(line, "meta line not at the start of the trace");
                    }
                }
                TraceEvent::Stats(_) => {
                    if line != last {
                        return fail(line, "stats line not at the end of the trace");
                    }
                }
                TraceEvent::Move {
                    t,
                    pkt,
                    edge,
                    dir,
                    kind,
                } => {
                    let (t, pkt) = (*t, *pkt);
                    if t != s.now {
                        return fail(
                            line,
                            format!("move at t={t} inside step {} (out of order)", s.now),
                        );
                    }
                    let p = pkt as usize;
                    if p >= n {
                        return fail(line, format!("packet {pkt} out of range (N={n})"));
                    }
                    if edge.index() >= net.num_edges() {
                        return fail(line, format!("edge {} does not exist", edge.0));
                    }
                    if s.delivered[p] {
                        return fail(line, format!("packet {pkt} moved after delivery"));
                    }
                    if s.last_move_step[p] == s.now {
                        return fail(line, format!("packet {pkt} moved twice in step {t}"));
                    }
                    let mv = DirectedEdge {
                        edge: *edge,
                        dir: *dir,
                    };
                    // check: slot-capacity — one packet per (edge, dir) slot per step.
                    if let Some(prev) = batch.slots.insert(mv.slot_index(), line) {
                        return fail(
                            line,
                            format!(
                                "edge {e} {dir:?} slot already used in step {t} (line {prev})",
                                e = edge.0
                            ),
                        );
                    }
                    let origin = net.move_origin(mv);
                    let target = net.move_target(mv);
                    match kind {
                        // check: injection-port — one injection per packet,
                        // departing the first edge of its preselected path.
                        ExitKind::Inject => {
                            if s.injected[p] {
                                return fail(line, format!("packet {pkt} injected twice"));
                            }
                            // check: admission — streaming injections need a
                            // prior arrival and must not have been dropped.
                            if s.streaming && !s.arrived[p] {
                                return fail(
                                    line,
                                    format!("packet {pkt} injected before its arrival event"),
                                );
                            }
                            if s.dropped[p] {
                                return fail(
                                    line,
                                    format!("packet {pkt} injected after being dropped"),
                                );
                            }
                            let path = &problem.packets()[p].path;
                            let ok =
                                !path.is_empty() && mv == DirectedEdge::forward(path.edges()[0]);
                            if !ok {
                                return fail(
                                    line,
                                    format!(
                                        "packet {pkt} injected away from its source/first edge"
                                    ),
                                );
                            }
                            s.injected[p] = true;
                            batch.injections += 1;
                        }
                        _ => {
                            let Some(at) = s.pos[p] else {
                                return fail(
                                    line,
                                    format!("packet {pkt} moved while not in flight"),
                                );
                            };
                            // check: locality — the move must depart the node
                            // the packet actually occupies.
                            if at != origin {
                                return fail(
                                    line,
                                    format!(
                                        "packet {pkt} teleported: trace departs node {} but it \
                                         is at node {}",
                                        origin.0, at.0
                                    ),
                                );
                            }
                        }
                    }
                    match kind {
                        ExitKind::Deflect { safe } => {
                            batch.deflections += 1;
                            s.deflections += 1;
                            if !safe {
                                batch.fallback += 1;
                            } else if *dir == Direction::Backward {
                                batch.safe_backward.push((edge.0, line));
                            } else {
                                return fail(
                                    line,
                                    format!(
                                        "packet {pkt} safe-deflected forward (safe deflections \
                                         are backward recycles)"
                                    ),
                                );
                            }
                        }
                        ExitKind::Oscillate => {
                            batch.oscillations += 1;
                            s.oscillations += 1;
                        }
                        _ => {}
                    }
                    match dir {
                        Direction::Forward => {
                            s.forward += 1;
                            batch.forward_edges.insert(edge.0, line);
                        }
                        Direction::Backward => s.backward += 1,
                    }
                    s.moves += 1;
                    batch.moves += 1;
                    s.last_move_step[p] = s.now;
                    let dest = problem.packets()[p].path.dest(net);
                    if target == dest {
                        if s.pos[p].is_some() {
                            s.active -= 1;
                        }
                        s.pos[p] = None;
                        batch.landed.push((pkt, line));
                    } else {
                        if s.pos[p].is_none() {
                            s.active += 1;
                        }
                        s.pos[p] = Some(target);
                    }
                }
                TraceEvent::Trivial { t, pkt } => {
                    let p = *pkt as usize;
                    if p >= n {
                        return fail(line, format!("packet {pkt} out of range (N={n})"));
                    }
                    if *t != s.now {
                        return fail(line, format!("trivial delivery at t={t} in step {}", s.now));
                    }
                    if s.injected[p] || s.delivered[p] {
                        return fail(line, format!("packet {pkt} delivered trivially twice"));
                    }
                    if s.streaming && !s.arrived[p] {
                        return fail(
                            line,
                            format!("packet {pkt} delivered trivially before its arrival event"),
                        );
                    }
                    if s.dropped[p] {
                        return fail(
                            line,
                            format!("packet {pkt} delivered trivially after being dropped"),
                        );
                    }
                    if !problem.packets()[p].path.is_empty() {
                        return fail(
                            line,
                            format!("packet {pkt} delivered trivially but its path is not trivial"),
                        );
                    }
                    s.injected[p] = true;
                    s.delivered[p] = true;
                    s.trivial += 1;
                }
                TraceEvent::Deliver { t, pkt } => {
                    let p = *pkt as usize;
                    if p >= n {
                        return fail(line, format!("packet {pkt} out of range (N={n})"));
                    }
                    if *t != s.now + 1 {
                        return fail(
                            line,
                            format!(
                                "delivery of packet {pkt} at t={t} but arrivals of step {} land \
                                 at t={}",
                                s.now,
                                s.now + 1
                            ),
                        );
                    }
                    let Some(slot) = batch.landed.iter().position(|&(q, _)| q == *pkt) else {
                        return fail(
                            line,
                            format!(
                                "packet {pkt} delivered without landing on its destination this \
                                 step"
                            ),
                        );
                    };
                    batch.landed.swap_remove(slot);
                    if s.delivered[p] {
                        return fail(line, format!("packet {pkt} delivered twice"));
                    }
                    s.delivered[p] = true;
                    batch.delivers += 1;
                }
                TraceEvent::Step {
                    t,
                    moved,
                    absorbed,
                    injected,
                    deflections,
                    fallback,
                    oscillations,
                    active,
                } => {
                    if *t != s.now {
                        return fail(
                            line,
                            format!("step line t={t} but current step is {}", s.now),
                        );
                    }
                    // check: safe-deflection-recycling — safe deflections
                    // must recycle an arrival edge: one some packet crossed
                    // forward in the previous step (Lemma 2.1 edge
                    // recycling).
                    for &(edge, defl_line) in &batch.safe_backward {
                        if !prev_forward.contains_key(&edge) {
                            return fail(
                                defl_line,
                                format!(
                                    "safe deflection over edge {edge} in step {t} but no packet \
                                     arrived forward over it in step {}",
                                    t.wrapping_sub(1)
                                ),
                            );
                        }
                    }
                    // check: absorb-on-arrival — every packet that landed on
                    // its destination this step must have been delivered
                    // before the step line closed the batch.
                    if let Some(&(pkt, move_line)) = batch.landed.first() {
                        return fail(
                            move_line,
                            format!(
                                "packet {pkt} landed on its destination in step {t} but was \
                                 never delivered"
                            ),
                        );
                    }
                    // check: step-counter-consistency — the step line's
                    // claimed counters must equal the batch it closes.
                    let report = [
                        ("moved", *moved, batch.moves),
                        ("absorbed", *absorbed, batch.delivers),
                        ("injected", *injected, batch.injections),
                        ("deflections", *deflections, batch.deflections),
                        ("fallback", *fallback, batch.fallback),
                        ("oscillations", *oscillations, batch.oscillations),
                    ];
                    for (name, claimed, counted) in report {
                        if claimed != counted {
                            return fail(
                                line,
                                format!(
                                    "step {t} claims {name}={claimed} but the event stream \
                                     shows {counted}"
                                ),
                            );
                        }
                    }
                    if model == Model::Bufferless {
                        if *active != s.active as u64 {
                            return fail(
                                line,
                                format!(
                                    "step {t} claims active={active} but the event stream shows \
                                     {}",
                                    s.active
                                ),
                            );
                        }
                        // check: no-rest — bufferless: every packet in
                        // flight at the start of the step must have moved
                        // during it.
                        if let Some(p) =
                            (0..n).find(|&p| s.pos[p].is_some() && s.last_move_step[p] != s.now)
                        {
                            return fail(
                                line,
                                format!("packet {p} rested in step {t} (hot-potato violation)"),
                            );
                        }
                    }
                    s.now += 1;
                    prev_forward = std::mem::take(&mut batch.forward_edges);
                    batch = Batch::default();
                }
                TraceEvent::Sets { num_sets: k, sets } => {
                    if sets.len() != n {
                        return fail(
                            line,
                            format!("sets line covers {} packets, instance has {n}", sets.len()),
                        );
                    }
                    if let Some(bad) = sets.iter().find(|&&x| x >= *k) {
                        return fail(line, format!("set id {bad} out of range (num_sets={k})"));
                    }
                    num_sets = Some(*k);
                }
                TraceEvent::Frontier { set, .. } | TraceEvent::Congestion { set, .. } => {
                    if let Some(k) = num_sets {
                        if *set >= k {
                            return fail(
                                line,
                                format!("frontier-set id {set} out of range (num_sets={k})"),
                            );
                        }
                    }
                }
                TraceEvent::Arrival { t, pkt } => {
                    let p = *pkt as usize;
                    if p >= n {
                        return fail(line, format!("packet {pkt} out of range (N={n})"));
                    }
                    if !s.streaming {
                        return fail(
                            line,
                            format!("arrival event for packet {pkt} in a batch trace"),
                        );
                    }
                    if *t != s.now {
                        return fail(line, format!("arrival at t={t} in step {}", s.now));
                    }
                    if s.arrived[p] {
                        return fail(line, format!("packet {pkt} arrived twice"));
                    }
                    // check: arrival-before-injection — the packet must not
                    // already be in the network (or delivered).
                    if s.injected[p] {
                        return fail(
                            line,
                            format!("packet {pkt} arrived after it was already injected"),
                        );
                    }
                    s.arrived[p] = true;
                }
                TraceEvent::Drop { t, pkt } => {
                    let p = *pkt as usize;
                    if p >= n {
                        return fail(line, format!("packet {pkt} out of range (N={n})"));
                    }
                    if !s.streaming {
                        return fail(
                            line,
                            format!("drop event for packet {pkt} in a batch trace"),
                        );
                    }
                    if *t != s.now {
                        return fail(line, format!("drop at t={t} in step {}", s.now));
                    }
                    // check: drop-discipline — only an arrived, never-injected,
                    // never-dropped packet can be dropped by admission control.
                    if !s.arrived[p] {
                        return fail(line, format!("packet {pkt} dropped before arriving"));
                    }
                    if s.injected[p] {
                        return fail(line, format!("packet {pkt} dropped after injection"));
                    }
                    if s.dropped[p] {
                        return fail(line, format!("packet {pkt} dropped twice"));
                    }
                    s.dropped[p] = true;
                }
                TraceEvent::PhaseStart { .. }
                | TraceEvent::PhaseEnd { .. }
                | TraceEvent::Section { .. } => {}
            }
        }

        if batch.moves > 0 {
            return fail(last, "trace ends mid-step (moves after the last step line)");
        }
        Ok(s)
    }

    /// Compares the reconstructed end state with the stats envelope.
    fn check_stats(&self, stats: &StatsLine, stats_line_no: usize) -> Result<(), VerifyError> {
        if stats.steps != self.now {
            return fail(
                stats_line_no,
                format!(
                    "stats claim {} steps but the trace contains {}",
                    stats.steps, self.now
                ),
            );
        }
        for (name, len) in [
            ("injected_at", stats.injected_at.len()),
            ("delivered_at", stats.delivered_at.len()),
            ("deflections", stats.deflections.len()),
        ] {
            if len != self.n {
                return fail(
                    stats_line_no,
                    format!(
                        "stats field '{name}' covers {len} packets, instance has {}",
                        self.n
                    ),
                );
            }
        }
        for p in 0..self.n {
            let claimed = stats.delivered_at[p].is_some();
            if claimed != self.delivered[p] {
                return fail(
                    stats_line_no,
                    format!(
                        "stats and trace disagree on delivery of packet {p} \
                         (stats: {claimed}, trace: {})",
                        self.delivered[p]
                    ),
                );
            }
        }
        Ok(())
    }
}

/// Exact per-packet comparison between the reconstructed timelines and
/// the stats envelope (the acceptance contract: totals match RouteStats).
fn check_timelines_against_stats(
    timelines: &[PacketTimeline],
    stats: &StatsLine,
    model: Model,
    stats_line_no: usize,
) -> Result<(), VerifyError> {
    for (p, tl) in timelines.iter().enumerate() {
        let rows = [
            ("injected_at", tl.injected_at, stats.injected_at[p]),
            ("delivered_at", tl.delivered_at, stats.delivered_at[p]),
        ];
        for (name, mine, theirs) in rows {
            if mine != theirs {
                return fail(
                    stats_line_no,
                    format!("packet {p}: timeline {name}={mine:?} but stats say {theirs:?}"),
                );
            }
        }
        if tl.deflections != stats.deflections[p] {
            return fail(
                stats_line_no,
                format!(
                    "packet {p}: timeline counts {} deflections but stats say {}",
                    tl.deflections, stats.deflections[p]
                ),
            );
        }
        // The hot-potato latency identity: every in-flight step is
        // exactly one move. Buffered (store-and-forward) packets may
        // rest in queues, so the identity only binds bufferless traces.
        if model == Model::Buffered {
            continue;
        }
        if let (Some(lat), false) = (tl.latency(), tl.trivial) {
            let moves = u64::from(tl.advances + tl.deflections + tl.oscillations);
            if lat != moves {
                return fail(
                    stats_line_no,
                    format!(
                        "packet {p}: latency {lat} != anatomy total {moves} \
                         (advances + deflections + oscillations)"
                    ),
                );
            }
        }
    }
    Ok(())
}

/// Folds the trace into a [`RunRecord`] + [`RouteStats`] and runs the
/// independent in-memory auditor over them.
fn cross_check_replay(
    problem: &Arc<RoutingProblem>,
    trace: &Trace,
    stats: &StatsLine,
) -> Result<(), VerifyError> {
    let mut record = RunRecord::default();
    for ev in &trace.events {
        match *ev {
            TraceEvent::Move {
                t,
                pkt,
                edge,
                dir,
                kind,
            } => record.moves.push(MoveEvent {
                time: t,
                pkt: PacketId(pkt),
                mv: DirectedEdge { edge, dir },
                kind,
            }),
            TraceEvent::Trivial { t, pkt } => record.trivial.push(TrivialDelivery {
                time: t,
                pkt: PacketId(pkt),
            }),
            _ => {}
        }
    }
    let mut rs = RouteStats::new(problem.num_packets());
    rs.steps_run = stats.steps;
    rs.injected_at = stats.injected_at.clone();
    rs.delivered_at = stats.delivered_at.clone();
    rs.deflections = stats.deflections.clone();
    replay::verify(problem, &record, &rs)
        .map(|_| ())
        .map_err(|e| VerifyError {
            line: 0,
            msg: format!("independent replay auditor disagrees: {e}"),
        })
}
