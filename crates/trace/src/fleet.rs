//! Cross-run fleet aggregation: population-level evidence for the
//! Theorem 2.6 bound.
//!
//! A single run shows one `steps/(C+L)` ratio; the paper's claim is
//! statistical, so the fleet observatory aggregates *hundreds* of runs —
//! seed ranges × size ladders — into per-(topo, algo, size) cells of
//! ratio distributions, latency percentiles, deflection-chain depths,
//! and per-set congestion watermarks, each cell carrying a **bootstrap
//! 95% confidence interval** on its mean ratio. Across cells, a log-log
//! least-squares fit of `ln steps` against `ln (C+L)` produces the
//! empirical scaling exponent (Theorem 2.6 predicts ≈ 1 up to polylog)
//! with a normal-approximation CI.
//!
//! Everything here is deterministic at any worker count: cells live in a
//! `BTreeMap`, samples are sorted before any statistic is computed, and
//! the bootstrap resampler is a `ChaCha8Rng` seeded from the cell key —
//! so `tables t1`/`t8` rebuilt from fleet artifacts are byte-identical
//! however the runs were scheduled.

use crate::analyze::Analysis;
use crate::schema::{Trace, TraceEvent};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Value;
use serde_json::json;
use std::collections::BTreeMap;

/// Version of the `/fleet` rollup document. Bump on any change to the
/// document shape.
pub const FLEET_SCHEMA_VERSION: u64 = 1;

/// Upper bounds of the cross-run `steps/(C+L)` ratio histogram (the
/// `hotpotato_fleet_ratio` Prometheus family); one overflow bucket sits
/// past the last bound.
pub const RATIO_BUCKET_BOUNDS: &[f64] = &[
    0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0,
];

/// Bootstrap resamples per confidence interval.
const BOOTSTRAP_RESAMPLES: usize = 200;

/// One completed run's trace-derived analytics, as the fleet folds them.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSample {
    /// Topology spec (cell key, with `algo` and `packets`).
    pub topo: String,
    /// Algorithm name.
    pub algo: String,
    /// Run seed.
    pub seed: u64,
    /// Packets in the instance.
    pub packets: u64,
    /// Instance congestion `C`.
    pub congestion: u64,
    /// Instance dilation `D`.
    pub dilation: u64,
    /// Instance levels `L`.
    pub levels: u64,
    /// Steps the run took (the makespan).
    pub steps: u64,
    /// Packet moves recorded in the trace (the throughput yardstick).
    pub moves: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Total deflections.
    pub deflections: u64,
    /// Invariant violations (from the router's audit; 0 required of a
    /// clean fleet).
    pub violations: u64,
    /// Streaming drops (0 in batch mode).
    pub drops: u64,
    /// Median in-flight latency.
    pub latency_p50: u64,
    /// 99th-percentile in-flight latency.
    pub latency_p99: u64,
    /// Maximum in-flight latency.
    pub latency_max: u64,
    /// Deepest causal deflection chain (Lemma 2.1 attribution).
    pub chain_max_depth: u64,
    /// Largest per-set congestion watermark from the phase-end audits
    /// (0 when the router emits none).
    pub congestion_watermark: u64,
}

impl FleetSample {
    /// The empirical Theorem 2.6 ratio, `steps / (C + L)`.
    pub fn ratio_cl(&self) -> f64 {
        self.steps as f64 / (self.congestion + self.levels).max(1) as f64
    }

    /// Builds a sample from a parsed trace and its analysis. The trace
    /// must carry a `meta` line (fleet runs always do — the instance
    /// parameters come from it verbatim, no reconstruction). Invariant
    /// violations are not part of the trace stats, so the router's audit
    /// count rides along explicitly.
    pub fn from_trace(trace: &Trace, analysis: &Analysis, violations: u64) -> Result<Self, String> {
        let meta = trace
            .meta()
            .ok_or("fleet samples need a trace with a meta line")?;
        let mut latencies: Vec<u64> = analysis
            .timelines
            .iter()
            .filter_map(crate::timeline::PacketTimeline::latency)
            .collect();
        latencies.sort_unstable();
        let mut watermark = 0u64;
        let mut moves = 0u64;
        for ev in &trace.events {
            match ev {
                TraceEvent::Congestion { congestion, .. } => {
                    watermark = watermark.max(u64::from(*congestion));
                }
                TraceEvent::Move { .. } => moves += 1,
                _ => {}
            }
        }
        Ok(FleetSample {
            topo: meta.topo.clone(),
            algo: meta.algo.clone(),
            seed: meta.seed,
            packets: meta.packets,
            congestion: meta.congestion,
            dilation: meta.dilation,
            levels: meta.levels,
            steps: analysis.steps,
            moves,
            delivered: analysis.deliveries,
            deflections: analysis.deflections,
            violations,
            drops: analysis.drops,
            latency_p50: percentile(&latencies, 0.50),
            latency_p99: percentile(&latencies, 0.99),
            latency_max: latencies.last().copied().unwrap_or(0),
            chain_max_depth: u64::from(analysis.chains.max_depth),
            congestion_watermark: watermark,
        })
    }
}

/// Nearest-rank percentile over a sorted slice (0 when empty).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    // lint: allow-panic(index is clamped to len-1 and the slice is non-empty)
    sorted[idx.min(sorted.len() - 1)]
}

/// The log-log regression of `ln steps` on `ln (C+L)` over every fleet
/// sample: the scaling exponent plus a 95% CI is the empirical
/// Theorem 2.6 verdict (exponent ≈ 1 up to polylog factors).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetFit {
    /// Fitted exponent (the slope in log-log space).
    pub exponent: f64,
    /// 95% CI on the exponent (normal approximation of the slope
    /// standard error).
    pub ci95: (f64, f64),
    /// Fitted intercept (`ln` of the leading constant).
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Points entering the fit.
    pub points: u64,
}

/// The cross-run aggregation: cells keyed by (topo, algo, packets), each
/// holding every sample recorded for that cell, plus the fleet-wide
/// ratio histogram. All statistics (bootstrap CIs, the log-log fit) are
/// recomputed from sorted samples at report time, so the report is a
/// pure function of the recorded *set* of samples — record order and
/// worker scheduling cannot leak into it.
#[derive(Clone, Debug, Default)]
pub struct FleetAggregator {
    cells: BTreeMap<(String, String, u64), Vec<FleetSample>>,
    runs: u64,
    failed: u64,
    violations: u64,
    ratio_counts: Vec<u64>,
    ratio_sum: f64,
}

impl FleetAggregator {
    /// An empty aggregation.
    pub fn new() -> Self {
        FleetAggregator {
            ratio_counts: vec![0; RATIO_BUCKET_BOUNDS.len() + 1],
            ..FleetAggregator::default()
        }
    }

    /// Runs recorded so far (failures excluded).
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Runs that failed to complete (errored, panicked, undelivered).
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Total invariant violations across every recorded run.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Per-bucket counts of the fleet ratio histogram (one overflow
    /// bucket past [`RATIO_BUCKET_BOUNDS`]).
    pub fn ratio_counts(&self) -> &[u64] {
        &self.ratio_counts
    }

    /// Sum of every recorded ratio (the histogram `_sum`).
    pub fn ratio_sum(&self) -> f64 {
        self.ratio_sum
    }

    /// Folds one completed run into its cell.
    pub fn record(&mut self, sample: FleetSample) {
        self.runs += 1;
        self.violations += sample.violations;
        let ratio = sample.ratio_cl();
        let bucket = RATIO_BUCKET_BOUNDS
            .iter()
            .position(|&b| ratio <= b)
            .unwrap_or(RATIO_BUCKET_BOUNDS.len());
        self.ratio_counts[bucket] += 1;
        self.ratio_sum += ratio;
        let key = (sample.topo.clone(), sample.algo.clone(), sample.packets);
        self.cells.entry(key).or_default().push(sample);
    }

    /// Records a run that did not produce a sample.
    pub fn record_failure(&mut self) {
        self.failed += 1;
    }

    /// Every recorded sample, in cell order then record order within a
    /// cell (consumers wanting order-independence sort, as
    /// [`FleetAggregator::to_json`] does).
    pub fn samples(&self) -> impl Iterator<Item = &FleetSample> + '_ {
        self.cells.values().flatten()
    }

    /// The log-log fit over every sample, or `None` with fewer than 3
    /// points or a degenerate (single-size) design.
    pub fn fit(&self) -> Option<FleetFit> {
        let mut pts: Vec<(f64, f64)> = self
            .cells
            .values()
            .flatten()
            .filter(|s| s.steps > 0 && s.congestion + s.levels > 0)
            .map(|s| {
                (
                    ((s.congestion + s.levels) as f64).ln(),
                    (s.steps as f64).ln(),
                )
            })
            .collect();
        if pts.len() < 3 {
            return None;
        }
        pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let n = pts.len() as f64;
        let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
        if sxx <= f64::EPSILON {
            return None; // one distinct size: no slope to fit
        }
        let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let sse: f64 = pts
            .iter()
            .map(|p| (p.1 - (intercept + slope * p.0)).powi(2))
            .sum();
        let syy: f64 = pts.iter().map(|p| (p.1 - my).powi(2)).sum();
        let r2 = if syy > 0.0 { 1.0 - sse / syy } else { 1.0 };
        let se = if pts.len() > 2 {
            (sse / (n - 2.0) / sxx).sqrt()
        } else {
            0.0
        };
        Some(FleetFit {
            exponent: slope,
            ci95: (slope - 1.96 * se, slope + 1.96 * se),
            intercept,
            r2,
            points: pts.len() as u64,
        })
    }

    /// The schema-versioned `/fleet` rollup document.
    pub fn to_json(&self) -> Value {
        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|((topo, algo, packets), samples)| cell_json(topo, algo, *packets, samples))
            .collect();
        let fit = match self.fit() {
            Some(f) => json!({
                "exponent": f.exponent,
                "ci95": json!([f.ci95.0, f.ci95.1]),
                "intercept": f.intercept,
                "r2": f.r2,
                "points": f.points,
            }),
            None => Value::Null,
        };
        json!({
            "schema": FLEET_SCHEMA_VERSION,
            "kind": "fleet",
            "runs": self.runs,
            "failed": self.failed,
            "violations": self.violations,
            "cells": Value::Array(cells),
            "fit": fit,
            "ratio_histogram": json!({
                "bounds": Value::Array(RATIO_BUCKET_BOUNDS.iter().map(|&b| json!(b)).collect()),
                "counts": Value::Array(self.ratio_counts.iter().map(|&c| json!(c)).collect()),
                "sum": self.ratio_sum,
            }),
        })
    }
}

/// One cell of the rollup. Samples are sorted by (seed, steps) first so
/// the cell — bootstrap CI included — is identical for every record
/// order.
fn cell_json(topo: &str, algo: &str, packets: u64, samples: &[FleetSample]) -> Value {
    let mut samples: Vec<&FleetSample> = samples.iter().collect();
    samples.sort_by_key(|s| (s.seed, s.steps));
    let n = samples.len() as f64;
    let ratios: Vec<f64> = samples.iter().map(|s| s.ratio_cl()).collect();
    let mean = ratios.iter().sum::<f64>() / n;
    let (mut ratio_lo, mut ratio_hi) = (f64::INFINITY, 0.0f64);
    for &r in &ratios {
        ratio_lo = ratio_lo.min(r);
        ratio_hi = ratio_hi.max(r);
    }
    let (ci_lo, ci_hi) = bootstrap_ci_mean(&ratios, cell_seed(topo, algo, packets));
    let min_max = |f: fn(&FleetSample) -> u64| {
        let lo = samples.iter().map(|s| f(s)).min().unwrap_or(0);
        let hi = samples.iter().map(|s| f(s)).max().unwrap_or(0);
        (lo, hi)
    };
    let (c_lo, c_hi) = min_max(|s| s.congestion);
    let (d_lo, d_hi) = min_max(|s| s.dilation);
    let (steps_lo, steps_hi) = min_max(|s| s.steps);
    let steps_mean = samples.iter().map(|s| s.steps as f64).sum::<f64>() / n;
    let p50_mean = samples.iter().map(|s| s.latency_p50 as f64).sum::<f64>() / n;
    let p99_mean = samples.iter().map(|s| s.latency_p99 as f64).sum::<f64>() / n;
    json!({
        "topo": topo,
        "algo": algo,
        "packets": packets,
        "runs": samples.len() as u64,
        "levels": samples.iter().map(|s| s.levels).max().unwrap_or(0),
        "congestion": json!({ "min": c_lo, "max": c_hi }),
        "dilation": json!({ "min": d_lo, "max": d_hi }),
        "steps": json!({ "min": steps_lo, "max": steps_hi, "mean": steps_mean }),
        "ratio_c_plus_l": json!({
            "mean": mean,
            "min": ratio_lo,
            "max": ratio_hi,
            "ci95": json!([ci_lo, ci_hi]),
        }),
        "latency": json!({
            "p50_mean": p50_mean,
            "p99_mean": p99_mean,
            "max": samples.iter().map(|s| s.latency_max).max().unwrap_or(0),
        }),
        "chains": json!({
            "max_depth": samples.iter().map(|s| s.chain_max_depth).max().unwrap_or(0),
        }),
        "watermark": json!({
            "max": samples.iter().map(|s| s.congestion_watermark).max().unwrap_or(0),
        }),
        "delivered": samples.iter().map(|s| s.delivered).sum::<u64>(),
        "violations": samples.iter().map(|s| s.violations).sum::<u64>(),
        "drops": samples.iter().map(|s| s.drops).sum::<u64>(),
    })
}

/// FNV-1a of the cell key: the deterministic bootstrap seed, so CIs are
/// identical for every worker count and record order.
fn cell_seed(topo: &str, algo: &str, packets: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in topo
        .bytes()
        .chain([b'|'])
        .chain(algo.bytes())
        .chain([b'|'])
        .chain(packets.to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Percentile-method bootstrap 95% CI on the mean of `vals` (which the
/// caller has put in a deterministic order): [`BOOTSTRAP_RESAMPLES`]
/// seeded resamples with replacement, 2.5th/97.5th percentile of the
/// resampled means.
fn bootstrap_ci_mean(vals: &[f64], seed: u64) -> (f64, f64) {
    if vals.is_empty() {
        return (0.0, 0.0);
    }
    if vals.len() == 1 {
        // lint: allow-panic(guarded: len == 1)
        return (vals[0], vals[0]);
    }
    let n = vals.len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..BOOTSTRAP_RESAMPLES)
        .map(|_| {
            (0..n)
                // lint: allow-panic(index is reduced modulo the slice length)
                .map(|_| vals[(rng.gen::<u64>() % n as u64) as usize])
                .sum::<f64>()
                / n as f64
        })
        .collect();
    means.sort_by(f64::total_cmp);
    let rank = |q: f64| -> usize {
        (((BOOTSTRAP_RESAMPLES as f64) * q).ceil() as usize).clamp(1, BOOTSTRAP_RESAMPLES) - 1
    };
    // lint: allow-panic(rank is clamped into 0..BOOTSTRAP_RESAMPLES, the resample count)
    (means[rank(0.025)], means[rank(0.975)])
}

/// Validates a `/fleet` document: schema version, kind, and the required
/// shape of every cell and the fit envelope. Strict on what CI asserts;
/// extra keys are ignored (the schema version governs their meaning).
pub fn validate_fleet_doc(doc: &Value) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_u64)
        .ok_or("fleet doc has no schema version")?;
    if schema != FLEET_SCHEMA_VERSION {
        return Err(format!(
            "fleet schema {schema} != supported {FLEET_SCHEMA_VERSION}"
        ));
    }
    if doc.get("kind").and_then(Value::as_str) != Some("fleet") {
        return Err("fleet doc kind must be \"fleet\"".into());
    }
    for key in ["runs", "failed", "violations"] {
        if doc.get(key).and_then(Value::as_u64).is_none() {
            return Err(format!("fleet doc missing numeric '{key}'"));
        }
    }
    let cells = doc
        .get("cells")
        .and_then(Value::as_array)
        .ok_or("fleet doc missing cells array")?;
    for (i, cell) in cells.iter().enumerate() {
        for key in ["topo", "algo"] {
            if cell.get(key).and_then(Value::as_str).is_none() {
                return Err(format!("cell {i} missing string '{key}'"));
            }
        }
        for key in ["packets", "runs", "violations"] {
            if cell.get(key).and_then(Value::as_u64).is_none() {
                return Err(format!("cell {i} missing numeric '{key}'"));
            }
        }
        let ratio = cell
            .get("ratio_c_plus_l")
            .ok_or_else(|| format!("cell {i} missing ratio_c_plus_l"))?;
        if ratio.get("mean").and_then(Value::as_f64).is_none() {
            return Err(format!("cell {i} ratio has no mean"));
        }
        let ci = ratio
            .get("ci95")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("cell {i} ratio has no ci95"))?;
        if ci.len() != 2 || ci.iter().any(|v| v.as_f64().is_none()) {
            return Err(format!("cell {i} ci95 must be [lo, hi]"));
        }
    }
    let fit = doc.get("fit").ok_or("fleet doc missing fit")?;
    if !fit.is_null() {
        if fit.get("exponent").and_then(Value::as_f64).is_none() {
            return Err("fit has no exponent".into());
        }
        let ci = fit
            .get("ci95")
            .and_then(Value::as_array)
            .ok_or("fit has no ci95")?;
        if ci.len() != 2 || ci.iter().any(|v| v.as_f64().is_none()) {
            return Err("fit ci95 must be [lo, hi]".into());
        }
        if fit.get("points").and_then(Value::as_u64).is_none() {
            return Err("fit has no points".into());
        }
    }
    Ok(())
}

/// Parses and validates a `/fleet` response body.
pub fn parse_fleet(text: &str) -> Result<Value, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("fleet doc: {e}"))?;
    validate_fleet_doc(&doc)?;
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(topo: &str, seed: u64, c: u64, l: u64, steps: u64) -> FleetSample {
        FleetSample {
            topo: topo.into(),
            algo: "busch".into(),
            seed,
            packets: 64,
            congestion: c,
            dilation: l,
            levels: l,
            steps,
            moves: steps * 4,
            delivered: 64,
            deflections: 10,
            violations: 0,
            drops: 0,
            latency_p50: 8,
            latency_p99: 20,
            latency_max: 30,
            chain_max_depth: 3,
            congestion_watermark: 4,
        }
    }

    #[test]
    fn report_is_independent_of_record_order() {
        let runs: Vec<FleetSample> = (0..20)
            .map(|i| sample("bf:6", i, 8, 6, 40 + 3 * i))
            .chain((0..20).map(|i| sample("bf:8", i, 16, 8, 90 + 5 * i)))
            .collect();
        let mut fwd = FleetAggregator::new();
        for s in &runs {
            fwd.record(s.clone());
        }
        let mut rev = FleetAggregator::new();
        for s in runs.iter().rev() {
            rev.record(s.clone());
        }
        assert_eq!(fwd.to_json(), rev.to_json());
        validate_fleet_doc(&fwd.to_json()).unwrap();
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean_deterministically() {
        let vals: Vec<f64> = (0..50).map(|i| 2.0 + (i % 7) as f64 * 0.1).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let (lo, hi) = bootstrap_ci_mean(&vals, 42);
        assert!(lo <= mean && mean <= hi, "{lo} !<= {mean} !<= {hi}");
        assert!(hi - lo < 0.2, "CI too wide: [{lo}, {hi}]");
        assert_eq!(
            bootstrap_ci_mean(&vals, 42),
            (lo, hi),
            "seeded = repeatable"
        );
        // A single observation collapses to a point interval.
        assert_eq!(bootstrap_ci_mean(&[3.0], 1), (3.0, 3.0));
    }

    #[test]
    fn fit_recovers_a_planted_exponent() {
        // steps = 2.5 * (C+L)^1.3, exactly: the fit must recover the
        // exponent with a tight CI and r² = 1.
        let mut agg = FleetAggregator::new();
        for (i, cl) in [10u64, 20, 40, 80, 160].iter().enumerate() {
            for seed in 0..4 {
                let steps = (2.5 * (*cl as f64).powf(1.3)).round() as u64;
                agg.record(sample(&format!("bf:{i}"), seed, cl / 2, cl - cl / 2, steps));
            }
        }
        let fit = agg.fit().expect("5 sizes fit");
        assert!((fit.exponent - 1.3).abs() < 0.01, "{}", fit.exponent);
        assert!(fit.ci95.0 <= fit.exponent && fit.exponent <= fit.ci95.1);
        assert!(fit.r2 > 0.999, "{}", fit.r2);
        assert_eq!(fit.points, 20);
    }

    #[test]
    fn fit_declines_degenerate_designs() {
        let mut agg = FleetAggregator::new();
        assert!(agg.fit().is_none(), "empty");
        for seed in 0..5 {
            agg.record(sample("bf:6", seed, 8, 6, 50));
        }
        assert!(agg.fit().is_none(), "one size has no slope");
        assert_eq!(agg.to_json()["fit"], Value::Null);
        validate_fleet_doc(&agg.to_json()).unwrap();
    }

    #[test]
    fn ratio_histogram_counts_and_sums() {
        let mut agg = FleetAggregator::new();
        agg.record(sample("bf:6", 1, 8, 6, 14)); // ratio 1.0 -> bucket le=1.0
        agg.record(sample("bf:6", 2, 8, 6, 1400)); // ratio 100 -> overflow
        let counts = agg.ratio_counts();
        assert_eq!(counts[1], 1, "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 1, "{counts:?}");
        assert!((agg.ratio_sum() - 101.0).abs() < 1e-9);
        agg.record_failure();
        assert_eq!(agg.failed(), 1);
        assert_eq!(agg.runs(), 2);
    }

    /// Replaces `doc[key]` in an object value (the vendored `Value` has
    /// no `IndexMut`).
    fn set(doc: &mut Value, key: &str, v: Value) {
        let Value::Object(members) = doc else {
            panic!("not an object");
        };
        members
            .iter_mut()
            .find(|(k, _)| k == key)
            .expect("key present")
            .1 = v;
    }

    #[test]
    fn validation_rejects_malformed_docs() {
        let mut agg = FleetAggregator::new();
        agg.record(sample("bf:6", 1, 8, 6, 50));
        let good = agg.to_json();
        validate_fleet_doc(&good).unwrap();
        assert!(parse_fleet(&serde_json::to_string(&good).unwrap()).is_ok());

        let mut wrong_schema = good.clone();
        set(&mut wrong_schema, "schema", json!(99));
        assert!(validate_fleet_doc(&wrong_schema).is_err());

        let mut wrong_kind = good.clone();
        set(&mut wrong_kind, "kind", json!("rollup"));
        assert!(validate_fleet_doc(&wrong_kind).is_err());

        let mut no_ci = good.clone();
        let Value::Object(top) = &mut no_ci else {
            panic!("doc is an object");
        };
        let cells = &mut top.iter_mut().find(|(k, _)| k == "cells").expect("cells").1;
        let Value::Array(cells) = cells else {
            panic!("cells is an array");
        };
        set(&mut cells[0], "ratio_c_plus_l", json!({ "mean": 1.0 }));
        assert!(validate_fleet_doc(&no_ci).is_err());
        assert!(parse_fleet("{not json").is_err());
    }
}
