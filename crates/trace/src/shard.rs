//! Sharded parallel trace verification and pipeline self-telemetry.
//!
//! The `snapshot` checkpoints recorded at every phase entry (see
//! [`crate::schema::Snapshot`]) split a trace into independently
//! replayable segments: segment `k` seeds a [`verify`] stream state from
//! snapshot `k` (already proven consistent by the segment before it),
//! replays its event range, and finishes by checking snapshot `k+1`
//! against the replayed state. Chaining the per-segment proofs
//! reproduces exactly what the sequential pass proves, so the fan-out
//! over [`hotpotato_sim::pool_core`] is free to complete in any order —
//! [`verify_trace_sharded`] still reports the **same first divergence**
//! (same line, same message) the sequential [`crate::verify_trace`]
//! would, at any job count:
//!
//! - a valid prefix up to line `L` means every snapshot before `L`
//!   passed its consistency check, so every seed before `L` is
//!   trustworthy and the owning segment reproduces the sequential
//!   failure at `L` verbatim;
//! - segments after the failing one can only fail at strictly later
//!   lines (their ranges start past `L`), so taking the minimum
//!   `(line, segment)` over all shard errors is order-independent.
//!
//! The stats/timeline cross-checks and the independent in-memory replay
//! auditor ride the same pool as auxiliary jobs, so the slowest single
//! job — not the sum — bounds wall-clock time.
//!
//! [`verify`]: crate::verify

use crate::schema::{Trace, TraceEvent};
use crate::timeline::{build_timelines, PacketTimeline};
use crate::verify::{
    check_timelines_against_stats, cross_check_replay, reconstruct, Model, StreamState,
    VerifiedInstance, VerifyError, VerifyReport,
};
use crate::ParseError;
use hotpotato_sim::pool_core::{configured_threads, BandResults, PanicSlot, PoolCore};
use serde::{Serialize as _, Value};
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Options for [`verify_trace_sharded`].
#[derive(Clone, Debug, Default)]
pub struct ShardOptions {
    /// Worker threads (0 = the workspace thread budget,
    /// [`configured_threads`]).
    pub jobs: usize,
    /// Emit periodic progress lines (events processed, shards done) to
    /// stderr.
    pub progress: bool,
}

/// Outcome of a sharded verification: the (sequentially identical)
/// verify report plus fan-out accounting for telemetry.
pub struct ShardRun {
    /// The verification report — field-for-field what the sequential
    /// [`crate::verify_trace`] returns on the same trace.
    pub report: VerifyReport,
    /// Segments the trace was split into (1 = no snapshots, whole-trace
    /// replay).
    pub shards: usize,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Summed busy time across all pool jobs, for shard-utilization
    /// telemetry (`busy / (wall × jobs)`).
    pub busy_s: f64,
}

/// One snapshot-delimited replay unit.
#[derive(Clone)]
struct Segment {
    /// Event index of the seeding snapshot (None = replay from line 1).
    seed: Option<usize>,
    /// Event-index range to replay (inclusive of the closing snapshot's
    /// consistency check, exclusive at the seeding snapshot).
    range: Range<usize>,
    /// The final segment also owns the trailing mid-step check.
    is_last: bool,
}

/// What a pool job posts back, band-indexed so collection order is
/// deterministic regardless of completion order.
enum JobOut {
    Segment(Box<StreamState>),
    Timelines(Vec<PacketTimeline>),
    CrossChecked,
}

type JobResult = (Result<JobOut, VerifyError>, f64);

/// Shared progress accounting printed to stderr when enabled.
struct Progress {
    enabled: bool,
    events_done: AtomicU64,
    events_total: u64,
    shards_done: AtomicU64,
    shards_total: usize,
    last_print: Mutex<Instant>,
}

impl Progress {
    fn new(enabled: bool, events_total: u64, shards_total: usize) -> Progress {
        Progress {
            enabled,
            events_done: AtomicU64::new(0),
            events_total,
            shards_done: AtomicU64::new(0),
            shards_total,
            last_print: Mutex::new(Instant::now()),
        }
    }

    fn tick(&self, delta: u64) {
        let done = self.events_done.fetch_add(delta, Ordering::Relaxed) + delta;
        self.maybe_print(done, false);
    }

    fn shard_done(&self) {
        self.shards_done.fetch_add(1, Ordering::Relaxed);
        self.maybe_print(self.events_done.load(Ordering::Relaxed), true);
    }

    fn maybe_print(&self, events_done: u64, force: bool) {
        if !self.enabled {
            return;
        }
        let Ok(mut last) = self.last_print.lock() else {
            return;
        };
        if !force && last.elapsed() < Duration::from_millis(500) {
            return;
        }
        *last = Instant::now();
        eprintln!(
            "verify progress: {events_done}/{} events replayed, {}/{} shards done",
            self.events_total,
            self.shards_done.load(Ordering::Relaxed),
            self.shards_total
        );
    }
}

/// Splits the event stream at its `snapshot` checkpoints.
fn plan_segments(trace: &Trace) -> Vec<Segment> {
    let last = trace.events.len();
    let mut segs = Vec::new();
    let mut start = 0usize;
    let mut seed = None;
    for (i, ev) in trace.events.iter().enumerate() {
        if matches!(ev, TraceEvent::Snapshot(_)) {
            segs.push(Segment {
                seed,
                range: start..i + 1,
                is_last: false,
            });
            seed = Some(i);
            start = i + 1;
        }
    }
    segs.push(Segment {
        seed,
        range: start..last,
        is_last: true,
    });
    segs
}

/// Replays one segment: seed (if any), range, trailing check (if last).
fn run_segment(
    trace: &Trace,
    instance: &VerifiedInstance,
    model: Model,
    streaming: bool,
    seg: &Segment,
    last: usize,
    tick: &(dyn Fn(u64) + Sync),
) -> Result<Box<StreamState>, VerifyError> {
    let mut s = StreamState::new(instance.problem.num_packets(), streaming);
    if let Some(idx) = seg.seed {
        let TraceEvent::Snapshot(snap) = &trace.events[idx] else {
            unreachable!("segment seeds are snapshot indices");
        };
        s.apply_snapshot(snap, idx + 1, instance)?;
    }
    s.run_range(trace, instance, model, seg.range.clone(), last, Some(tick))?;
    if seg.is_last {
        s.check_trailing(last)?;
    }
    Ok(Box::new(s))
}

/// Verifies a trace by fanning snapshot-delimited segments (plus the
/// timeline and replay-auditor cross-checks) out over a worker pool.
/// Equivalent to [`crate::verify_trace`] — same report on success, same
/// first divergence on failure — but bounded by the slowest job instead
/// of the sum.
pub fn verify_trace_sharded(
    trace: &Arc<Trace>,
    opts: &ShardOptions,
) -> Result<ShardRun, VerifyError> {
    let Some(meta) = trace.meta() else {
        return Err(VerifyError {
            line: 1,
            msg: "trace has no meta line (re-record with --trace-out)".into(),
        });
    };
    let last = trace.events.len();
    if trace.stats().is_none() {
        return Err(VerifyError {
            line: last,
            msg: "trace has no final stats line (truncated?)".into(),
        });
    }
    let instance = reconstruct(meta)?;
    let model = Model::for_algo(&meta.algo);
    let streaming = !meta.arrival.is_empty();

    let segs = plan_segments(trace);
    let cross = model == Model::Bufferless;
    let bands = segs.len() + 1 + usize::from(cross);
    let jobs = if opts.jobs == 0 {
        configured_threads()
    } else {
        opts.jobs
    };
    let workers = jobs.min(bands);
    let progress = Arc::new(Progress::new(opts.progress, last as u64, segs.len()));

    let pool = PoolCore::new(workers, || {});
    let results: Arc<BandResults<JobResult>> = Arc::new(BandResults::new(bands));
    let panics = Arc::new(PanicSlot::new());
    let submit = |band: usize, job: Box<dyn FnOnce() -> Result<JobOut, VerifyError> + Send>| {
        let results = Arc::clone(&results);
        let panics = Arc::clone(&panics);
        pool.submit(Box::new(move || {
            let t0 = Instant::now();
            let out = match std::panic::catch_unwind(AssertUnwindSafe(job)) {
                Ok(out) => out,
                Err(payload) => {
                    panics.record(payload);
                    Err(VerifyError {
                        line: 0,
                        msg: "verify worker panicked".into(),
                    })
                }
            };
            results.post(band, (out, t0.elapsed().as_secs_f64()));
        }))
        .expect("verify pool is live");
    };

    for (i, seg) in segs.iter().enumerate() {
        let trace = Arc::clone(trace);
        let instance = instance.clone();
        let seg = seg.clone();
        let progress = Arc::clone(&progress);
        submit(
            i,
            Box::new(move || {
                let tick = |d: u64| progress.tick(d);
                let out = run_segment(&trace, &instance, model, streaming, &seg, last, &tick)
                    .map(JobOut::Segment);
                progress.shard_done();
                out
            }),
        );
    }
    {
        let trace = Arc::clone(trace);
        let n = instance.problem.num_packets();
        submit(
            segs.len(),
            Box::new(move || Ok(JobOut::Timelines(build_timelines(&trace, n)))),
        );
    }
    if cross {
        let trace = Arc::clone(trace);
        let problem = Arc::clone(&instance.problem);
        submit(
            segs.len() + 1,
            Box::new(move || {
                let stats = trace.stats().expect("stats presence checked above");
                cross_check_replay(&problem, &trace, stats).map(|()| JobOut::CrossChecked)
            }),
        );
    }

    let outs = results.wait_all();
    pool.shutdown();
    if let Some(payload) = panics.take() {
        std::panic::resume_unwind(payload);
    }

    // Deterministic first divergence: the smallest (line, segment) over
    // the segment errors is the sequential pass's first failure (see the
    // module docs); stats/timeline/auditor errors only surface when the
    // whole stream replayed cleanly, mirroring sequential check order.
    let mut first: Option<&VerifyError> = None;
    for out in outs.iter().take(segs.len()) {
        if let Err(e) = &out.0 {
            if first.is_none_or(|f| e.line < f.line) {
                first = Some(e);
            }
        }
    }
    if let Some(e) = first {
        return Err(e.clone());
    }

    let busy_s = outs.iter().map(|(_, s)| *s).sum();
    let mut final_state: Option<Box<StreamState>> = None;
    let mut timelines: Option<Vec<PacketTimeline>> = None;
    let mut aux_err: Option<VerifyError> = None;
    for out in outs {
        match out.0 {
            Ok(JobOut::Segment(s)) => final_state = Some(s), // bands are ordered: last wins
            Ok(JobOut::Timelines(t)) => timelines = Some(t),
            Ok(JobOut::CrossChecked) => {}
            Err(e) => {
                aux_err.get_or_insert(e);
            }
        }
    }
    let state = final_state.expect("at least one segment");
    let timelines = timelines.expect("timeline band posted");
    let stats = trace.stats().expect("stats presence checked above");
    state.check_stats(stats, last)?;
    check_timelines_against_stats(&timelines, stats, model, last)?;
    if let Some(e) = aux_err {
        // Only the replay auditor posts errors outside the segment
        // bands, and it runs last in the sequential order too.
        return Err(e);
    }

    Ok(ShardRun {
        report: VerifyReport {
            packets: state.n,
            steps: state.now,
            moves: state.moves,
            forward: state.forward,
            backward: state.backward,
            delivered: state.delivered.iter().filter(|&&d| d).count(),
            trivial: state.trivial,
            deflections: state.deflections,
            oscillations: state.oscillations,
            replay_cross_checked: cross,
            model,
            timelines,
        },
        shards: segs.len(),
        jobs: workers,
        busy_s,
    })
}

/// Parses JSONL trace text with `jobs` threads by splitting at newline
/// boundaries. Identical to [`Trace::parse`] — same events, and on bad
/// input the same first error with the same global line number (chunks
/// are consumed in index order, so an error in chunk `k` only surfaces
/// when every earlier chunk parsed cleanly).
pub fn parse_jsonl_parallel(text: &str, jobs: usize) -> Result<Trace, ParseError> {
    parse_chunked(text, jobs, 1 << 20)
}

fn parse_chunked(text: &str, jobs: usize, min_bytes: usize) -> Result<Trace, ParseError> {
    let jobs = jobs.max(1);
    if jobs == 1 || text.len() < min_bytes.max(jobs) {
        return Trace::parse(text);
    }
    let mut ranges: Vec<Range<usize>> = Vec::with_capacity(jobs);
    let mut start = 0usize;
    for j in 1..jobs {
        let want = j * text.len() / jobs;
        if want <= start {
            continue;
        }
        // Cut just after the next newline so no line straddles chunks.
        let Some(nl) = text[want..].find('\n') else {
            break;
        };
        let cut = want + nl + 1;
        if cut >= text.len() {
            break;
        }
        ranges.push(start..cut);
        start = cut;
    }
    ranges.push(start..text.len());

    let chunk_results: Vec<Result<Trace, ParseError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let chunk = &text[r.clone()];
                scope.spawn(move || Trace::parse(chunk))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trace parse worker panicked"))
            .collect()
    });

    let mut events = Vec::new();
    for res in chunk_results {
        match res {
            Ok(mut t) => events.append(&mut t.events),
            Err(mut e) => {
                // Chunks before the first failing one parsed fully, so
                // their event count converts the chunk-local line to the
                // global one Trace::parse would report.
                e.line += events.len();
                return Err(e);
            }
        }
    }
    Ok(Trace { events })
}

/// Peak resident set size of this process (Linux `VmHWM`), if available.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

/// Self-telemetry for one verify/analyze pipeline pass, reported in the
/// CLI's JSON output and watched by the perf gate.
#[derive(Clone, Debug)]
pub struct PipelineTelemetry {
    /// Trace events processed.
    pub events: u64,
    /// Input bytes read (on-disk size of the trace).
    pub bytes: u64,
    /// Wall-clock seconds for the whole pass (parse + replay + checks).
    pub wall_s: f64,
    /// Worker threads used.
    pub jobs: usize,
    /// Segments the verify fan-out used (0 for analyze).
    pub shards: usize,
    /// Summed busy seconds across pool jobs (0 when not sharded).
    pub busy_s: f64,
    /// Peak RSS of the process, when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
}

impl PipelineTelemetry {
    /// Events replayed per wall-clock second.
    pub fn events_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Input bytes consumed per wall-clock second.
    pub fn bytes_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.bytes as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Fraction of the `jobs × wall` thread-time budget spent busy
    /// (None when the pass was not sharded).
    pub fn shard_utilization(&self) -> Option<f64> {
        if self.shards > 0 && self.wall_s > 0.0 && self.jobs > 0 {
            Some(self.busy_s / (self.wall_s * self.jobs as f64))
        } else {
            None
        }
    }

    /// The telemetry as a JSON object (the `pipeline` key of the CLI's
    /// verify/analyze output).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("events", self.events.to_json()),
            ("bytes", self.bytes.to_json()),
            ("wall_s", self.wall_s.to_json()),
            ("events_per_s", self.events_per_s().to_json()),
            ("bytes_per_s", self.bytes_per_s().to_json()),
            ("jobs", (self.jobs as u64).to_json()),
            ("shards", (self.shards as u64).to_json()),
            ("shard_utilization", self.shard_utilization().to_json()),
            ("peak_rss_bytes", self.peak_rss_bytes.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINES: &str = concat!(
        "{\"ev\":\"phase_start\",\"phase\":0,\"t\":0}\n",
        "{\"ev\":\"step\",\"t\":0,\"moved\":0,\"absorbed\":0,\"injected\":0,",
        "\"deflections\":0,\"fallback\":0,\"oscillations\":0,\"active\":0}\n",
        "{\"ev\":\"phase_end\",\"phase\":0,\"t\":1}\n",
        "{\"ev\":\"section\",\"section\":\"route\",\"nanos\":12}\n",
    );

    #[test]
    fn chunked_parse_matches_sequential() {
        let text = LINES.repeat(13);
        let seq = Trace::parse(&text).expect("valid");
        for jobs in [2, 3, 5, 8] {
            let par = parse_chunked(&text, jobs, 0).expect("valid");
            assert_eq!(par.events.len(), seq.events.len());
        }
    }

    #[test]
    fn chunked_parse_reports_the_same_first_error() {
        let mut text = LINES.repeat(9);
        let lines: Vec<&str> = text.lines().collect();
        let bad_line = 23;
        assert!(lines.len() > bad_line);
        let mut rebuilt: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
        rebuilt[bad_line - 1] = "{\"ev\":\"nonsense\"}".to_string();
        text = rebuilt.join("\n");
        text.push('\n');
        let seq = Trace::parse(&text).expect_err("corrupt");
        assert_eq!(seq.line, bad_line);
        for jobs in [2, 3, 5, 8] {
            let par = parse_chunked(&text, jobs, 0).expect_err("corrupt");
            assert_eq!((par.line, &par.msg), (seq.line, &seq.msg), "jobs={jobs}");
        }
    }

    #[test]
    fn telemetry_json_has_the_pipeline_fields() {
        let t = PipelineTelemetry {
            events: 100,
            bytes: 4096,
            wall_s: 2.0,
            jobs: 4,
            shards: 8,
            busy_s: 6.0,
            peak_rss_bytes: Some(1 << 20),
        };
        assert!((t.events_per_s() - 50.0).abs() < 1e-9);
        assert!((t.bytes_per_s() - 2048.0).abs() < 1e-9);
        assert!((t.shard_utilization().expect("sharded") - 0.75).abs() < 1e-9);
        let json = t.to_json().to_compact_string();
        for key in [
            "events_per_s",
            "bytes_per_s",
            "shard_utilization",
            "peak_rss_bytes",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
