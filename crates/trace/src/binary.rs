//! Binary `.hpt` trace framing: varint/delta encoding of the exact
//! same version-pinned [`TraceEvent`] schema as the JSONL format.
//!
//! JSONL stays the interchange format; the binary framing exists so
//! multi-GB traces stay cheap to store and verify. The layout is pinned
//! by a magic header plus [`SCHEMA_VERSION`], and the wire-layout items
//! of this module ([`Tag`], [`encode_event`], [`decode_event`]) are
//! fingerprinted by `cargo xtask lint` alongside `schema.rs` — changing
//! the byte layout without bumping the schema version fails lint.
//!
//! Layout: the file starts with [`MAGIC`] followed by the schema
//! version as a varint. Each event is one tag byte ([`Tag`]) followed
//! by its payload. Integers are LEB128 varints; signed values are
//! zigzag-coded; step clocks (`t`) are zigzag deltas against the
//! previous clock-carrying event; strings are a varint length plus
//! UTF-8 bytes; arrays are a varint count plus elements; `move` lines
//! pack direction and kind into a single byte. Decoding is as strict as
//! JSONL parsing: a bad tag, a truncated payload, or a wrong version is
//! a hard error carrying the exact byte offset and event index.

use crate::schema::{Meta, Snapshot, StatsLine, Trace, TraceEvent, SCHEMA_VERSION};
use hotpotato_sim::ExitKind;
use leveled_net::{Direction, EdgeId};

/// Magic header of a `.hpt` binary trace. The non-ASCII lead byte keeps
/// binary traces from ever sniffing as JSONL text.
pub const MAGIC: [u8; 4] = [0x89, b'H', b'P', b'T'];

/// A binary decode failure, attributed to the exact byte offset where
/// the failing read started and the 0-based index of the event being
/// decoded (so `event i` corresponds to JSONL line `i + 1`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinaryError {
    /// Byte offset into the input where decoding failed.
    pub offset: usize,
    /// 0-based index of the event being decoded when the error hit.
    pub event: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for BinaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "binary trace error at byte {} (event {}): {}",
            self.offset, self.event, self.msg
        )
    }
}

impl std::error::Error for BinaryError {}

/// Event tag bytes of the `.hpt` framing, in [`TraceEvent`] variant
/// order. Part of the fingerprinted wire layout: renumbering or adding
/// a tag requires a [`SCHEMA_VERSION`] bump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tag {
    /// Envelope meta line.
    Meta = 0,
    /// Edge crossing.
    Move = 1,
    /// Trivial delivery.
    Trivial = 2,
    /// Absorption.
    Deliver = 3,
    /// Streaming arrival.
    Arrival = 4,
    /// Streaming drop.
    Drop = 5,
    /// Step summary.
    Step = 6,
    /// Frontier-set assignment.
    Sets = 7,
    /// Phase open.
    PhaseStart = 8,
    /// Phase close.
    PhaseEnd = 9,
    /// Frontier announcement.
    Frontier = 10,
    /// Congestion audit.
    Congestion = 11,
    /// Section timing.
    Section = 12,
    /// Envelope stats line.
    Stats = 13,
    /// Phase-entry checkpoint.
    Snapshot = 14,
}

fn zigzag_enc(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[allow(clippy::cast_possible_wrap)]
fn zigzag_dec(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Encoder state: the output buffer plus the delta-coding clock.
struct Enc {
    buf: Vec<u8>,
    last_t: u64,
}

impl Enc {
    fn vu(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    fn vi(&mut self, v: i64) {
        self.vu(zigzag_enc(v));
    }

    /// Zigzag delta against the previous clock-carrying event.
    #[allow(clippy::cast_possible_wrap)]
    fn dt(&mut self, t: u64) {
        self.vi(t.wrapping_sub(self.last_t) as i64);
        self.last_t = t;
    }

    fn string(&mut self, s: &str) {
        self.vu(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn arr_u32(&mut self, arr: &[u32]) {
        self.vu(arr.len() as u64);
        for &v in arr {
            self.vu(u64::from(v));
        }
    }

    /// `None` encodes as 0, `Some(v)` as `v + 1`.
    fn arr_opt_u64(&mut self, arr: &[Option<u64>]) {
        self.vu(arr.len() as u64);
        for v in arr {
            match v {
                None => self.vu(0),
                Some(v) => self.vu(v + 1),
            }
        }
    }
}

fn dir_bit(dir: Direction) -> u8 {
    match dir {
        Direction::Forward => 0,
        Direction::Backward => 1,
    }
}

fn kind_code(kind: ExitKind) -> u8 {
    match kind {
        ExitKind::Advance => 0,
        ExitKind::Deflect { safe: true } => 1,
        ExitKind::Deflect { safe: false } => 2,
        ExitKind::Oscillate => 3,
        ExitKind::Inject => 4,
    }
}

/// Encodes one event: tag byte plus payload. Field order here *is* the
/// wire layout — this function is covered by the schema fingerprint.
fn encode_event(enc: &mut Enc, ev: &TraceEvent) {
    match ev {
        TraceEvent::Meta(m) => {
            enc.buf.push(Tag::Meta as u8);
            enc.string(&m.topo);
            enc.string(&m.workload);
            enc.string(&m.algo);
            enc.vu(m.seed);
            enc.string(&m.arrival);
            enc.vu(m.packets);
            enc.vu(m.levels);
            enc.vu(m.congestion);
            enc.vu(m.dilation);
        }
        TraceEvent::Move {
            t,
            pkt,
            edge,
            dir,
            kind,
        } => {
            enc.buf.push(Tag::Move as u8);
            enc.buf.push(dir_bit(*dir) | (kind_code(*kind) << 1));
            enc.dt(*t);
            enc.vu(u64::from(*pkt));
            enc.vu(u64::from(edge.0));
        }
        TraceEvent::Trivial { t, pkt } => {
            enc.buf.push(Tag::Trivial as u8);
            enc.dt(*t);
            enc.vu(u64::from(*pkt));
        }
        TraceEvent::Deliver { t, pkt } => {
            enc.buf.push(Tag::Deliver as u8);
            enc.dt(*t);
            enc.vu(u64::from(*pkt));
        }
        TraceEvent::Arrival { t, pkt } => {
            enc.buf.push(Tag::Arrival as u8);
            enc.dt(*t);
            enc.vu(u64::from(*pkt));
        }
        TraceEvent::Drop { t, pkt } => {
            enc.buf.push(Tag::Drop as u8);
            enc.dt(*t);
            enc.vu(u64::from(*pkt));
        }
        TraceEvent::Step {
            t,
            moved,
            absorbed,
            injected,
            deflections,
            fallback,
            oscillations,
            active,
        } => {
            enc.buf.push(Tag::Step as u8);
            enc.dt(*t);
            enc.vu(*moved);
            enc.vu(*absorbed);
            enc.vu(*injected);
            enc.vu(*deflections);
            enc.vu(*fallback);
            enc.vu(*oscillations);
            enc.vu(*active);
        }
        TraceEvent::Sets { num_sets, sets } => {
            enc.buf.push(Tag::Sets as u8);
            enc.vu(u64::from(*num_sets));
            enc.arr_u32(sets);
        }
        TraceEvent::PhaseStart { phase, t } => {
            enc.buf.push(Tag::PhaseStart as u8);
            enc.vu(*phase);
            enc.dt(*t);
        }
        TraceEvent::PhaseEnd { phase, t } => {
            enc.buf.push(Tag::PhaseEnd as u8);
            enc.vu(*phase);
            enc.dt(*t);
        }
        TraceEvent::Frontier {
            phase,
            set,
            frontier,
        } => {
            enc.buf.push(Tag::Frontier as u8);
            enc.vu(*phase);
            enc.vu(u64::from(*set));
            enc.vi(*frontier);
        }
        TraceEvent::Congestion {
            phase,
            set,
            congestion,
            initial,
        } => {
            enc.buf.push(Tag::Congestion as u8);
            enc.vu(*phase);
            enc.vu(u64::from(*set));
            enc.vu(u64::from(*congestion));
            enc.vu(u64::from(*initial));
        }
        TraceEvent::Section { section, nanos } => {
            enc.buf.push(Tag::Section as u8);
            enc.string(section);
            enc.vu(*nanos);
        }
        TraceEvent::Snapshot(s) => {
            enc.buf.push(Tag::Snapshot as u8);
            enc.vu(s.phase);
            enc.dt(s.t);
            enc.arr_u32(&s.state);
            enc.arr_u32(&s.nodes);
            enc.arr_u32(&s.prev_forward);
            enc.vu(s.moves);
            enc.vu(s.forward);
            enc.vu(s.backward);
            enc.vu(s.deflections);
            enc.vu(s.oscillations);
            enc.vu(s.trivial);
            enc.vu(u64::from(s.num_sets));
        }
        TraceEvent::Stats(s) => {
            enc.buf.push(Tag::Stats as u8);
            enc.vu(s.steps);
            enc.arr_opt_u64(&s.injected_at);
            enc.arr_opt_u64(&s.delivered_at);
            enc.arr_u32(&s.deflections);
        }
    }
}

/// Decoder state: a strict cursor attributing failures to byte offsets
/// and event indices.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
    event: usize,
    last_t: u64,
}

impl Dec<'_> {
    fn fail(&self, msg: impl Into<String>) -> BinaryError {
        BinaryError {
            offset: self.pos,
            event: self.event,
            msg: msg.into(),
        }
    }

    fn byte(&mut self) -> Result<u8, BinaryError> {
        let Some(&b) = self.bytes.get(self.pos) else {
            return Err(self.fail("unexpected end of input"));
        };
        self.pos += 1;
        Ok(b)
    }

    fn vu(&mut self) -> Result<u64, BinaryError> {
        let start = self.pos;
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err(BinaryError {
                    offset: start,
                    event: self.event,
                    msg: "varint overflows u64".into(),
                });
            }
            out |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    fn vi(&mut self) -> Result<i64, BinaryError> {
        Ok(zigzag_dec(self.vu()?))
    }

    /// Resolves a zigzag clock delta against the running clock.
    fn dt(&mut self) -> Result<u64, BinaryError> {
        let start = self.pos;
        let d = self.vi()?;
        let t = self.last_t.wrapping_add(d as u64);
        if d > 0 && t < self.last_t || d < 0 && t > self.last_t {
            return Err(BinaryError {
                offset: start,
                event: self.event,
                msg: "clock delta out of range".into(),
            });
        }
        self.last_t = t;
        Ok(t)
    }

    fn vu32(&mut self) -> Result<u32, BinaryError> {
        let start = self.pos;
        u32::try_from(self.vu()?).map_err(|_| BinaryError {
            offset: start,
            event: self.event,
            msg: "value overflows u32".into(),
        })
    }

    /// A varint element count, sanity-bounded by the bytes remaining
    /// (each element takes at least one byte) so corrupt counts cannot
    /// trigger huge allocations.
    fn count(&mut self) -> Result<usize, BinaryError> {
        let start = self.pos;
        let n = self.vu()?;
        let remaining = self.bytes.len() - self.pos;
        if n > remaining as u64 {
            return Err(BinaryError {
                offset: start,
                event: self.event,
                msg: format!("array count {n} exceeds remaining input ({remaining} bytes)"),
            });
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, BinaryError> {
        let len = self.count()?;
        let start = self.pos;
        let bytes = &self.bytes[start..start + len];
        self.pos += len;
        String::from_utf8(bytes.to_vec()).map_err(|_| BinaryError {
            offset: start,
            event: self.event,
            msg: "string is not valid UTF-8".into(),
        })
    }

    fn arr_u32(&mut self) -> Result<Vec<u32>, BinaryError> {
        let n = self.count()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.vu32()?);
        }
        Ok(out)
    }

    fn arr_opt_u64(&mut self) -> Result<Vec<Option<u64>>, BinaryError> {
        let n = self.count()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let v = self.vu()?;
            out.push(if v == 0 { None } else { Some(v - 1) });
        }
        Ok(out)
    }
}

/// Decodes one event at the cursor. The match on the tag byte mirrors
/// [`encode_event`] field for field; both are covered by the schema
/// fingerprint.
fn decode_event(dec: &mut Dec<'_>) -> Result<TraceEvent, BinaryError> {
    let tag_at = dec.pos;
    let tag = dec.byte()?;
    let ev = match tag {
        0 => TraceEvent::Meta(Meta {
            schema: SCHEMA_VERSION,
            topo: dec.string()?,
            workload: dec.string()?,
            algo: dec.string()?,
            seed: dec.vu()?,
            arrival: dec.string()?,
            packets: dec.vu()?,
            levels: dec.vu()?,
            congestion: dec.vu()?,
            dilation: dec.vu()?,
        }),
        1 => {
            let packed = dec.byte()?;
            let dir = if packed & 1 == 0 {
                Direction::Forward
            } else {
                Direction::Backward
            };
            let kind = match packed >> 1 {
                0 => ExitKind::Advance,
                1 => ExitKind::Deflect { safe: true },
                2 => ExitKind::Deflect { safe: false },
                3 => ExitKind::Oscillate,
                4 => ExitKind::Inject,
                other => {
                    return Err(BinaryError {
                        offset: tag_at + 1,
                        event: dec.event,
                        msg: format!("unknown move kind code {other}"),
                    })
                }
            };
            TraceEvent::Move {
                t: dec.dt()?,
                pkt: dec.vu32()?,
                edge: EdgeId(dec.vu32()?),
                dir,
                kind,
            }
        }
        2 => TraceEvent::Trivial {
            t: dec.dt()?,
            pkt: dec.vu32()?,
        },
        3 => TraceEvent::Deliver {
            t: dec.dt()?,
            pkt: dec.vu32()?,
        },
        4 => TraceEvent::Arrival {
            t: dec.dt()?,
            pkt: dec.vu32()?,
        },
        5 => TraceEvent::Drop {
            t: dec.dt()?,
            pkt: dec.vu32()?,
        },
        6 => TraceEvent::Step {
            t: dec.dt()?,
            moved: dec.vu()?,
            absorbed: dec.vu()?,
            injected: dec.vu()?,
            deflections: dec.vu()?,
            fallback: dec.vu()?,
            oscillations: dec.vu()?,
            active: dec.vu()?,
        },
        7 => TraceEvent::Sets {
            num_sets: dec.vu32()?,
            sets: dec.arr_u32()?,
        },
        8 => TraceEvent::PhaseStart {
            phase: dec.vu()?,
            t: dec.dt()?,
        },
        9 => TraceEvent::PhaseEnd {
            phase: dec.vu()?,
            t: dec.dt()?,
        },
        10 => TraceEvent::Frontier {
            phase: dec.vu()?,
            set: dec.vu32()?,
            frontier: dec.vi()?,
        },
        11 => TraceEvent::Congestion {
            phase: dec.vu()?,
            set: dec.vu32()?,
            congestion: dec.vu32()?,
            initial: dec.vu32()?,
        },
        12 => TraceEvent::Section {
            section: dec.string()?,
            nanos: dec.vu()?,
        },
        13 => TraceEvent::Stats(StatsLine {
            steps: dec.vu()?,
            injected_at: dec.arr_opt_u64()?,
            delivered_at: dec.arr_opt_u64()?,
            deflections: dec.arr_u32()?,
        }),
        14 => TraceEvent::Snapshot(Snapshot {
            phase: dec.vu()?,
            t: dec.dt()?,
            state: dec.arr_u32()?,
            nodes: dec.arr_u32()?,
            prev_forward: dec.arr_u32()?,
            moves: dec.vu()?,
            forward: dec.vu()?,
            backward: dec.vu()?,
            deflections: dec.vu()?,
            oscillations: dec.vu()?,
            trivial: dec.vu()?,
            num_sets: dec.vu32()?,
        }),
        other => {
            return Err(BinaryError {
                offset: tag_at,
                event: dec.event,
                msg: format!("unknown event tag {other}"),
            })
        }
    };
    Ok(ev)
}

/// `true` if `bytes` starts with the `.hpt` magic header (format
/// sniffing for `trace convert`/`verify`/`analyze` inputs).
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Encodes a parsed trace into the `.hpt` binary framing.
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut enc = Enc {
        // Moves dominate and take ~6 bytes each.
        buf: Vec::with_capacity(MAGIC.len() + 10 + 8 * trace.events.len()),
        last_t: 0,
    };
    enc.buf.extend_from_slice(&MAGIC);
    enc.vu(SCHEMA_VERSION);
    for ev in &trace.events {
        encode_event(&mut enc, ev);
    }
    enc.buf
}

/// Decodes a `.hpt` binary trace, strictly: bad magic, a version other
/// than [`SCHEMA_VERSION`], unknown tags, and truncated payloads are
/// all hard errors with exact byte-offset + event-index attribution.
pub fn decode_trace(bytes: &[u8]) -> Result<Trace, BinaryError> {
    if !is_binary(bytes) {
        return Err(BinaryError {
            offset: 0,
            event: 0,
            msg: "not a .hpt binary trace (bad magic)".into(),
        });
    }
    let mut dec = Dec {
        bytes,
        pos: MAGIC.len(),
        event: 0,
        last_t: 0,
    };
    let version = dec.vu()?;
    if version != SCHEMA_VERSION {
        return Err(BinaryError {
            offset: MAGIC.len(),
            event: 0,
            msg: format!("unsupported trace schema {version} (this build reads {SCHEMA_VERSION})"),
        });
    }
    let mut events = Vec::new();
    while dec.pos < dec.bytes.len() {
        events.push(decode_event(&mut dec)?);
        dec.event += 1;
    }
    Ok(Trace { events })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut enc = Enc {
                buf: Vec::new(),
                last_t: 0,
            };
            enc.vu(v);
            let mut dec = Dec {
                bytes: &enc.buf,
                pos: 0,
                event: 0,
                last_t: 0,
            };
            assert_eq!(dec.vu().unwrap(), v);
            assert_eq!(dec.pos, enc.buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_dec(zigzag_enc(v)), v);
        }
    }

    #[test]
    fn magic_sniff_rejects_text() {
        assert!(!is_binary(b"{\"ev\":\"step\"}"));
        assert!(!is_binary(b""));
        let empty = encode_trace(&Trace { events: Vec::new() });
        assert!(is_binary(&empty));
        assert!(decode_trace(&empty).unwrap().events.is_empty());
    }

    #[test]
    fn wrong_version_is_rejected_with_offset() {
        let mut bytes = MAGIC.to_vec();
        bytes.push(1); // schema 1
        let e = decode_trace(&bytes).unwrap_err();
        assert_eq!(e.offset, MAGIC.len());
        assert!(e.msg.contains("unsupported trace schema 1"), "{e}");
    }

    #[test]
    fn corrupt_count_is_bounded() {
        let mut bytes = encode_trace(&Trace { events: Vec::new() });
        bytes.push(Tag::Sets as u8);
        bytes.push(1); // num_sets
        bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0x7f]); // huge count
        let e = decode_trace(&bytes).unwrap_err();
        assert!(e.msg.contains("exceeds remaining input"), "{e}");
        assert_eq!(e.event, 0);
    }
}
