//! Bounded streaming aggregation of a live event stream.
//!
//! [`StreamingAggregator`] is a [`RouteObserver`] that maintains rolling
//! per-phase (or, for phase-less routers, per-step-range) aggregates
//! under a **hard memory cap**: it never holds more than `cap` buckets,
//! no matter how long the run is. When a run produces more keys than
//! `cap`, adjacent buckets are merged pairwise and the bucket *scale*
//! doubles — coverage stays total, only the resolution degrades, and
//! memory stays `O(cap)`.
//!
//! Within a bucket the aggregates are exact sums, so however many merges
//! happen, bucket totals always sum to the run totals — the invariant
//! the bounded-memory tests pin down against full-trace analysis.

use hotpotato_sim::{ExitKind, RouteObserver, StepReport, Time};
use leveled_net::ids::DirectedEdge;
use serde::Value;
use serde_json::json;

/// Exact aggregates over a contiguous key range.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bucket {
    /// First key covered (inclusive).
    pub key_lo: u64,
    /// Last key covered (inclusive).
    pub key_hi: u64,
    /// Steps completed.
    pub steps: u64,
    /// Moves staged (injections included).
    pub moved: u64,
    /// Packets absorbed.
    pub absorbed: u64,
    /// Packets injected.
    pub injected: u64,
    /// Deflections (safe + fallback).
    pub deflections: u64,
    /// Fallback deflections.
    pub fallback: u64,
    /// Oscillation moves.
    pub oscillations: u64,
    /// Peak in-flight count observed at any step end in the range.
    pub max_active: u64,
}

impl Bucket {
    fn absorb(&mut self, other: &Bucket) {
        self.key_hi = self.key_hi.max(other.key_hi);
        self.key_lo = self.key_lo.min(other.key_lo);
        self.steps += other.steps;
        self.moved += other.moved;
        self.absorbed += other.absorbed;
        self.injected += other.injected;
        self.deflections += other.deflections;
        self.fallback += other.fallback;
        self.oscillations += other.oscillations;
        self.max_active = self.max_active.max(other.max_active);
    }
}

/// A memory-bounded rolling aggregator (see the module docs).
///
/// The bucket key is the *phase* once any phase event has been seen, and
/// the *step* otherwise — phased routers (busch) aggregate per phase,
/// phase-less routers (greedy, baselines) per step range.
pub struct StreamingAggregator {
    cap: usize,
    /// Keys per bucket; doubles on every merge sweep.
    scale: u64,
    buckets: Vec<Bucket>,
    /// Current phase, once a phase event has been seen.
    phase: Option<u64>,
    phased: bool,
    /// Run totals (for the invariant check and the report header).
    total: Bucket,
    merges: u64,
}

impl StreamingAggregator {
    /// Creates an aggregator holding at most `cap` buckets (min 2).
    pub fn new(cap: usize) -> Self {
        StreamingAggregator {
            cap: cap.max(2),
            scale: 1,
            buckets: Vec::new(),
            phase: None,
            phased: false,
            total: Bucket::default(),
            merges: 0,
        }
    }

    /// The hard bucket cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Keys (phases or steps) per bucket after any merges.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// How many pairwise merge sweeps have run.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// The current buckets (always `<= cap`).
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Exact run totals (independent of bucket resolution).
    pub fn totals(&self) -> &Bucket {
        &self.total
    }

    /// What the bucket key means: `"phase"` once any phase event has
    /// been observed, `"step"` otherwise. Matches the `keyed_by` field
    /// of [`StreamingAggregator::to_json`].
    pub fn keyed_by(&self) -> &'static str {
        if self.phased {
            "phase"
        } else {
            "step"
        }
    }

    /// The bucket owning `key`, appending (and, at the cap, merging)
    /// as needed. Keys are monotone, so only the last bucket ever grows.
    fn bucket_mut(&mut self, key: u64) -> &mut Bucket {
        let slot = key / self.scale;
        let needs_new = match self.buckets.last() {
            Some(last) => last.key_hi / self.scale != slot,
            None => true,
        };
        if needs_new {
            if self.buckets.len() == self.cap {
                // Merge adjacent pairs in place and double the scale:
                // halves the bucket count, preserves all sums.
                let mut w = 0;
                for r in (0..self.buckets.len()).step_by(2) {
                    let mut merged = self.buckets[r];
                    if let Some(next) = self.buckets.get(r + 1) {
                        merged.absorb(&next.clone());
                    }
                    self.buckets[w] = merged;
                    w += 1;
                }
                self.buckets.truncate(w);
                self.scale *= 2;
                self.merges += 1;
                // The doubled scale may fold `key` into the (new) last
                // bucket; recheck before appending.
                return self.bucket_mut(key);
            }
            self.buckets.push(Bucket {
                key_lo: key,
                key_hi: key,
                ..Bucket::default()
            });
        }
        let last = self.buckets.last_mut().expect("bucket exists");
        last.key_hi = last.key_hi.max(key);
        last
    }

    /// Current bucket key for the step that just ended.
    fn key_for(&self, t: Time) -> u64 {
        if self.phased {
            self.phase.unwrap_or(0)
        } else {
            t
        }
    }

    /// Renders the aggregation as a JSON report.
    pub fn to_json(&self) -> Value {
        report_json(
            self.keyed_by(),
            self.cap,
            self.scale,
            self.merges,
            &self.total,
            &self.buckets,
        )
    }
}

/// Renders an aggregation report from its parts — the single source of
/// the report shape. [`StreamingAggregator::to_json`] calls this over
/// its own state, and `hotpotato serve` calls it over a published
/// snapshot of that state, so a quiesced `/rollup` snapshot compares
/// *exactly* equal to the in-process report.
pub fn report_json(
    keyed_by: &str,
    cap: usize,
    scale: u64,
    merges: u64,
    totals: &Bucket,
    buckets: &[Bucket],
) -> Value {
    let rows: Vec<Value> = buckets
        .iter()
        .map(|b| {
            json!({
                "key_lo": b.key_lo,
                "key_hi": b.key_hi,
                "steps": b.steps,
                "moved": b.moved,
                "absorbed": b.absorbed,
                "injected": b.injected,
                "deflections": b.deflections,
                "fallback": b.fallback,
                "oscillations": b.oscillations,
                "max_active": b.max_active,
            })
        })
        .collect();
    json!({
        "keyed_by": keyed_by,
        "cap": cap as u64,
        "scale": scale,
        "merges": merges,
        "totals": json!({
            "steps": totals.steps,
            "moved": totals.moved,
            "absorbed": totals.absorbed,
            "injected": totals.injected,
            "deflections": totals.deflections,
            "fallback": totals.fallback,
            "oscillations": totals.oscillations,
            "max_active": totals.max_active,
        }),
        "buckets": Value::Array(rows),
    })
}

impl RouteObserver for StreamingAggregator {
    fn on_move(&mut self, _t: Time, _pkt: u32, _mv: DirectedEdge, _kind: ExitKind) {}

    fn on_step_end(&mut self, t: Time, report: &StepReport, active: usize) {
        let key = self.key_for(t);
        let b = self.bucket_mut(key);
        b.steps += 1;
        b.moved += report.moved as u64;
        b.absorbed += report.absorbed as u64;
        b.injected += report.injected as u64;
        b.deflections += report.deflections as u64;
        b.fallback += report.fallback_deflections as u64;
        b.oscillations += report.oscillations as u64;
        b.max_active = b.max_active.max(active as u64);
        self.total.steps += 1;
        self.total.moved += report.moved as u64;
        self.total.absorbed += report.absorbed as u64;
        self.total.injected += report.injected as u64;
        self.total.deflections += report.deflections as u64;
        self.total.fallback += report.fallback_deflections as u64;
        self.total.oscillations += report.oscillations as u64;
        self.total.max_active = self.total.max_active.max(active as u64);
    }

    fn on_phase_start(&mut self, phase: u64, _t: Time) {
        self.phased = true;
        self.phase = Some(phase);
    }

    fn on_phase_end(&mut self, phase: u64, _t: Time) {
        self.phased = true;
        // Steps after this belong to the next phase until told otherwise.
        self.phase = Some(phase + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(agg: &mut StreamingAggregator, t: Time, moved: usize, deflections: usize) {
        let report = StepReport {
            moved,
            absorbed: 0,
            injected: 0,
            deflections,
            fallback_deflections: 0,
            oscillations: 0,
        };
        agg.on_step_end(t, &report, moved);
    }

    #[test]
    fn merges_keep_memory_bounded_and_sums_exact() {
        let mut agg = StreamingAggregator::new(4);
        for t in 0..1000 {
            step(&mut agg, t, 3, 1);
        }
        assert!(agg.buckets().len() <= 4);
        assert!(agg.scale() >= 256);
        let steps: u64 = agg.buckets().iter().map(|b| b.steps).sum();
        let moved: u64 = agg.buckets().iter().map(|b| b.moved).sum();
        let defl: u64 = agg.buckets().iter().map(|b| b.deflections).sum();
        assert_eq!(steps, 1000);
        assert_eq!(moved, 3000);
        assert_eq!(defl, 1000);
        assert_eq!(agg.totals().steps, 1000);
        // Buckets tile [0, 999] without gaps.
        let mut expect = 0;
        for b in agg.buckets() {
            assert_eq!(b.key_lo, expect);
            expect = b.key_hi + 1;
        }
        assert_eq!(expect, 1000);
    }

    #[test]
    fn phases_key_buckets_once_seen() {
        let mut agg = StreamingAggregator::new(8);
        agg.on_phase_start(0, 0);
        step(&mut agg, 0, 2, 0);
        step(&mut agg, 1, 2, 0);
        agg.on_phase_end(0, 2);
        step(&mut agg, 2, 1, 1);
        assert_eq!(agg.buckets().len(), 2);
        assert_eq!(agg.buckets()[0].steps, 2);
        assert_eq!(agg.buckets()[0].moved, 4);
        assert_eq!(agg.buckets()[1].steps, 1);
        assert_eq!(agg.buckets()[1].deflections, 1);
        let report = agg.to_json();
        assert_eq!(report["keyed_by"], "phase");
        assert_eq!(report["totals"]["moved"].as_u64(), Some(5));
    }
}
