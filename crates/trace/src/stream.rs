//! Bounded streaming aggregation of a live event stream.
//!
//! [`StreamingAggregator`] is a [`RouteObserver`] that maintains rolling
//! per-phase (or, for phase-less routers, per-step-range) aggregates
//! under a **hard memory cap**: it never holds more than `cap` buckets,
//! no matter how long the run is. When a run produces more keys than
//! `cap`, adjacent buckets are merged pairwise and the bucket *scale*
//! doubles — coverage stays total, only the resolution degrades, and
//! memory stays `O(cap)`.
//!
//! Within a bucket the aggregates are exact sums, so however many merges
//! happen, bucket totals always sum to the run totals — the invariant
//! the bounded-memory tests pin down against full-trace analysis.

use hotpotato_sim::{ExitKind, RouteObserver, StepReport, Time};
use leveled_net::ids::DirectedEdge;
use serde::Value;
use serde_json::json;

/// Exact aggregates over a contiguous key range.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bucket {
    /// First key covered (inclusive).
    pub key_lo: u64,
    /// Last key covered (inclusive).
    pub key_hi: u64,
    /// Steps completed.
    pub steps: u64,
    /// Moves staged (injections included).
    pub moved: u64,
    /// Packets absorbed.
    pub absorbed: u64,
    /// Packets injected.
    pub injected: u64,
    /// Deflections (safe + fallback).
    pub deflections: u64,
    /// Fallback deflections.
    pub fallback: u64,
    /// Oscillation moves.
    pub oscillations: u64,
    /// Peak in-flight count observed at any step end in the range.
    pub max_active: u64,
}

impl Bucket {
    fn absorb(&mut self, other: &Bucket) {
        self.key_hi = self.key_hi.max(other.key_hi);
        self.key_lo = self.key_lo.min(other.key_lo);
        self.steps += other.steps;
        self.moved += other.moved;
        self.absorbed += other.absorbed;
        self.injected += other.injected;
        self.deflections += other.deflections;
        self.fallback += other.fallback;
        self.oscillations += other.oscillations;
        self.max_active = self.max_active.max(other.max_active);
    }
}

/// A memory-bounded rolling aggregator (see the module docs).
///
/// The bucket key is the *phase* once any phase event has been seen, and
/// the *step* otherwise — phased routers (busch) aggregate per phase,
/// phase-less routers (greedy, baselines) per step range.
pub struct StreamingAggregator {
    cap: usize,
    /// Keys per bucket; doubles on every merge sweep.
    scale: u64,
    buckets: Vec<Bucket>,
    /// Current phase, once a phase event has been seen.
    phase: Option<u64>,
    phased: bool,
    /// Run totals (for the invariant check and the report header).
    total: Bucket,
    merges: u64,
}

impl StreamingAggregator {
    /// Creates an aggregator holding at most `cap` buckets (min 2).
    pub fn new(cap: usize) -> Self {
        StreamingAggregator {
            cap: cap.max(2),
            scale: 1,
            buckets: Vec::new(),
            phase: None,
            phased: false,
            total: Bucket::default(),
            merges: 0,
        }
    }

    /// The hard bucket cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Keys (phases or steps) per bucket after any merges.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// How many pairwise merge sweeps have run.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// The current buckets (always `<= cap`).
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Exact run totals (independent of bucket resolution).
    pub fn totals(&self) -> &Bucket {
        &self.total
    }

    /// What the bucket key means: `"phase"` once any phase event has
    /// been observed, `"step"` otherwise. Matches the `keyed_by` field
    /// of [`StreamingAggregator::to_json`].
    pub fn keyed_by(&self) -> &'static str {
        if self.phased {
            "phase"
        } else {
            "step"
        }
    }

    /// Merges adjacent bucket pairs in place and doubles the scale:
    /// halves the bucket count, preserves all sums.
    fn merge_sweep(&mut self) {
        let mut w = 0;
        for r in (0..self.buckets.len()).step_by(2) {
            let mut merged = self.buckets[r];
            if let Some(next) = self.buckets.get(r + 1) {
                merged.absorb(&next.clone());
            }
            self.buckets[w] = merged;
            w += 1;
        }
        self.buckets.truncate(w);
        self.scale *= 2;
        self.merges += 1;
    }

    /// The bucket owning `key`, appending (and, at the cap, merging)
    /// as needed. Keys are monotone, so only the last bucket ever grows.
    fn bucket_mut(&mut self, key: u64) -> &mut Bucket {
        let slot = key / self.scale;
        let needs_new = match self.buckets.last() {
            Some(last) => last.key_hi / self.scale != slot,
            None => true,
        };
        if needs_new {
            if self.buckets.len() == self.cap {
                self.merge_sweep();
                // The doubled scale may fold `key` into the (new) last
                // bucket; recheck before appending.
                return self.bucket_mut(key);
            }
            self.buckets.push(Bucket {
                key_lo: key,
                key_hi: key,
                ..Bucket::default()
            });
        }
        let last = self.buckets.last_mut().expect("bucket exists");
        last.key_hi = last.key_hi.max(key);
        last
    }

    /// Folds another aggregator into this one — the cross-run
    /// accumulation path of the fleet observatory. `other`'s buckets are
    /// appended in order through the same cap-respecting merge machinery
    /// the live path uses: a bucket landing in the current last bucket's
    /// slot is absorbed there, anything else opens a new bucket (merging
    /// pairwise at the cap, exactly like a live key arrival).
    ///
    /// Two invariants hold unconditionally: the bucket count never
    /// exceeds the cap, and bucket sums stay exact (folded totals equal
    /// the sum of every constituent run's totals). When the per-run
    /// bucket grids align — runs of the same shape under the same cap,
    /// the fleet case — folding N per-run aggregators produces exactly
    /// the state of one aggregator fed the concatenated stream.
    pub fn fold(&mut self, other: &StreamingAggregator) {
        self.phased |= other.phased;
        // Adopt the coarser grid: a run that merged down to scale S
        // groups S keys per bucket, and folding it at a finer scale
        // would mistake each wide bucket for a distinct key.
        if other.scale > self.scale {
            self.scale = other.scale;
        }
        for i in 0..other.buckets.len() {
            self.fold_bucket(&other.buckets[i]);
        }
        let mut totals = self.total;
        totals.absorb(&other.total);
        totals.key_lo = 0;
        totals.key_hi = 0;
        self.total = totals;
    }

    fn fold_bucket(&mut self, b: &Bucket) {
        let slot = b.key_lo / self.scale;
        let fits_last = self
            .buckets
            .last()
            .is_some_and(|last| last.key_hi / self.scale == slot);
        if fits_last {
            self.buckets.last_mut().expect("non-empty").absorb(b);
            return;
        }
        if self.buckets.len() == self.cap {
            self.merge_sweep();
            // The doubled scale may fold the range into the new last
            // bucket; recheck before appending.
            return self.fold_bucket(b);
        }
        self.buckets.push(*b);
    }

    /// Current bucket key for the step that just ended.
    fn key_for(&self, t: Time) -> u64 {
        if self.phased {
            self.phase.unwrap_or(0)
        } else {
            t
        }
    }

    /// Renders the aggregation as a JSON report.
    pub fn to_json(&self) -> Value {
        report_json(
            self.keyed_by(),
            self.cap,
            self.scale,
            self.merges,
            &self.total,
            &self.buckets,
        )
    }
}

/// Renders an aggregation report from its parts — the single source of
/// the report shape. [`StreamingAggregator::to_json`] calls this over
/// its own state, and `hotpotato serve` calls it over a published
/// snapshot of that state, so a quiesced `/rollup` snapshot compares
/// *exactly* equal to the in-process report.
pub fn report_json(
    keyed_by: &str,
    cap: usize,
    scale: u64,
    merges: u64,
    totals: &Bucket,
    buckets: &[Bucket],
) -> Value {
    let rows: Vec<Value> = buckets
        .iter()
        .map(|b| {
            json!({
                "key_lo": b.key_lo,
                "key_hi": b.key_hi,
                "steps": b.steps,
                "moved": b.moved,
                "absorbed": b.absorbed,
                "injected": b.injected,
                "deflections": b.deflections,
                "fallback": b.fallback,
                "oscillations": b.oscillations,
                "max_active": b.max_active,
            })
        })
        .collect();
    json!({
        "keyed_by": keyed_by,
        "cap": cap as u64,
        "scale": scale,
        "merges": merges,
        "totals": json!({
            "steps": totals.steps,
            "moved": totals.moved,
            "absorbed": totals.absorbed,
            "injected": totals.injected,
            "deflections": totals.deflections,
            "fallback": totals.fallback,
            "oscillations": totals.oscillations,
            "max_active": totals.max_active,
        }),
        "buckets": Value::Array(rows),
    })
}

impl RouteObserver for StreamingAggregator {
    fn on_move(&mut self, _t: Time, _pkt: u32, _mv: DirectedEdge, _kind: ExitKind) {}

    fn on_step_end(&mut self, t: Time, report: &StepReport, active: usize) {
        let key = self.key_for(t);
        let b = self.bucket_mut(key);
        b.steps += 1;
        b.moved += report.moved as u64;
        b.absorbed += report.absorbed as u64;
        b.injected += report.injected as u64;
        b.deflections += report.deflections as u64;
        b.fallback += report.fallback_deflections as u64;
        b.oscillations += report.oscillations as u64;
        b.max_active = b.max_active.max(active as u64);
        self.total.steps += 1;
        self.total.moved += report.moved as u64;
        self.total.absorbed += report.absorbed as u64;
        self.total.injected += report.injected as u64;
        self.total.deflections += report.deflections as u64;
        self.total.fallback += report.fallback_deflections as u64;
        self.total.oscillations += report.oscillations as u64;
        self.total.max_active = self.total.max_active.max(active as u64);
    }

    fn on_phase_start(&mut self, phase: u64, _t: Time) {
        self.phased = true;
        self.phase = Some(phase);
    }

    fn on_phase_end(&mut self, phase: u64, _t: Time) {
        self.phased = true;
        // Steps after this belong to the next phase until told otherwise.
        self.phase = Some(phase + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(agg: &mut StreamingAggregator, t: Time, moved: usize, deflections: usize) {
        let report = StepReport {
            moved,
            absorbed: 0,
            injected: 0,
            deflections,
            fallback_deflections: 0,
            oscillations: 0,
        };
        agg.on_step_end(t, &report, moved);
    }

    #[test]
    fn merges_keep_memory_bounded_and_sums_exact() {
        let mut agg = StreamingAggregator::new(4);
        for t in 0..1000 {
            step(&mut agg, t, 3, 1);
        }
        assert!(agg.buckets().len() <= 4);
        assert!(agg.scale() >= 256);
        let steps: u64 = agg.buckets().iter().map(|b| b.steps).sum();
        let moved: u64 = agg.buckets().iter().map(|b| b.moved).sum();
        let defl: u64 = agg.buckets().iter().map(|b| b.deflections).sum();
        assert_eq!(steps, 1000);
        assert_eq!(moved, 3000);
        assert_eq!(defl, 1000);
        assert_eq!(agg.totals().steps, 1000);
        // Buckets tile [0, 999] without gaps.
        let mut expect = 0;
        for b in agg.buckets() {
            assert_eq!(b.key_lo, expect);
            expect = b.key_hi + 1;
        }
        assert_eq!(expect, 1000);
    }

    /// One simulated run of `len` steps with per-step keys `0..len`,
    /// fed into `agg` (the per-run stream the fleet folds).
    fn feed_run(agg: &mut StreamingAggregator, len: u64, moved: usize, defl: usize) {
        for t in 0..len {
            step(agg, t, moved, defl);
        }
    }

    /// Folding N per-run aggregators must equal one aggregator over the
    /// concatenated stream — pinned at 2, 8, and 64 runs, both with and
    /// without cap-forced merges, per the fleet cross-run contract.
    fn assert_fold_equals_concat(runs: usize, cap: usize, len: u64) {
        let mut concat = StreamingAggregator::new(cap);
        let mut folded = StreamingAggregator::new(cap);
        for r in 0..runs {
            let moved = 2 + r % 3;
            feed_run(&mut concat, len, moved, 1);
            let mut per_run = StreamingAggregator::new(cap);
            feed_run(&mut per_run, len, moved, 1);
            folded.fold(&per_run);
        }
        // Cap respected.
        assert!(folded.buckets().len() <= cap, "{runs} runs");
        // Exact sums: totals equal the concatenated stream's totals and
        // the bucket sums re-derive them.
        assert_eq!(folded.totals(), concat.totals(), "{runs} runs");
        let steps: u64 = folded.buckets().iter().map(|b| b.steps).sum();
        assert_eq!(steps, runs as u64 * len, "{runs} runs");
        // Same-shaped runs under the same cap: bucket-for-bucket equal.
        // (`merges` is a diagnostic of *how* each aggregator got here and
        // legitimately differs; the state itself must not.)
        assert_eq!(folded.scale(), concat.scale(), "{runs} runs");
        assert_eq!(folded.buckets(), concat.buckets(), "{runs} runs");
        assert_eq!(
            folded.to_json()["totals"],
            concat.to_json()["totals"],
            "{runs} runs"
        );
        assert_eq!(
            folded.to_json()["buckets"],
            concat.to_json()["buckets"],
            "{runs} runs"
        );
    }

    #[test]
    fn folding_two_runs_equals_concatenated_stream() {
        assert_fold_equals_concat(2, 64, 40); // no merges
        assert_fold_equals_concat(2, 4, 100); // cap-forced merges
    }

    #[test]
    fn folding_eight_runs_equals_concatenated_stream() {
        assert_fold_equals_concat(8, 64, 40);
        assert_fold_equals_concat(8, 4, 100);
    }

    #[test]
    fn folding_sixty_four_runs_equals_concatenated_stream() {
        assert_fold_equals_concat(64, 64, 40);
        assert_fold_equals_concat(64, 4, 100);
    }

    #[test]
    fn folding_varied_length_runs_keeps_sums_exact_under_cap() {
        // Runs of different lengths: bucket-for-bucket equality is not
        // promised, but the cap and the exact-sum invariant are.
        let cap = 8;
        let mut folded = StreamingAggregator::new(cap);
        let mut expect_steps = 0u64;
        let mut expect_moved = 0u64;
        for r in 1..=10u64 {
            let mut per_run = StreamingAggregator::new(cap);
            feed_run(&mut per_run, 10 * r, 3, 1);
            expect_steps += 10 * r;
            expect_moved += 30 * r;
            folded.fold(&per_run);
            assert!(folded.buckets().len() <= cap, "run {r}");
        }
        assert_eq!(folded.totals().steps, expect_steps);
        assert_eq!(folded.totals().moved, expect_moved);
        let steps: u64 = folded.buckets().iter().map(|b| b.steps).sum();
        let moved: u64 = folded.buckets().iter().map(|b| b.moved).sum();
        assert_eq!(steps, expect_steps);
        assert_eq!(moved, expect_moved);
    }

    #[test]
    fn phases_key_buckets_once_seen() {
        let mut agg = StreamingAggregator::new(8);
        agg.on_phase_start(0, 0);
        step(&mut agg, 0, 2, 0);
        step(&mut agg, 1, 2, 0);
        agg.on_phase_end(0, 2);
        step(&mut agg, 2, 1, 1);
        assert_eq!(agg.buckets().len(), 2);
        assert_eq!(agg.buckets()[0].steps, 2);
        assert_eq!(agg.buckets()[0].moved, 4);
        assert_eq!(agg.buckets()[1].steps, 1);
        assert_eq!(agg.buckets()[1].deflections, 1);
        let report = agg.to_json();
        assert_eq!(report["keyed_by"], "phase");
        assert_eq!(report["totals"]["moved"].as_u64(), Some(5));
    }
}
