//! The JSONL trace schema: strict, version-pinned parsing.
//!
//! A trace file is one JSON object per line. The movement lines are
//! written by [`hotpotato_sim::JsonlTraceObserver`]; the CLI wraps them
//! in an *envelope*: a `meta` line first (instance specs + seed, enough
//! to reconstruct the [`routing_core::RoutingProblem`] offline) and a
//! `stats` line last (the run's final [`hotpotato_sim::RouteStats`]).
//!
//! Parsing is deliberately strict: an unknown `ev` discriminator, a
//! missing field, an extra field, or a wrong `schema` version is an
//! error, not a warning. The schema-stability test in
//! `tests/schema_roundtrip.rs` round-trips every event variant the
//! observer can emit, so renaming a field in the emitter without bumping
//! [`SCHEMA_VERSION`] fails CI.

use hotpotato_sim::{ExitKind, RouteStats, Time};
use leveled_net::{Direction, EdgeId};
use serde::Value;

/// The trace schema version carried by the `meta` line and the live
/// [`Rollup`] envelope. Bump when any event's field set changes.
///
/// Version history: 1 = the original JSONL trace format; 2 = adds the
/// `Rollup` envelope served by `hotpotato serve` (trace lines are
/// unchanged, but the version is shared so one fingerprint pins both);
/// 3 = streaming mode: the `meta` line gains the `arrival` field (the
/// arrival-process spec, empty for batch runs) and the `arrival` /
/// `drop` injection events are added; 4 = trace pipeline: the
/// `snapshot` phase-entry checkpoint event is added and the binary
/// `.hpt` framing (see [`crate::binary`]) is pinned to the same
/// version — its wire layout is fingerprinted alongside this file by
/// `cargo xtask lint`.
pub const SCHEMA_VERSION: u64 = 4;

/// The `meta` envelope line: everything needed to rebuild the instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Meta {
    /// Trace schema version (must equal [`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Topology spec (`routing_core::spec` grammar).
    pub topo: String,
    /// Workload spec (`routing_core::spec` grammar).
    pub workload: String,
    /// Algorithm name (`busch`, `greedy`, ...).
    pub algo: String,
    /// The run seed (workload generation and routing share one rng).
    pub seed: u64,
    /// Arrival-process spec (`routing_core::workloads::ArrivalProcess`
    /// grammar); empty string = batch mode. A non-empty value marks a
    /// streaming trace: the verifier rebuilds the arrival schedule from
    /// it and enforces the arrival/admission laws.
    pub arrival: String,
    /// Number of packets (cross-checked on reconstruction).
    pub packets: u64,
    /// Number of levels, `L + 1` (cross-checked on reconstruction).
    pub levels: u64,
    /// Instance congestion `C`.
    pub congestion: u64,
    /// Instance dilation `D`.
    pub dilation: u64,
}

/// The `stats` envelope line: the final per-packet statistics the
/// verifier's reconstructed timelines must match exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsLine {
    /// Total steps the simulation ran.
    pub steps: u64,
    /// Per-packet injection step (`null` = never injected).
    pub injected_at: Vec<Option<Time>>,
    /// Per-packet delivery (arrival) time.
    pub delivered_at: Vec<Option<Time>>,
    /// Per-packet deflection count.
    pub deflections: Vec<u32>,
}

/// The `/rollup/<run>` response document served by `hotpotato serve`: a
/// schema-versioned envelope around one [`StreamingAggregator`] snapshot
/// (`rollup` holds the aggregator's `to_json()` report verbatim, so a
/// quiesced envelope compares *exactly* equal to the in-process report).
///
/// [`StreamingAggregator`]: crate::StreamingAggregator
#[derive(Clone, Debug, PartialEq)]
pub struct Rollup {
    /// Envelope schema version (must equal [`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Name of the run the snapshot belongs to.
    pub run: String,
    /// Publisher sequence number (0 = nothing published yet; the seed
    /// snapshot).
    pub seq: u64,
    /// `true` once the run has quiesced: the snapshot is final and exact.
    pub finished: bool,
    /// The aggregator report, exactly as `StreamingAggregator::to_json()`
    /// rendered it.
    pub rollup: Value,
}

/// A `snapshot` checkpoint line: the full verifier-visible state at a
/// phase entry (a step boundary), emitted by the recorder so the trace
/// can be *sharded* — each snapshot seeds an independent verification
/// segment, and the sequential verifier cross-checks every snapshot
/// against its replayed state (the `snapshot-consistency` law).
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Phase index this snapshot opens (matches the preceding
    /// `phase_start` line).
    pub phase: u64,
    /// First step of the phase; the replayed clock must agree.
    pub t: Time,
    /// Per-packet lifecycle code: 0 = pending, 1 = arrived (streaming,
    /// not yet injected), 2 = dropped, 3 = in flight, 4 = delivered.
    pub state: Vec<u32>,
    /// Current node of each in-flight (`state == 3`) packet, in packet
    /// order.
    pub nodes: Vec<u32>,
    /// Edges crossed forward in the step just before the boundary (the
    /// arrival pool the safe-deflection-recycling law checks against).
    pub prev_forward: Vec<u32>,
    /// Cumulative move count at the boundary.
    pub moves: u64,
    /// Cumulative forward crossings.
    pub forward: u64,
    /// Cumulative backward crossings.
    pub backward: u64,
    /// Cumulative deflections.
    pub deflections: u64,
    /// Cumulative oscillation moves.
    pub oscillations: u64,
    /// Cumulative trivial deliveries.
    pub trivial: u64,
    /// Frontier-set count from the `sets` line (0 = not assigned yet).
    pub num_sets: u32,
}

/// One parsed trace line.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Envelope: instance identification (first line).
    Meta(Meta),
    /// A packet crossed an edge.
    Move {
        /// Staging step.
        t: Time,
        /// Packet index.
        pkt: u32,
        /// Edge crossed.
        edge: EdgeId,
        /// Traversal direction.
        dir: Direction,
        /// Caller-declared kind.
        kind: ExitKind,
    },
    /// A trivial (source == destination) delivery.
    Trivial {
        /// Step of delivery.
        t: Time,
        /// Packet index.
        pkt: u32,
    },
    /// An absorption at the destination (arrival time, staging step + 1).
    Deliver {
        /// Arrival time.
        t: Time,
        /// Packet index.
        pkt: u32,
    },
    /// Streaming: the packet became available for injection (its
    /// arrival-process step was reached).
    Arrival {
        /// Arrival step.
        t: Time,
        /// Packet index.
        pkt: u32,
    },
    /// Streaming: admission control dropped the packet (the injection
    /// queue was full); it is never injected.
    Drop {
        /// Drop step.
        t: Time,
        /// Packet index.
        pkt: u32,
    },
    /// A step completed.
    Step {
        /// The step.
        t: Time,
        /// Packets that moved (including injections).
        moved: u64,
        /// Packets absorbed.
        absorbed: u64,
        /// Packets injected.
        injected: u64,
        /// Deflections (safe + fallback).
        deflections: u64,
        /// Fallback (unsafe) deflections.
        fallback: u64,
        /// Oscillation moves.
        oscillations: u64,
        /// In-flight count after absorption.
        active: u64,
    },
    /// Frontier-set assignment.
    Sets {
        /// Number of frontier sets.
        num_sets: u32,
        /// Set of each packet.
        sets: Vec<u32>,
    },
    /// A phase began.
    PhaseStart {
        /// Phase index.
        phase: u64,
        /// First step of the phase.
        t: Time,
    },
    /// A phase ended.
    PhaseEnd {
        /// Phase index.
        phase: u64,
        /// First step after the phase.
        t: Time,
    },
    /// Theoretical frontier announcement.
    Frontier {
        /// Phase.
        phase: u64,
        /// Frontier set.
        set: u32,
        /// `φ_i(k) = k − i·m`.
        frontier: i64,
    },
    /// Phase-end congestion audit.
    Congestion {
        /// Phase.
        phase: u64,
        /// Frontier set.
        set: u32,
        /// Audited current-path congestion.
        congestion: u32,
        /// The set's preselected-path congestion.
        initial: u32,
    },
    /// Section timing sample.
    Section {
        /// Section name (`conflict`, `kinematics`, `audit`, `injection`).
        section: String,
        /// Nanoseconds spent.
        nanos: u64,
    },
    /// Phase-entry state checkpoint (see [`Snapshot`]).
    Snapshot(Snapshot),
    /// Envelope: final run statistics (last line).
    Stats(StatsLine),
}

impl TraceEvent {
    /// The `ev` discriminator this event serializes under.
    pub fn ev(&self) -> &'static str {
        match self {
            TraceEvent::Meta(_) => "meta",
            TraceEvent::Move { .. } => "move",
            TraceEvent::Trivial { .. } => "trivial",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::Arrival { .. } => "arrival",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Step { .. } => "step",
            TraceEvent::Sets { .. } => "sets",
            TraceEvent::PhaseStart { .. } => "phase_start",
            TraceEvent::PhaseEnd { .. } => "phase_end",
            TraceEvent::Frontier { .. } => "frontier",
            TraceEvent::Congestion { .. } => "congestion",
            TraceEvent::Section { .. } => "section",
            TraceEvent::Snapshot(_) => "snapshot",
            TraceEvent::Stats(_) => "stats",
        }
    }
}

/// A parse failure, with the offending line (1-based) once known.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 = not yet attributed).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError {
        line: 0,
        msg: msg.into(),
    }
}

/// Field cursor over a parsed JSON object that *consumes* keys, so
/// leftovers (unknown fields) can be rejected after extraction.
struct Fields<'a> {
    pairs: &'a [(String, Value)],
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(v: &'a Value) -> Result<Self, ParseError> {
        let pairs = v.as_object().ok_or_else(|| err("not a JSON object"))?;
        Ok(Fields {
            pairs,
            used: vec![false; pairs.len()],
        })
    }

    fn take(&mut self, key: &str) -> Result<&'a Value, ParseError> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k == key {
                if self.used[i] {
                    return Err(err(format!("duplicate field '{key}'")));
                }
                self.used[i] = true;
                return Ok(v);
            }
        }
        Err(err(format!("missing field '{key}'")))
    }

    fn u64(&mut self, key: &str) -> Result<u64, ParseError> {
        self.take(key)?
            .as_u64()
            .ok_or_else(|| err(format!("field '{key}' is not an unsigned integer")))
    }

    fn u32(&mut self, key: &str) -> Result<u32, ParseError> {
        u32::try_from(self.u64(key)?).map_err(|_| err(format!("field '{key}' overflows u32")))
    }

    fn i64(&mut self, key: &str) -> Result<i64, ParseError> {
        self.take(key)?
            .as_i64()
            .ok_or_else(|| err(format!("field '{key}' is not an integer")))
    }

    fn str(&mut self, key: &str) -> Result<&'a str, ParseError> {
        self.take(key)?
            .as_str()
            .ok_or_else(|| err(format!("field '{key}' is not a string")))
    }

    fn bool(&mut self, key: &str) -> Result<bool, ParseError> {
        self.take(key)?
            .as_bool()
            .ok_or_else(|| err(format!("field '{key}' is not a boolean")))
    }

    fn u32_array(&mut self, key: &str) -> Result<Vec<u32>, ParseError> {
        let arr = self
            .take(key)?
            .as_array()
            .ok_or_else(|| err(format!("field '{key}' is not an array")))?;
        arr.iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| err(format!("field '{key}' has a non-u32 element")))
            })
            .collect()
    }

    fn opt_u64_array(&mut self, key: &str) -> Result<Vec<Option<u64>>, ParseError> {
        let arr = self
            .take(key)?
            .as_array()
            .ok_or_else(|| err(format!("field '{key}' is not an array")))?;
        arr.iter()
            .map(|v| {
                if v.is_null() {
                    Ok(None)
                } else {
                    v.as_u64()
                        .map(Some)
                        .ok_or_else(|| err(format!("field '{key}' has a non-u64 element")))
                }
            })
            .collect()
    }

    /// Rejects any field that was never consumed (schema strictness).
    fn finish(self) -> Result<(), ParseError> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.used[i] {
                return Err(err(format!("unknown field '{k}'")));
            }
        }
        Ok(())
    }
}

fn parse_kind(s: &str) -> Result<ExitKind, ParseError> {
    Ok(match s {
        "adv" => ExitKind::Advance,
        "def-safe" => ExitKind::Deflect { safe: true },
        "def-free" => ExitKind::Deflect { safe: false },
        "osc" => ExitKind::Oscillate,
        "inj" => ExitKind::Inject,
        other => return Err(err(format!("unknown move kind '{other}'"))),
    })
}

/// Stable name of an [`ExitKind`] (the `kind` field of `move` lines).
pub fn kind_name(kind: ExitKind) -> &'static str {
    match kind {
        ExitKind::Advance => "adv",
        ExitKind::Deflect { safe: true } => "def-safe",
        ExitKind::Deflect { safe: false } => "def-free",
        ExitKind::Oscillate => "osc",
        ExitKind::Inject => "inj",
    }
}

/// Parses one trace line, strictly (see the module docs).
pub fn parse_line(line: &str) -> Result<TraceEvent, ParseError> {
    let value = serde_json::from_str(line).map_err(|e| err(e.to_string()))?;
    let mut f = Fields::new(&value)?;
    let ev = f.str("ev")?.to_string();
    let event = match ev.as_str() {
        "meta" => {
            // Check the version before the field set: an old trace
            // should report its version, not a missing v3 field.
            let schema = f.u64("schema")?;
            if schema != SCHEMA_VERSION {
                return Err(err(format!(
                    "unsupported trace schema {schema} (this build reads {SCHEMA_VERSION})"
                )));
            }
            TraceEvent::Meta(Meta {
                schema,
                topo: f.str("topo")?.to_string(),
                workload: f.str("workload")?.to_string(),
                algo: f.str("algo")?.to_string(),
                seed: f.u64("seed")?,
                arrival: f.str("arrival")?.to_string(),
                packets: f.u64("packets")?,
                levels: f.u64("levels")?,
                congestion: f.u64("congestion")?,
                dilation: f.u64("dilation")?,
            })
        }
        "move" => TraceEvent::Move {
            t: f.u64("t")?,
            pkt: f.u32("pkt")?,
            edge: EdgeId(f.u32("edge")?),
            dir: match f.str("dir")? {
                "F" => Direction::Forward,
                "B" => Direction::Backward,
                other => return Err(err(format!("unknown direction '{other}'"))),
            },
            kind: parse_kind(f.str("kind")?)?,
        },
        "trivial" => TraceEvent::Trivial {
            t: f.u64("t")?,
            pkt: f.u32("pkt")?,
        },
        "deliver" => TraceEvent::Deliver {
            t: f.u64("t")?,
            pkt: f.u32("pkt")?,
        },
        "arrival" => TraceEvent::Arrival {
            t: f.u64("t")?,
            pkt: f.u32("pkt")?,
        },
        "drop" => TraceEvent::Drop {
            t: f.u64("t")?,
            pkt: f.u32("pkt")?,
        },
        "step" => TraceEvent::Step {
            t: f.u64("t")?,
            moved: f.u64("moved")?,
            absorbed: f.u64("absorbed")?,
            injected: f.u64("injected")?,
            deflections: f.u64("deflections")?,
            fallback: f.u64("fallback")?,
            oscillations: f.u64("oscillations")?,
            active: f.u64("active")?,
        },
        "sets" => TraceEvent::Sets {
            num_sets: f.u32("num_sets")?,
            sets: f.u32_array("sets")?,
        },
        "phase_start" => TraceEvent::PhaseStart {
            phase: f.u64("phase")?,
            t: f.u64("t")?,
        },
        "phase_end" => TraceEvent::PhaseEnd {
            phase: f.u64("phase")?,
            t: f.u64("t")?,
        },
        "frontier" => TraceEvent::Frontier {
            phase: f.u64("phase")?,
            set: f.u32("set")?,
            frontier: f.i64("frontier")?,
        },
        "congestion" => TraceEvent::Congestion {
            phase: f.u64("phase")?,
            set: f.u32("set")?,
            congestion: f.u32("congestion")?,
            initial: f.u32("initial")?,
        },
        "section" => TraceEvent::Section {
            section: f.str("section")?.to_string(),
            nanos: f.u64("nanos")?,
        },
        "snapshot" => TraceEvent::Snapshot(Snapshot {
            phase: f.u64("phase")?,
            t: f.u64("t")?,
            state: f.u32_array("state")?,
            nodes: f.u32_array("nodes")?,
            prev_forward: f.u32_array("prev_forward")?,
            moves: f.u64("moves")?,
            forward: f.u64("forward")?,
            backward: f.u64("backward")?,
            deflections: f.u64("deflections")?,
            oscillations: f.u64("oscillations")?,
            trivial: f.u64("trivial")?,
            num_sets: f.u32("num_sets")?,
        }),
        "stats" => TraceEvent::Stats(StatsLine {
            steps: f.u64("steps")?,
            injected_at: f.opt_u64_array("injected_at")?,
            delivered_at: f.opt_u64_array("delivered_at")?,
            deflections: f.u32_array("deflections")?,
        }),
        other => return Err(err(format!("unknown event '{other}'"))),
    };
    f.finish()?;
    Ok(event)
}

/// A fully parsed trace: one event per line, in file order (so
/// `events[i]` came from line `i + 1`).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The parsed lines.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Parses a whole trace text; blank lines are rejected (they would
    /// desynchronize line attribution in diagnostics).
    pub fn parse(text: &str) -> Result<Trace, ParseError> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                return Err(ParseError {
                    line: i + 1,
                    msg: "blank line in trace".into(),
                });
            }
            let ev = parse_line(line).map_err(|mut e| {
                e.line = i + 1;
                e
            })?;
            events.push(ev);
        }
        Ok(Trace { events })
    }

    /// The `meta` envelope line, which must be the first line if present.
    pub fn meta(&self) -> Option<&Meta> {
        match self.events.first() {
            Some(TraceEvent::Meta(m)) => Some(m),
            _ => None,
        }
    }

    /// The `stats` envelope line, which must be the last line if present.
    pub fn stats(&self) -> Option<&StatsLine> {
        match self.events.last() {
            Some(TraceEvent::Stats(s)) => Some(s),
            _ => None,
        }
    }
}

/// Renders the `meta` envelope line (without trailing newline).
pub fn meta_line(meta: &Meta) -> String {
    use serde::Serialize as _;
    Value::object([
        ("ev", Value::String("meta".into())),
        ("schema", meta.schema.to_json()),
        ("topo", Value::String(meta.topo.clone())),
        ("workload", Value::String(meta.workload.clone())),
        ("algo", Value::String(meta.algo.clone())),
        ("seed", meta.seed.to_json()),
        ("arrival", Value::String(meta.arrival.clone())),
        ("packets", meta.packets.to_json()),
        ("levels", meta.levels.to_json()),
        ("congestion", meta.congestion.to_json()),
        ("dilation", meta.dilation.to_json()),
    ])
    .to_compact_string()
}

/// Renders a [`Rollup`] envelope as a JSON document (the `/rollup/<run>`
/// response body).
pub fn rollup_doc(r: &Rollup) -> Value {
    use serde::Serialize as _;
    Value::object([
        ("schema", r.schema.to_json()),
        ("run", Value::String(r.run.clone())),
        ("seq", r.seq.to_json()),
        ("finished", Value::Bool(r.finished)),
        ("rollup", r.rollup.clone()),
    ])
}

/// Parses a [`Rollup`] envelope, strictly: unknown or missing envelope
/// fields and a wrong `schema` version are errors. The inner `rollup`
/// report is carried opaquely (its shape is owned by
/// `StreamingAggregator::to_json`).
pub fn parse_rollup(text: &str) -> Result<Rollup, ParseError> {
    let value = serde_json::from_str(text).map_err(|e| err(e.to_string()))?;
    let mut f = Fields::new(&value)?;
    let rollup = Rollup {
        schema: f.u64("schema")?,
        run: f.str("run")?.to_string(),
        seq: f.u64("seq")?,
        finished: f.bool("finished")?,
        rollup: f.take("rollup")?.clone(),
    };
    if rollup.schema != SCHEMA_VERSION {
        return Err(err(format!(
            "unsupported rollup schema {} (this build reads {SCHEMA_VERSION})",
            rollup.schema
        )));
    }
    f.finish()?;
    Ok(rollup)
}

/// Renders the `stats` envelope line (without trailing newline) from the
/// run's final statistics.
pub fn stats_line(stats: &RouteStats) -> String {
    use serde::Serialize as _;
    Value::object([
        ("ev", Value::String("stats".into())),
        ("steps", stats.steps_run.to_json()),
        ("injected_at", stats.injected_at.to_json()),
        ("delivered_at", stats.delivered_at.to_json()),
        ("deflections", stats.deflections.to_json()),
    ])
    .to_compact_string()
}

/// Renders the `stats` envelope line from an already-parsed
/// [`StatsLine`] (byte-identical to [`stats_line`] on the same data).
pub fn stats_line_of(s: &StatsLine) -> String {
    use serde::Serialize as _;
    Value::object([
        ("ev", Value::String("stats".into())),
        ("steps", s.steps.to_json()),
        ("injected_at", s.injected_at.to_json()),
        ("delivered_at", s.delivered_at.to_json()),
        ("deflections", s.deflections.to_json()),
    ])
    .to_compact_string()
}

fn push_u32_array(out: &mut String, arr: &[u32]) {
    use std::fmt::Write as _;
    out.push('[');
    for (i, v) in arr.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// Renders a `snapshot` checkpoint line (without trailing newline).
/// The recorder (`JsonlTraceObserver::with_snapshots`) emits exactly
/// this shape, pinned by the canonical-line test in
/// `tests/schema_roundtrip.rs`.
pub fn snapshot_line(s: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + 4 * s.state.len());
    let _ = write!(
        out,
        "{{\"ev\":\"snapshot\",\"phase\":{},\"t\":{},\"state\":",
        s.phase, s.t
    );
    push_u32_array(&mut out, &s.state);
    out.push_str(",\"nodes\":");
    push_u32_array(&mut out, &s.nodes);
    out.push_str(",\"prev_forward\":");
    push_u32_array(&mut out, &s.prev_forward);
    let _ = write!(
        out,
        ",\"moves\":{},\"forward\":{},\"backward\":{},\"deflections\":{},\"oscillations\":{},\"trivial\":{},\"num_sets\":{}}}",
        s.moves, s.forward, s.backward, s.deflections, s.oscillations, s.trivial, s.num_sets
    );
    out
}

/// Direction letter used by `move` lines.
fn dir_name(dir: Direction) -> &'static str {
    match dir {
        Direction::Forward => "F",
        Direction::Backward => "B",
    }
}

/// Renders any [`TraceEvent`] exactly as the recording pipeline writes
/// it (no trailing newline): envelope lines via [`meta_line`] /
/// [`stats_line_of`], movement lines byte-identical to
/// `hotpotato_sim::JsonlTraceObserver`'s emission. This canonical
/// rendering is what makes binary → JSONL transcoding lossless down to
/// the byte for any trace the pipeline recorded.
pub fn event_line(ev: &TraceEvent) -> String {
    use std::fmt::Write as _;
    match ev {
        TraceEvent::Meta(m) => meta_line(m),
        TraceEvent::Move {
            t,
            pkt,
            edge,
            dir,
            kind,
        } => format!(
            "{{\"ev\":\"move\",\"t\":{t},\"pkt\":{pkt},\"edge\":{},\"dir\":\"{}\",\"kind\":\"{}\"}}",
            edge.0,
            dir_name(*dir),
            kind_name(*kind),
        ),
        TraceEvent::Trivial { t, pkt } => format!("{{\"ev\":\"trivial\",\"t\":{t},\"pkt\":{pkt}}}"),
        TraceEvent::Deliver { t, pkt } => format!("{{\"ev\":\"deliver\",\"t\":{t},\"pkt\":{pkt}}}"),
        TraceEvent::Arrival { t, pkt } => format!("{{\"ev\":\"arrival\",\"t\":{t},\"pkt\":{pkt}}}"),
        TraceEvent::Drop { t, pkt } => format!("{{\"ev\":\"drop\",\"t\":{t},\"pkt\":{pkt}}}"),
        TraceEvent::Step {
            t,
            moved,
            absorbed,
            injected,
            deflections,
            fallback,
            oscillations,
            active,
        } => format!(
            "{{\"ev\":\"step\",\"t\":{t},\"moved\":{moved},\"absorbed\":{absorbed},\"injected\":{injected},\"deflections\":{deflections},\"fallback\":{fallback},\"oscillations\":{oscillations},\"active\":{active}}}"
        ),
        TraceEvent::Sets { num_sets, sets } => {
            let mut out = String::with_capacity(32 + 2 * sets.len());
            let _ = write!(out, "{{\"ev\":\"sets\",\"num_sets\":{num_sets},\"sets\":");
            push_u32_array(&mut out, sets);
            out.push('}');
            out
        }
        TraceEvent::PhaseStart { phase, t } => {
            format!("{{\"ev\":\"phase_start\",\"phase\":{phase},\"t\":{t}}}")
        }
        TraceEvent::PhaseEnd { phase, t } => {
            format!("{{\"ev\":\"phase_end\",\"phase\":{phase},\"t\":{t}}}")
        }
        TraceEvent::Frontier {
            phase,
            set,
            frontier,
        } => format!("{{\"ev\":\"frontier\",\"phase\":{phase},\"set\":{set},\"frontier\":{frontier}}}"),
        TraceEvent::Congestion {
            phase,
            set,
            congestion,
            initial,
        } => format!(
            "{{\"ev\":\"congestion\",\"phase\":{phase},\"set\":{set},\"congestion\":{congestion},\"initial\":{initial}}}"
        ),
        TraceEvent::Section { section, nanos } => {
            format!("{{\"ev\":\"section\",\"section\":\"{section}\",\"nanos\":{nanos}}}")
        }
        TraceEvent::Snapshot(s) => snapshot_line(s),
        TraceEvent::Stats(s) => stats_line_of(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_fields_are_rejected() {
        assert!(parse_line(r#"{"ev":"deliver","t":1,"pkt":2}"#).is_ok());
        let e = parse_line(r#"{"ev":"deliver","t":1,"pkt":2,"extra":3}"#).unwrap_err();
        assert!(e.msg.contains("unknown field 'extra'"), "{e}");
        let e = parse_line(r#"{"ev":"deliver","t":1}"#).unwrap_err();
        assert!(e.msg.contains("missing field 'pkt'"), "{e}");
    }

    #[test]
    fn unknown_events_and_schemas_are_rejected() {
        assert!(parse_line(r#"{"ev":"warp","t":1}"#).is_err());
        let meta = r#"{"ev":"meta","schema":99,"topo":"bf:3","workload":"bitrev","algo":"busch","seed":1,"packets":8,"levels":4,"congestion":2,"dilation":3}"#;
        let e = parse_line(meta).unwrap_err();
        assert!(e.msg.contains("unsupported trace schema"), "{e}");
    }

    #[test]
    fn envelope_lines_round_trip() {
        let meta = Meta {
            schema: SCHEMA_VERSION,
            topo: "butterfly:3".into(),
            workload: "bitrev".into(),
            algo: "busch".into(),
            seed: 42,
            arrival: "poisson:0.5".into(),
            packets: 8,
            levels: 4,
            congestion: 2,
            dilation: 3,
        };
        match parse_line(&meta_line(&meta)).unwrap() {
            TraceEvent::Meta(m) => assert_eq!(m, meta),
            other => panic!("wrong event: {other:?}"),
        }

        let mut stats = RouteStats::new(2);
        stats.steps_run = 7;
        stats.injected_at = vec![Some(0), None];
        stats.delivered_at = vec![Some(5), None];
        stats.deflections = vec![1, 0];
        match parse_line(&stats_line(&stats)).unwrap() {
            TraceEvent::Stats(s) => {
                assert_eq!(s.steps, 7);
                assert_eq!(s.injected_at, vec![Some(0), None]);
                assert_eq!(s.delivered_at, vec![Some(5), None]);
                assert_eq!(s.deflections, vec![1, 0]);
            }
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn rollup_envelope_round_trips_strictly() {
        let rollup = Rollup {
            schema: SCHEMA_VERSION,
            run: "bf10-bitrev".into(),
            seq: 17,
            finished: true,
            rollup: Value::object([("cap", Value::Number(serde::Number::U(64)))]),
        };
        let text = rollup_doc(&rollup).to_compact_string();
        assert_eq!(parse_rollup(&text).unwrap(), rollup);

        // Wrong version, unknown field, missing field: all hard errors.
        let stale = text.replacen(&format!("\"schema\":{SCHEMA_VERSION}"), "\"schema\":1", 1);
        let e = parse_rollup(&stale).unwrap_err();
        assert!(e.msg.contains("unsupported rollup schema"), "{e}");
        let extra = format!("{},\"zz\":0}}", &text[..text.len() - 1]);
        assert!(parse_rollup(&extra)
            .unwrap_err()
            .msg
            .contains("unknown field 'zz'"));
        assert!(
            parse_rollup(r#"{"schema":4,"run":"x","seq":0,"finished":false}"#)
                .unwrap_err()
                .msg
                .contains("missing field 'rollup'")
        );
    }

    #[test]
    fn snapshot_lines_round_trip() {
        let snap = Snapshot {
            phase: 3,
            t: 36,
            state: vec![0, 3, 4, 2],
            nodes: vec![17],
            prev_forward: vec![2, 5],
            moves: 9,
            forward: 8,
            backward: 1,
            deflections: 1,
            oscillations: 0,
            trivial: 1,
            num_sets: 2,
        };
        let line = snapshot_line(&snap);
        match parse_line(&line).unwrap() {
            TraceEvent::Snapshot(s) => assert_eq!(s, snap),
            other => panic!("wrong event: {other:?}"),
        }
        assert_eq!(event_line(&TraceEvent::Snapshot(snap)), line);
    }

    #[test]
    fn streaming_injection_events_parse() {
        match parse_line(r#"{"ev":"arrival","t":3,"pkt":1}"#).unwrap() {
            TraceEvent::Arrival { t: 3, pkt: 1 } => {}
            other => panic!("wrong event: {other:?}"),
        }
        match parse_line(r#"{"ev":"drop","t":4,"pkt":2}"#).unwrap() {
            TraceEvent::Drop { t: 4, pkt: 2 } => {}
            other => panic!("wrong event: {other:?}"),
        }
        assert!(parse_line(r#"{"ev":"drop","t":4}"#).is_err());
    }

    #[test]
    fn trace_parse_attributes_line_numbers() {
        let text = "{\"ev\":\"deliver\",\"t\":1,\"pkt\":0}\n{\"ev\":\"bogus\"}\n";
        let e = Trace::parse(text).unwrap_err();
        assert_eq!(e.line, 2);
    }
}
