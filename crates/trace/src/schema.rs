//! The JSONL trace schema: strict, version-pinned parsing.
//!
//! A trace file is one JSON object per line. The movement lines are
//! written by [`hotpotato_sim::JsonlTraceObserver`]; the CLI wraps them
//! in an *envelope*: a `meta` line first (instance specs + seed, enough
//! to reconstruct the [`routing_core::RoutingProblem`] offline) and a
//! `stats` line last (the run's final [`hotpotato_sim::RouteStats`]).
//!
//! Parsing is deliberately strict: an unknown `ev` discriminator, a
//! missing field, an extra field, or a wrong `schema` version is an
//! error, not a warning. The schema-stability test in
//! `tests/schema_roundtrip.rs` round-trips every event variant the
//! observer can emit, so renaming a field in the emitter without bumping
//! [`SCHEMA_VERSION`] fails CI.

use hotpotato_sim::{ExitKind, RouteStats, Time};
use leveled_net::{Direction, EdgeId};
use serde::Value;

/// The trace schema version carried by the `meta` line and the live
/// [`Rollup`] envelope. Bump when any event's field set changes.
///
/// Version history: 1 = the original JSONL trace format; 2 = adds the
/// `Rollup` envelope served by `hotpotato serve` (trace lines are
/// unchanged, but the version is shared so one fingerprint pins both);
/// 3 = streaming mode: the `meta` line gains the `arrival` field (the
/// arrival-process spec, empty for batch runs) and the `arrival` /
/// `drop` injection events are added.
pub const SCHEMA_VERSION: u64 = 3;

/// The `meta` envelope line: everything needed to rebuild the instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Meta {
    /// Trace schema version (must equal [`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Topology spec (`routing_core::spec` grammar).
    pub topo: String,
    /// Workload spec (`routing_core::spec` grammar).
    pub workload: String,
    /// Algorithm name (`busch`, `greedy`, ...).
    pub algo: String,
    /// The run seed (workload generation and routing share one rng).
    pub seed: u64,
    /// Arrival-process spec (`routing_core::workloads::ArrivalProcess`
    /// grammar); empty string = batch mode. A non-empty value marks a
    /// streaming trace: the verifier rebuilds the arrival schedule from
    /// it and enforces the arrival/admission laws.
    pub arrival: String,
    /// Number of packets (cross-checked on reconstruction).
    pub packets: u64,
    /// Number of levels, `L + 1` (cross-checked on reconstruction).
    pub levels: u64,
    /// Instance congestion `C`.
    pub congestion: u64,
    /// Instance dilation `D`.
    pub dilation: u64,
}

/// The `stats` envelope line: the final per-packet statistics the
/// verifier's reconstructed timelines must match exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsLine {
    /// Total steps the simulation ran.
    pub steps: u64,
    /// Per-packet injection step (`null` = never injected).
    pub injected_at: Vec<Option<Time>>,
    /// Per-packet delivery (arrival) time.
    pub delivered_at: Vec<Option<Time>>,
    /// Per-packet deflection count.
    pub deflections: Vec<u32>,
}

/// The `/rollup/<run>` response document served by `hotpotato serve`: a
/// schema-versioned envelope around one [`StreamingAggregator`] snapshot
/// (`rollup` holds the aggregator's `to_json()` report verbatim, so a
/// quiesced envelope compares *exactly* equal to the in-process report).
///
/// [`StreamingAggregator`]: crate::StreamingAggregator
#[derive(Clone, Debug, PartialEq)]
pub struct Rollup {
    /// Envelope schema version (must equal [`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Name of the run the snapshot belongs to.
    pub run: String,
    /// Publisher sequence number (0 = nothing published yet; the seed
    /// snapshot).
    pub seq: u64,
    /// `true` once the run has quiesced: the snapshot is final and exact.
    pub finished: bool,
    /// The aggregator report, exactly as `StreamingAggregator::to_json()`
    /// rendered it.
    pub rollup: Value,
}

/// One parsed trace line.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Envelope: instance identification (first line).
    Meta(Meta),
    /// A packet crossed an edge.
    Move {
        /// Staging step.
        t: Time,
        /// Packet index.
        pkt: u32,
        /// Edge crossed.
        edge: EdgeId,
        /// Traversal direction.
        dir: Direction,
        /// Caller-declared kind.
        kind: ExitKind,
    },
    /// A trivial (source == destination) delivery.
    Trivial {
        /// Step of delivery.
        t: Time,
        /// Packet index.
        pkt: u32,
    },
    /// An absorption at the destination (arrival time, staging step + 1).
    Deliver {
        /// Arrival time.
        t: Time,
        /// Packet index.
        pkt: u32,
    },
    /// Streaming: the packet became available for injection (its
    /// arrival-process step was reached).
    Arrival {
        /// Arrival step.
        t: Time,
        /// Packet index.
        pkt: u32,
    },
    /// Streaming: admission control dropped the packet (the injection
    /// queue was full); it is never injected.
    Drop {
        /// Drop step.
        t: Time,
        /// Packet index.
        pkt: u32,
    },
    /// A step completed.
    Step {
        /// The step.
        t: Time,
        /// Packets that moved (including injections).
        moved: u64,
        /// Packets absorbed.
        absorbed: u64,
        /// Packets injected.
        injected: u64,
        /// Deflections (safe + fallback).
        deflections: u64,
        /// Fallback (unsafe) deflections.
        fallback: u64,
        /// Oscillation moves.
        oscillations: u64,
        /// In-flight count after absorption.
        active: u64,
    },
    /// Frontier-set assignment.
    Sets {
        /// Number of frontier sets.
        num_sets: u32,
        /// Set of each packet.
        sets: Vec<u32>,
    },
    /// A phase began.
    PhaseStart {
        /// Phase index.
        phase: u64,
        /// First step of the phase.
        t: Time,
    },
    /// A phase ended.
    PhaseEnd {
        /// Phase index.
        phase: u64,
        /// First step after the phase.
        t: Time,
    },
    /// Theoretical frontier announcement.
    Frontier {
        /// Phase.
        phase: u64,
        /// Frontier set.
        set: u32,
        /// `φ_i(k) = k − i·m`.
        frontier: i64,
    },
    /// Phase-end congestion audit.
    Congestion {
        /// Phase.
        phase: u64,
        /// Frontier set.
        set: u32,
        /// Audited current-path congestion.
        congestion: u32,
        /// The set's preselected-path congestion.
        initial: u32,
    },
    /// Section timing sample.
    Section {
        /// Section name (`conflict`, `kinematics`, `audit`, `injection`).
        section: String,
        /// Nanoseconds spent.
        nanos: u64,
    },
    /// Envelope: final run statistics (last line).
    Stats(StatsLine),
}

impl TraceEvent {
    /// The `ev` discriminator this event serializes under.
    pub fn ev(&self) -> &'static str {
        match self {
            TraceEvent::Meta(_) => "meta",
            TraceEvent::Move { .. } => "move",
            TraceEvent::Trivial { .. } => "trivial",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::Arrival { .. } => "arrival",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Step { .. } => "step",
            TraceEvent::Sets { .. } => "sets",
            TraceEvent::PhaseStart { .. } => "phase_start",
            TraceEvent::PhaseEnd { .. } => "phase_end",
            TraceEvent::Frontier { .. } => "frontier",
            TraceEvent::Congestion { .. } => "congestion",
            TraceEvent::Section { .. } => "section",
            TraceEvent::Stats(_) => "stats",
        }
    }
}

/// A parse failure, with the offending line (1-based) once known.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 = not yet attributed).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError {
        line: 0,
        msg: msg.into(),
    }
}

/// Field cursor over a parsed JSON object that *consumes* keys, so
/// leftovers (unknown fields) can be rejected after extraction.
struct Fields<'a> {
    pairs: &'a [(String, Value)],
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(v: &'a Value) -> Result<Self, ParseError> {
        let pairs = v.as_object().ok_or_else(|| err("not a JSON object"))?;
        Ok(Fields {
            pairs,
            used: vec![false; pairs.len()],
        })
    }

    fn take(&mut self, key: &str) -> Result<&'a Value, ParseError> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k == key {
                if self.used[i] {
                    return Err(err(format!("duplicate field '{key}'")));
                }
                self.used[i] = true;
                return Ok(v);
            }
        }
        Err(err(format!("missing field '{key}'")))
    }

    fn u64(&mut self, key: &str) -> Result<u64, ParseError> {
        self.take(key)?
            .as_u64()
            .ok_or_else(|| err(format!("field '{key}' is not an unsigned integer")))
    }

    fn u32(&mut self, key: &str) -> Result<u32, ParseError> {
        u32::try_from(self.u64(key)?).map_err(|_| err(format!("field '{key}' overflows u32")))
    }

    fn i64(&mut self, key: &str) -> Result<i64, ParseError> {
        self.take(key)?
            .as_i64()
            .ok_or_else(|| err(format!("field '{key}' is not an integer")))
    }

    fn str(&mut self, key: &str) -> Result<&'a str, ParseError> {
        self.take(key)?
            .as_str()
            .ok_or_else(|| err(format!("field '{key}' is not a string")))
    }

    fn bool(&mut self, key: &str) -> Result<bool, ParseError> {
        self.take(key)?
            .as_bool()
            .ok_or_else(|| err(format!("field '{key}' is not a boolean")))
    }

    fn u32_array(&mut self, key: &str) -> Result<Vec<u32>, ParseError> {
        let arr = self
            .take(key)?
            .as_array()
            .ok_or_else(|| err(format!("field '{key}' is not an array")))?;
        arr.iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| err(format!("field '{key}' has a non-u32 element")))
            })
            .collect()
    }

    fn opt_u64_array(&mut self, key: &str) -> Result<Vec<Option<u64>>, ParseError> {
        let arr = self
            .take(key)?
            .as_array()
            .ok_or_else(|| err(format!("field '{key}' is not an array")))?;
        arr.iter()
            .map(|v| {
                if v.is_null() {
                    Ok(None)
                } else {
                    v.as_u64()
                        .map(Some)
                        .ok_or_else(|| err(format!("field '{key}' has a non-u64 element")))
                }
            })
            .collect()
    }

    /// Rejects any field that was never consumed (schema strictness).
    fn finish(self) -> Result<(), ParseError> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.used[i] {
                return Err(err(format!("unknown field '{k}'")));
            }
        }
        Ok(())
    }
}

fn parse_kind(s: &str) -> Result<ExitKind, ParseError> {
    Ok(match s {
        "adv" => ExitKind::Advance,
        "def-safe" => ExitKind::Deflect { safe: true },
        "def-free" => ExitKind::Deflect { safe: false },
        "osc" => ExitKind::Oscillate,
        "inj" => ExitKind::Inject,
        other => return Err(err(format!("unknown move kind '{other}'"))),
    })
}

/// Stable name of an [`ExitKind`] (the `kind` field of `move` lines).
pub fn kind_name(kind: ExitKind) -> &'static str {
    match kind {
        ExitKind::Advance => "adv",
        ExitKind::Deflect { safe: true } => "def-safe",
        ExitKind::Deflect { safe: false } => "def-free",
        ExitKind::Oscillate => "osc",
        ExitKind::Inject => "inj",
    }
}

/// Parses one trace line, strictly (see the module docs).
pub fn parse_line(line: &str) -> Result<TraceEvent, ParseError> {
    let value = serde_json::from_str(line).map_err(|e| err(e.to_string()))?;
    let mut f = Fields::new(&value)?;
    let ev = f.str("ev")?.to_string();
    let event = match ev.as_str() {
        "meta" => {
            // Check the version before the field set: an old trace
            // should report its version, not a missing v3 field.
            let schema = f.u64("schema")?;
            if schema != SCHEMA_VERSION {
                return Err(err(format!(
                    "unsupported trace schema {schema} (this build reads {SCHEMA_VERSION})"
                )));
            }
            TraceEvent::Meta(Meta {
                schema,
                topo: f.str("topo")?.to_string(),
                workload: f.str("workload")?.to_string(),
                algo: f.str("algo")?.to_string(),
                seed: f.u64("seed")?,
                arrival: f.str("arrival")?.to_string(),
                packets: f.u64("packets")?,
                levels: f.u64("levels")?,
                congestion: f.u64("congestion")?,
                dilation: f.u64("dilation")?,
            })
        }
        "move" => TraceEvent::Move {
            t: f.u64("t")?,
            pkt: f.u32("pkt")?,
            edge: EdgeId(f.u32("edge")?),
            dir: match f.str("dir")? {
                "F" => Direction::Forward,
                "B" => Direction::Backward,
                other => return Err(err(format!("unknown direction '{other}'"))),
            },
            kind: parse_kind(f.str("kind")?)?,
        },
        "trivial" => TraceEvent::Trivial {
            t: f.u64("t")?,
            pkt: f.u32("pkt")?,
        },
        "deliver" => TraceEvent::Deliver {
            t: f.u64("t")?,
            pkt: f.u32("pkt")?,
        },
        "arrival" => TraceEvent::Arrival {
            t: f.u64("t")?,
            pkt: f.u32("pkt")?,
        },
        "drop" => TraceEvent::Drop {
            t: f.u64("t")?,
            pkt: f.u32("pkt")?,
        },
        "step" => TraceEvent::Step {
            t: f.u64("t")?,
            moved: f.u64("moved")?,
            absorbed: f.u64("absorbed")?,
            injected: f.u64("injected")?,
            deflections: f.u64("deflections")?,
            fallback: f.u64("fallback")?,
            oscillations: f.u64("oscillations")?,
            active: f.u64("active")?,
        },
        "sets" => TraceEvent::Sets {
            num_sets: f.u32("num_sets")?,
            sets: f.u32_array("sets")?,
        },
        "phase_start" => TraceEvent::PhaseStart {
            phase: f.u64("phase")?,
            t: f.u64("t")?,
        },
        "phase_end" => TraceEvent::PhaseEnd {
            phase: f.u64("phase")?,
            t: f.u64("t")?,
        },
        "frontier" => TraceEvent::Frontier {
            phase: f.u64("phase")?,
            set: f.u32("set")?,
            frontier: f.i64("frontier")?,
        },
        "congestion" => TraceEvent::Congestion {
            phase: f.u64("phase")?,
            set: f.u32("set")?,
            congestion: f.u32("congestion")?,
            initial: f.u32("initial")?,
        },
        "section" => TraceEvent::Section {
            section: f.str("section")?.to_string(),
            nanos: f.u64("nanos")?,
        },
        "stats" => TraceEvent::Stats(StatsLine {
            steps: f.u64("steps")?,
            injected_at: f.opt_u64_array("injected_at")?,
            delivered_at: f.opt_u64_array("delivered_at")?,
            deflections: f.u32_array("deflections")?,
        }),
        other => return Err(err(format!("unknown event '{other}'"))),
    };
    f.finish()?;
    Ok(event)
}

/// A fully parsed trace: one event per line, in file order (so
/// `events[i]` came from line `i + 1`).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The parsed lines.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Parses a whole trace text; blank lines are rejected (they would
    /// desynchronize line attribution in diagnostics).
    pub fn parse(text: &str) -> Result<Trace, ParseError> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                return Err(ParseError {
                    line: i + 1,
                    msg: "blank line in trace".into(),
                });
            }
            let ev = parse_line(line).map_err(|mut e| {
                e.line = i + 1;
                e
            })?;
            events.push(ev);
        }
        Ok(Trace { events })
    }

    /// The `meta` envelope line, which must be the first line if present.
    pub fn meta(&self) -> Option<&Meta> {
        match self.events.first() {
            Some(TraceEvent::Meta(m)) => Some(m),
            _ => None,
        }
    }

    /// The `stats` envelope line, which must be the last line if present.
    pub fn stats(&self) -> Option<&StatsLine> {
        match self.events.last() {
            Some(TraceEvent::Stats(s)) => Some(s),
            _ => None,
        }
    }
}

/// Renders the `meta` envelope line (without trailing newline).
pub fn meta_line(meta: &Meta) -> String {
    use serde::Serialize as _;
    Value::object([
        ("ev", Value::String("meta".into())),
        ("schema", meta.schema.to_json()),
        ("topo", Value::String(meta.topo.clone())),
        ("workload", Value::String(meta.workload.clone())),
        ("algo", Value::String(meta.algo.clone())),
        ("seed", meta.seed.to_json()),
        ("arrival", Value::String(meta.arrival.clone())),
        ("packets", meta.packets.to_json()),
        ("levels", meta.levels.to_json()),
        ("congestion", meta.congestion.to_json()),
        ("dilation", meta.dilation.to_json()),
    ])
    .to_compact_string()
}

/// Renders a [`Rollup`] envelope as a JSON document (the `/rollup/<run>`
/// response body).
pub fn rollup_doc(r: &Rollup) -> Value {
    use serde::Serialize as _;
    Value::object([
        ("schema", r.schema.to_json()),
        ("run", Value::String(r.run.clone())),
        ("seq", r.seq.to_json()),
        ("finished", Value::Bool(r.finished)),
        ("rollup", r.rollup.clone()),
    ])
}

/// Parses a [`Rollup`] envelope, strictly: unknown or missing envelope
/// fields and a wrong `schema` version are errors. The inner `rollup`
/// report is carried opaquely (its shape is owned by
/// `StreamingAggregator::to_json`).
pub fn parse_rollup(text: &str) -> Result<Rollup, ParseError> {
    let value = serde_json::from_str(text).map_err(|e| err(e.to_string()))?;
    let mut f = Fields::new(&value)?;
    let rollup = Rollup {
        schema: f.u64("schema")?,
        run: f.str("run")?.to_string(),
        seq: f.u64("seq")?,
        finished: f.bool("finished")?,
        rollup: f.take("rollup")?.clone(),
    };
    if rollup.schema != SCHEMA_VERSION {
        return Err(err(format!(
            "unsupported rollup schema {} (this build reads {SCHEMA_VERSION})",
            rollup.schema
        )));
    }
    f.finish()?;
    Ok(rollup)
}

/// Renders the `stats` envelope line (without trailing newline) from the
/// run's final statistics.
pub fn stats_line(stats: &RouteStats) -> String {
    use serde::Serialize as _;
    Value::object([
        ("ev", Value::String("stats".into())),
        ("steps", stats.steps_run.to_json()),
        ("injected_at", stats.injected_at.to_json()),
        ("delivered_at", stats.delivered_at.to_json()),
        ("deflections", stats.deflections.to_json()),
    ])
    .to_compact_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_fields_are_rejected() {
        assert!(parse_line(r#"{"ev":"deliver","t":1,"pkt":2}"#).is_ok());
        let e = parse_line(r#"{"ev":"deliver","t":1,"pkt":2,"extra":3}"#).unwrap_err();
        assert!(e.msg.contains("unknown field 'extra'"), "{e}");
        let e = parse_line(r#"{"ev":"deliver","t":1}"#).unwrap_err();
        assert!(e.msg.contains("missing field 'pkt'"), "{e}");
    }

    #[test]
    fn unknown_events_and_schemas_are_rejected() {
        assert!(parse_line(r#"{"ev":"warp","t":1}"#).is_err());
        let meta = r#"{"ev":"meta","schema":99,"topo":"bf:3","workload":"bitrev","algo":"busch","seed":1,"packets":8,"levels":4,"congestion":2,"dilation":3}"#;
        let e = parse_line(meta).unwrap_err();
        assert!(e.msg.contains("unsupported trace schema"), "{e}");
    }

    #[test]
    fn envelope_lines_round_trip() {
        let meta = Meta {
            schema: SCHEMA_VERSION,
            topo: "butterfly:3".into(),
            workload: "bitrev".into(),
            algo: "busch".into(),
            seed: 42,
            arrival: "poisson:0.5".into(),
            packets: 8,
            levels: 4,
            congestion: 2,
            dilation: 3,
        };
        match parse_line(&meta_line(&meta)).unwrap() {
            TraceEvent::Meta(m) => assert_eq!(m, meta),
            other => panic!("wrong event: {other:?}"),
        }

        let mut stats = RouteStats::new(2);
        stats.steps_run = 7;
        stats.injected_at = vec![Some(0), None];
        stats.delivered_at = vec![Some(5), None];
        stats.deflections = vec![1, 0];
        match parse_line(&stats_line(&stats)).unwrap() {
            TraceEvent::Stats(s) => {
                assert_eq!(s.steps, 7);
                assert_eq!(s.injected_at, vec![Some(0), None]);
                assert_eq!(s.delivered_at, vec![Some(5), None]);
                assert_eq!(s.deflections, vec![1, 0]);
            }
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn rollup_envelope_round_trips_strictly() {
        let rollup = Rollup {
            schema: SCHEMA_VERSION,
            run: "bf10-bitrev".into(),
            seq: 17,
            finished: true,
            rollup: Value::object([("cap", Value::Number(serde::Number::U(64)))]),
        };
        let text = rollup_doc(&rollup).to_compact_string();
        assert_eq!(parse_rollup(&text).unwrap(), rollup);

        // Wrong version, unknown field, missing field: all hard errors.
        let stale = text.replacen(&format!("\"schema\":{SCHEMA_VERSION}"), "\"schema\":1", 1);
        let e = parse_rollup(&stale).unwrap_err();
        assert!(e.msg.contains("unsupported rollup schema"), "{e}");
        let extra = format!("{},\"zz\":0}}", &text[..text.len() - 1]);
        assert!(parse_rollup(&extra)
            .unwrap_err()
            .msg
            .contains("unknown field 'zz'"));
        assert!(
            parse_rollup(r#"{"schema":3,"run":"x","seq":0,"finished":false}"#)
                .unwrap_err()
                .msg
                .contains("missing field 'rollup'")
        );
    }

    #[test]
    fn streaming_injection_events_parse() {
        match parse_line(r#"{"ev":"arrival","t":3,"pkt":1}"#).unwrap() {
            TraceEvent::Arrival { t: 3, pkt: 1 } => {}
            other => panic!("wrong event: {other:?}"),
        }
        match parse_line(r#"{"ev":"drop","t":4,"pkt":2}"#).unwrap() {
            TraceEvent::Drop { t: 4, pkt: 2 } => {}
            other => panic!("wrong event: {other:?}"),
        }
        assert!(parse_line(r#"{"ev":"drop","t":4}"#).is_err());
    }

    #[test]
    fn trace_parse_attributes_line_numbers() {
        let text = "{\"ev\":\"deliver\",\"t\":1,\"pkt\":0}\n{\"ev\":\"bogus\"}\n";
        let e = Trace::parse(text).unwrap_err();
        assert_eq!(e.line, 2);
    }
}
