//! Schema-stability contract: every event variant the observers can emit
//! parses back exactly, the schema version is pinned, and any unknown,
//! renamed, or missing field is a hard error. If an emitter field is
//! renamed without bumping `SCHEMA_VERSION`, these tests fail.
//!
//! The same canonical lines also pin the binary `.hpt` framing: every
//! variant must survive a JSONL → binary → JSONL round trip down to the
//! byte, and truncated or corrupted binary input must fail with the
//! exact byte offset and event index.

mod common;

use common::record_busch_with;
use hotpotato_sim::{ExitKind, SectionProfiler};
use hotpotato_trace::{
    decode_trace, encode_trace, is_binary, parse_line, schema, Trace, TraceEvent, SCHEMA_VERSION,
};
use leveled_net::Direction;
use std::collections::BTreeSet;

#[test]
fn schema_version_is_pinned() {
    // Changing any event's field set requires bumping the version; this
    // assertion forces that edit to be deliberate. (4 = trace pipeline:
    // `snapshot` phase-entry checkpoints added, plus the binary `.hpt`
    // framing carrying the same event set.)
    assert_eq!(SCHEMA_VERSION, 4);
}

/// One canonical line per event variant (and per move kind), exactly as
/// the emitters write them.
fn canonical_lines() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "meta",
            r#"{"ev":"meta","schema":4,"topo":"bf:3","workload":"bitrev","algo":"busch","seed":7,"arrival":"","packets":8,"levels":4,"congestion":2,"dilation":3}"#,
        ),
        (
            "move",
            r#"{"ev":"move","t":4,"pkt":2,"edge":9,"dir":"F","kind":"adv"}"#,
        ),
        (
            "move",
            r#"{"ev":"move","t":4,"pkt":2,"edge":9,"dir":"B","kind":"def-safe"}"#,
        ),
        (
            "move",
            r#"{"ev":"move","t":4,"pkt":2,"edge":9,"dir":"B","kind":"def-free"}"#,
        ),
        (
            "move",
            r#"{"ev":"move","t":4,"pkt":2,"edge":9,"dir":"F","kind":"osc"}"#,
        ),
        (
            "move",
            r#"{"ev":"move","t":4,"pkt":2,"edge":9,"dir":"F","kind":"inj"}"#,
        ),
        ("trivial", r#"{"ev":"trivial","t":0,"pkt":5}"#),
        ("deliver", r#"{"ev":"deliver","t":6,"pkt":2}"#),
        ("arrival", r#"{"ev":"arrival","t":6,"pkt":2}"#),
        ("drop", r#"{"ev":"drop","t":6,"pkt":2}"#),
        (
            "step",
            r#"{"ev":"step","t":4,"moved":3,"absorbed":1,"injected":0,"deflections":1,"fallback":0,"oscillations":1,"active":2}"#,
        ),
        ("sets", r#"{"ev":"sets","num_sets":2,"sets":[0,1,0]}"#),
        ("phase_start", r#"{"ev":"phase_start","phase":3,"t":36}"#),
        ("phase_end", r#"{"ev":"phase_end","phase":3,"t":48}"#),
        (
            "frontier",
            r#"{"ev":"frontier","phase":3,"set":1,"frontier":-2}"#,
        ),
        (
            "congestion",
            r#"{"ev":"congestion","phase":3,"set":1,"congestion":4,"initial":5}"#,
        ),
        (
            "section",
            r#"{"ev":"section","section":"conflict","nanos":1234}"#,
        ),
        (
            "snapshot",
            r#"{"ev":"snapshot","phase":3,"t":36,"state":[0,1,3],"nodes":[7,2],"prev_forward":[4294967295,9],"moves":12,"forward":8,"backward":4,"deflections":1,"oscillations":2,"trivial":0,"num_sets":2}"#,
        ),
        (
            "stats",
            r#"{"ev":"stats","steps":7,"injected_at":[0,null],"delivered_at":[5,null],"deflections":[1,0]}"#,
        ),
    ]
}

#[test]
fn every_variant_round_trips() {
    for (ev, line) in canonical_lines() {
        let event = parse_line(line).unwrap_or_else(|e| panic!("{ev}: {e}"));
        assert_eq!(event.ev(), ev, "discriminator of {line}");
    }
    // Spot-check that values survive, not just discriminators.
    match parse_line(r#"{"ev":"move","t":4,"pkt":2,"edge":9,"dir":"B","kind":"def-safe"}"#).unwrap()
    {
        TraceEvent::Move {
            t,
            pkt,
            edge,
            dir,
            kind,
        } => {
            assert_eq!((t, pkt, edge.0), (4, 2, 9));
            assert_eq!(dir, Direction::Backward);
            assert_eq!(kind, ExitKind::Deflect { safe: true });
        }
        other => panic!("wrong event: {other:?}"),
    }
    match parse_line(r#"{"ev":"frontier","phase":3,"set":1,"frontier":-2}"#).unwrap() {
        TraceEvent::Frontier {
            phase,
            set,
            frontier,
        } => assert_eq!((phase, set, frontier), (3, 1, -2)),
        other => panic!("wrong event: {other:?}"),
    }
}

#[test]
fn unknown_fields_are_rejected_for_every_variant() {
    for (ev, line) in canonical_lines() {
        let with_extra = format!("{},\"zz\":0}}", &line[..line.len() - 1]);
        let err =
            parse_line(&with_extra).expect_err(&format!("{ev}: extra field must be rejected"));
        assert!(err.msg.contains("unknown field 'zz'"), "{ev}: {err}");
    }
}

#[test]
fn renamed_fields_are_rejected_for_every_variant() {
    for (ev, line) in canonical_lines() {
        // Rename the last field of each line: the parser must complain
        // about the missing original (or the unknown replacement).
        let open = line.rfind(",\"").expect("every variant has ≥ 2 fields") + 1;
        let close = line[open + 1..].find('"').unwrap() + open + 1;
        let field = &line[open + 1..close];
        let renamed = format!("{}\"renamed_{field}\"{}", &line[..open], &line[close + 1..]);
        assert!(
            parse_line(&renamed).is_err(),
            "{ev}: renamed field must be rejected: {renamed}"
        );
    }
}

#[test]
fn wrong_schema_version_is_rejected() {
    let line = r#"{"ev":"meta","schema":1,"topo":"bf:3","workload":"bitrev","algo":"busch","seed":7,"arrival":"","packets":8,"levels":4,"congestion":2,"dilation":3}"#;
    let err = parse_line(line).unwrap_err();
    assert!(err.msg.contains("unsupported trace schema"), "{err}");
}

#[test]
fn a_real_run_emits_every_event_kind_and_parses_fully() {
    // SectionProfiler turns on wants_timing, so the driver also emits
    // section lines — with the envelope that exercises all 12 kinds.
    let (text, _, _) = record_busch_with("bf:6", "bitrev", 1, SectionProfiler::new());
    let trace = Trace::parse(&text).expect("every emitted line parses strictly");

    // No "trivial" here: a butterfly bit-reversal workload has no
    // source == destination packets (levels always differ); the trivial
    // emitter is pinned by the canonical-line test above and the
    // observer unit tests.
    let kinds: BTreeSet<&'static str> = trace.events.iter().map(TraceEvent::ev).collect();
    for want in [
        "meta",
        "move",
        "deliver",
        "step",
        "sets",
        "phase_start",
        "phase_end",
        "frontier",
        "congestion",
        "section",
        "stats",
    ] {
        assert!(kinds.contains(want), "run emitted no '{want}' event");
    }

    let move_kinds: BTreeSet<&'static str> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Move { kind, .. } => Some(hotpotato_trace::schema::kind_name(*kind)),
            _ => None,
        })
        .collect();
    for want in ["adv", "inj", "osc", "def-safe"] {
        assert!(move_kinds.contains(want), "run staged no '{want}' move");
    }
}

/// The canonical lines parsed into one trace — every event variant and
/// every move kind, in emission order.
fn canonical_trace() -> Trace {
    let events = canonical_lines()
        .iter()
        .map(|(ev, line)| parse_line(line).unwrap_or_else(|e| panic!("{ev}: {e}")))
        .collect();
    Trace { events }
}

#[test]
fn every_variant_survives_binary_round_trip() {
    let trace = canonical_trace();
    let bytes = encode_trace(&trace);
    assert!(is_binary(&bytes), "encoder must emit the .hpt magic");
    let back = decode_trace(&bytes).expect("binary decodes");
    assert_eq!(back.events, trace.events, "JSONL -> .hpt -> events");
    // Transcoding back out is byte-identical to the canonical JSONL:
    // the round trip is lossless, not merely value-preserving.
    for (ev, (name, line)) in back.events.iter().zip(canonical_lines()) {
        assert_eq!(schema::event_line(ev), line, "{name}: JSONL re-render");
    }
}

#[test]
fn truncated_binary_input_reports_exact_offset_and_event() {
    // A minimal single-event trace with a known wire layout: magic (4
    // bytes) + version varint (1) + trivial tag (1) + t delta (1) +
    // pkt (1) = 8 bytes. Dropping the final byte must fail at byte 7
    // while decoding event 0.
    let one = Trace {
        events: vec![parse_line(r#"{"ev":"trivial","t":0,"pkt":5}"#).unwrap()],
    };
    let bytes = encode_trace(&one);
    assert_eq!(bytes.len(), 8, "wire layout of the minimal trace");
    let err = decode_trace(&bytes[..7]).expect_err("truncation must fail");
    assert_eq!((err.offset, err.event), (7, 0));
    assert_eq!(
        err.to_string(),
        "binary trace error at byte 7 (event 0): unexpected end of input"
    );

    // General case: any cut strictly inside the *last* event of the
    // full canonical trace fails, attributed to that event's index and
    // an offset inside the surviving bytes. (A cut exactly on an event
    // boundary is a valid shorter trace, so start one past it.)
    let trace = canonical_trace();
    let all = encode_trace(&trace);
    let head = encode_trace(&Trace {
        events: trace.events[..trace.events.len() - 1].to_vec(),
    });
    assert!(all.starts_with(&head), "encoding is prefix-stable");
    decode_trace(&head).expect("cut on the event boundary still parses");
    let last = trace.events.len() - 1;
    for cut in head.len() + 1..all.len() {
        let err =
            decode_trace(&all[..cut]).expect_err("a cut strictly inside the last event must fail");
        assert_eq!(err.event, last, "cut at byte {cut}: event attribution");
        assert!(
            err.offset >= head.len() && err.offset <= cut,
            "cut at byte {cut}: offset {} outside the last event",
            err.offset
        );
    }
}

#[test]
fn corrupted_binary_input_reports_exact_offset_and_event() {
    let trace = canonical_trace();
    let mut bytes = encode_trace(&trace);

    // Corrupt the first event's tag byte (magic is 4 bytes, the
    // version varint is 1): unknown tag, event 0, byte 5.
    let tag_at = 4 + 1;
    bytes[tag_at] = 0xff;
    let err = decode_trace(&bytes).expect_err("bad tag must fail");
    assert_eq!((err.offset, err.event), (tag_at, 0));
    assert!(err.msg.contains("unknown event tag 255"), "{err}");

    // Corrupt the version varint: rejected before any event decodes.
    let mut bytes = encode_trace(&trace);
    bytes[4] = 99;
    let err = decode_trace(&bytes).expect_err("bad version must fail");
    assert_eq!(err.event, 0);
    assert!(err.msg.contains("unsupported trace schema 99"), "{err}");

    // Not a binary trace at all.
    let err = decode_trace(b"junk jsonl text").expect_err("bad magic");
    assert_eq!((err.offset, err.event), (0, 0));
    assert!(err.msg.contains("bad magic"), "{err}");
}
