//! Schema-stability contract: every event variant the observers can emit
//! parses back exactly, the schema version is pinned, and any unknown,
//! renamed, or missing field is a hard error. If an emitter field is
//! renamed without bumping `SCHEMA_VERSION`, these tests fail.

mod common;

use common::record_busch_with;
use hotpotato_sim::{ExitKind, SectionProfiler};
use hotpotato_trace::{parse_line, Trace, TraceEvent, SCHEMA_VERSION};
use leveled_net::Direction;
use std::collections::BTreeSet;

#[test]
fn schema_version_is_pinned() {
    // Changing any event's field set requires bumping the version; this
    // assertion forces that edit to be deliberate. (3 = streaming mode:
    // `meta` gains the `arrival` spec; `arrival`/`drop` events added.)
    assert_eq!(SCHEMA_VERSION, 3);
}

/// One canonical line per event variant (and per move kind), exactly as
/// the emitters write them.
fn canonical_lines() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "meta",
            r#"{"ev":"meta","schema":3,"topo":"bf:3","workload":"bitrev","algo":"busch","seed":7,"arrival":"","packets":8,"levels":4,"congestion":2,"dilation":3}"#,
        ),
        (
            "move",
            r#"{"ev":"move","t":4,"pkt":2,"edge":9,"dir":"F","kind":"adv"}"#,
        ),
        (
            "move",
            r#"{"ev":"move","t":4,"pkt":2,"edge":9,"dir":"B","kind":"def-safe"}"#,
        ),
        (
            "move",
            r#"{"ev":"move","t":4,"pkt":2,"edge":9,"dir":"B","kind":"def-free"}"#,
        ),
        (
            "move",
            r#"{"ev":"move","t":4,"pkt":2,"edge":9,"dir":"F","kind":"osc"}"#,
        ),
        (
            "move",
            r#"{"ev":"move","t":4,"pkt":2,"edge":9,"dir":"F","kind":"inj"}"#,
        ),
        ("trivial", r#"{"ev":"trivial","t":0,"pkt":5}"#),
        ("deliver", r#"{"ev":"deliver","t":6,"pkt":2}"#),
        ("arrival", r#"{"ev":"arrival","t":6,"pkt":2}"#),
        ("drop", r#"{"ev":"drop","t":6,"pkt":2}"#),
        (
            "step",
            r#"{"ev":"step","t":4,"moved":3,"absorbed":1,"injected":0,"deflections":1,"fallback":0,"oscillations":1,"active":2}"#,
        ),
        ("sets", r#"{"ev":"sets","num_sets":2,"sets":[0,1,0]}"#),
        ("phase_start", r#"{"ev":"phase_start","phase":3,"t":36}"#),
        ("phase_end", r#"{"ev":"phase_end","phase":3,"t":48}"#),
        (
            "frontier",
            r#"{"ev":"frontier","phase":3,"set":1,"frontier":-2}"#,
        ),
        (
            "congestion",
            r#"{"ev":"congestion","phase":3,"set":1,"congestion":4,"initial":5}"#,
        ),
        (
            "section",
            r#"{"ev":"section","section":"conflict","nanos":1234}"#,
        ),
        (
            "stats",
            r#"{"ev":"stats","steps":7,"injected_at":[0,null],"delivered_at":[5,null],"deflections":[1,0]}"#,
        ),
    ]
}

#[test]
fn every_variant_round_trips() {
    for (ev, line) in canonical_lines() {
        let event = parse_line(line).unwrap_or_else(|e| panic!("{ev}: {e}"));
        assert_eq!(event.ev(), ev, "discriminator of {line}");
    }
    // Spot-check that values survive, not just discriminators.
    match parse_line(r#"{"ev":"move","t":4,"pkt":2,"edge":9,"dir":"B","kind":"def-safe"}"#).unwrap()
    {
        TraceEvent::Move {
            t,
            pkt,
            edge,
            dir,
            kind,
        } => {
            assert_eq!((t, pkt, edge.0), (4, 2, 9));
            assert_eq!(dir, Direction::Backward);
            assert_eq!(kind, ExitKind::Deflect { safe: true });
        }
        other => panic!("wrong event: {other:?}"),
    }
    match parse_line(r#"{"ev":"frontier","phase":3,"set":1,"frontier":-2}"#).unwrap() {
        TraceEvent::Frontier {
            phase,
            set,
            frontier,
        } => assert_eq!((phase, set, frontier), (3, 1, -2)),
        other => panic!("wrong event: {other:?}"),
    }
}

#[test]
fn unknown_fields_are_rejected_for_every_variant() {
    for (ev, line) in canonical_lines() {
        let with_extra = format!("{},\"zz\":0}}", &line[..line.len() - 1]);
        let err =
            parse_line(&with_extra).expect_err(&format!("{ev}: extra field must be rejected"));
        assert!(err.msg.contains("unknown field 'zz'"), "{ev}: {err}");
    }
}

#[test]
fn renamed_fields_are_rejected_for_every_variant() {
    for (ev, line) in canonical_lines() {
        // Rename the last field of each line: the parser must complain
        // about the missing original (or the unknown replacement).
        let open = line.rfind(",\"").expect("every variant has ≥ 2 fields") + 1;
        let close = line[open + 1..].find('"').unwrap() + open + 1;
        let field = &line[open + 1..close];
        let renamed = format!("{}\"renamed_{field}\"{}", &line[..open], &line[close + 1..]);
        assert!(
            parse_line(&renamed).is_err(),
            "{ev}: renamed field must be rejected: {renamed}"
        );
    }
}

#[test]
fn wrong_schema_version_is_rejected() {
    let line = r#"{"ev":"meta","schema":1,"topo":"bf:3","workload":"bitrev","algo":"busch","seed":7,"arrival":"","packets":8,"levels":4,"congestion":2,"dilation":3}"#;
    let err = parse_line(line).unwrap_err();
    assert!(err.msg.contains("unsupported trace schema"), "{err}");
}

#[test]
fn a_real_run_emits_every_event_kind_and_parses_fully() {
    // SectionProfiler turns on wants_timing, so the driver also emits
    // section lines — with the envelope that exercises all 12 kinds.
    let (text, _, _) = record_busch_with("bf:6", "bitrev", 1, SectionProfiler::new());
    let trace = Trace::parse(&text).expect("every emitted line parses strictly");

    // No "trivial" here: a butterfly bit-reversal workload has no
    // source == destination packets (levels always differ); the trivial
    // emitter is pinned by the canonical-line test above and the
    // observer unit tests.
    let kinds: BTreeSet<&'static str> = trace.events.iter().map(TraceEvent::ev).collect();
    for want in [
        "meta",
        "move",
        "deliver",
        "step",
        "sets",
        "phase_start",
        "phase_end",
        "frontier",
        "congestion",
        "section",
        "stats",
    ] {
        assert!(kinds.contains(want), "run emitted no '{want}' event");
    }

    let move_kinds: BTreeSet<&'static str> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Move { kind, .. } => Some(hotpotato_trace::schema::kind_name(*kind)),
            _ => None,
        })
        .collect();
    for want in ["adv", "inj", "osc", "def-safe"] {
        assert!(move_kinds.contains(want), "run staged no '{want}' move");
    }
}
