//! Streaming-mode aggregation under open-ended, non-quiescing runs.
//!
//! A continuous arrival stream keeps packets entering the network long
//! after routing has begun, so — unlike the batch suites — there is no
//! quiesce point where "the run so far" and "the whole run" coincide.
//! These tests pin the two guarantees the live service relies on:
//!
//! 1. A **mid-stream snapshot** of the bounded aggregator equals a
//!    fresh full-trace analysis truncated at the same step — scraping
//!    a live run never shows numbers a post-hoc audit would disagree
//!    with.
//! 2. The **bucket cap holds** under sustained injection: however long
//!    the stream runs, memory stays `O(cap)` while the totals remain
//!    exact.

use hotpotato_sim::{
    route_streaming_observed, AdmissionControl, MetricsObserver, RouteObserver, StepReport,
    StreamPriority, StreamingConfig, Time,
};
use hotpotato_trace::stream::Bucket;
use hotpotato_trace::{StreamingAggregator, Trace, TraceEvent};
use routing_core::spec::parse_run_spec;

/// Wraps a [`StreamingAggregator`] and captures a copy of its exact
/// totals the moment step `at` completes — the "mid-stream scrape".
struct SnapshotAt {
    inner: StreamingAggregator,
    at: Time,
    snap: Option<Bucket>,
}

impl RouteObserver for SnapshotAt {
    fn on_step_end(&mut self, t: Time, report: &StepReport, active: usize) {
        self.inner.on_step_end(t, report, active);
        if t == self.at {
            self.snap = Some(*self.inner.totals());
        }
    }

    fn on_phase_start(&mut self, phase: u64, t: Time) {
        self.inner.on_phase_start(phase, t);
    }

    fn on_phase_end(&mut self, phase: u64, t: Time) {
        self.inner.on_phase_end(phase, t);
    }
}

/// Runs a spec-described streaming instance with the given config,
/// tracing into memory, and returns the outcome plus the observer.
fn stream<O: RouteObserver>(
    spec: &str,
    cfg: &StreamingConfig,
    observer: &mut O,
) -> hotpotato_sim::StreamingOutcome {
    let run = parse_run_spec(spec).expect("spec parses");
    let (_topo, problem, mut rng) = run.instantiate().expect("spec instantiates");
    let process = run
        .arrival_process()
        .expect("arrival grammar")
        .expect("spec has an arrival segment");
    let schedule = process.schedule(problem.num_packets(), &mut rng);
    let cfg = StreamingConfig {
        priority: StreamPriority::for_algo(&run.algo).expect("streaming algo"),
        ..*cfg
    };
    route_streaming_observed(&problem, &schedule, &cfg, &mut rng, observer)
}

/// Median arrival step of the spec's schedule — a step where the run is
/// provably still mid-stream (half the arrivals are yet to come).
fn median_arrival(spec: &str) -> Time {
    let run = parse_run_spec(spec).expect("spec parses");
    let (_topo, problem, mut rng) = run.instantiate().expect("spec instantiates");
    let process = run.arrival_process().unwrap().unwrap();
    let schedule = process.schedule(problem.num_packets(), &mut rng);
    schedule[schedule.len() / 2]
}

#[test]
fn mid_stream_snapshot_matches_full_trace_prefix() {
    const SPEC: &str = "bf:8/pairs:256/greedy/7/poisson:0.5";
    let at = median_arrival(SPEC);
    let mut observer = (
        SnapshotAt {
            inner: StreamingAggregator::new(1 << 20),
            at,
            snap: None,
        },
        hotpotato_sim::JsonlTraceObserver::new(Vec::new()),
    );
    let out = stream(SPEC, &StreamingConfig::default(), &mut observer);
    let (snapper, jsonl) = observer;
    assert!(out.drained, "stream must drain");
    let snap = snapper.snap.expect("median arrival precedes the last step");
    // The run was genuinely non-quiescent at the snapshot: more steps —
    // and more injections — happened after it.
    assert!(snap.steps < out.stats.steps_run, "snapshot was mid-stream");
    assert!(
        snap.injected < snapper.inner.totals().injected,
        "injections continued past the snapshot"
    );

    // Fresh full-trace analysis, truncated at the same step: sum the
    // per-step report lines with t <= at straight off the JSONL stream.
    let text = String::from_utf8(jsonl.finish().expect("in-memory sink")).unwrap();
    let trace = Trace::parse(&text).expect("trace parses");
    let mut prefix = Bucket::default();
    let mut all = Bucket::default();
    for ev in &trace.events {
        if let TraceEvent::Step {
            t,
            moved,
            absorbed,
            injected,
            deflections,
            fallback,
            oscillations,
            active,
        } = ev
        {
            let mut sinks = vec![&mut all];
            if *t <= at {
                sinks.push(&mut prefix);
            }
            for b in sinks {
                b.steps += 1;
                b.moved += moved;
                b.absorbed += absorbed;
                b.injected += injected;
                b.deflections += deflections;
                b.fallback += fallback;
                b.oscillations += oscillations;
                b.max_active = b.max_active.max(*active);
            }
        }
    }
    let cmp = |got: &Bucket, want: &Bucket, what: &str| {
        assert_eq!(got.steps, want.steps, "{what}: steps");
        assert_eq!(got.moved, want.moved, "{what}: moved");
        assert_eq!(got.absorbed, want.absorbed, "{what}: absorbed");
        assert_eq!(got.injected, want.injected, "{what}: injected");
        assert_eq!(got.deflections, want.deflections, "{what}: deflections");
        assert_eq!(got.fallback, want.fallback, "{what}: fallback");
        assert_eq!(got.oscillations, want.oscillations, "{what}: oscillations");
        assert_eq!(got.max_active, want.max_active, "{what}: max_active");
    };
    cmp(&snap, &prefix, "mid-stream snapshot vs trace prefix");
    cmp(snapper.inner.totals(), &all, "final totals vs whole trace");
    // Arrival events in the trace prefix match the streaming schedule's
    // pace: exactly the arrivals at or before the snapshot step.
    let prefix_arrivals = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Arrival { t, .. } if *t <= at))
        .count() as u64;
    assert!(prefix_arrivals >= out.arrivals / 2);
    assert!(prefix_arrivals < out.arrivals, "arrivals continued past");
}

#[test]
fn bucket_cap_holds_under_sustained_injection() {
    // A slow Poisson stream: arrivals trickle in for hundreds of steps,
    // so the step-keyed aggregator sees far more keys than its cap.
    const SPEC: &str = "bf:8/pairs:256/greedy/11/poisson:0.25";
    let mut agg = StreamingAggregator::new(4);
    let out = stream(SPEC, &StreamingConfig::default(), &mut agg);
    assert!(out.drained);
    assert!(
        out.stats.steps_run > 4 * 64,
        "run long enough to force merges ({} steps)",
        out.stats.steps_run
    );
    assert!(agg.buckets().len() <= 4, "cap violated");
    assert!(agg.merges() > 0, "sustained stream must trigger merges");
    assert_eq!(agg.keyed_by(), "step", "greedy streams are phase-less");
    // Bounded resolution, exact sums: buckets tile the step axis and
    // sum to the engine's own statistics.
    assert_eq!(agg.totals().steps, out.stats.steps_run);
    assert_eq!(agg.totals().injected, out.admitted);
    let sum = |f: fn(&Bucket) -> u64| -> u64 { agg.buckets().iter().map(f).sum() };
    assert_eq!(sum(|b| b.steps), agg.totals().steps);
    assert_eq!(sum(|b| b.moved), agg.totals().moved);
    assert_eq!(sum(|b| b.injected), agg.totals().injected);
    assert_eq!(sum(|b| b.deflections), agg.totals().deflections);
    let mut next = 0;
    for b in agg.buckets() {
        assert_eq!(b.key_lo, next, "gap before step {}", b.key_lo);
        next = b.key_hi + 1;
    }
    assert_eq!(next, out.stats.steps_run);
}

#[test]
fn streaming_diff_reports_arrival_latency_and_drop_rate_deltas() {
    // Two recordings of the same bursty instance: a tight admission box
    // that sheds load vs the default. `trace diff` must surface the
    // schema-v3 streaming deltas — arrivals, drops, drop rate, and
    // admission-to-delivery latency.
    const SPEC: &str = "bf:6/pairs:192/greedy/3/burst:64:4";
    let record = |cfg: &StreamingConfig| -> Trace {
        let mut obs = hotpotato_sim::JsonlTraceObserver::new(Vec::new());
        let out = stream(SPEC, cfg, &mut obs);
        assert!(out.drained, "stream must drain");
        let text = String::from_utf8(obs.finish().expect("in-memory sink")).unwrap();
        Trace::parse(&text).expect("trace parses")
    };
    let tight = record(&StreamingConfig {
        admission: AdmissionControl {
            max_in_flight: 8,
            max_deferred: 16,
        },
        ..StreamingConfig::default()
    });
    let roomy = record(&StreamingConfig::default());

    let a = hotpotato_trace::analyze(&tight);
    let b = hotpotato_trace::analyze(&roomy);
    assert_eq!(a.arrivals, 192, "every scheduled packet arrives");
    assert_eq!(b.arrivals, 192);
    assert!(a.drops > 0, "tight admission must shed load");
    assert!(b.drops < a.drops, "roomy admission sheds less");
    assert!(a.drop_rate() > 0.0 && a.drop_rate() <= 1.0);
    assert!(
        !a.arrival_latencies.is_empty() && a.arrival_latency_mean() > 0.0,
        "admitted streaming packets take time to deliver"
    );

    let doc = hotpotato_trace::diff(&a, &b);
    let rows = doc["rows"].as_array().expect("diff rows");
    let row = |name: &str| {
        rows.iter()
            .find(|r| r["metric"] == name)
            .unwrap_or_else(|| panic!("diff has no '{name}' row"))
    };
    assert_eq!(row("arrivals")["delta"].as_i64(), Some(0));
    assert_eq!(row("drops")["a"].as_u64(), Some(a.drops));
    assert!(row("drops")["delta"].as_i64().unwrap() < 0);
    assert!(row("drop_rate")["delta"].as_f64().unwrap() < 0.0);
    let lat = row("arrival_latency_mean");
    assert!((lat["a"].as_f64().unwrap() - a.arrival_latency_mean()).abs() < 1e-9);
    assert!((lat["b"].as_f64().unwrap() - b.arrival_latency_mean()).abs() < 1e-9);
    let p50 = row("arrival_latency_p50");
    assert!(p50["a"].as_u64().is_some() && p50["b"].as_u64().is_some());
}

#[test]
fn metrics_observer_accounts_arrivals_and_drops_exactly() {
    // A tight admission box under bursty arrivals forces drops; the
    // observer's counters must match the engine's accounting exactly.
    const SPEC: &str = "bf:6/pairs:192/greedy/3/burst:64:4";
    let run = parse_run_spec(SPEC).unwrap();
    let (_topo, problem, _rng) = run.instantiate().unwrap();
    let mut metrics = MetricsObserver::new(&problem);
    let cfg = StreamingConfig {
        admission: AdmissionControl {
            max_in_flight: 8,
            max_deferred: 16,
        },
        ..StreamingConfig::default()
    };
    let out = stream(SPEC, &cfg, &mut metrics);
    assert!(out.drained, "drops resolve the backlog; the run drains");
    assert!(out.dropped > 0, "tight admission must shed load");
    assert_eq!(metrics.arrivals(), out.arrivals);
    assert_eq!(metrics.drops(), out.dropped);
    assert_eq!(out.arrivals, problem.num_packets() as u64);
    assert_eq!(
        out.admitted + out.dropped,
        out.arrivals,
        "every arrival is admitted or dropped"
    );
    assert_eq!(
        out.stats.delivered_count() as u64 + out.dropped,
        out.arrivals,
        "drained run: delivered + dropped == arrivals"
    );
    assert!(out.peak_in_flight <= 8, "in-flight cap respected");
    assert!(out.peak_deferred <= 16, "deferred cap respected");
}

#[test]
fn adversarial_arrivals_keep_streaming_accounting_exact() {
    // The adversarial process coalesces whole bursts onto single steps
    // (a seeded on-off train), so the instantaneous load ramps in
    // multiples of the burst size — the worst case the admission box is
    // specified against. The accounting laws must hold anyway: every
    // arrival is admitted or dropped, and a drained run delivers
    // exactly the admitted set.
    const SPEC: &str = "bf:6/pairs:192/greedy/5/adversarial:32:6";
    let run = parse_run_spec(SPEC).unwrap();
    let (_topo, problem, _rng) = run.instantiate().unwrap();
    let mut metrics = MetricsObserver::new(&problem);
    let cfg = StreamingConfig {
        admission: AdmissionControl {
            max_in_flight: 8,
            max_deferred: 16,
        },
        ..StreamingConfig::default()
    };
    let out = stream(SPEC, &cfg, &mut metrics);
    assert!(out.drained, "drops resolve the backlog; the run drains");
    assert!(
        out.dropped > 0,
        "coalesced bursts against a 16-slot queue must shed load"
    );
    assert_eq!(metrics.arrivals(), out.arrivals);
    assert_eq!(metrics.drops(), out.dropped);
    assert_eq!(out.arrivals, problem.num_packets() as u64);
    assert_eq!(
        out.admitted + out.dropped,
        out.arrivals,
        "every arrival is admitted or dropped"
    );
    assert_eq!(
        out.stats.delivered_count() as u64 + out.dropped,
        out.arrivals,
        "drained run: delivered + dropped == arrivals"
    );
    assert!(out.peak_in_flight <= 8, "in-flight cap respected");
    assert!(out.peak_deferred <= 16, "deferred cap respected");
    // The whole pipeline is seeded: the worst-case train reproduces.
    let mut again = MetricsObserver::new(&problem);
    let out2 = stream(SPEC, &cfg, &mut again);
    assert_eq!(out2.dropped, out.dropped);
    assert_eq!(out2.stats.steps_run, out.stats.steps_run);
}
