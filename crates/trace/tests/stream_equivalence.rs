//! The bounded StreamingAggregator must agree with offline full-trace
//! analysis: at high resolution its per-phase buckets equal the
//! `analyze()` phase rows, and at a tiny cap its memory stays bounded
//! while the totals remain exact.

mod common;

use common::record_busch_with;
use hotpotato_trace::{analyze, StreamingAggregator, Trace};

#[test]
fn aggregator_matches_full_trace_analysis() {
    // One run feeds two aggregators (uncapped-in-practice and tiny) plus
    // the JSONL trace, so all three views describe the same events.
    let (text, stats, (hi, lo)) = record_busch_with(
        "bf:6",
        "bitrev",
        1,
        (StreamingAggregator::new(1024), StreamingAggregator::new(4)),
    );
    let trace = Trace::parse(&text).unwrap();
    let a = analyze(&trace);

    // High-resolution: phase-keyed, never merged, one bucket per phase.
    assert_eq!(hi.scale(), 1);
    assert_eq!(hi.merges(), 0);
    assert!(!hi.buckets().is_empty());
    for b in hi.buckets() {
        assert_eq!(b.key_lo, b.key_hi, "unmerged buckets hold one phase");
        let row = a
            .phases
            .iter()
            .find(|r| r.phase == b.key_lo)
            .unwrap_or_else(|| panic!("no analysis row for phase {}", b.key_lo));
        assert_eq!(
            b.steps,
            row.end_t - row.start_t,
            "phase {} steps",
            row.phase
        );
        assert_eq!(b.moved, row.moves, "phase {} moves", row.phase);
        assert_eq!(
            b.deflections, row.deflections,
            "phase {} deflections",
            row.phase
        );
        assert_eq!(b.fallback, row.fallback, "phase {} fallback", row.phase);
        assert_eq!(
            b.oscillations, row.oscillations,
            "phase {} oscillations",
            row.phase
        );
        assert_eq!(b.injected, row.injections, "phase {} injections", row.phase);
    }

    // Totals line up with both the analysis and the engine stats.
    let t = hi.totals();
    assert_eq!(t.steps, stats.steps_run);
    assert_eq!(t.steps, a.steps);
    assert_eq!(t.moved, a.moves);
    assert_eq!(t.deflections, a.deflections);
    assert_eq!(t.oscillations, a.oscillations);
    assert_eq!(t.injected, a.injections);
    // Trivial deliveries never enter the network, so they are absent
    // from the per-step absorption counts.
    assert_eq!(t.absorbed, a.deliveries - a.trivial);

    // Tiny cap: memory bounded, resolution degraded, sums still exact.
    assert!(
        lo.buckets().len() <= 4,
        "cap violated: {}",
        lo.buckets().len()
    );
    assert!(lo.merges() > 0, "a long run must trigger merges at cap 4");
    assert_eq!(lo.totals(), hi.totals());
    let sum = |f: fn(&hotpotato_trace::stream::Bucket) -> u64| -> u64 {
        lo.buckets().iter().map(f).sum()
    };
    assert_eq!(sum(|b| b.steps), t.steps);
    assert_eq!(sum(|b| b.moved), t.moved);
    assert_eq!(sum(|b| b.deflections), t.deflections);
    assert_eq!(sum(|b| b.oscillations), t.oscillations);
    assert_eq!(sum(|b| b.absorbed), t.absorbed);
    // Buckets tile the phase axis without gaps or overlap.
    let mut next = 0;
    for b in lo.buckets() {
        assert_eq!(b.key_lo, next, "gap before phase {}", b.key_lo);
        next = b.key_hi + 1;
    }

    // The JSON report mirrors the same numbers.
    let doc = lo.to_json();
    assert_eq!(doc["keyed_by"].as_str(), Some("phase"));
    assert_eq!(doc["totals"]["moved"].as_u64(), Some(t.moved));
    assert_eq!(
        doc["buckets"].as_array().map(Vec::len),
        Some(lo.buckets().len())
    );
}
