//! Shared recording helper for the trace integration tests: runs the
//! Busch router on a spec-described instance and captures the enveloped
//! JSONL trace exactly as `hotpotato route --trace-out` writes it.

// Each test binary compiles this module afresh and uses one recorder
// or the other.
#![allow(dead_code)]

use busch_router::{BuschConfig, BuschRouter, Params};
use hotpotato_sim::{JsonlTraceObserver, RouteObserver, RouteStats, Router};
use hotpotato_trace::schema;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::spec;

/// Routes `topo_spec`/`workload_spec` under `seed` with the default
/// Busch configuration, streaming events into a `JsonlTraceObserver`
/// composed with `extra`, and returns the complete trace text (meta
/// line, event lines, stats line), the run statistics, and `extra`.
///
/// The rng discipline mirrors the CLI: workload generation and routing
/// share one `ChaCha8Rng` seeded from `seed`, which is what makes the
/// trace reproducible from its meta line alone.
pub fn record_busch_with<O: RouteObserver>(
    topo_spec: &str,
    workload_spec: &str,
    seed: u64,
    extra: O,
) -> (String, RouteStats, O) {
    record_busch_inner(topo_spec, workload_spec, seed, extra, false)
}

/// Like [`record_busch_with`], but records through
/// `JsonlTraceObserver::with_snapshots`, so the trace carries the
/// phase-entry `snapshot` checkpoints that sharded verification seeds
/// from — exactly what `hotpotato route --trace-out` emits.
pub fn record_busch_snapshots(
    topo_spec: &str,
    workload_spec: &str,
    seed: u64,
) -> (String, RouteStats) {
    let (text, stats, _) = record_busch_inner(
        topo_spec,
        workload_spec,
        seed,
        hotpotato_sim::NoopObserver,
        true,
    );
    (text, stats)
}

fn record_busch_inner<O: RouteObserver>(
    topo_spec: &str,
    workload_spec: &str,
    seed: u64,
    extra: O,
    snapshots: bool,
) -> (String, RouteStats, O) {
    let topo = spec::parse_topo(topo_spec).expect("topology spec");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let problem = spec::parse_workload(workload_spec, &topo, &mut rng).expect("workload spec");

    let meta = schema::Meta {
        schema: schema::SCHEMA_VERSION,
        topo: topo_spec.to_string(),
        workload: workload_spec.to_string(),
        algo: "busch".to_string(),
        seed,
        arrival: String::new(),
        packets: problem.num_packets() as u64,
        levels: topo.net.num_levels() as u64,
        congestion: u64::from(problem.congestion()),
        dilation: u64::from(problem.dilation()),
    };

    let router = BuschRouter::with_config(BuschConfig::new(Params::auto(&problem)));
    let jsonl = if snapshots {
        JsonlTraceObserver::with_snapshots(Vec::new(), &problem)
    } else {
        JsonlTraceObserver::new(Vec::new())
    };
    let mut observer = (extra, jsonl);
    let out = Router::route(&router, &problem, &mut rng, &mut observer);
    let (extra, trace) = observer;
    let body = trace.finish().expect("in-memory sink cannot fail");

    let mut text = schema::meta_line(&meta);
    text.push('\n');
    text.push_str(std::str::from_utf8(&body).expect("observer emits UTF-8"));
    text.push_str(&schema::stats_line(&out.stats));
    text.push('\n');
    (text, out.stats, extra)
}
