//! Golden end-to-end verification: a real bf(10) bit-reversal Busch run
//! must verify with zero violations and per-packet timelines exactly
//! matching the run's own `RouteStats`, and corrupted traces must be
//! rejected with a precise first-divergence line number.

mod common;

use common::record_busch_with;
use hotpotato_sim::{NoopObserver, RouteStats};
use hotpotato_trace::{verify_trace, Trace};
use std::sync::OnceLock;

#[test]
fn golden_bf10_bitrev_verifies_with_zero_violations() {
    let (text, stats, _) = record_busch_with("bf:10", "bitrev", 7, NoopObserver);
    let trace = Trace::parse(&text).expect("recorded trace parses");
    let report = verify_trace(&trace).expect("zero violations");

    assert_eq!(report.packets, 1024);
    assert_eq!(report.delivered, 1024);
    assert_eq!(report.steps, stats.steps_run);
    assert!(
        report.replay_cross_checked,
        "bufferless trace must pass the independent replay audit"
    );

    // The acceptance bar: timelines rebuilt from the event stream alone
    // agree with the engine's own bookkeeping, packet by packet.
    assert_eq!(report.timelines.len(), stats.deflections.len());
    for (i, tl) in report.timelines.iter().enumerate() {
        assert_eq!(tl.injected_at, stats.injected_at[i], "packet {i} injection");
        assert_eq!(
            tl.delivered_at, stats.delivered_at[i],
            "packet {i} delivery"
        );
        assert_eq!(
            tl.deflections, stats.deflections[i],
            "packet {i} deflections"
        );
    }
    let total: u64 = stats.deflections.iter().map(|&d| u64::from(d)).sum();
    assert_eq!(report.deflections, total);
}

/// One small recorded run shared by the corruption tests.
fn small_trace() -> &'static (String, RouteStats) {
    static TRACE: OnceLock<(String, RouteStats)> = OnceLock::new();
    TRACE.get_or_init(|| {
        let (text, stats, _) = record_busch_with("bf:6", "bitrev", 1, NoopObserver);
        (text, stats)
    })
}

/// Rewrites the value of `"key":<value>` in a single JSONL line.
fn set_field(line: &str, key: &str, value: &str) -> String {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat).expect("field present") + pat.len();
    let end = line[start..].find([',', '}']).expect("value terminator") + start;
    format!("{}{}{}", &line[..start], value, &line[end..])
}

#[test]
fn corrupted_packet_id_is_rejected_at_the_exact_line() {
    let (text, _) = small_trace();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let victim = lines
        .iter()
        .position(|l| l.contains("\"ev\":\"move\""))
        .expect("trace has moves");
    lines[victim] = set_field(&lines[victim], "pkt", "100000");
    let trace = Trace::parse(&(lines.join("\n") + "\n")).unwrap();
    let err = verify_trace(&trace).unwrap_err();
    assert_eq!(err.line, victim + 1, "{err}");
    assert!(
        err.to_string().contains("first divergence"),
        "diagnostic names the divergence: {err}"
    );
}

#[test]
fn corrupted_step_counters_are_rejected_at_the_exact_line() {
    let (text, _) = small_trace();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let victim = lines
        .iter()
        .position(|l| l.contains("\"ev\":\"step\""))
        .expect("trace has steps");
    let old = &lines[victim];
    let bumped = {
        let pat = "\"deflections\":";
        let start = old.find(pat).unwrap() + pat.len();
        let end = old[start..].find([',', '}']).unwrap() + start;
        let n: u64 = old[start..end].parse().unwrap();
        set_field(old, "deflections", &(n + 1).to_string())
    };
    lines[victim] = bumped;
    let trace = Trace::parse(&(lines.join("\n") + "\n")).unwrap();
    let err = verify_trace(&trace).unwrap_err();
    assert_eq!(err.line, victim + 1, "{err}");
}

#[test]
fn truncated_trace_is_rejected() {
    let (text, _) = small_trace();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    lines.pop(); // drop the stats envelope
    let trace = Trace::parse(&(lines.join("\n") + "\n")).unwrap();
    assert!(verify_trace(&trace).is_err(), "missing stats must fail");
}

#[test]
fn tampered_stats_envelope_is_rejected() {
    let (text, _) = small_trace();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let last = lines.len() - 1;
    assert!(lines[last].contains("\"ev\":\"stats\""));
    lines[last] = set_field(&lines[last], "steps", "1");
    let trace = Trace::parse(&(lines.join("\n") + "\n")).unwrap();
    let err = verify_trace(&trace).unwrap_err();
    assert_eq!(err.line, last + 1, "{err}");
}
