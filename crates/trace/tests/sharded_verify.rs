//! Sharded verification equals sequential verification — on clean
//! traces (identical reports) and on corrupted ones (identical first
//! divergence: same line, same message, at any job count, regardless
//! of shard completion order).

mod common;

use common::record_busch_snapshots;
use hotpotato_trace::{verify_trace, verify_trace_sharded, ShardOptions, Trace, TraceEvent};
use std::sync::{Arc, OnceLock};

const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One snapshot-bearing recorded run shared by every test here.
fn snapshot_trace() -> &'static String {
    static TRACE: OnceLock<String> = OnceLock::new();
    TRACE.get_or_init(|| record_busch_snapshots("bf:8", "bitrev", 7).0)
}

fn opts(jobs: usize) -> ShardOptions {
    ShardOptions {
        jobs,
        progress: false,
    }
}

#[test]
fn sharded_report_matches_sequential_at_any_job_count() {
    let trace = Trace::parse(snapshot_trace()).expect("recorded trace parses");
    let snapshots = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Snapshot(_)))
        .count();
    assert!(
        snapshots > 1,
        "bf:8 runs multiple phases, so multiple seeds"
    );
    let seq = verify_trace(&trace).expect("clean trace verifies");
    let trace = Arc::new(trace);
    for jobs in JOB_COUNTS {
        let run = verify_trace_sharded(&trace, &opts(jobs)).expect("sharded verify succeeds");
        assert_eq!(run.jobs, jobs);
        assert_eq!(run.shards, snapshots + 1, "one segment per seed + head");
        let rep = &run.report;
        assert_eq!(rep.packets, seq.packets, "jobs={jobs}");
        assert_eq!(rep.delivered, seq.delivered, "jobs={jobs}");
        assert_eq!(rep.steps, seq.steps, "jobs={jobs}");
        assert_eq!(rep.deflections, seq.deflections, "jobs={jobs}");
        assert_eq!(rep.timelines, seq.timelines, "jobs={jobs}");
        assert!(rep.replay_cross_checked, "jobs={jobs}");
    }
}

/// Rewrites the value of `"key":<value>` in a single JSONL line.
fn set_field(line: &str, key: &str, value: &str) -> String {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat).expect("field present") + pat.len();
    let end = line[start..].find([',', '}']).expect("value terminator") + start;
    format!("{}{}{}", &line[..start], value, &line[end..])
}

/// Corrupts line `victim` (0-based) via `edit`, then asserts the
/// sequential and sharded verifiers report byte-identical first
/// divergences at every job count.
fn assert_same_divergence(victim: usize, edit: impl Fn(&str) -> String) {
    let mut lines: Vec<String> = snapshot_trace().lines().map(String::from).collect();
    lines[victim] = edit(&lines[victim]);
    let trace = Trace::parse(&(lines.join("\n") + "\n")).expect("still parses");
    let seq = verify_trace(&trace).expect_err("corruption must be caught");
    assert_eq!(seq.line, victim + 1, "sequential blames the edited line");
    let trace = Arc::new(trace);
    for jobs in JOB_COUNTS {
        let Err(par) = verify_trace_sharded(&trace, &opts(jobs)) else {
            panic!("jobs={jobs}: sharded verify must catch the corruption");
        };
        assert_eq!(
            (par.line, &par.msg),
            (seq.line, &seq.msg),
            "jobs={jobs}: first divergence must match the sequential verifier"
        );
    }
}

#[test]
fn corrupted_move_diverges_identically_at_any_job_count() {
    // Pick a move in the *second half* of the trace so several earlier
    // segments verify clean: completion order genuinely varies.
    let lines: Vec<&str> = snapshot_trace().lines().collect();
    let victim = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains("\"ev\":\"move\""))
        .map(|(i, _)| i)
        .rfind(|&i| i > lines.len() / 2)
        .expect("late move exists");
    assert_same_divergence(victim, |l| set_field(l, "pkt", "100000"));
}

#[test]
fn corrupted_snapshot_diverges_identically_at_any_job_count() {
    // Tamper with a checkpoint's counter total: the snapshot-consistency
    // law must blame the snapshot line itself, at any job count.
    let lines: Vec<&str> = snapshot_trace().lines().collect();
    let victim = lines
        .iter()
        .rposition(|l| l.contains("\"ev\":\"snapshot\""))
        .expect("trace has snapshots");
    assert_same_divergence(victim, |l| {
        let pat = "\"moves\":";
        let start = l.find(pat).unwrap() + pat.len();
        let end = l[start..].find(',').unwrap() + start;
        let n: u64 = l[start..end].parse().unwrap();
        set_field(l, "moves", &(n + 1).to_string())
    });
}

#[test]
fn corrupted_step_counter_diverges_identically_at_any_job_count() {
    let lines: Vec<&str> = snapshot_trace().lines().collect();
    let victim = lines
        .iter()
        .rposition(|l| l.contains("\"ev\":\"step\""))
        .expect("trace has steps");
    assert_same_divergence(victim, |l| {
        let pat = "\"deflections\":";
        let start = l.find(pat).unwrap() + pat.len();
        let end = l[start..].find(',').unwrap() + start;
        let n: u64 = l[start..end].parse().unwrap();
        set_field(l, "deflections", &(n + 1).to_string())
    });
}
