//! Synchronous network simulators for leveled-network routing.
//!
//! Two engines share the packet/problem model of `routing-core`:
//!
//! * [`Simulation`] — the **bufferless (hot-potato) engine** (paper §2.3):
//!   time is discrete; at each step every active packet *must* leave its
//!   current node; at most one packet traverses each edge per direction per
//!   step. Routing algorithms drive the engine by staging one exit per
//!   arriving packet each step; the engine enforces the hot-potato
//!   constraints, performs movement/absorption, and keeps statistics.
//! * [`store_forward`] — the **buffered engine** used by the
//!   store-and-forward baselines: per-edge output queues, one dequeue per
//!   edge per direction per step.
//!
//! The [`conflict`] module provides the shared conflict-resolution routine
//! (priority winners, *safe backward deflections* in the sense of the
//! paper's Lemma 2.1) used by both the paper's algorithm and the greedy
//! baselines. The [`streaming`] module drives the engine in the
//! *continuous-injection* (online) mode: an open-ended step loop fed by
//! an arrival process through bounded admission control, instead of the
//! batch run-to-quiesce loop.
//!
//! Cross-cutting layers on top of the engines:
//!
//! * [`observe`] — the [`RouteObserver`] event-sink trait (statically
//!   zero-cost when disabled) plus concrete sinks: [`MetricsObserver`],
//!   [`JsonlTraceObserver`], [`SectionProfiler`];
//! * [`router_api`] — the object-safe [`Router`] trait and shared
//!   [`RouteOutcome`] every routing algorithm implements;
//! * [`exchange`] — the double-buffered, never-blocking
//!   [`SnapshotPublisher`]/[`SnapshotReader`] handoff that live
//!   monitoring (the `serve` crate) uses to read mid-run metrics
//!   without touching the step loop's latency.

pub mod conflict;
pub mod engine;
pub mod exchange;
pub mod kinematics;
pub mod observe;
pub mod pool_core;
pub mod record;
pub mod router_api;
pub mod soa;
pub mod stats;
pub mod store_forward;
pub mod streaming;
pub mod summary;

pub use conflict::SlotView;
pub use engine::{
    AuditLevel, ExitKind, InjectOutcome, PacketStatus, SimError, Simulation, SimulationBuilder,
    StepReport,
};
pub use exchange::{snapshot_exchange, SnapshotPublisher, SnapshotReader};
pub use kinematics::SimPacket;
pub use observe::{
    JsonlTraceObserver, MetricsObserver, NoopObserver, RouteObserver, Section, SectionProfiler,
};
pub use record::{replay, MoveEvent, RunRecord, TrivialDelivery};
pub use router_api::{RouteOutcome, Router};
pub use soa::{BandStage, SoaEngine, SoaShared, NO_MOVE};
pub use stats::{RouteStats, Time};
pub use streaming::{
    route_streaming, route_streaming_observed, AdmissionControl, StreamPriority, StreamingConfig,
    StreamingOutcome,
};
pub use summary::Summary;
