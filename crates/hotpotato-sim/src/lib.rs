//! Synchronous network simulators for leveled-network routing.
//!
//! Two engines share the packet/problem model of `routing-core`:
//!
//! * [`Simulation`] — the **bufferless (hot-potato) engine** (paper §2.3):
//!   time is discrete; at each step every active packet *must* leave its
//!   current node; at most one packet traverses each edge per direction per
//!   step. Routing algorithms drive the engine by staging one exit per
//!   arriving packet each step; the engine enforces the hot-potato
//!   constraints, performs movement/absorption, and keeps statistics.
//! * [`store_forward`] — the **buffered engine** used by the
//!   store-and-forward baselines: per-edge output queues, one dequeue per
//!   edge per direction per step.
//!
//! The [`conflict`] module provides the shared conflict-resolution routine
//! (priority winners, *safe backward deflections* in the sense of the
//! paper's Lemma 2.1) used by both the paper's algorithm and the greedy
//! baselines.

pub mod conflict;
pub mod engine;
pub mod kinematics;
pub mod record;
pub mod stats;
pub mod store_forward;
pub mod summary;

pub use engine::{ExitKind, InjectOutcome, PacketStatus, SimError, Simulation, StepReport};
pub use kinematics::SimPacket;
pub use record::{replay, MoveEvent, RunRecord, TrivialDelivery};
pub use stats::{RouteStats, Time};
pub use summary::Summary;
