//! The algorithm-agnostic routing interface.
//!
//! Every routing algorithm in the workspace — the paper's Busch router
//! and all the baselines — reduces to the same contract: given a
//! [`RoutingProblem`] and a randomness source, deliver the packets and
//! report what happened. [`Router`] captures that contract behind a
//! single object-safe trait so benches, experiments, and the CLI can
//! dispatch over `&dyn Router` instead of per-algorithm match arms, and
//! [`RouteOutcome`] is the shared result shape (algorithm-specific
//! extras travel in [`RouteStats::counters`]).
//!
//! The concrete routers keep their inherent, fully-generic `route`
//! methods (monomorphized rng + observer: zero dispatch cost on hot
//! paths); the trait impls are thin shims over those.

use crate::observe::{NoopObserver, RouteObserver};
use crate::record::RunRecord;
use crate::stats::RouteStats;
use rand::RngCore;
use routing_core::RoutingProblem;
use std::sync::Arc;

/// Common result of a [`Router::route`] call.
///
/// Algorithm-specific outputs are folded into
/// [`RouteStats::counters`] under stable names — the Busch router adds
/// `"phases"`, `"invariant_violations"` and the per-invariant `inv_*`
/// counters; store-and-forward adds `"max_queue"`,
/// `"total_queue_wait"` and `"backpressure_stalls"`.
#[derive(Clone, Debug)]
pub struct RouteOutcome {
    /// Stable algorithm name (same as [`Router::name`]).
    pub algorithm: &'static str,
    /// Routing statistics.
    pub stats: RouteStats,
    /// Movement record, when the router was configured to keep one
    /// (verifiable with [`crate::record::replay`]).
    pub record: Option<RunRecord>,
}

/// An object-safe routing algorithm.
///
/// Implementations must be deterministic given the rng: the trait path
/// draws the same random sequence as the concrete inherent methods, so
/// a seed produces the identical run either way.
pub trait Router {
    /// Stable lowercase algorithm name (e.g. `"busch"`, `"greedy"`).
    fn name(&self) -> &'static str;

    /// Routes `problem`, feeding every engine and schedule event to
    /// `observer`. Pass [`NoopObserver`] (see [`Router::route_unobserved`])
    /// when no events are wanted.
    fn route(
        &self,
        problem: &Arc<RoutingProblem>,
        rng: &mut dyn RngCore,
        observer: &mut dyn RouteObserver,
    ) -> RouteOutcome;

    /// [`Router::route`] without an event sink.
    fn route_unobserved(
        &self,
        problem: &Arc<RoutingProblem>,
        rng: &mut dyn RngCore,
    ) -> RouteOutcome {
        self.route(problem, rng, &mut NoopObserver)
    }
}
