//! Per-packet movement bookkeeping: the *current path* as preselected path
//! plus deviation stack.
//!
//! The paper (§2.3) maintains each packet's *current path* as a list of
//! edges: traversing the first edge pops it, a deflection prepends the
//! deflection edge. We represent this equivalently as
//!
//! ```text
//! current path = reverse(deviation stack) ++ preselected[base_idx..]
//! ```
//!
//! where the deviation stack holds, for every traversal that left the
//! current path, the directed move that undoes it. This makes the
//! "distance from the preselected path" (paper §1.2's polylogarithmic
//! deviation claim) directly measurable as the stack depth, and makes the
//! paper's *edge recycling* under safe deflections O(1): the deflected
//! packet pushes the edge that the winning packet popped.
//!
//! For the paper's algorithm all deviation entries are forward moves
//! (deflections are backward, so their undo is forward), keeping the
//! current path a valid path. The representation also supports arbitrary
//! deflections (forward/sideways) used by unsafe baselines.

use leveled_net::ids::DirectedEdge;
use leveled_net::{EdgeId, LeveledNetwork, NodeId};
use routing_core::{PacketId, Path};

/// The dynamic state of one packet inside a [`crate::Simulation`], carrying
/// algorithm-specific metadata `M`.
#[derive(Clone, Debug)]
pub struct SimPacket<M> {
    /// The packet identifier (index into the routing problem).
    pub id: PacketId,
    /// Algorithm-specific metadata (state machine, frontier set, ...).
    pub meta: M,
    /// The directed move that brought the packet to its current node this
    /// step (`None` right after injection).
    pub last_move: Option<DirectedEdge>,
    node: NodeId,
    base_idx: usize,
    deviation: Vec<DirectedEdge>,
    deflections: u32,
    max_deviation: u32,
}

impl<M> SimPacket<M> {
    /// Creates the state for a packet standing at its source, before
    /// injection.
    pub fn new(id: PacketId, source: NodeId, meta: M) -> Self {
        SimPacket {
            id,
            meta,
            last_move: None,
            node: source,
            base_idx: 0,
            deviation: Vec::new(),
            deflections: 0,
            max_deviation: 0,
        }
    }

    /// The node the packet currently occupies.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The next move along the packet's current path: the top of the
    /// deviation stack, or the next preselected edge (forward), or `None`
    /// when the current path is exhausted (the packet is at its
    /// destination).
    // lint: hot-path
    #[inline]
    pub fn next_move(&self, path: &Path) -> Option<DirectedEdge> {
        if let Some(&mv) = self.deviation.last() {
            Some(mv)
        } else {
            path.edges()
                .get(self.base_idx)
                .map(|&e| DirectedEdge::forward(e))
        }
    }

    /// Depth of the deviation stack: how many moves the packet is away
    /// from its preselected path.
    #[inline]
    pub fn deviation_depth(&self) -> usize {
        self.deviation.len()
    }

    /// Whether the packet currently stands on its preselected path.
    #[inline]
    pub fn on_preselected(&self) -> bool {
        self.deviation.is_empty()
    }

    /// Number of deflections suffered so far.
    #[inline]
    pub fn deflections(&self) -> u32 {
        self.deflections
    }

    /// Largest deviation depth reached so far.
    #[inline]
    pub fn max_deviation(&self) -> u32 {
        self.max_deviation
    }

    /// Index of the next unconsumed edge of the preselected path.
    #[inline]
    pub fn base_idx(&self) -> usize {
        self.base_idx
    }

    /// The edges of the packet's *current path*, in order from the current
    /// node to the destination (deviation stack first, then the remainder
    /// of the preselected path). Used by congestion auditors (invariant
    /// `I_e`).
    pub fn current_path_edges<'a>(&'a self, path: &'a Path) -> impl Iterator<Item = EdgeId> + 'a {
        self.deviation
            .iter()
            .rev()
            .map(|mv| mv.edge)
            .chain(path.edges()[self.base_idx..].iter().copied())
    }

    /// Applies a committed move, updating position and path bookkeeping.
    /// `count_as_deflection` controls the deflection statistic (the engine
    /// passes the caller-declared [`crate::ExitKind`]).
    // lint: hot-path
    pub(crate) fn apply_move(
        &mut self,
        net: &LeveledNetwork,
        path: &Path,
        mv: DirectedEdge,
        count_as_deflection: bool,
    ) {
        debug_assert_eq!(net.move_origin(mv), self.node, "move starts elsewhere");
        if self.next_move(path) == Some(mv) {
            // Advancing along the current path: consume it.
            if self.deviation.pop().is_none() {
                self.base_idx += 1;
            }
        } else {
            // Leaving the current path: remember how to come back.
            self.deviation.push(mv.reversed());
            self.max_deviation = self.max_deviation.max(self.deviation.len() as u32);
        }
        if count_as_deflection {
            self.deflections += 1;
        }
        self.node = net.move_target(mv);
        self.last_move = Some(mv);
    }

    /// Validates that the current path is a valid forward path starting at
    /// the current node (the conclusion of the paper's Lemma 2.1). Returns
    /// the destination it leads to. Used by auditors and tests.
    pub fn validate_current_path(
        &self,
        net: &LeveledNetwork,
        path: &Path,
    ) -> Result<NodeId, String> {
        let mut at = self.node;
        for mv in self.deviation.iter().rev().copied().chain(
            path.edges()[self.base_idx..]
                .iter()
                .map(|&e| DirectedEdge::forward(e)),
        ) {
            if mv.dir != leveled_net::Direction::Forward {
                return Err(format!(
                    "{}: current path contains a backward move",
                    self.id
                ));
            }
            if net.move_origin(mv) != at {
                return Err(format!("{}: current path breaks at node {at}", self.id));
            }
            at = net.move_target(mv);
        }
        Ok(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders;
    use std::sync::Arc;

    fn line() -> (Arc<LeveledNetwork>, Path) {
        let net = Arc::new(builders::linear_array(5));
        let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
        let path = Path::from_nodes(&net, &nodes).unwrap();
        (net, path)
    }

    #[test]
    fn advances_along_preselected_path() {
        let (net, path) = line();
        let mut p = SimPacket::new(PacketId(0), NodeId(0), ());
        for i in 0..4 {
            let mv = p.next_move(&path).unwrap();
            assert_eq!(mv, DirectedEdge::forward(EdgeId(i)));
            p.apply_move(&net, &path, mv, false);
            assert!(p.on_preselected());
        }
        assert_eq!(p.node(), NodeId(4));
        assert_eq!(p.next_move(&path), None);
        assert_eq!(p.deflections(), 0);
        assert_eq!(p.max_deviation(), 0);
    }

    #[test]
    fn backward_deflection_pushes_undo_and_returns() {
        let (net, path) = line();
        let mut p = SimPacket::new(PacketId(0), NodeId(0), ());
        // Advance to node 2.
        for _ in 0..2 {
            let mv = p.next_move(&path).unwrap();
            p.apply_move(&net, &path, mv, false);
        }
        // Deflect backward along edge 1 (2 -> 1).
        let defl = DirectedEdge::backward(EdgeId(1));
        p.apply_move(&net, &path, defl, true);
        assert_eq!(p.node(), NodeId(1));
        assert_eq!(p.deviation_depth(), 1);
        assert_eq!(p.deflections(), 1);
        assert_eq!(p.max_deviation(), 1);
        // The undo move is forward along the same edge.
        assert_eq!(p.next_move(&path), Some(DirectedEdge::forward(EdgeId(1))));
        p.validate_current_path(&net, &path).unwrap();
        // Take it: back on the preselected path.
        let undo = p.next_move(&path).unwrap();
        p.apply_move(&net, &path, undo, false);
        assert!(p.on_preselected());
        assert_eq!(p.node(), NodeId(2));
        assert_eq!(p.next_move(&path), Some(DirectedEdge::forward(EdgeId(2))));
    }

    #[test]
    fn nested_deflections_unwind_in_order() {
        let (net, path) = line();
        let mut p = SimPacket::new(PacketId(0), NodeId(0), ());
        for _ in 0..3 {
            let mv = p.next_move(&path).unwrap();
            p.apply_move(&net, &path, mv, false);
        }
        // Two consecutive backward deflections: 3 -> 2 -> 1.
        p.apply_move(&net, &path, DirectedEdge::backward(EdgeId(2)), true);
        p.apply_move(&net, &path, DirectedEdge::backward(EdgeId(1)), true);
        assert_eq!(p.node(), NodeId(1));
        assert_eq!(p.deviation_depth(), 2);
        assert_eq!(p.max_deviation(), 2);
        p.validate_current_path(&net, &path).unwrap();
        // Unwind.
        let m1 = p.next_move(&path).unwrap();
        assert_eq!(m1, DirectedEdge::forward(EdgeId(1)));
        p.apply_move(&net, &path, m1, false);
        let m2 = p.next_move(&path).unwrap();
        assert_eq!(m2, DirectedEdge::forward(EdgeId(2)));
        p.apply_move(&net, &path, m2, false);
        assert_eq!(p.node(), NodeId(3));
        assert!(p.on_preselected());
    }

    #[test]
    fn current_path_edges_lists_deviation_then_base() {
        let (net, path) = line();
        let mut p = SimPacket::new(PacketId(0), NodeId(0), ());
        for _ in 0..2 {
            let mv = p.next_move(&path).unwrap();
            p.apply_move(&net, &path, mv, false);
        }
        p.apply_move(&net, &path, DirectedEdge::backward(EdgeId(1)), true);
        let edges: Vec<EdgeId> = p.current_path_edges(&path).collect();
        assert_eq!(edges, vec![EdgeId(1), EdgeId(2), EdgeId(3)]);
    }

    #[test]
    fn oscillation_is_push_pop_neutral() {
        // Moving back and forth across an edge (the wait-state oscillation)
        // leaves the current path unchanged, matching the paper's footnote
        // that the edge "remains in the path list".
        let (net, path) = line();
        let mut p = SimPacket::new(PacketId(0), NodeId(0), ());
        for _ in 0..2 {
            let mv = p.next_move(&path).unwrap();
            p.apply_move(&net, &path, mv, false);
        }
        let before: Vec<EdgeId> = p.current_path_edges(&path).collect();
        for _ in 0..3 {
            p.apply_move(&net, &path, DirectedEdge::backward(EdgeId(1)), false);
            p.apply_move(&net, &path, DirectedEdge::forward(EdgeId(1)), false);
        }
        let after: Vec<EdgeId> = p.current_path_edges(&path).collect();
        assert_eq!(p.node(), NodeId(2));
        assert_eq!(before, after);
        assert_eq!(p.deflections(), 0);
    }

    #[test]
    fn validate_detects_backward_entries() {
        let (net, path) = line();
        let mut p = SimPacket::new(PacketId(0), NodeId(0), ());
        let mv = p.next_move(&path).unwrap();
        p.apply_move(&net, &path, mv, false);
        // A *forward* off-path move (possible under unsafe baselines) makes
        // the current path invalid in the paper's sense.
        // From node 1 the only forward edge is edge 1 (on path), so emulate
        // on a diamond instead.
        let mut b = leveled_net::NetworkBuilder::new("d");
        let n0 = b.add_node(0);
        let n1 = b.add_node(1);
        let n2 = b.add_node(1);
        let n3 = b.add_node(2);
        let e01 = b.add_edge(n0, n1).unwrap();
        let _e02 = b.add_edge(n0, n2).unwrap();
        let e13 = b.add_edge(n1, n3).unwrap();
        let e23 = b.add_edge(n2, n3).unwrap();
        let dnet = b.build().unwrap();
        let dpath = Path::new(&dnet, n0, vec![e01, e13]).unwrap();
        let mut q = SimPacket::new(PacketId(1), n0, ());
        // Forward deflection onto the wrong branch.
        q.apply_move(&dnet, &dpath, DirectedEdge::forward(_e02), true);
        assert_eq!(q.node(), n2);
        assert!(q.validate_current_path(&dnet, &dpath).is_err());
        // It can still reach the destination by undoing.
        q.apply_move(&dnet, &dpath, q.next_move(&dpath).unwrap(), false);
        assert_eq!(q.node(), n0);
        assert!(q.on_preselected());
        let _ = e23;
    }
}
