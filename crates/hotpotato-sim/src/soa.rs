//! The data-oriented (structure-of-arrays) bufferless engine.
//!
//! [`SoaEngine`] is the cache-friendly twin of [`crate::Simulation`]: the
//! same hot-potato semantics (bufferless law, per-(edge, direction) slot
//! capacity, absorb-on-arrival), rebuilt around flat arrays so the
//! per-step inner loops stream over memory instead of chasing pointers:
//!
//! * **Packet state is SoA.** Position, last move, preselected-path
//!   cursor and deviation depth live in parallel `Vec<u32>`s indexed by
//!   packet id; the `Vec<DirectedEdge>` deviation stack of
//!   [`crate::SimPacket`] becomes a free-list arena of `(move, next)`
//!   pairs shared by all packets.
//! * **Moves are packed.** A directed edge traversal is a single `u32`
//!   (`edge << 1 | direction`), chosen so the packed value *is* the
//!   [`DirectedEdge::slot_index`] and reversing a move is `mv ^ 1`.
//! * **Slot occupancy is a bitset.** The per-step (edge, direction)
//!   claims live in `2·num_edges` bits (one cache line per ~512 slots)
//!   instead of a `u32` stamp array, and are cleared by iterating the
//!   staged moves rather than touching the whole table.
//! * **Preselected paths are CSR.** All paths are concatenated into one
//!   `path_mv` array with per-packet offsets, so following a path is a
//!   linear scan with no per-packet `Vec` indirection.
//!
//! The dispatch-read state is split into [`SoaShared`] behind an [`Arc`]:
//! a step driver clones the `Arc` to read arrivals/positions (including
//! from worker threads in the intra-run banded mode, see [`BandStage`]),
//! stages exits, drops its clones, and calls
//! [`SoaEngine::finish_step`], which reclaims exclusive access via
//! `Arc::get_mut` — no locks, no unsafe.
//!
//! The scalar engine remains the oracle: driven with the same decision
//! sequence, `SoaEngine` produces bit-identical [`RouteStats`], movement
//! records and observer event streams (the golden-equivalence tests in
//! the bench crate assert this end to end).

use crate::conflict::SlotView;
use crate::engine::{ExitKind, InjectOutcome, SimError, StepReport};
use crate::observe::{NoopObserver, RouteObserver};
use crate::record::{MoveEvent, RunRecord, TrivialDelivery};
use crate::stats::{RouteStats, Time};
use leveled_net::ids::{DirectedEdge, Direction};
use leveled_net::{EdgeId, LeveledNetwork};
use routing_core::{PacketId, RoutingProblem};
use std::sync::Arc;

/// Sentinel for "no move" / "empty list" in packed-move and arena-index
/// fields.
pub const NO_MOVE: u32 = u32::MAX;

/// Packet lifecycle tags (the SoA counterpart of
/// [`crate::PacketStatus`]).
pub const STATUS_PENDING: u8 = 0;
/// In flight.
pub const STATUS_ACTIVE: u8 = 1;
/// Absorbed at its destination.
pub const STATUS_DELIVERED: u8 = 2;

/// Staged-exit kind tags (the SoA counterpart of [`ExitKind`]).
pub const KIND_ADVANCE: u8 = 0;
/// Safe backward deflection (Lemma 2.1 edge recycling).
pub const KIND_DEFLECT_SAFE: u8 = 1;
/// Fallback (free-link) deflection.
pub const KIND_DEFLECT_FREE: u8 = 2;
/// Wait-state oscillation move.
pub const KIND_OSCILLATE: u8 = 3;
/// The injection move out of the source.
pub const KIND_INJECT: u8 = 4;

/// Packs a directed edge traversal into the engine's `u32` move
/// representation. The packed value equals [`DirectedEdge::slot_index`].
#[inline]
pub fn pack_move(mv: DirectedEdge) -> u32 {
    mv.slot_index() as u32
}

/// Unpacks a packed move back into a [`DirectedEdge`].
#[inline]
pub fn unpack_move(p: u32) -> DirectedEdge {
    DirectedEdge {
        edge: EdgeId(p >> 1),
        dir: if p & 1 == 0 {
            Direction::Forward
        } else {
            Direction::Backward
        },
    }
}

/// Widens a kind tag back into the engine's [`ExitKind`].
#[inline]
pub fn kind_of(tag: u8) -> ExitKind {
    match tag {
        KIND_ADVANCE => ExitKind::Advance,
        KIND_DEFLECT_SAFE => ExitKind::Deflect { safe: true },
        KIND_DEFLECT_FREE => ExitKind::Deflect { safe: false },
        KIND_OSCILLATE => ExitKind::Oscillate,
        _ => ExitKind::Inject,
    }
}

/// Packs one staged exit into a single word: the kind tag in the top 3
/// bits, the packed move in bits 32..61, the packet id in the low 32.
/// One push per staged exit (instead of one per column) is what keeps
/// [`BandStage::stage`] a two-store operation.
#[inline]
pub fn pack_staged(pkt: u32, mv: u32, kind: u8) -> u64 {
    debug_assert!(mv < 1 << 29, "move index overflows the staged-exit word");
    ((kind as u64) << 61) | ((mv as u64) << 32) | pkt as u64
}

/// The packet id of a packed staged exit.
#[inline]
pub fn staged_pkt(e: u64) -> u32 {
    e as u32
}

/// The packed move of a packed staged exit.
#[inline]
pub fn staged_mv(e: u64) -> u32 {
    (e >> 32) as u32 & ((1 << 29) - 1)
}

/// The kind tag of a packed staged exit.
#[inline]
pub fn staged_kind(e: u64) -> u8 {
    (e >> 61) as u8
}

#[inline]
fn bit_get(words: &[u64], i: u32) -> bool {
    words[(i >> 6) as usize] >> (i & 63) & 1 != 0
}

#[inline]
fn bit_set(words: &mut [u64], i: u32) {
    words[(i >> 6) as usize] |= 1u64 << (i & 63);
}

#[inline]
fn bit_clear(words: &mut [u64], i: u32) {
    words[(i >> 6) as usize] &= !(1u64 << (i & 63));
}

/// Removes `idx` from a swap-remove list, patching the moved element's
/// position entry.
// lint: hot-path
#[inline]
fn list_remove(list: &mut Vec<u32>, pos: &mut [u32], idx: u32) {
    let p = pos[idx as usize] as usize;
    debug_assert_eq!(list[p], idx);
    list.swap_remove(p);
    if let Some(&moved) = list.get(p) {
        pos[moved as usize] = p as u32;
    }
}

/// The per-packet columns every per-move hot loop touches — position,
/// arrival move, deviation-stack head and depth, preselected-path
/// cursor, destination — grouped into one 32-byte row so a move costs
/// one cache line of packet state instead of six. Grouping by access
/// pattern rather than one-array-per-field is the usual second step of
/// a data-oriented layout: the columns that are always read together
/// become a row, and the rarely-touched columns (status, stats,
/// per-packet path storage) stay in their own arrays.
#[derive(Clone, Copy, Debug)]
#[repr(align(32))]
pub struct Flight {
    /// Current node.
    pub node: u32,
    /// Destination node.
    pub dest: u32,
    /// Packed move that brought the packet here ([`NO_MOVE`] before
    /// injection).
    pub last_move: u32,
    /// Arena index of the deviation-stack top ([`NO_MOVE`] = on the
    /// preselected path).
    pub dev_head: u32,
    /// Current deviation-stack depth.
    pub dev_depth: u32,
    /// Absolute `path_mv` index of the next unconsumed preselected-path
    /// edge.
    pub path_next: u32,
    /// Absolute `path_mv` index one past the preselected path.
    pub path_end: u32,
}

/// The dispatch-read half of the engine's state: everything a step
/// driver (possibly on a worker thread) reads while deciding exits.
/// Mutated only inside [`SoaEngine::finish_step`], via `Arc::get_mut` —
/// which statically guarantees no reader exists while it changes.
pub struct SoaShared {
    /// Per-packet flight rows: every column the per-move hot loops
    /// touch, packed into one cache line per packet.
    pub flight: Vec<Flight>,
    /// Deviation arena: the packed undo move of each entry.
    pub dev_mv: Vec<u32>,
    /// Deviation arena: next entry down the stack ([`NO_MOVE`] = bottom);
    /// doubles as the free-list link for recycled entries.
    pub dev_next: Vec<u32>,
    /// Head of the arena free list ([`NO_MOVE`] = empty).
    pub dev_free: u32,
    /// CSR offsets into `path_mv`, `num_packets + 1` entries (immutable
    /// after construction; the mutable cursor lives in
    /// [`Flight::path_next`]).
    pub path_off: Vec<u32>,
    /// Concatenated preselected paths as packed forward moves.
    pub path_mv: Vec<u32>,
    /// Per-node arrival regions, `arr_stride` words each: the arriving
    /// packet ids in staged order. One strided arena instead of
    /// offset/length/data arrays means an arrival costs one cache line
    /// to record and one to read, with no prefix-summing or cursor
    /// restoration between steps.
    pub arrivals: Vec<u32>,
    /// Per-node `(epoch_tag << 8) | len`: node `v`'s region is valid iff
    /// the tag field equals `arr_tag`, so stale regions read as empty
    /// without ever being cleared. Folding the length into the same
    /// word keeps the hot validity check *and* the region length in one
    /// dense `num_nodes`-word array, so recording an arrival never
    /// loads from the (much larger) region arena.
    pub arr_meta: Vec<u32>,
    /// Words per node region of `arrivals`: the max degree (a node
    /// receives at most one packet per incident edge per step).
    pub arr_stride: u32,
    /// Tag of the current step's arrival regions (24 bits — the meta
    /// word keeps 8 for the length); bumped once per committed step, so
    /// regions written for earlier steps are dead without being touched.
    pub arr_tag: u32,
    /// Total arrivals recorded this step.
    pub arrivals_count: u32,
    /// Nodes with at least one arrival this step, ascending.
    pub occupied: Vec<u32>,
    /// Node-occupancy bitset scratch for the arena rebuild: set bits
    /// mirror `occupied` transiently inside
    /// [`SoaEngine::finish_step`], all-clear between steps.
    pub occ_words: Vec<u64>,
    /// Summary level of `occ_words` (one bit per word), same lifecycle.
    pub occ_sum: Vec<u64>,
}

impl SoaShared {
    /// Packet indices that arrived at node `v` this step, in staged
    /// order.
    #[inline]
    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    pub fn arrivals(&self, v: u32) -> &[u32] {
        let m = self.arr_meta[v as usize];
        if (m >> 8) != self.arr_tag {
            return &[];
        }
        let base = (v * self.arr_stride) as usize;
        &self.arrivals[base..base + (m & 0xFF) as usize]
    }

    /// The next packed move along packet `pkt`'s current path: the
    /// deviation-stack top, else the next preselected edge (forward),
    /// else [`NO_MOVE`] (the packet stands at its destination).
    // lint: hot-path
    #[inline]
    pub fn next_move(&self, pkt: u32) -> u32 {
        let f = &self.flight[pkt as usize];
        if f.dev_head != NO_MOVE {
            return self.dev_mv[f.dev_head as usize];
        }
        if f.path_next < f.path_end {
            self.path_mv[f.path_next as usize]
        } else {
            NO_MOVE
        }
    }

    /// The edges of packet `pkt`'s *current path*, in order from its
    /// current node to its destination: deviation stack top-down, then
    /// the remainder of the preselected path (the same order as
    /// [`crate::SimPacket::current_path_edges`]).
    pub fn current_path_edges(&self, pkt: u32) -> impl Iterator<Item = EdgeId> + '_ {
        let f = &self.flight[pkt as usize];
        let mut cur = f.dev_head;
        let dev = std::iter::from_fn(move || {
            if cur == NO_MOVE {
                return None;
            }
            let mv = self.dev_mv[cur as usize];
            cur = self.dev_next[cur as usize];
            Some(EdgeId(mv >> 1))
        });
        let base = self.path_mv[f.path_next as usize..f.path_end as usize]
            .iter()
            .map(|&mv| EdgeId(mv >> 1));
        dev.chain(base)
    }

    /// Validates that packet `pkt`'s current path is a valid forward path
    /// starting at its current node (the conclusion of the paper's
    /// Lemma 2.1) — the SoA counterpart of
    /// [`crate::SimPacket::validate_current_path`].
    pub fn validate_current_path(&self, net: &LeveledNetwork, pkt: u32) -> bool {
        let f = &self.flight[pkt as usize];
        let mut at = f.node;
        let mut cur = f.dev_head;
        while cur != NO_MOVE {
            let mv = self.dev_mv[cur as usize];
            if mv & 1 != 0 {
                return false; // backward move in a current path
            }
            let e = net.edge(EdgeId(mv >> 1));
            if e.tail.0 != at {
                return false;
            }
            at = e.head.0;
            cur = self.dev_next[cur as usize];
        }
        for off in f.path_next..f.path_end {
            let e = net.edge(EdgeId(self.path_mv[off as usize] >> 1));
            if e.tail.0 != at {
                return false;
            }
            at = e.head.0;
        }
        true
    }
}

/// Band-local staging buffer for one shard of a step's dispatch.
///
/// During the dispatch half of a step, every staged move originates at
/// the node being processed, and each (edge, direction) slot has exactly
/// one origin node — so shards that partition the nodes can never
/// contend for a slot, and each can track its claims in a private bitset
/// with no cross-thread slot state at all. The claims become global in
/// [`SoaEngine::merge_band`], called shard-by-shard in fixed band order
/// on the coordinating thread.
///
/// The sequential path uses a single `BandStage` over all nodes, which
/// makes it decision-for-decision identical to the banded path with one
/// band — and, driven with the scalar driver's decision sequence,
/// bit-identical to the scalar engine.
pub struct BandStage {
    net: Arc<LeveledNetwork>,
    slot_words: Vec<u64>,
    /// Staged exits in staging order, packed per [`pack_staged`].
    pub staged: Vec<u64>,
}

impl BandStage {
    /// An empty stage over `net`'s slot space.
    pub fn new(net: Arc<LeveledNetwork>) -> Self {
        let words = (2 * net.num_edges()).div_ceil(64);
        BandStage {
            net,
            slot_words: vec![0; words],
            staged: Vec::new(),
        }
    }

    /// Stages packet `pkt` on packed move `mv`, claiming its slot in the
    /// band-local bitset. The caller (the step driver) guarantees the
    /// packet is active, unstaged, and at the move's origin.
    // lint: hot-path
    #[inline]
    pub fn stage(&mut self, pkt: u32, mv: u32, kind: u8) {
        debug_assert!(!bit_get(&self.slot_words, mv), "slot staged twice");
        bit_set(&mut self.slot_words, mv);
        self.staged.push(pack_staged(pkt, mv, kind));
    }

    /// Number of staged exits.
    #[inline]
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// Whether nothing is staged.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }
}

impl SlotView for BandStage {
    #[inline]
    fn network(&self) -> &LeveledNetwork {
        &self.net
    }

    #[inline]
    fn slot_free(&self, mv: DirectedEdge) -> bool {
        !bit_get(&self.slot_words, mv.slot_index() as u32)
    }
}

/// The structure-of-arrays bufferless engine. See the module docs for
/// the layout; the step protocol matches [`crate::Simulation`]:
/// dispatch exits for every arrival (via [`BandStage`]s merged with
/// [`SoaEngine::merge_band`]), inject with [`SoaEngine::try_inject`],
/// then commit with [`SoaEngine::finish_step`].
pub struct SoaEngine<O = NoopObserver> {
    problem: Arc<RoutingProblem>,
    net: Arc<LeveledNetwork>,
    shared: Arc<SoaShared>,
    status: Vec<u8>,
    /// Global per-step slot claims (one bit per (edge, direction)).
    slot_words: Vec<u64>,
    /// The step's committed staged exits, packed per [`pack_staged`].
    staged: Vec<u64>,
    /// Arrivals staged this step (exits, not injections).
    staged_arrivals: u32,
    active_list: Vec<u32>,
    pending_list: Vec<u32>,
    list_pos: Vec<u32>,
    delivered: usize,
    now: Time,
    stats: RouteStats,
    record: Option<RunRecord>,
    observer: O,
}

impl<O: RouteObserver> SoaEngine<O> {
    /// Builds the engine over `problem`. `trace` enables the per-step
    /// active-count trace, `recording` the full movement record for
    /// [`crate::replay::verify`].
    pub fn new(problem: Arc<RoutingProblem>, trace: bool, recording: bool, observer: O) -> Self {
        let net = problem.network_arc();
        let n = problem.num_packets();
        let nv = net.num_nodes();
        let ne = net.num_edges();
        let arr_stride = net.max_degree() as u32;
        assert!(
            arr_stride < 256,
            "the SoA arrival meta word keeps 8 bits for the region length; \
             a node of degree {arr_stride} cannot be encoded"
        );

        let mut path_off = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        path_off.push(0);
        for spec in problem.packets() {
            total += spec.path.edges().len() as u32;
            path_off.push(total);
        }
        let mut path_mv = Vec::with_capacity(total as usize);
        let mut flight = Vec::with_capacity(n);
        for (i, spec) in problem.packets().iter().enumerate() {
            for &e in spec.path.edges() {
                path_mv.push(e.0 << 1);
            }
            flight.push(Flight {
                node: spec.path.source().0,
                dest: spec.path.dest(&net).0,
                last_move: NO_MOVE,
                dev_head: NO_MOVE,
                dev_depth: 0,
                path_next: path_off[i],
                path_end: path_off[i + 1],
            });
        }

        let mut stats = RouteStats::new(n);
        if trace {
            stats.active_trace = Some(Vec::new());
        }
        SoaEngine {
            problem,
            net,
            shared: Arc::new(SoaShared {
                flight,
                dev_mv: Vec::new(),
                dev_next: Vec::new(),
                dev_free: NO_MOVE,
                path_off,
                path_mv,
                arrivals: vec![0; nv * arr_stride as usize],
                arr_meta: vec![0; nv],
                arr_stride,
                arr_tag: 0,
                arrivals_count: 0,
                occupied: Vec::new(),
                occ_words: vec![0; nv.div_ceil(64)],
                occ_sum: vec![0; nv.div_ceil(64).div_ceil(64)],
            }),
            status: vec![STATUS_PENDING; n],
            slot_words: vec![0; (2 * ne).div_ceil(64)],
            staged: Vec::new(),
            staged_arrivals: 0,
            active_list: Vec::with_capacity(n),
            pending_list: (0..n as u32).collect(),
            list_pos: (0..n as u32).collect(),
            delivered: 0,
            now: 0,
            stats,
            record: if recording {
                Some(RunRecord::default())
            } else {
                None
            },
            observer,
        }
    }

    /// The dispatch-read state; step drivers clone the `Arc` for the
    /// duration of a dispatch and must drop every clone before
    /// [`SoaEngine::finish_step`].
    #[inline]
    pub fn shared(&self) -> &Arc<SoaShared> {
        &self.shared
    }

    /// The routing problem being simulated.
    #[inline]
    pub fn problem(&self) -> &RoutingProblem {
        &self.problem
    }

    /// The underlying network (also reachable through
    /// [`SlotView::network`]).
    #[inline]
    pub fn net(&self) -> &Arc<LeveledNetwork> {
        &self.net
    }

    /// Current simulation time (step number).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Whether every packet has been delivered.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.delivered == self.status.len()
    }

    /// Number of delivered packets.
    #[inline]
    pub fn delivered_count(&self) -> usize {
        self.delivered
    }

    /// Lifecycle tag of packet `pkt` (`STATUS_*`).
    #[inline]
    pub fn status(&self, pkt: u32) -> u8 {
        self.status[pkt as usize]
    }

    /// The maintained active-packet list, unordered (see
    /// [`crate::Simulation::active_slice`]).
    #[inline]
    pub fn active_slice(&self) -> &[u32] {
        &self.active_list
    }

    /// The maintained pending-packet list, unordered.
    #[inline]
    pub fn pending_slice(&self) -> &[u32] {
        &self.pending_list
    }

    /// Mutable handle to the run statistics (for algorithm counters).
    #[inline]
    pub fn stats_mut(&mut self) -> &mut RouteStats {
        &mut self.stats
    }

    /// Read-only handle to the run statistics.
    #[inline]
    pub fn stats(&self) -> &RouteStats {
        &self.stats
    }

    /// Mutable access to the attached event sink.
    #[inline]
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Commits a band's staged exits into the engine: claims the global
    /// slots, appends to the step's staged list (preserving band staging
    /// order), and resets the band for its next shard. Bands must be
    /// merged in band-index order — that order *is* the reduction order
    /// that makes the sharded step deterministic.
    // lint: hot-path
    pub fn merge_band(&mut self, band: &mut BandStage) {
        self.staged_arrivals += band.staged.len() as u32;
        if self.staged.is_empty() {
            // First band of the step: the engine has nothing staged and a
            // clear slot bitset, so adopt the band's buffers wholesale —
            // its claimed bits become the global bits and it inherits the
            // engine's (clear) bitset and (empty) staging list for the
            // next shard. O(1) instead of a copy; in sequential one-band
            // runs this makes the merge free.
            debug_assert!(self.slot_words.iter().all(|&w| w == 0));
            std::mem::swap(&mut self.slot_words, &mut band.slot_words);
            std::mem::swap(&mut self.staged, &mut band.staged);
            return;
        }
        for &e in &band.staged {
            let mv = staged_mv(e);
            debug_assert!(
                !bit_get(&self.slot_words, mv),
                "band slot collision: shards must partition move origins"
            );
            bit_set(&mut self.slot_words, mv);
            bit_clear(&mut band.slot_words, mv);
            self.staged.push(e);
        }
        band.staged.clear();
    }

    /// Attempts to inject pending packet `pkt` — same semantics and
    /// outcome set as [`crate::Simulation::try_inject`].
    // lint: hot-path
    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    pub fn try_inject(&mut self, pkt: u32) -> InjectOutcome {
        let i = pkt as usize;
        debug_assert_eq!(self.status[i], STATUS_PENDING);
        let sh = &self.shared;
        let f = &sh.flight[i];
        if f.path_next == f.path_end {
            // Trivial path: delivered without entering the network.
            self.status[i] = STATUS_DELIVERED;
            self.delivered += 1;
            list_remove(&mut self.pending_list, &mut self.list_pos, pkt);
            self.stats.injected_at[i] = Some(self.now);
            self.stats.delivered_at[i] = Some(self.now);
            if let Some(rec) = self.record.as_mut() {
                rec.trivial.push(TrivialDelivery {
                    time: self.now,
                    pkt: PacketId(pkt),
                });
            }
            self.observer.on_trivial(self.now, pkt);
            return InjectOutcome::DeliveredTrivially;
        }
        let mv = sh.path_mv[f.path_next as usize];
        if bit_get(&self.slot_words, mv) {
            return InjectOutcome::Blocked;
        }
        bit_set(&mut self.slot_words, mv);
        self.status[i] = STATUS_ACTIVE;
        list_remove(&mut self.pending_list, &mut self.list_pos, pkt);
        self.list_pos[i] = self.active_list.len() as u32;
        self.active_list.push(pkt);
        self.staged.push(pack_staged(pkt, mv, KIND_INJECT));
        InjectOutcome::Injected
    }

    /// Names the arrival that was left resting (cold path of the
    /// bufferless check).
    // lint: trusted(cold diagnosis path: allocates once, immediately before the
    // run aborts with the error it names)
    #[cold]
    fn find_rested(&self) -> SimError {
        let sh = &self.shared;
        let mut staged = vec![false; self.status.len()];
        for &e in &self.staged {
            if staged_kind(e) != KIND_INJECT {
                staged[staged_pkt(e) as usize] = true;
            }
        }
        for &v in &sh.occupied {
            for &p in sh.arrivals(v) {
                if !staged[p as usize] {
                    return SimError::PacketRested(PacketId(p));
                }
            }
        }
        unreachable!("staged-arrival count mismatch without a resting packet");
    }

    /// Applies all staged exits: verifies the bufferless constraint,
    /// moves packets, absorbs arrivals at destinations, rebuilds the
    /// arrival arena, clears the slot bitset via the staged list, and
    /// advances the clock. Mirrors [`crate::Simulation::finish_step`]
    /// event for event.
    // lint: hot-path
    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    pub fn finish_step(&mut self) -> Result<StepReport, SimError> {
        if self.staged_arrivals != self.shared.arrivals_count {
            return Err(self.find_rested());
        }
        let sh = Arc::get_mut(&mut self.shared)
            .expect("dispatch must drop its SoaShared clones before finish_step");

        let mut report = StepReport::default();
        let step = self.now;
        // The outgoing step's arrival regions die by tag, not by
        // clearing: bump the tag and write next step's arrivals directly
        // as moves commit. (Tag 0 is reserved for never-written regions,
        // so on the rare 24-bit wraparound the meta words are flushed
        // wholesale.)
        if sh.arr_tag == (1 << 24) - 1 {
            sh.arr_tag = 0;
            sh.arr_meta.fill(0);
        }
        let new_tag = sh.arr_tag + 1;
        let stride = sh.arr_stride;
        let mut arrivals_count = 0u32;
        sh.occupied.clear();
        for s in 0..self.staged.len() {
            // Touch the flight row and edge record a few exits ahead so
            // their cache misses overlap this iteration's work — the two
            // loads are data-independent across staged exits, but far
            // apart in memory.
            if let Some(&ahead) = self.staged.get(s + 12) {
                std::hint::black_box(sh.flight[staged_pkt(ahead) as usize].node);
                std::hint::black_box(self.net.edge(EdgeId(staged_mv(ahead) >> 1)).head);
            }
            let entry = self.staged[s];
            let pkt = staged_pkt(entry);
            let mv = staged_mv(entry);
            let kind = staged_kind(entry);
            let i = pkt as usize;
            if let Some(rec) = self.record.as_mut() {
                rec.moves.push(MoveEvent {
                    time: step,
                    pkt: PacketId(pkt),
                    mv: unpack_move(mv),
                    kind: kind_of(kind),
                });
            }
            self.observer
                .on_move(step, pkt, unpack_move(mv), kind_of(kind));

            // Kinematics: consume the current path or push the undo move.
            // Advances and injections staged `next_move` verbatim, so the
            // consume/undo comparison is already decided; deflections and
            // oscillations can coincidentally retrace the deviation
            // stack, so they take the full comparison. The per-kind
            // counters fold into the same dispatch so each move branches
            // on its kind once.
            let mut f = sh.flight[i];
            let head = f.dev_head;
            let consumes = match kind {
                KIND_ADVANCE => {
                    debug_assert_eq!(sh.next_move(pkt), mv, "advance is the current next move");
                    true
                }
                KIND_INJECT => {
                    debug_assert_eq!(sh.next_move(pkt), mv, "injection is the first path move");
                    report.injected += 1;
                    self.stats.injected_at[i] = Some(step);
                    true
                }
                _ => {
                    if kind == KIND_OSCILLATE {
                        report.oscillations += 1;
                    } else {
                        report.deflections += 1;
                        self.stats.deflections[i] += 1;
                        if kind == KIND_DEFLECT_FREE {
                            report.fallback_deflections += 1;
                        }
                    }
                    let next = if head != NO_MOVE {
                        sh.dev_mv[head as usize]
                    } else if f.path_next < f.path_end {
                        sh.path_mv[f.path_next as usize]
                    } else {
                        NO_MOVE
                    };
                    next == mv
                }
            };
            if consumes {
                if head != NO_MOVE {
                    f.dev_head = sh.dev_next[head as usize];
                    sh.dev_next[head as usize] = sh.dev_free;
                    sh.dev_free = head;
                    f.dev_depth -= 1;
                } else {
                    f.path_next += 1;
                }
            } else {
                let undo = mv ^ 1;
                let slot = if sh.dev_free != NO_MOVE {
                    let slot = sh.dev_free;
                    sh.dev_free = sh.dev_next[slot as usize];
                    sh.dev_mv[slot as usize] = undo;
                    sh.dev_next[slot as usize] = head;
                    slot
                } else {
                    sh.dev_mv.push(undo);
                    sh.dev_next.push(head);
                    (sh.dev_mv.len() - 1) as u32
                };
                f.dev_head = slot;
                f.dev_depth += 1;
                if f.dev_depth > self.stats.max_deviation[i] {
                    self.stats.max_deviation[i] = f.dev_depth;
                }
            }
            report.moved += 1;
            let e = self.net.edge(EdgeId(mv >> 1));
            let target = if mv & 1 == 0 { e.head.0 } else { e.tail.0 };
            f.node = target;
            f.last_move = mv;
            sh.flight[i] = f;

            if target == f.dest {
                self.status[i] = STATUS_DELIVERED;
                self.delivered += 1;
                list_remove(&mut self.active_list, &mut self.list_pos, pkt);
                self.stats.delivered_at[i] = Some(step + 1);
                self.observer.on_deliver(step + 1, pkt);
                report.absorbed += 1;
            } else {
                let m = sh.arr_meta[target as usize];
                let len = if (m >> 8) == new_tag {
                    m & 0xFF
                } else {
                    sh.occ_words[(target >> 6) as usize] |= 1u64 << (target & 63);
                    sh.occ_sum[(target >> 12) as usize] |= 1u64 << ((target >> 6) & 63);
                    0
                };
                sh.arr_meta[target as usize] = (new_tag << 8) | (len + 1);
                sh.arrivals[(target * stride + len) as usize] = pkt;
                arrivals_count += 1;
            }
        }
        if report.fallback_deflections > 0 {
            self.stats
                .bump_by("fallback_deflections", report.fallback_deflections as u64);
        }

        // Clear the slot bitset via the staged moves (every set bit came
        // from a staged exit or injection), then recover the ascending
        // occupied-node list from the occupancy bits.
        for &e in &self.staged {
            bit_clear(&mut self.slot_words, staged_mv(e));
        }
        self.staged.clear();
        self.staged_arrivals = 0;

        // The ascending `occupied` order is part of the pinned decision
        // sequence (node visit order feeds the rng draws). An in-order
        // sweep of the two-level occupancy bitset recovers it in
        // O(num_nodes / 4096 + touched words): the summary word steers
        // the sweep straight to occupied words, so nothing is loaded,
        // stored, or sorted for the empty stretches in between.
        for sw in 0..sh.occ_sum.len() {
            let mut sbits = sh.occ_sum[sw];
            if sbits == 0 {
                continue;
            }
            sh.occ_sum[sw] = 0;
            while sbits != 0 {
                let w = (sw << 6) | sbits.trailing_zeros() as usize;
                sbits &= sbits - 1;
                let mut bits = sh.occ_words[w];
                sh.occ_words[w] = 0;
                while bits != 0 {
                    sh.occupied.push((w as u32) << 6 | bits.trailing_zeros());
                    bits &= bits - 1;
                }
            }
        }
        sh.arr_tag = new_tag;
        sh.arrivals_count = arrivals_count;

        self.now += 1;
        if let Some(trace) = self.stats.active_trace.as_mut() {
            trace.push(self.active_list.len() as u32);
        }
        self.observer
            .on_step_end(step, &report, self.active_list.len());
        Ok(report)
    }

    /// Advances the clock across `n` steps known to be idle: no arrivals
    /// in flight and nothing staged. Emits exactly what `n` calls of
    /// [`SoaEngine::finish_step`] would on an idle engine — one
    /// active-trace sample and one observer step call per step — so a
    /// run that fast-forwards its idle stretches is indistinguishable
    /// from one that grinds them (hot-potato phases leave long gaps
    /// where nothing is in flight and nothing is due for injection).
    // lint: hot-path
    pub fn skip_idle(&mut self, n: u64) {
        debug_assert!(
            self.shared.arrivals_count == 0,
            "idle skip with arrivals in flight"
        );
        debug_assert!(self.staged.is_empty(), "idle skip with staged exits");
        let report = StepReport::default();
        let active = self.active_list.len();
        for _ in 0..n {
            if let Some(trace) = self.stats.active_trace.as_mut() {
                trace.push(active as u32);
            }
            self.observer.on_step_end(self.now, &report, active);
            self.now += 1;
        }
    }

    /// Consumes the engine and returns the statistics together with the
    /// movement record (if recording was enabled).
    pub fn into_parts(mut self) -> (RouteStats, Option<RunRecord>) {
        self.stats.steps_run = self.now;
        (self.stats, self.record)
    }
}

impl<O: RouteObserver> SlotView for SoaEngine<O> {
    #[inline]
    fn network(&self) -> &LeveledNetwork {
        &self.net
    }

    #[inline]
    fn slot_free(&self, mv: DirectedEdge) -> bool {
        !bit_get(&self.slot_words, mv.slot_index() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::{builders, NodeId};
    use routing_core::Path;

    fn line_problem(paths: Vec<Vec<u32>>) -> Arc<RoutingProblem> {
        let net = Arc::new(builders::linear_array(6));
        let ps = paths
            .into_iter()
            .map(|nodes| {
                let nodes: Vec<NodeId> = nodes.into_iter().map(NodeId).collect();
                Path::from_nodes(&net, &nodes).unwrap()
            })
            .collect();
        Arc::new(RoutingProblem::new(net, ps).unwrap())
    }

    #[test]
    fn move_packing_round_trips() {
        for e in [0u32, 1, 7] {
            for dir in [Direction::Forward, Direction::Backward] {
                let mv = DirectedEdge {
                    edge: EdgeId(e),
                    dir,
                };
                assert_eq!(unpack_move(pack_move(mv)), mv);
                assert_eq!(pack_move(mv) as usize, mv.slot_index());
                assert_eq!(unpack_move(pack_move(mv) ^ 1), mv.reversed());
            }
        }
    }

    #[test]
    fn single_packet_advances_to_destination() {
        let prob = line_problem(vec![vec![0, 1, 2, 3]]);
        let net = prob.network_arc();
        let mut sim: SoaEngine = SoaEngine::new(prob, true, false, NoopObserver);
        assert_eq!(sim.try_inject(0), InjectOutcome::Injected);
        sim.finish_step().unwrap();
        assert_eq!(sim.status(0), STATUS_ACTIVE);
        let mut band = BandStage::new(net);
        for _ in 0..2 {
            let sh = Arc::clone(sim.shared());
            for &v in &sh.occupied {
                for &p in sh.arrivals(v) {
                    band.stage(p, sh.next_move(p), KIND_ADVANCE);
                }
            }
            drop(sh);
            sim.merge_band(&mut band);
            sim.finish_step().unwrap();
        }
        assert!(sim.is_done());
        let (stats, _) = sim.into_parts();
        assert_eq!(stats.injected_at[0], Some(0));
        assert_eq!(stats.delivered_at[0], Some(3));
        assert_eq!(stats.deflections[0], 0);
        assert_eq!(stats.active_trace.unwrap(), vec![1, 1, 0]);
    }

    #[test]
    fn trivial_path_delivered_at_injection() {
        let net = Arc::new(builders::linear_array(3));
        let prob = Arc::new(
            RoutingProblem::new(Arc::clone(&net), vec![Path::trivial(NodeId(1))]).unwrap(),
        );
        let mut sim: SoaEngine = SoaEngine::new(prob, false, true, NoopObserver);
        assert_eq!(sim.try_inject(0), InjectOutcome::DeliveredTrivially);
        assert!(sim.is_done());
        let (stats, record) = sim.into_parts();
        assert_eq!(stats.injected_at[0], Some(0));
        assert_eq!(record.unwrap().trivial.len(), 1);
    }

    #[test]
    fn deflection_updates_deviation_and_unwinds() {
        let prob = line_problem(vec![vec![0, 1, 2, 3]]);
        let net = prob.network_arc();
        let mut sim: SoaEngine = SoaEngine::new(prob, false, false, NoopObserver);
        sim.try_inject(0);
        sim.finish_step().unwrap();
        // Deflect backward along edge 0 (unsafe), then walk home.
        let mut band = BandStage::new(net);
        band.stage(
            0,
            pack_move(DirectedEdge::backward(EdgeId(0))),
            KIND_DEFLECT_FREE,
        );
        sim.merge_band(&mut band);
        let report = sim.finish_step().unwrap();
        assert_eq!(report.deflections, 1);
        assert_eq!(report.fallback_deflections, 1);
        assert_eq!(sim.shared().flight[0].dev_depth, 1);
        assert!(sim.shared().validate_current_path(sim.net(), 0));
        while !sim.is_done() {
            let sh = Arc::clone(sim.shared());
            for &v in &sh.occupied {
                for &p in sh.arrivals(v) {
                    band.stage(p, sh.next_move(p), KIND_ADVANCE);
                }
            }
            drop(sh);
            sim.merge_band(&mut band);
            sim.finish_step().unwrap();
        }
        let (stats, _) = sim.into_parts();
        assert_eq!(stats.deflections[0], 1);
        assert_eq!(stats.max_deviation[0], 1);
        assert_eq!(stats.counter("fallback_deflections"), 1);
        assert_eq!(stats.delivered_at[0], Some(5));
    }

    #[test]
    fn resting_packet_is_detected() {
        let prob = line_problem(vec![vec![0, 1, 2]]);
        let mut sim: SoaEngine = SoaEngine::new(prob, false, false, NoopObserver);
        sim.try_inject(0);
        sim.finish_step().unwrap();
        assert_eq!(
            sim.finish_step().unwrap_err(),
            SimError::PacketRested(PacketId(0))
        );
    }

    #[test]
    fn injection_blocked_by_claimed_slot() {
        let prob = line_problem(vec![vec![0, 1, 2], vec![1, 2, 3]]);
        let net = prob.network_arc();
        let mut sim: SoaEngine = SoaEngine::new(prob, false, false, NoopObserver);
        sim.try_inject(0);
        sim.finish_step().unwrap();
        // p0 at node 1 advances over edge 1; p1's injection (edge 1 fwd)
        // must block, then succeed next step.
        let mut band = BandStage::new(net);
        band.stage(0, pack_move(DirectedEdge::forward(EdgeId(1))), KIND_ADVANCE);
        sim.merge_band(&mut band);
        assert_eq!(sim.try_inject(1), InjectOutcome::Blocked);
        sim.finish_step().unwrap();
        assert_eq!(sim.try_inject(1), InjectOutcome::Injected);
    }

    #[test]
    fn current_path_edges_lists_deviation_then_base() {
        let prob = line_problem(vec![vec![0, 1, 2, 3, 4]]);
        let net = prob.network_arc();
        let mut sim: SoaEngine = SoaEngine::new(prob, false, false, NoopObserver);
        sim.try_inject(0);
        sim.finish_step().unwrap();
        let mut band = BandStage::new(net);
        band.stage(0, pack_move(DirectedEdge::forward(EdgeId(1))), KIND_ADVANCE);
        sim.merge_band(&mut band);
        sim.finish_step().unwrap();
        band.stage(
            0,
            pack_move(DirectedEdge::backward(EdgeId(1))),
            KIND_DEFLECT_SAFE,
        );
        sim.merge_band(&mut band);
        sim.finish_step().unwrap();
        let edges: Vec<EdgeId> = sim.shared().current_path_edges(0).collect();
        assert_eq!(edges, vec![EdgeId(1), EdgeId(2), EdgeId(3)]);
    }
}
