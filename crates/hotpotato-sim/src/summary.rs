//! Distribution summaries (mean/std/percentiles) for run metrics.

/// A five-number-plus summary of a sample: count, mean, standard
/// deviation, min/max, and the 50th/90th/99th percentiles
/// (nearest-rank on the sorted sample).
///
/// ```
/// use hotpotato_sim::Summary;
///
/// let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(s.count, 4);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.p50, 2.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 90th percentile (nearest rank).
    pub p90: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
}

impl serde::Serialize for Summary {
    fn to_json(&self) -> serde::Value {
        serde::Value::object([
            ("count", self.count.to_json()),
            ("mean", self.mean.to_json()),
            ("std", self.std.to_json()),
            ("min", self.min.to_json()),
            ("max", self.max.to_json()),
            ("p50", self.p50.to_json()),
            ("p90", self.p90.to_json()),
            ("p99", self.p99.to_json()),
        ])
    }
}

impl Summary {
    /// Summarizes a sample (empty samples yield the zero summary).
    pub fn of(sample: &[f64]) -> Summary {
        if sample.is_empty() {
            return Summary::default();
        }
        let mut sorted: Vec<f64> = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let pct = |q: f64| -> f64 {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            sorted[rank - 1]
        };
        Summary {
            count: n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        }
    }

    /// Summarizes an integer sample.
    pub fn of_u32(sample: &[u32]) -> Summary {
        let v: Vec<f64> = sample.iter().map(|&x| x as f64).collect();
        Summary::of(&v)
    }

    /// Summarizes a `u64` sample.
    pub fn of_u64(sample: &[u64]) -> Summary {
        let v: Vec<f64> = sample.iter().map(|&x| x as f64).collect();
        Summary::of(&v)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2}±{:.2} min={} p50={} p90={} p99={} max={}",
            self.count, self.mean, self.std, self.min, self.p50, self.p90, self.p99, self.max
        )
    }
}

impl crate::stats::RouteStats {
    /// Summary of per-packet in-flight latencies (delivered packets only).
    pub fn latency_summary(&self) -> Summary {
        let sample: Vec<f64> = self
            .injected_at
            .iter()
            .zip(&self.delivered_at)
            .filter_map(|(i, d)| match (i, d) {
                (Some(i), Some(d)) => Some((d - i) as f64),
                _ => None,
            })
            .collect();
        Summary::of(&sample)
    }

    /// Summary of per-packet deflection counts.
    pub fn deflection_summary(&self) -> Summary {
        Summary::of_u32(&self.deflections)
    }

    /// Summary of per-packet maximum deviation depths.
    pub fn deviation_summary(&self) -> Summary {
        Summary::of_u32(&self.max_deviation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RouteStats;

    #[test]
    fn empty_sample_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn single_element() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(
            (s.min, s.p50, s.p90, s.p99, s.max),
            (7.0, 7.0, 7.0, 7.0, 7.0)
        );
    }

    #[test]
    fn known_percentiles() {
        let sample: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = Summary::of(&sample);
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn std_of_constant_sample_is_zero() {
        let s = Summary::of(&[4.0; 10]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 4.0);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn integer_helpers_match() {
        assert_eq!(Summary::of_u32(&[1, 2, 3]), Summary::of(&[1.0, 2.0, 3.0]));
        assert_eq!(Summary::of_u64(&[5, 5]), Summary::of(&[5.0, 5.0]));
    }

    #[test]
    fn route_stats_summaries() {
        let mut s = RouteStats::new(3);
        s.injected_at = vec![Some(0), Some(2), None];
        s.delivered_at = vec![Some(10), Some(4), None];
        s.deflections = vec![0, 4, 2];
        let lat = s.latency_summary();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.mean, 6.0);
        let defl = s.deflection_summary();
        assert_eq!(defl.count, 3);
        assert_eq!(defl.max, 4.0);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 2.0]);
        let txt = format!("{s}");
        assert!(txt.contains("n=2"));
        assert!(txt.contains("mean=1.50"));
    }
}
