//! Run recording and independent replay verification.
//!
//! With recording enabled, the engine logs every movement event of a run.
//! [`replay::verify`] then re-checks the *entire run* against the
//! hot-potato model from scratch — independently of the engine that
//! produced it:
//!
//! * each (edge, direction) slot is used at most once per step;
//! * packets are injected exactly once, at their path's source, departing
//!   along its first edge;
//! * every move starts where the packet actually is (no teleports);
//! * **no packet ever rests**: while active, a packet moves every step;
//! * packets are absorbed exactly on arrival at their destination, and
//!   never move afterwards;
//! * the final delivery set matches the run statistics.
//!
//! This gives end-to-end audit coverage: a bug in the engine's staging or
//! bookkeeping cannot hide, because the auditor shares no state with it.

use crate::engine::ExitKind;
use crate::stats::{RouteStats, Time};
use leveled_net::ids::DirectedEdge;
use leveled_net::NodeId;
use routing_core::{PacketId, RoutingProblem};

/// One movement event of a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MoveEvent {
    /// Step at which the move departed.
    pub time: Time,
    /// The packet that moved.
    pub pkt: PacketId,
    /// The traversal performed.
    pub mv: DirectedEdge,
    /// The caller-declared kind (inject / advance / deflect / oscillate).
    pub kind: ExitKind,
}

/// A packet delivered without entering the network (trivial path).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrivialDelivery {
    /// Step of delivery.
    pub time: Time,
    /// The packet.
    pub pkt: PacketId,
}

/// The complete movement log of a run.
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    /// All moves, in commit order (non-decreasing time).
    pub moves: Vec<MoveEvent>,
    /// Packets delivered trivially at injection.
    pub trivial: Vec<TrivialDelivery>,
}

impl RunRecord {
    /// Number of recorded moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the record contains no moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Reconstructs per-step level occupancy from a record:
/// `result[t][level]` counts the packets in flight at that level *after*
/// the moves departing at step `t` have landed. Rows cover steps
/// `0..=last`, where `last` is the final recorded step. This is the data
/// behind time-space diagrams (see the `time_space` example).
pub fn level_occupancy(problem: &RoutingProblem, record: &RunRecord) -> Vec<Vec<u32>> {
    let net = problem.network();
    let levels = net.num_levels();
    let last = record.moves.last().map_or(0, |e| e.time);
    let mut rows = Vec::with_capacity(last as usize + 1);
    let mut pos: Vec<Option<NodeId>> = vec![None; problem.num_packets()];
    let mut idx = 0usize;
    for t in 0..=last {
        while idx < record.moves.len() && record.moves[idx].time == t {
            let ev = &record.moves[idx];
            let i = ev.pkt.index();
            let target = net.move_target(ev.mv);
            let dest = problem.packets()[i].path.dest(net);
            pos[i] = if target == dest { None } else { Some(target) };
            idx += 1;
        }
        let mut hist = vec![0u32; levels];
        for p in pos.iter().flatten() {
            hist[net.level(*p) as usize] += 1;
        }
        rows.push(hist);
    }
    rows
}

/// Replay verification: see the module docs.
pub mod replay {
    use super::*;
    use std::collections::HashMap;

    /// Failure found by the auditor.
    #[derive(Clone, PartialEq, Eq, Debug)]
    pub enum ReplayError {
        /// Events are not in non-decreasing time order.
        OutOfOrder {
            /// Index of the offending event.
            at: usize,
        },
        /// Two packets used the same (edge, direction) in one step.
        CapacityViolation {
            /// The step.
            time: Time,
            /// The offending packet.
            pkt: PacketId,
        },
        /// A packet moved from a node it was not at.
        Teleport {
            /// The step.
            time: Time,
            /// The offending packet.
            pkt: PacketId,
            /// Where the auditor believes it was.
            expected: Option<NodeId>,
        },
        /// A packet was injected twice, or moved before injection.
        NotInFlight {
            /// The step.
            time: Time,
            /// The offending packet.
            pkt: PacketId,
        },
        /// An injection did not depart from the packet's path source along
        /// its first edge.
        BadInjection {
            /// The step.
            time: Time,
            /// The offending packet.
            pkt: PacketId,
        },
        /// An active packet skipped a step (buffered illegally).
        Rested {
            /// The step it failed to move at.
            time: Time,
            /// The offending packet.
            pkt: PacketId,
        },
        /// A packet moved again after reaching its destination.
        MovedAfterDelivery {
            /// The step.
            time: Time,
            /// The offending packet.
            pkt: PacketId,
        },
        /// The record's delivery set disagrees with the run statistics.
        DeliveryMismatch {
            /// The packet in disagreement.
            pkt: PacketId,
        },
    }

    impl std::fmt::Display for ReplayError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                ReplayError::OutOfOrder { at } => write!(f, "event #{at} out of time order"),
                ReplayError::CapacityViolation { time, pkt } => {
                    write!(f, "t={time}: {pkt} reused an occupied edge-direction slot")
                }
                ReplayError::Teleport {
                    time,
                    pkt,
                    expected,
                } => {
                    write!(
                        f,
                        "t={time}: {pkt} moved from a node it was not at (expected {expected:?})"
                    )
                }
                ReplayError::NotInFlight { time, pkt } => {
                    write!(f, "t={time}: {pkt} moved while not in flight")
                }
                ReplayError::BadInjection { time, pkt } => {
                    write!(
                        f,
                        "t={time}: {pkt} injected away from its source/first edge"
                    )
                }
                ReplayError::Rested { time, pkt } => {
                    write!(f, "t={time}: {pkt} rested (hot-potato violation)")
                }
                ReplayError::MovedAfterDelivery { time, pkt } => {
                    write!(f, "t={time}: {pkt} moved after delivery")
                }
                ReplayError::DeliveryMismatch { pkt } => {
                    write!(f, "{pkt}: record and statistics disagree on delivery")
                }
            }
        }
    }

    impl std::error::Error for ReplayError {}

    /// Aggregate results of a successful replay.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct ReplayReport {
        /// Total moves verified.
        pub moves: u64,
        /// Forward moves.
        pub forward: u64,
        /// Backward moves.
        pub backward: u64,
        /// Packets delivered (including trivial).
        pub delivered: usize,
        /// The last step at which anything moved.
        pub last_move_time: Time,
    }

    /// Verifies `record` against `problem` and the run's `stats`.
    pub fn verify(
        problem: &RoutingProblem,
        record: &RunRecord,
        stats: &RouteStats,
    ) -> Result<ReplayReport, ReplayError> {
        let net = problem.network();
        let n = problem.num_packets();
        let mut pos: Vec<Option<NodeId>> = vec![None; n];
        let mut injected = vec![false; n];
        let mut delivered = vec![false; n];
        let mut report = ReplayReport {
            moves: 0,
            forward: 0,
            backward: 0,
            delivered: 0,
            last_move_time: 0,
        };

        for tr in &record.trivial {
            let i = tr.pkt.index();
            if injected[i] || delivered[i] {
                return Err(ReplayError::NotInFlight {
                    time: tr.time,
                    pkt: tr.pkt,
                });
            }
            if !problem.packets()[i].path.is_empty() {
                return Err(ReplayError::BadInjection {
                    time: tr.time,
                    pkt: tr.pkt,
                });
            }
            injected[i] = true;
            delivered[i] = true;
        }

        // Events must be in non-decreasing time order (checked up front so
        // later diagnostics are trustworthy).
        for (i, w) in record.moves.windows(2).enumerate() {
            if w[1].time < w[0].time {
                return Err(ReplayError::OutOfOrder { at: i + 1 });
            }
        }

        // Group events by step.
        let mut idx = 0usize;
        let mut slot_user: HashMap<usize, PacketId> = HashMap::new();
        while idx < record.moves.len() {
            let t = record.moves[idx].time;
            let start = idx;
            while idx < record.moves.len() && record.moves[idx].time == t {
                idx += 1;
            }
            let step = &record.moves[start..idx];

            // Hot-potato: every active packet must appear exactly once.
            let mut movers = vec![false; n];
            slot_user.clear();
            for ev in step {
                let i = ev.pkt.index();
                if movers[i] {
                    return Err(ReplayError::CapacityViolation {
                        time: t,
                        pkt: ev.pkt,
                    });
                }
                movers[i] = true;
                if let Some(prev) = slot_user.insert(ev.mv.slot_index(), ev.pkt) {
                    let _ = prev;
                    return Err(ReplayError::CapacityViolation {
                        time: t,
                        pkt: ev.pkt,
                    });
                }
            }
            for (i, p) in pos.iter().enumerate() {
                if p.is_some() && !movers[i] {
                    return Err(ReplayError::Rested {
                        time: t,
                        pkt: PacketId(i as u32),
                    });
                }
            }

            for ev in step {
                let i = ev.pkt.index();
                if delivered[i] {
                    return Err(ReplayError::MovedAfterDelivery {
                        time: t,
                        pkt: ev.pkt,
                    });
                }
                let origin = net.move_origin(ev.mv);
                match (ev.kind, pos[i]) {
                    (ExitKind::Inject, None) => {
                        if injected[i] {
                            return Err(ReplayError::NotInFlight {
                                time: t,
                                pkt: ev.pkt,
                            });
                        }
                        let path = &problem.packets()[i].path;
                        let ok = !path.is_empty()
                            && origin == path.source()
                            && ev.mv == DirectedEdge::forward(path.edges()[0]);
                        if !ok {
                            return Err(ReplayError::BadInjection {
                                time: t,
                                pkt: ev.pkt,
                            });
                        }
                        injected[i] = true;
                    }
                    (ExitKind::Inject, Some(_)) => {
                        return Err(ReplayError::NotInFlight {
                            time: t,
                            pkt: ev.pkt,
                        });
                    }
                    (_, None) => {
                        return Err(ReplayError::NotInFlight {
                            time: t,
                            pkt: ev.pkt,
                        });
                    }
                    (_, Some(at)) => {
                        if at != origin {
                            return Err(ReplayError::Teleport {
                                time: t,
                                pkt: ev.pkt,
                                expected: pos[i],
                            });
                        }
                    }
                }
                let target = net.move_target(ev.mv);
                let dest = problem.packets()[i].path.dest(net);
                if target == dest {
                    delivered[i] = true;
                    pos[i] = None;
                } else {
                    pos[i] = Some(target);
                }
                report.moves += 1;
                match ev.mv.dir {
                    leveled_net::Direction::Forward => report.forward += 1,
                    leveled_net::Direction::Backward => report.backward += 1,
                }
                report.last_move_time = t;
            }

            // Hot-potato across step boundaries: if anything is still in
            // flight, the very next step must contain its move — a time
            // gap in the record means a packet rested.
            if idx < record.moves.len() && record.moves[idx].time > t + 1 {
                if let Some(i) = pos.iter().position(std::option::Option::is_some) {
                    return Err(ReplayError::Rested {
                        time: t + 1,
                        pkt: PacketId(i as u32),
                    });
                }
            }
        }

        // Packets still in flight at the end of the record must be exactly
        // the undelivered ones in the statistics.
        for (i, &was_delivered) in delivered.iter().enumerate() {
            let stats_delivered = stats.delivered_at[i].is_some();
            if was_delivered != stats_delivered {
                return Err(ReplayError::DeliveryMismatch {
                    pkt: PacketId(i as u32),
                });
            }
        }
        report.delivered = delivered.iter().filter(|&&d| d).count();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::replay::{verify, ReplayError};
    use super::*;
    use leveled_net::builders;
    use routing_core::Path;
    use std::sync::Arc;

    fn tiny_problem() -> RoutingProblem {
        let net = Arc::new(builders::linear_array(4));
        let p = Path::from_nodes(&net, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        RoutingProblem::new(net, vec![p]).unwrap()
    }

    fn good_record() -> RunRecord {
        RunRecord {
            moves: vec![
                MoveEvent {
                    time: 0,
                    pkt: PacketId(0),
                    mv: DirectedEdge::forward(leveled_net::EdgeId(0)),
                    kind: ExitKind::Inject,
                },
                MoveEvent {
                    time: 1,
                    pkt: PacketId(0),
                    mv: DirectedEdge::forward(leveled_net::EdgeId(1)),
                    kind: ExitKind::Advance,
                },
            ],
            trivial: vec![],
        }
    }

    fn stats_delivered() -> RouteStats {
        let mut s = RouteStats::new(1);
        s.injected_at[0] = Some(0);
        s.delivered_at[0] = Some(2);
        s
    }

    #[test]
    fn valid_record_verifies() {
        let prob = tiny_problem();
        let rep = verify(&prob, &good_record(), &stats_delivered()).unwrap();
        assert_eq!(rep.moves, 2);
        assert_eq!(rep.forward, 2);
        assert_eq!(rep.backward, 0);
        assert_eq!(rep.delivered, 1);
        assert_eq!(rep.last_move_time, 1);
    }

    #[test]
    fn resting_packet_detected() {
        let prob = tiny_problem();
        let mut rec = good_record();
        rec.moves[1].time = 2; // skipped a step at node 1
        let err = verify(&prob, &rec, &stats_delivered()).unwrap_err();
        assert_eq!(
            err,
            ReplayError::Rested {
                time: 1, // the step it failed to move at
                pkt: PacketId(0)
            }
        );
    }

    #[test]
    fn teleport_detected() {
        let prob = tiny_problem();
        let mut rec = good_record();
        // Second move departs from node 2 instead of node 1.
        rec.moves[1].mv = DirectedEdge::forward(leveled_net::EdgeId(2));
        let err = verify(&prob, &rec, &stats_delivered()).unwrap_err();
        assert!(matches!(err, ReplayError::Teleport { .. }));
    }

    #[test]
    fn bad_injection_detected() {
        let prob = tiny_problem();
        let mut rec = good_record();
        rec.moves[0].mv = DirectedEdge::forward(leveled_net::EdgeId(1));
        let err = verify(&prob, &rec, &stats_delivered()).unwrap_err();
        assert!(matches!(err, ReplayError::BadInjection { .. }));
    }

    #[test]
    fn delivery_mismatch_detected() {
        let prob = tiny_problem();
        let mut stats = stats_delivered();
        stats.delivered_at[0] = None; // stats claim undelivered
        let err = verify(&prob, &good_record(), &stats).unwrap_err();
        assert!(matches!(err, ReplayError::DeliveryMismatch { .. }));
    }

    #[test]
    fn capacity_violation_detected() {
        // Two packets over the same slot at the same step.
        let net = Arc::new(builders::linear_array(4));
        let p0 = Path::from_nodes(&net, &[NodeId(0), NodeId(1)]).unwrap();
        let p1 = Path::from_nodes(&net, &[NodeId(1), NodeId(2)]).unwrap();
        let prob = RoutingProblem::new(net, vec![p0, p1]).unwrap();
        let rec = RunRecord {
            moves: vec![
                MoveEvent {
                    time: 0,
                    pkt: PacketId(0),
                    mv: DirectedEdge::forward(leveled_net::EdgeId(0)),
                    kind: ExitKind::Inject,
                },
                MoveEvent {
                    time: 0,
                    pkt: PacketId(1),
                    mv: DirectedEdge::forward(leveled_net::EdgeId(0)),
                    kind: ExitKind::Inject,
                },
            ],
            trivial: vec![],
        };
        let mut stats = RouteStats::new(2);
        stats.delivered_at = vec![Some(1), Some(1)];
        let err = verify(&prob, &rec, &stats).unwrap_err();
        assert!(matches!(err, ReplayError::CapacityViolation { .. }));
        // ... even though packet 1's injection itself is invalid too; the
        // slot check fires first by construction.
    }

    #[test]
    fn out_of_order_detected() {
        let prob = tiny_problem();
        let mut rec = good_record();
        rec.moves.swap(0, 1);
        let err = verify(&prob, &rec, &stats_delivered()).unwrap_err();
        assert!(matches!(err, ReplayError::OutOfOrder { .. }));
    }

    #[test]
    fn level_occupancy_tracks_the_walk() {
        let prob = tiny_problem();
        let rows = super::level_occupancy(&prob, &good_record());
        // Steps 0 and 1; after step 0 the packet sits at level 1, after
        // step 1 it is absorbed at its destination (level 2).
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![0, 1, 0, 0]);
        assert_eq!(rows[1], vec![0, 0, 0, 0]);
    }

    #[test]
    fn trivial_deliveries_counted() {
        let net = Arc::new(builders::linear_array(2));
        let prob = RoutingProblem::new(Arc::clone(&net), vec![Path::trivial(NodeId(1))]).unwrap();
        let rec = RunRecord {
            moves: vec![],
            trivial: vec![TrivialDelivery {
                time: 0,
                pkt: PacketId(0),
            }],
        };
        let mut stats = RouteStats::new(1);
        stats.delivered_at[0] = Some(0);
        let rep = verify(&prob, &rec, &stats).unwrap();
        assert_eq!(rep.delivered, 1);
        assert_eq!(rep.moves, 0);
    }
}
