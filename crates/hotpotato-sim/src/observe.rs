//! Structured observability: event sinks for the routing engine.
//!
//! The paper's analysis is a chain of *quantitative* claims — per
//! frontier-set congestion stays below `ln(LN)` (Lemma 2.2), frame
//! frontiers advance as `φ_i(k) = k − i·m`, deflections are bounded per
//! phase — but an end-of-run [`crate::RouteStats`] cannot show any of
//! them. This module defines [`RouteObserver`], an event-sink trait the
//! engine and the routers feed as the run unfolds, plus three concrete
//! sinks:
//!
//! * [`MetricsObserver`] — aggregates deflection histograms (per packet /
//!   level / phase), per-level occupancy over time, frame progress against
//!   the theoretical frontier, and per-set congestion watermarks;
//! * [`JsonlTraceObserver`] — streams every event as one JSON line to any
//!   [`std::io::Write`] sink, for offline analysis;
//! * [`SectionProfiler`] — accumulates wall time per router section
//!   (conflict resolution vs. kinematics vs. audits vs. injection).
//!
//! # Zero cost when disabled
//!
//! [`Simulation`](crate::Simulation) takes the observer as a generic
//! parameter defaulting to [`NoopObserver`]. Every hook has an inline
//! empty default body, so with `NoopObserver` the monomorphized engine
//! contains no observer code at all — the golden-equivalence tests and
//! the PERF baseline hold byte-for-byte and within noise respectively.
//! The only conditional hook is timing ([`RouteObserver::wants_timing`]),
//! which routers consult once per run before reaching for the clock.
//!
//! The trait is object-safe: algorithm-agnostic drivers can take a
//! `&mut dyn RouteObserver` (see [`crate::Router`]).

use crate::engine::{ExitKind, StepReport};
use crate::stats::Time;
use leveled_net::ids::DirectedEdge;
use leveled_net::{Level, LeveledNetwork, NodeId};
use routing_core::RoutingProblem;
use std::io::Write;
use std::sync::Arc;

/// Router sections timed by [`RouteObserver::on_section`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Section {
    /// Building contenders and resolving edge conflicts.
    Conflict,
    /// Applying staged moves and rebuilding arrivals
    /// ([`Simulation::finish_step`](crate::Simulation::finish_step)).
    Kinematics,
    /// Phase-end invariant audits.
    Audit,
    /// The injection agenda scan.
    Injection,
}

impl Section {
    /// All sections, in reporting order.
    pub const ALL: [Section; 4] = [
        Section::Conflict,
        Section::Kinematics,
        Section::Audit,
        Section::Injection,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Section::Conflict => "conflict",
            Section::Kinematics => "kinematics",
            Section::Audit => "audit",
            Section::Injection => "injection",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Section::Conflict => 0,
            Section::Kinematics => 1,
            Section::Audit => 2,
            Section::Injection => 3,
        }
    }
}

/// Event sink for a routing run.
///
/// The engine emits the packet-movement events (`on_move`, `on_trivial`,
/// `on_deliver`, `on_step_end`); phase-structured routers such as
/// `BuschRouter` additionally emit the schedule events (`on_phase_start`,
/// `on_frontier`, `on_set_congestion`, …). Every method has an inline
/// no-op default, so implementors override only what they consume and the
/// [`NoopObserver`] compiles away entirely.
///
/// Times follow the engine convention: a move carries the step `t` it was
/// staged in; a delivery carries the arrival time `t + 1` (matching
/// `RouteStats::delivered_at`).
#[allow(unused_variables)]
pub trait RouteObserver {
    /// A packet crossed an edge this step (`ExitKind::Inject` is the
    /// injection move out of the source).
    #[inline]
    fn on_move(&mut self, t: Time, pkt: u32, mv: DirectedEdge, kind: ExitKind) {}

    /// A packet with a trivial path (source == destination) was delivered
    /// without entering the network.
    #[inline]
    fn on_trivial(&mut self, t: Time, pkt: u32) {}

    /// A packet was absorbed at its destination (time is the arrival time,
    /// i.e. staging step + 1).
    #[inline]
    fn on_deliver(&mut self, t: Time, pkt: u32) {}

    /// A step completed; `active` is the in-flight count after absorption.
    #[inline]
    fn on_step_end(&mut self, t: Time, report: &StepReport, active: usize) {}

    /// Streaming mode: packet `pkt` *arrived* at step `t` — it became
    /// available for injection per the run's arrival process. Batch runs
    /// never emit this (every packet is implicitly available at step 0).
    #[inline]
    fn on_arrival(&mut self, t: Time, pkt: u32) {}

    /// Streaming mode: admission control *dropped* packet `pkt` at step
    /// `t` (the deferred queue was full). A dropped packet is never
    /// injected and counts as undelivered in the final statistics.
    #[inline]
    fn on_drop(&mut self, t: Time, pkt: u32) {}

    /// The router assigned packets to frontier sets.
    #[inline]
    fn on_sets_assigned(&mut self, sets: &[u32], num_sets: u32) {}

    /// A phase began at step `t`.
    #[inline]
    fn on_phase_start(&mut self, phase: u64, t: Time) {}

    /// A phase ended; `t` is the first step of the next phase.
    #[inline]
    fn on_phase_end(&mut self, phase: u64, t: Time) {}

    /// The theoretical frontier `φ_i(k) = k − i·m` of frontier-set `set`
    /// for the phase that just began (emitted only while the set's frame
    /// overlaps the network).
    #[inline]
    fn on_frontier(&mut self, phase: u64, set: u32, frontier: i64) {}

    /// A phase-end audit measured frontier-set `set`'s current-path
    /// congestion (Lemma 2.2 / invariant `I_e` subject); `initial` is the
    /// set's preselected-path congestion. Emitted only when the router
    /// runs audits.
    #[inline]
    fn on_set_congestion(&mut self, phase: u64, set: u32, congestion: u32, initial: u32) {}

    /// Whether the driver should time sections and call
    /// [`RouteObserver::on_section`]. Routers read this once per run; the
    /// default `false` lets the timing code vanish for observers that do
    /// not profile.
    #[inline]
    fn wants_timing(&self) -> bool {
        false
    }

    /// `nanos` of wall time were spent in `section` (only emitted when
    /// [`RouteObserver::wants_timing`] returns `true`).
    #[inline]
    fn on_section(&mut self, section: Section, nanos: u64) {}
}

/// The do-nothing observer: the default `Simulation` parameter. All hooks
/// inline to nothing, so an unobserved run compiles to exactly the code it
/// had before the observability layer existed.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoopObserver;

impl RouteObserver for NoopObserver {}

/// Forwarding impl so drivers can hold `&mut O` (or `&mut dyn
/// RouteObserver`) and hand it to the engine by value.
impl<O: RouteObserver + ?Sized> RouteObserver for &mut O {
    #[inline]
    fn on_move(&mut self, t: Time, pkt: u32, mv: DirectedEdge, kind: ExitKind) {
        (**self).on_move(t, pkt, mv, kind);
    }
    #[inline]
    fn on_trivial(&mut self, t: Time, pkt: u32) {
        (**self).on_trivial(t, pkt);
    }
    #[inline]
    fn on_deliver(&mut self, t: Time, pkt: u32) {
        (**self).on_deliver(t, pkt);
    }
    #[inline]
    fn on_step_end(&mut self, t: Time, report: &StepReport, active: usize) {
        (**self).on_step_end(t, report, active);
    }
    #[inline]
    fn on_arrival(&mut self, t: Time, pkt: u32) {
        (**self).on_arrival(t, pkt);
    }
    #[inline]
    fn on_drop(&mut self, t: Time, pkt: u32) {
        (**self).on_drop(t, pkt);
    }
    #[inline]
    fn on_sets_assigned(&mut self, sets: &[u32], num_sets: u32) {
        (**self).on_sets_assigned(sets, num_sets);
    }
    #[inline]
    fn on_phase_start(&mut self, phase: u64, t: Time) {
        (**self).on_phase_start(phase, t);
    }
    #[inline]
    fn on_phase_end(&mut self, phase: u64, t: Time) {
        (**self).on_phase_end(phase, t);
    }
    #[inline]
    fn on_frontier(&mut self, phase: u64, set: u32, frontier: i64) {
        (**self).on_frontier(phase, set, frontier);
    }
    #[inline]
    fn on_set_congestion(&mut self, phase: u64, set: u32, congestion: u32, initial: u32) {
        (**self).on_set_congestion(phase, set, congestion, initial);
    }
    #[inline]
    fn wants_timing(&self) -> bool {
        (**self).wants_timing()
    }
    #[inline]
    fn on_section(&mut self, section: Section, nanos: u64) {
        (**self).on_section(section, nanos);
    }
}

/// Fan-out to two observers (compose with nesting for more).
impl<A: RouteObserver, B: RouteObserver> RouteObserver for (A, B) {
    #[inline]
    fn on_move(&mut self, t: Time, pkt: u32, mv: DirectedEdge, kind: ExitKind) {
        self.0.on_move(t, pkt, mv, kind);
        self.1.on_move(t, pkt, mv, kind);
    }
    #[inline]
    fn on_trivial(&mut self, t: Time, pkt: u32) {
        self.0.on_trivial(t, pkt);
        self.1.on_trivial(t, pkt);
    }
    #[inline]
    fn on_deliver(&mut self, t: Time, pkt: u32) {
        self.0.on_deliver(t, pkt);
        self.1.on_deliver(t, pkt);
    }
    #[inline]
    fn on_step_end(&mut self, t: Time, report: &StepReport, active: usize) {
        self.0.on_step_end(t, report, active);
        self.1.on_step_end(t, report, active);
    }
    #[inline]
    fn on_arrival(&mut self, t: Time, pkt: u32) {
        self.0.on_arrival(t, pkt);
        self.1.on_arrival(t, pkt);
    }
    #[inline]
    fn on_drop(&mut self, t: Time, pkt: u32) {
        self.0.on_drop(t, pkt);
        self.1.on_drop(t, pkt);
    }
    #[inline]
    fn on_sets_assigned(&mut self, sets: &[u32], num_sets: u32) {
        self.0.on_sets_assigned(sets, num_sets);
        self.1.on_sets_assigned(sets, num_sets);
    }
    #[inline]
    fn on_phase_start(&mut self, phase: u64, t: Time) {
        self.0.on_phase_start(phase, t);
        self.1.on_phase_start(phase, t);
    }
    #[inline]
    fn on_phase_end(&mut self, phase: u64, t: Time) {
        self.0.on_phase_end(phase, t);
        self.1.on_phase_end(phase, t);
    }
    #[inline]
    fn on_frontier(&mut self, phase: u64, set: u32, frontier: i64) {
        self.0.on_frontier(phase, set, frontier);
        self.1.on_frontier(phase, set, frontier);
    }
    #[inline]
    fn on_set_congestion(&mut self, phase: u64, set: u32, congestion: u32, initial: u32) {
        self.0.on_set_congestion(phase, set, congestion, initial);
        self.1.on_set_congestion(phase, set, congestion, initial);
    }
    #[inline]
    fn wants_timing(&self) -> bool {
        self.0.wants_timing() || self.1.wants_timing()
    }
    #[inline]
    fn on_section(&mut self, section: Section, nanos: u64) {
        self.0.on_section(section, nanos);
        self.1.on_section(section, nanos);
    }
}

/// `Option<O>` forwards to the observer when present — convenient for
/// optional CLI sinks (`--metrics-out` / `--trace-out`).
impl<O: RouteObserver> RouteObserver for Option<O> {
    #[inline]
    fn on_move(&mut self, t: Time, pkt: u32, mv: DirectedEdge, kind: ExitKind) {
        if let Some(o) = self {
            o.on_move(t, pkt, mv, kind);
        }
    }
    #[inline]
    fn on_trivial(&mut self, t: Time, pkt: u32) {
        if let Some(o) = self {
            o.on_trivial(t, pkt);
        }
    }
    #[inline]
    fn on_deliver(&mut self, t: Time, pkt: u32) {
        if let Some(o) = self {
            o.on_deliver(t, pkt);
        }
    }
    #[inline]
    fn on_step_end(&mut self, t: Time, report: &StepReport, active: usize) {
        if let Some(o) = self {
            o.on_step_end(t, report, active);
        }
    }
    #[inline]
    fn on_arrival(&mut self, t: Time, pkt: u32) {
        if let Some(o) = self {
            o.on_arrival(t, pkt);
        }
    }
    #[inline]
    fn on_drop(&mut self, t: Time, pkt: u32) {
        if let Some(o) = self {
            o.on_drop(t, pkt);
        }
    }
    #[inline]
    fn on_sets_assigned(&mut self, sets: &[u32], num_sets: u32) {
        if let Some(o) = self {
            o.on_sets_assigned(sets, num_sets);
        }
    }
    #[inline]
    fn on_phase_start(&mut self, phase: u64, t: Time) {
        if let Some(o) = self {
            o.on_phase_start(phase, t);
        }
    }
    #[inline]
    fn on_phase_end(&mut self, phase: u64, t: Time) {
        if let Some(o) = self {
            o.on_phase_end(phase, t);
        }
    }
    #[inline]
    fn on_frontier(&mut self, phase: u64, set: u32, frontier: i64) {
        if let Some(o) = self {
            o.on_frontier(phase, set, frontier);
        }
    }
    #[inline]
    fn on_set_congestion(&mut self, phase: u64, set: u32, congestion: u32, initial: u32) {
        if let Some(o) = self {
            o.on_set_congestion(phase, set, congestion, initial);
        }
    }
    #[inline]
    fn wants_timing(&self) -> bool {
        self.as_ref().is_some_and(RouteObserver::wants_timing)
    }
    #[inline]
    fn on_section(&mut self, section: Section, nanos: u64) {
        if let Some(o) = self {
            o.on_section(section, nanos);
        }
    }
}

/// Counts per distinct value: `(value, multiplicity)`, ascending by value.
/// The building block for the deflections-per-packet histogram; public so
/// the math is unit-testable in isolation.
pub fn histogram(values: &[u32]) -> Vec<(u32, u32)> {
    let mut sorted: Vec<u32> = values.to_vec();
    sorted.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::new();
    for v in sorted {
        match out.last_mut() {
            Some((val, count)) if *val == v => *count += 1,
            _ => out.push((v, 1)),
        }
    }
    out
}

/// One frame-progress measurement: where frontier-set `set`'s packets
/// actually were at the end of `phase`, against the theoretical frontier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameProgress {
    /// Phase that just ended.
    pub phase: u64,
    /// Frontier set.
    pub set: u32,
    /// Theoretical frontier `φ_i(k) = k − i·m` at the start of that phase.
    pub frontier: i64,
    /// Highest level reached by any of the set's in-flight packets.
    pub max_level: Level,
    /// The set's in-flight packet count at the phase end.
    pub in_flight: u32,
}

/// Aggregating observer: histograms, occupancy, frame progress, and
/// congestion watermarks, exported as JSON via
/// [`MetricsObserver::to_json`].
///
/// Tracks packet positions from the move stream, so it works with any
/// router driving the engine; the schedule-aware series (frame progress,
/// congestion watermarks) fill in only when the router emits the
/// corresponding events (the Busch router does).
pub struct MetricsObserver {
    net: Arc<LeveledNetwork>,
    /// Current node per packet (meaningful while `in_network`).
    position: Vec<NodeId>,
    in_network: Vec<bool>,
    /// Deflections per packet (histogram source).
    deflections: Vec<u32>,
    /// Deflections by the level the packet was deflected *from*.
    defl_by_level: Vec<u64>,
    /// Deflections by phase (meaningful when the router emits phases).
    defl_by_phase: Vec<u64>,
    safe_deflections: u64,
    unsafe_deflections: u64,
    /// Live per-level packet count.
    occupancy: Vec<u32>,
    /// Σ over steps of per-level occupancy (packet-steps).
    level_packet_steps: Vec<u64>,
    /// Max per-level occupancy seen at any step end.
    level_watermark: Vec<u32>,
    /// Sample the full occupancy vector every `sample_every` steps
    /// (0 = aggregates only).
    sample_every: u64,
    occupancy_series: Vec<(Time, Vec<u32>)>,
    steps: u64,
    delivered: u64,
    trivial: u64,
    /// Streaming mode: packets made available by the arrival process.
    arrivals: u64,
    /// Streaming mode: packets dropped by admission control.
    drops: u64,
    current_phase: u64,
    phases_seen: u64,
    /// Frontier-set of each packet (empty until `on_sets_assigned`).
    sets: Vec<u32>,
    num_sets: u32,
    /// Last frontier emitted per set.
    frontier: Vec<i64>,
    frame_progress: Vec<FrameProgress>,
    /// Initial per-set congestion (captured from the first audit).
    congestion_initial: Vec<u32>,
    /// Max audited per-set congestion across all phase ends.
    congestion_watermark: Vec<u32>,
}

impl MetricsObserver {
    /// Creates a metrics sink for `problem` (aggregates only; see
    /// [`MetricsObserver::with_occupancy_sampling`]).
    pub fn new(problem: &RoutingProblem) -> Self {
        let net = problem.network_arc();
        let n = problem.num_packets();
        let levels = net.num_levels();
        MetricsObserver {
            net,
            position: problem.packets().iter().map(|p| p.path.source()).collect(),
            in_network: vec![false; n],
            deflections: vec![0; n],
            defl_by_level: vec![0; levels],
            defl_by_phase: Vec::new(),
            safe_deflections: 0,
            unsafe_deflections: 0,
            occupancy: vec![0; levels],
            level_packet_steps: vec![0; levels],
            level_watermark: vec![0; levels],
            sample_every: 0,
            occupancy_series: Vec::new(),
            steps: 0,
            delivered: 0,
            trivial: 0,
            arrivals: 0,
            drops: 0,
            current_phase: 0,
            phases_seen: 0,
            sets: Vec::new(),
            num_sets: 0,
            frontier: Vec::new(),
            frame_progress: Vec::new(),
            congestion_initial: Vec::new(),
            congestion_watermark: Vec::new(),
        }
    }

    /// Additionally records the full per-level occupancy vector every
    /// `every` steps (`0` disables sampling).
    pub fn with_occupancy_sampling(mut self, every: u64) -> Self {
        self.sample_every = every;
        self
    }

    /// Deflections-per-packet histogram: `(deflections, packets)` pairs,
    /// ascending.
    pub fn deflection_histogram(&self) -> Vec<(u32, u32)> {
        histogram(&self.deflections)
    }

    /// Deflections grouped by the level they happened at.
    pub fn deflections_by_level(&self) -> &[u64] {
        &self.defl_by_level
    }

    /// Deflections grouped by phase (empty if the router emitted no phase
    /// events).
    pub fn deflections_by_phase(&self) -> &[u64] {
        &self.defl_by_phase
    }

    /// Safe (backward edge-recycling) deflections seen.
    pub fn safe_deflections(&self) -> u64 {
        self.safe_deflections
    }

    /// Unsafe (fallback / arbitrary) deflections seen.
    pub fn unsafe_deflections(&self) -> u64 {
        self.unsafe_deflections
    }

    /// Live per-level packet count (as of the last event applied).
    pub fn occupancy(&self) -> &[u32] {
        &self.occupancy
    }

    /// Max per-level occupancy observed at any step end.
    pub fn level_watermarks(&self) -> &[u32] {
        &self.level_watermark
    }

    /// Σ over steps of per-level occupancy (packet-steps per level).
    pub fn level_packet_steps(&self) -> &[u64] {
        &self.level_packet_steps
    }

    /// The frame-progress series (one row per (phase end, set with
    /// in-flight packets)).
    pub fn frame_progress(&self) -> &[FrameProgress] {
        &self.frame_progress
    }

    /// Per-set congestion watermarks from the phase-end audits (empty if
    /// the router ran without audits).
    pub fn congestion_watermarks(&self) -> &[u32] {
        &self.congestion_watermark
    }

    /// Streaming mode: packets made available by the arrival process so
    /// far (0 for batch runs, which never emit arrivals).
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Streaming mode: packets dropped by admission control so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Initial per-set congestion (the Lemma 2.2 quantity), captured from
    /// the first audit.
    pub fn congestion_initial(&self) -> &[u32] {
        &self.congestion_initial
    }

    /// `ln(L·N)` for this run — the Lemma 2.2 bound that the per-set
    /// congestion watermarks are measured against (`L` = network depth,
    /// `N` = packets).
    pub fn ln_ln_bound(&self) -> f64 {
        let l = self.net.depth().max(1) as f64;
        let n = self.position.len().max(1) as f64;
        (l * n).ln()
    }

    fn grow_phase(&mut self, phase: u64) {
        if self.defl_by_phase.len() <= phase as usize {
            self.defl_by_phase.resize(phase as usize + 1, 0);
        }
    }

    /// Exports every aggregate as a JSON document.
    pub fn to_json(&self) -> serde::Value {
        use serde::Serialize as _;
        let histogram: Vec<serde::Value> = self
            .deflection_histogram()
            .into_iter()
            .map(|(deflections, packets)| {
                serde::Value::object([
                    ("deflections", deflections.to_json()),
                    ("packets", packets.to_json()),
                ])
            })
            .collect();
        let frame_progress: Vec<serde::Value> = self
            .frame_progress
            .iter()
            .map(|row| {
                serde::Value::object([
                    ("phase", row.phase.to_json()),
                    ("set", row.set.to_json()),
                    ("frontier", row.frontier.to_json()),
                    ("max_level", row.max_level.to_json()),
                    ("in_flight", row.in_flight.to_json()),
                ])
            })
            .collect();
        let occupancy_series: Vec<serde::Value> = self
            .occupancy_series
            .iter()
            .map(|(t, levels)| {
                serde::Value::object([("t", t.to_json()), ("levels", levels.to_json())])
            })
            .collect();
        let watermark_max = self.congestion_watermark.iter().copied().max().unwrap_or(0);
        serde::Value::object([
            ("packets", self.position.len().to_json()),
            ("steps", self.steps.to_json()),
            ("delivered", self.delivered.to_json()),
            ("trivial_deliveries", self.trivial.to_json()),
            ("phases", self.phases_seen.to_json()),
            (
                "deflections",
                serde::Value::object([
                    (
                        "total",
                        (self.safe_deflections + self.unsafe_deflections).to_json(),
                    ),
                    ("safe", self.safe_deflections.to_json()),
                    ("unsafe", self.unsafe_deflections.to_json()),
                    ("per_packet_histogram", serde::Value::Array(histogram)),
                    ("by_level", self.defl_by_level.to_json()),
                    ("by_phase", self.defl_by_phase.to_json()),
                ]),
            ),
            (
                "occupancy",
                serde::Value::object([
                    ("packet_steps_by_level", self.level_packet_steps.to_json()),
                    ("watermark_by_level", self.level_watermark.to_json()),
                    ("series", serde::Value::Array(occupancy_series)),
                ]),
            ),
            (
                "injection",
                serde::Value::object([
                    ("arrivals", self.arrivals.to_json()),
                    ("drops", self.drops.to_json()),
                ]),
            ),
            ("frame_progress", serde::Value::Array(frame_progress)),
            (
                "congestion",
                serde::Value::object([
                    ("num_sets", self.num_sets.to_json()),
                    ("initial_per_set", self.congestion_initial.to_json()),
                    ("watermark_per_set", self.congestion_watermark.to_json()),
                    ("watermark_max", watermark_max.to_json()),
                    ("ln_ln_bound", self.ln_ln_bound().to_json()),
                ]),
            ),
        ])
    }
}

impl RouteObserver for MetricsObserver {
    fn on_move(&mut self, _t: Time, pkt: u32, mv: DirectedEdge, kind: ExitKind) {
        let i = pkt as usize;
        let origin = self.net.move_origin(mv);
        let target = self.net.move_target(mv);
        match kind {
            ExitKind::Inject => {
                self.in_network[i] = true;
                self.occupancy[self.net.level(target) as usize] += 1;
            }
            other => {
                self.occupancy[self.net.level(origin) as usize] -= 1;
                self.occupancy[self.net.level(target) as usize] += 1;
                if let ExitKind::Deflect { safe } = other {
                    self.deflections[i] += 1;
                    self.defl_by_level[self.net.level(origin) as usize] += 1;
                    let phase = self.current_phase;
                    self.grow_phase(phase);
                    self.defl_by_phase[phase as usize] += 1;
                    if safe {
                        self.safe_deflections += 1;
                    } else {
                        self.unsafe_deflections += 1;
                    }
                }
            }
        }
        self.position[i] = target;
    }

    fn on_trivial(&mut self, _t: Time, _pkt: u32) {
        self.trivial += 1;
        self.delivered += 1;
    }

    fn on_deliver(&mut self, _t: Time, pkt: u32) {
        let i = pkt as usize;
        self.delivered += 1;
        if self.in_network[i] {
            self.in_network[i] = false;
            self.occupancy[self.net.level(self.position[i]) as usize] -= 1;
        }
    }

    // lint: trusted(clones the occupancy vec only on sampled steps, an
    // amortized telemetry cost the hot-path budget accepts)
    fn on_step_end(&mut self, t: Time, _report: &StepReport, _active: usize) {
        self.steps += 1;
        for (level, &occ) in self.occupancy.iter().enumerate() {
            self.level_packet_steps[level] += occ as u64;
            if occ > self.level_watermark[level] {
                self.level_watermark[level] = occ;
            }
        }
        if self.sample_every > 0 && t.is_multiple_of(self.sample_every) {
            self.occupancy_series.push((t, self.occupancy.clone()));
        }
    }

    fn on_arrival(&mut self, _t: Time, _pkt: u32) {
        self.arrivals += 1;
    }

    fn on_drop(&mut self, _t: Time, _pkt: u32) {
        self.drops += 1;
    }

    fn on_sets_assigned(&mut self, sets: &[u32], num_sets: u32) {
        self.sets = sets.to_vec();
        self.num_sets = num_sets;
        self.frontier = vec![i64::MIN; num_sets as usize];
    }

    fn on_phase_start(&mut self, phase: u64, _t: Time) {
        self.current_phase = phase;
        self.grow_phase(phase);
        self.phases_seen = self.phases_seen.max(phase + 1);
    }

    fn on_phase_end(&mut self, phase: u64, _t: Time) {
        if self.sets.is_empty() {
            return;
        }
        // Per-set (max level, count) over in-flight packets: O(N) per
        // phase end, which is amortized out by the m·w steps per phase.
        let mut max_level = vec![0 as Level; self.num_sets as usize];
        let mut in_flight = vec![0u32; self.num_sets as usize];
        for (i, &inside) in self.in_network.iter().enumerate() {
            if !inside {
                continue;
            }
            let set = self.sets[i] as usize;
            let level = self.net.level(self.position[i]);
            max_level[set] = max_level[set].max(level);
            in_flight[set] += 1;
        }
        for set in 0..self.num_sets as usize {
            if in_flight[set] == 0 {
                continue;
            }
            self.frame_progress.push(FrameProgress {
                phase,
                set: set as u32,
                frontier: self.frontier[set],
                max_level: max_level[set],
                in_flight: in_flight[set],
            });
        }
    }

    fn on_frontier(&mut self, _phase: u64, set: u32, frontier: i64) {
        if let Some(slot) = self.frontier.get_mut(set as usize) {
            *slot = frontier;
        }
    }

    fn on_set_congestion(&mut self, _phase: u64, set: u32, congestion: u32, initial: u32) {
        let want = set as usize + 1;
        if self.congestion_watermark.len() < want {
            self.congestion_watermark.resize(want, 0);
            self.congestion_initial.resize(want, 0);
        }
        self.congestion_initial[set as usize] = initial;
        let slot = &mut self.congestion_watermark[set as usize];
        *slot = (*slot).max(congestion);
    }
}

fn kind_str(kind: ExitKind) -> &'static str {
    match kind {
        ExitKind::Advance => "adv",
        ExitKind::Deflect { safe: true } => "def-safe",
        ExitKind::Deflect { safe: false } => "def-free",
        ExitKind::Oscillate => "osc",
        ExitKind::Inject => "inj",
    }
}

/// Per-packet lifecycle bookkeeping for phase-entry `snapshot` events
/// (opt-in via [`JsonlTraceObserver::with_snapshots`]). Mirrors exactly
/// what the trace verifier replays, so every emitted checkpoint is
/// audited against an independent reconstruction — and a sharded
/// verifier can seed a mid-trace replay from it.
struct SnapshotTracker {
    net: Arc<LeveledNetwork>,
    /// Lifecycle code per packet: 0 pending, 1 arrived, 2 dropped,
    /// 3 in flight, 4 delivered (the verifier's precedence order).
    state: Vec<u8>,
    /// Current node per packet; meaningful only while `state == 3`.
    node: Vec<u32>,
    moves: u64,
    forward: u64,
    backward: u64,
    deflections: u64,
    oscillations: u64,
    trivial: u64,
    /// Edges crossed forward in the step being built.
    cur_forward: Vec<u32>,
    /// Edges crossed forward in the last completed step (the
    /// safe-deflection recycling pool a seeded verifier needs).
    prev_forward: Vec<u32>,
    num_sets: u32,
}

impl SnapshotTracker {
    fn new(problem: &RoutingProblem) -> Self {
        let n = problem.num_packets();
        SnapshotTracker {
            net: problem.network_arc(),
            state: vec![0; n],
            node: vec![0; n],
            moves: 0,
            forward: 0,
            backward: 0,
            deflections: 0,
            oscillations: 0,
            trivial: 0,
            cur_forward: Vec::new(),
            prev_forward: Vec::new(),
            num_sets: 0,
        }
    }

    // lint: hot-path
    fn on_move(&mut self, pkt: u32, mv: DirectedEdge, kind: ExitKind) {
        let p = pkt as usize;
        self.state[p] = 3;
        self.node[p] = self.net.move_target(mv).0;
        self.moves += 1;
        match mv.dir {
            leveled_net::Direction::Forward => {
                self.forward += 1;
                self.cur_forward.push(mv.edge.0);
            }
            leveled_net::Direction::Backward => self.backward += 1,
        }
        match kind {
            ExitKind::Deflect { .. } => self.deflections += 1,
            ExitKind::Oscillate => self.oscillations += 1,
            _ => {}
        }
    }

    /// Renders the checkpoint line, byte-identical to the trace crate's
    /// canonical `snapshot` rendering.
    fn snapshot_line(&self, phase: u64, t: Time) -> String {
        use std::fmt::Write as _;
        let mut line = format!("{{\"ev\":\"snapshot\",\"phase\":{phase},\"t\":{t},\"state\":[");
        for (i, s) in self.state.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{s}");
        }
        line.push_str("],\"nodes\":[");
        let mut first = true;
        for p in 0..self.state.len() {
            if self.state[p] == 3 {
                if !first {
                    line.push(',');
                }
                first = false;
                let _ = write!(line, "{}", self.node[p]);
            }
        }
        line.push_str("],\"prev_forward\":[");
        for (i, e) in self.prev_forward.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{e}");
        }
        let _ = write!(
            line,
            "],\"moves\":{},\"forward\":{},\"backward\":{},\"deflections\":{},\"oscillations\":{},\"trivial\":{},\"num_sets\":{}}}",
            self.moves,
            self.forward,
            self.backward,
            self.deflections,
            self.oscillations,
            self.trivial,
            self.num_sets,
        );
        line
    }
}

/// Streams every event as one JSON object per line (JSON Lines) to a
/// writer. Events carry an `"ev"` discriminator (`move`, `trivial`,
/// `deliver`, `step`, `sets`, `phase_start`, `phase_end`, `frontier`,
/// `congestion`, `section`, and — with
/// [`JsonlTraceObserver::with_snapshots`] — `snapshot`).
///
/// Lines accumulate in an internal sized buffer that drains to the
/// writer only when full and at phase/quiesce boundaries
/// ([`RouteObserver::on_phase_end`] / [`JsonlTraceObserver::finish`]),
/// so the per-event path never performs I/O.
///
/// Write errors are sticky: the first one stops the stream and is
/// surfaced by [`JsonlTraceObserver::finish`].
pub struct JsonlTraceObserver<W: Write> {
    out: W,
    buf: Vec<u8>,
    err: Option<std::io::Error>,
    snap: Option<SnapshotTracker>,
}

/// Internal buffer size: lines drain to the writer once this many bytes
/// accumulate (or earlier, at a phase/quiesce boundary).
const TRACE_BUF_CAP: usize = 64 * 1024;

impl<W: Write> JsonlTraceObserver<W> {
    /// Wraps `out`. Events are buffered internally (see the type docs),
    /// so `out` does not need its own [`std::io::BufWriter`].
    pub fn new(out: W) -> Self {
        JsonlTraceObserver {
            out,
            buf: Vec::with_capacity(TRACE_BUF_CAP),
            err: None,
            snap: None,
        }
    }

    /// Like [`JsonlTraceObserver::new`], but also emits a `snapshot`
    /// checkpoint event after every `phase_start` line: the full
    /// per-packet lifecycle/kinematics state, counter totals, and the
    /// forward-arrival pool. Checkpoints let the trace verifier replay
    /// phases independently (sharded verification) and are themselves
    /// audited against the replayed stream.
    pub fn with_snapshots(out: W, problem: &RoutingProblem) -> Self {
        let mut obs = JsonlTraceObserver::new(out);
        obs.snap = Some(SnapshotTracker::new(problem));
        obs
    }

    /// Flushes and returns the writer, or the first write error.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.flush_buf();
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    /// Drains the internal buffer to the writer.
    fn flush_buf(&mut self) {
        if self.err.is_some() {
            self.buf.clear();
            return;
        }
        if self.buf.is_empty() {
            return;
        }
        if let Err(e) = self.out.write_all(&self.buf) {
            self.err = Some(e);
        }
        self.buf.clear();
    }

    // lint: hot-path
    fn line(&mut self, args: std::fmt::Arguments<'_>) {
        if self.err.is_some() {
            return;
        }
        // Formatting into a Vec is infallible; I/O errors can only
        // surface when the buffer drains.
        let _ = self.buf.write_fmt(args);
        if self.buf.len() >= TRACE_BUF_CAP {
            self.flush_buf();
        }
    }
}

impl<W: Write> RouteObserver for JsonlTraceObserver<W> {
    fn on_move(&mut self, t: Time, pkt: u32, mv: DirectedEdge, kind: ExitKind) {
        if let Some(tr) = &mut self.snap {
            tr.on_move(pkt, mv, kind);
        }
        let dir = match mv.dir {
            leveled_net::Direction::Forward => "F",
            leveled_net::Direction::Backward => "B",
        };
        self.line(format_args!(
            "{{\"ev\":\"move\",\"t\":{t},\"pkt\":{pkt},\"edge\":{},\"dir\":\"{dir}\",\"kind\":\"{}\"}}\n",
            mv.edge.0,
            kind_str(kind),
        ));
    }

    fn on_trivial(&mut self, t: Time, pkt: u32) {
        if let Some(tr) = &mut self.snap {
            tr.state[pkt as usize] = 4;
            tr.trivial += 1;
        }
        self.line(format_args!(
            "{{\"ev\":\"trivial\",\"t\":{t},\"pkt\":{pkt}}}\n"
        ));
    }

    fn on_deliver(&mut self, t: Time, pkt: u32) {
        if let Some(tr) = &mut self.snap {
            tr.state[pkt as usize] = 4;
        }
        self.line(format_args!(
            "{{\"ev\":\"deliver\",\"t\":{t},\"pkt\":{pkt}}}\n"
        ));
    }

    fn on_step_end(&mut self, t: Time, report: &StepReport, active: usize) {
        if let Some(tr) = &mut self.snap {
            std::mem::swap(&mut tr.prev_forward, &mut tr.cur_forward);
            tr.cur_forward.clear();
        }
        self.line(format_args!(
            "{{\"ev\":\"step\",\"t\":{t},\"moved\":{},\"absorbed\":{},\"injected\":{},\"deflections\":{},\"fallback\":{},\"oscillations\":{},\"active\":{active}}}\n",
            report.moved,
            report.absorbed,
            report.injected,
            report.deflections,
            report.fallback_deflections,
            report.oscillations,
        ));
    }

    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    fn on_arrival(&mut self, t: Time, pkt: u32) {
        if let Some(tr) = &mut self.snap {
            tr.state[pkt as usize] = 1;
        }
        self.line(format_args!(
            "{{\"ev\":\"arrival\",\"t\":{t},\"pkt\":{pkt}}}\n"
        ));
    }

    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    fn on_drop(&mut self, t: Time, pkt: u32) {
        if let Some(tr) = &mut self.snap {
            tr.state[pkt as usize] = 2;
        }
        self.line(format_args!(
            "{{\"ev\":\"drop\",\"t\":{t},\"pkt\":{pkt}}}\n"
        ));
    }

    fn on_sets_assigned(&mut self, sets: &[u32], num_sets: u32) {
        if let Some(tr) = &mut self.snap {
            tr.num_sets = num_sets;
        }
        if self.err.is_some() {
            return;
        }
        let mut line = format!("{{\"ev\":\"sets\",\"num_sets\":{num_sets},\"sets\":[");
        for (i, s) in sets.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&s.to_string());
        }
        line.push_str("]}\n");
        self.line(format_args!("{line}"));
    }

    fn on_phase_start(&mut self, phase: u64, t: Time) {
        self.line(format_args!(
            "{{\"ev\":\"phase_start\",\"phase\":{phase},\"t\":{t}}}\n"
        ));
        if let Some(tr) = &self.snap {
            let snap_line = tr.snapshot_line(phase, t);
            self.line(format_args!("{snap_line}\n"));
        }
    }

    fn on_phase_end(&mut self, phase: u64, t: Time) {
        self.line(format_args!(
            "{{\"ev\":\"phase_end\",\"phase\":{phase},\"t\":{t}}}\n"
        ));
        // Phase boundary: drain the buffer so a crashed or killed run
        // leaves at most one phase of events unwritten.
        self.flush_buf();
    }

    fn on_frontier(&mut self, phase: u64, set: u32, frontier: i64) {
        self.line(format_args!(
            "{{\"ev\":\"frontier\",\"phase\":{phase},\"set\":{set},\"frontier\":{frontier}}}\n"
        ));
    }

    fn on_set_congestion(&mut self, phase: u64, set: u32, congestion: u32, initial: u32) {
        self.line(format_args!(
            "{{\"ev\":\"congestion\",\"phase\":{phase},\"set\":{set},\"congestion\":{congestion},\"initial\":{initial}}}\n"
        ));
    }

    fn on_section(&mut self, section: Section, nanos: u64) {
        self.line(format_args!(
            "{{\"ev\":\"section\",\"section\":\"{}\",\"nanos\":{nanos}}}\n",
            section.name(),
        ));
    }
}

/// Sampling profiler sink: accumulates wall time per router section.
/// Returning `true` from [`RouteObserver::wants_timing`] asks the driver
/// to time its sections and report them via
/// [`RouteObserver::on_section`].
#[derive(Clone, Copy, Default, Debug)]
pub struct SectionProfiler {
    nanos: [u64; 4],
    calls: [u64; 4],
}

impl SectionProfiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total nanoseconds attributed to `section`.
    pub fn nanos(&self, section: Section) -> u64 {
        self.nanos[section.index()]
    }

    /// Number of timed intervals attributed to `section`.
    pub fn calls(&self, section: Section) -> u64 {
        self.calls[section.index()]
    }

    /// `(section, total nanos, intervals)` rows in reporting order.
    pub fn rows(&self) -> Vec<(Section, u64, u64)> {
        Section::ALL
            .iter()
            .map(|&s| (s, self.nanos(s), self.calls(s)))
            .collect()
    }

    /// One-line human summary, e.g.
    /// `conflict 1.2ms (54%) · kinematics 0.9ms (41%) · …`.
    pub fn summary(&self) -> String {
        let total: u64 = self.nanos.iter().sum();
        let mut out = String::new();
        for (i, (section, nanos, _)) in self.rows().into_iter().enumerate() {
            if i > 0 {
                out.push_str(" · ");
            }
            let pct = if total > 0 {
                100.0 * nanos as f64 / total as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{} {:.2}ms ({pct:.0}%)",
                section.name(),
                nanos as f64 / 1e6
            ));
        }
        out
    }

    /// Exports the per-section totals as JSON.
    pub fn to_json(&self) -> serde::Value {
        use serde::Serialize as _;
        serde::Value::object(self.rows().into_iter().map(|(section, nanos, calls)| {
            (
                section.name(),
                serde::Value::object([("nanos", nanos.to_json()), ("calls", calls.to_json())]),
            )
        }))
    }
}

impl RouteObserver for SectionProfiler {
    fn wants_timing(&self) -> bool {
        true
    }

    fn on_section(&mut self, section: Section, nanos: u64) {
        self.nanos[section.index()] += nanos;
        self.calls[section.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StepReport;
    use leveled_net::builders;
    use leveled_net::ids::Direction;
    use routing_core::Path;

    #[test]
    fn histogram_run_length_encodes_sorted_values() {
        assert_eq!(histogram(&[]), vec![]);
        assert_eq!(histogram(&[3]), vec![(3, 1)]);
        assert_eq!(histogram(&[2, 0, 2, 1, 2, 0]), vec![(0, 2), (1, 1), (2, 3)]);
    }

    /// A hand-built 3-level line (4 nodes, depth 3) with two packets
    /// walking the full chain, plus the chain's forward moves.
    fn three_level_problem() -> (Arc<RoutingProblem>, Vec<DirectedEdge>) {
        let net = Arc::new(builders::linear_array(4));
        let mut moves = Vec::new();
        let mut at = NodeId(0);
        for _ in 0..3 {
            let mv = net
                .exits(at)
                .find(|m| m.dir == Direction::Forward)
                .expect("line node has a forward exit");
            moves.push(mv);
            at = net.move_target(mv);
        }
        let edges: Vec<_> = moves.iter().map(|m| m.edge).collect();
        let paths = vec![
            Path::new(&net, NodeId(0), edges.clone()).unwrap(),
            Path::new(&net, NodeId(0), edges).unwrap(),
        ];
        // Relaxed: both packets share the source node, which the strict
        // one-injection-port-per-node validation would reject.
        let prob = Arc::new(RoutingProblem::new_relaxed(net, paths));
        (prob, moves)
    }

    fn step(m: &mut MetricsObserver, t: Time, active: usize) {
        m.on_step_end(t, &StepReport::default(), active);
    }

    #[test]
    fn metrics_tracks_occupancy_watermarks_and_deflections() {
        let (prob, mv) = three_level_problem();
        let mut m = MetricsObserver::new(&prob);

        // t=0: packet 0 injected, crossing to level 1.
        m.on_move(0, 0, mv[0], ExitKind::Inject);
        step(&mut m, 0, 1);
        // t=1: packet 0 advances to level 2; packet 1 injected to level 1.
        m.on_move(1, 0, mv[1], ExitKind::Advance);
        m.on_move(1, 1, mv[0], ExitKind::Inject);
        step(&mut m, 1, 2);
        // t=2: packet 0 safely deflected back level 2 → 1 while packet 1
        // waits in place (buffered-engine style: no move event).
        m.on_move(
            2,
            0,
            DirectedEdge::backward(mv[1].edge),
            ExitKind::Deflect { safe: true },
        );
        step(&mut m, 2, 2);
        // t=3..: both walk out and are absorbed at level 3.
        m.on_move(3, 0, mv[1], ExitKind::Advance);
        m.on_move(3, 1, mv[1], ExitKind::Advance);
        step(&mut m, 3, 2);
        m.on_move(4, 0, mv[2], ExitKind::Advance);
        m.on_move(4, 1, mv[2], ExitKind::Advance);
        m.on_deliver(5, 0);
        m.on_deliver(5, 1);
        step(&mut m, 4, 0);

        assert_eq!(m.deflection_histogram(), vec![(0, 1), (1, 1)]);
        assert_eq!(m.safe_deflections(), 1);
        assert_eq!(m.unsafe_deflections(), 0);
        // Deflected *from* level 2.
        assert_eq!(m.deflections_by_level(), &[0, 0, 1, 0]);
        // Watermarks: level 1 held both packets at the end of t=2, level 2
        // at the end of t=3; level 3 is absorb-on-arrival, so its
        // occupancy never survives to a step end.
        assert_eq!(m.level_watermarks(), &[0, 2, 2, 0]);
        // Packet-steps: level 1 occupied at t=0 (1), t=1 (1), t=2 (2);
        // level 2 at t=1 (1) and t=3 (2).
        assert_eq!(m.level_packet_steps(), &[0, 4, 3, 0]);
    }

    #[test]
    fn metrics_tracks_congestion_watermarks_and_frame_progress() {
        let (prob, mv) = three_level_problem();
        let mut m = MetricsObserver::new(&prob);
        m.on_sets_assigned(&[0, 1], 2);

        m.on_phase_start(0, 0);
        m.on_frontier(0, 0, 3);
        m.on_frontier(0, 1, 1);
        m.on_move(0, 0, mv[0], ExitKind::Inject);
        m.on_move(0, 1, mv[0], ExitKind::Inject);
        m.on_move(1, 0, mv[1], ExitKind::Advance);
        m.on_set_congestion(0, 0, 2, 2);
        m.on_set_congestion(0, 1, 1, 3);
        m.on_phase_end(0, 2);

        m.on_phase_start(1, 2);
        m.on_set_congestion(1, 0, 1, 2);
        m.on_set_congestion(1, 1, 3, 3);
        m.on_phase_end(1, 4);

        // Initial congestion reflects the audits; watermark is the max
        // audited value per set across phases.
        assert_eq!(m.congestion_initial(), &[2, 3]);
        assert_eq!(m.congestion_watermarks(), &[2, 3]);
        assert!(m.ln_ln_bound() > 0.0);

        // One frame-progress row per (phase end, set with packets in
        // flight), carrying the frontier that phase announced.
        let rows = m.frame_progress();
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows[0],
            FrameProgress {
                phase: 0,
                set: 0,
                frontier: 3,
                max_level: 2,
                in_flight: 1,
            }
        );
        assert_eq!(rows[1].set, 1);
        assert_eq!(rows[1].max_level, 1);
        // No new frontier events in phase 1: the last announced value
        // sticks.
        assert_eq!(rows[2].frontier, 3);
    }

    #[test]
    fn jsonl_trace_emits_one_line_per_event() {
        let (_, mv) = three_level_problem();
        let mut t = JsonlTraceObserver::new(Vec::new());
        t.on_sets_assigned(&[0, 1], 2);
        t.on_phase_start(0, 0);
        t.on_move(0, 7, mv[0], ExitKind::Inject);
        t.on_move(1, 7, mv[1], ExitKind::Deflect { safe: true });
        t.on_trivial(1, 3);
        t.on_deliver(2, 7);
        t.on_step_end(1, &StepReport::default(), 1);
        t.on_phase_end(0, 2);
        let text = String::from_utf8(t.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines[0].contains("\"ev\":\"sets\""));
        assert!(lines[2].contains("\"kind\":\"inj\""));
        assert!(lines[3].contains("\"kind\":\"def-safe\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn section_profiler_accumulates_per_section() {
        let mut p = SectionProfiler::new();
        assert!(p.wants_timing());
        p.on_section(Section::Conflict, 10);
        p.on_section(Section::Conflict, 5);
        p.on_section(Section::Kinematics, 7);
        assert_eq!(p.nanos(Section::Conflict), 15);
        assert_eq!(p.calls(Section::Conflict), 2);
        assert_eq!(p.nanos(Section::Kinematics), 7);
        assert_eq!(p.nanos(Section::Audit), 0);
        assert!(p.summary().contains("conflict"));
    }

    #[test]
    fn metrics_survives_a_zero_packet_problem() {
        let net = Arc::new(builders::linear_array(4));
        let prob = RoutingProblem::new(net, Vec::new()).unwrap();
        let mut m = MetricsObserver::new(&prob).with_occupancy_sampling(1);
        m.on_sets_assigned(&[], 4);
        m.on_phase_start(0, 0);
        m.on_frontier(0, 0, 2);
        step(&mut m, 0, 0);
        m.on_phase_end(0, 1);
        assert_eq!(m.deflection_histogram(), vec![]);
        assert!(m.frame_progress().is_empty());
        assert!(m.ln_ln_bound().is_finite());
        let doc = m.to_json();
        assert_eq!(doc.get("packets").and_then(serde::Value::as_u64), Some(0));
        assert_eq!(
            doc.get("congestion")
                .and_then(|c| c.get("watermark_max"))
                .and_then(serde::Value::as_u64),
            Some(0)
        );
    }

    #[test]
    fn metrics_survives_a_single_level_network() {
        // One level, zero depth: every path is trivial and `ln(L·N)`
        // degenerates — the bound must stay finite, not NaN or -inf.
        let net = Arc::new(builders::linear_array(1));
        let prob = RoutingProblem::new(net, vec![Path::trivial(NodeId(0))]).unwrap();
        let mut m = MetricsObserver::new(&prob);
        m.on_trivial(0, 0);
        step(&mut m, 0, 0);
        assert!(m.ln_ln_bound().is_finite());
        assert_eq!(m.level_watermarks(), &[0]);
        let doc = m.to_json();
        assert_eq!(
            doc.get("trivial_deliveries").and_then(serde::Value::as_u64),
            Some(1)
        );
        assert_eq!(doc.get("delivered").and_then(serde::Value::as_u64), Some(1));
    }

    #[test]
    fn metrics_survives_empty_frontier_sets_and_stray_set_ids() {
        let (prob, mv) = three_level_problem();
        let mut m = MetricsObserver::new(&prob);
        // Both packets land in set 0; sets 1..3 stay empty forever.
        m.on_sets_assigned(&[0, 0], 4);
        m.on_phase_start(0, 0);
        // Frontier and audit events for an out-of-range set must not
        // panic (a corrupted or foreign stream can carry them).
        m.on_frontier(0, 9, 5);
        m.on_set_congestion(0, 9, 1, 1);
        m.on_move(0, 0, mv[0], ExitKind::Inject);
        step(&mut m, 0, 1);
        m.on_phase_end(0, 1);
        // Empty sets produce no frame-progress rows; the occupied set
        // reports exactly one.
        let rows: Vec<u32> = m.frame_progress().iter().map(|r| r.set).collect();
        assert_eq!(rows, vec![0]);
        // The stray audit grew the watermark vectors without panicking.
        assert_eq!(m.congestion_watermarks().len(), 10);
        assert!(m.to_json().get("congestion").is_some());
    }

    #[test]
    fn noop_and_composite_observers_are_transparent() {
        // The composite forwarding impls must agree on wants_timing.
        assert!(!NoopObserver.wants_timing());
        assert!(!(NoopObserver, NoopObserver).wants_timing());
        assert!((NoopObserver, SectionProfiler::new()).wants_timing());
        assert!(!None::<SectionProfiler>.wants_timing());
        assert!(Some(SectionProfiler::new()).wants_timing());
        let mut opt = Some(SectionProfiler::new());
        opt.on_section(Section::Audit, 3);
        assert_eq!(opt.as_ref().unwrap().nanos(Section::Audit), 3);
    }
}
