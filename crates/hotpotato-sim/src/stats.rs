//! Routing-run statistics shared by all engines and algorithms.

use routing_core::PacketId;
use std::collections::BTreeMap;

/// Discrete simulation time (a step count).
pub type Time = u64;

/// Per-run statistics: injection/delivery times per packet, deflection and
/// deviation counts, and named counters algorithms use for their own
/// bookkeeping (e.g. invariant-violation counts).
#[derive(Clone, Debug)]
pub struct RouteStats {
    /// Step at which each packet was injected (`None` = never injected).
    pub injected_at: Vec<Option<Time>>,
    /// Step at which each packet arrived at its destination.
    pub delivered_at: Vec<Option<Time>>,
    /// Number of deflections each packet suffered.
    pub deflections: Vec<u32>,
    /// Maximum deviation-stack depth each packet reached: how far (in
    /// moves-to-undo) it ever was from its preselected path.
    pub max_deviation: Vec<u32>,
    /// Total number of steps the simulation ran.
    pub steps_run: Time,
    /// Named counters (algorithm-specific: fallback deflections, invariant
    /// violations, excitations, ...).
    pub counters: BTreeMap<&'static str, u64>,
    /// Optional per-step trace of the number of in-flight packets.
    pub active_trace: Option<Vec<u32>>,
}

impl serde::Serialize for RouteStats {
    fn to_json(&self) -> serde::Value {
        serde::Value::object([
            ("injected_at", self.injected_at.to_json()),
            ("delivered_at", self.delivered_at.to_json()),
            ("deflections", self.deflections.to_json()),
            ("max_deviation", self.max_deviation.to_json()),
            ("steps_run", self.steps_run.to_json()),
            ("counters", self.counters.to_json()),
            ("active_trace", self.active_trace.to_json()),
        ])
    }
}

impl RouteStats {
    /// Empty statistics for `n` packets. The per-step active-count trace
    /// starts disabled; enable it by setting
    /// [`RouteStats::active_trace`] to `Some` (the engine's builder does
    /// this for `SimulationBuilder::trace(true)`).
    pub fn new(n: usize) -> Self {
        RouteStats {
            injected_at: vec![None; n],
            delivered_at: vec![None; n],
            deflections: vec![0; n],
            max_deviation: vec![0; n],
            steps_run: 0,
            counters: BTreeMap::new(),
            active_trace: None,
        }
    }

    /// Number of packets in the run.
    pub fn num_packets(&self) -> usize {
        self.delivered_at.len()
    }

    /// Number of delivered packets.
    pub fn delivered_count(&self) -> usize {
        self.delivered_at.iter().filter(|d| d.is_some()).count()
    }

    /// Whether every packet reached its destination.
    pub fn all_delivered(&self) -> bool {
        self.delivered_at.iter().all(std::option::Option::is_some)
    }

    /// The step at which the last packet was delivered (the routing time
    /// the paper's Theorem 2.6 bounds), or `None` if nothing was delivered.
    pub fn makespan(&self) -> Option<Time> {
        self.delivered_at.iter().flatten().copied().max()
    }

    /// Mean in-flight latency (delivery minus injection) over delivered
    /// packets.
    pub fn mean_latency(&self) -> f64 {
        let mut sum = 0u64;
        let mut n = 0u64;
        for (inj, del) in self.injected_at.iter().zip(&self.delivered_at) {
            if let (Some(i), Some(d)) = (inj, del) {
                sum += d - i;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Total deflections across all packets.
    pub fn total_deflections(&self) -> u64 {
        self.deflections.iter().map(|&d| d as u64).sum()
    }

    /// The largest deviation-stack depth any packet ever reached.
    pub fn max_deviation_overall(&self) -> u32 {
        self.max_deviation.iter().copied().max().unwrap_or(0)
    }

    /// Increments a named counter.
    pub fn bump(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    /// Adds `by` to a named counter.
    pub fn bump_by(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Reads a named counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Packets that were never delivered.
    pub fn undelivered(&self) -> Vec<PacketId> {
        self.delivered_at
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| PacketId(i as u32))
            .collect()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "delivered {}/{} in {} steps (makespan {:?}, mean latency {:.1}, \
             {} deflections, max deviation {})",
            self.delivered_count(),
            self.num_packets(),
            self.steps_run,
            self.makespan(),
            self.mean_latency(),
            self.total_deflections(),
            self.max_deviation_overall(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stats_are_empty() {
        let s = RouteStats::new(3);
        assert_eq!(s.num_packets(), 3);
        assert_eq!(s.delivered_count(), 0);
        assert!(!s.all_delivered());
        assert_eq!(s.makespan(), None);
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.total_deflections(), 0);
        assert!(s.active_trace.is_none());
        assert_eq!(s.undelivered().len(), 3);
    }

    #[test]
    fn makespan_and_latency() {
        let mut s = RouteStats::new(2);
        s.injected_at = vec![Some(0), Some(4)];
        s.delivered_at = vec![Some(10), Some(6)];
        assert!(s.all_delivered());
        assert_eq!(s.makespan(), Some(10));
        assert_eq!(s.mean_latency(), 6.0); // (10 + 2) / 2
        assert!(s.undelivered().is_empty());
    }

    #[test]
    fn partial_delivery() {
        let mut s = RouteStats::new(2);
        s.injected_at = vec![Some(0), Some(0)];
        s.delivered_at = vec![Some(5), None];
        assert_eq!(s.delivered_count(), 1);
        assert!(!s.all_delivered());
        assert_eq!(s.undelivered(), vec![PacketId(1)]);
        assert_eq!(s.mean_latency(), 5.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = RouteStats::new(0);
        s.bump("fallback");
        s.bump("fallback");
        s.bump_by("isolation_violations", 5);
        assert_eq!(s.counter("fallback"), 2);
        assert_eq!(s.counter("isolation_violations"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn summary_mentions_delivery_fraction() {
        let mut s = RouteStats::new(2);
        s.delivered_at = vec![Some(3), None];
        assert!(s.summary().contains("delivered 1/2"));
    }
}
