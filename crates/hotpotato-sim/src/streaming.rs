//! Continuous-injection (streaming) routing: the open-ended step loop.
//!
//! Batch mode injects every packet per a schedule decided up front and
//! runs to quiesce. Streaming mode instead models the online setting of
//! the Even–Medina line: packets *arrive over time* per an
//! [`routing_core::workloads::ArrivalProcess`] and pass through
//! **admission control** before injection —
//!
//! * a packet whose arrival step has been reached enters the injection
//!   queue, unless the queue is already at its bound, in which case the
//!   packet is **dropped** (never injected, counted, reported via
//!   [`RouteObserver::on_drop`]);
//! * queued packets are injected whenever the in-flight count is below
//!   the **in-flight cap** and their source port is free — a queued
//!   packet is **deferred**, not dropped, for as long as that takes.
//!
//! In-network packets obey the unchanged hot-potato constraints (every
//! active packet moves every step, one packet per edge per direction,
//! absorb on arrival), resolved per node with the shared
//! [`conflict`] routine and safe backward deflections. The run ends when
//! every arrival has been delivered or dropped and the network has
//! drained, or at the step cap.
//!
//! The driver emits the standard engine events plus the two streaming
//! events ([`RouteObserver::on_arrival`] / [`RouteObserver::on_drop`]),
//! so metrics, JSONL traces, live serving, and replay verification all
//! work on open-ended runs through the existing observer path.

use crate::conflict::{self, Contender};
use crate::engine::{ExitKind, InjectOutcome, Simulation};
use crate::observe::{NoopObserver, RouteObserver};
use crate::record::RunRecord;
use crate::stats::{RouteStats, Time};
use rand::Rng;
use routing_core::RoutingProblem;
use std::sync::Arc;

/// Bounds on the injection queue: how much sustained load the stream
/// admits before deferring, and how much it defers before dropping.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionControl {
    /// Maximum packets in the network at once; arrivals beyond it wait
    /// in the injection queue.
    pub max_in_flight: usize,
    /// Maximum length of the injection queue; arrivals beyond it are
    /// dropped.
    pub max_deferred: usize,
}

impl Default for AdmissionControl {
    fn default() -> Self {
        AdmissionControl {
            max_in_flight: 256,
            max_deferred: 1024,
        }
    }
}

/// Conflict-resolution priority rule for in-network streaming packets
/// (the same rules as the greedy baseline).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StreamPriority {
    /// All packets equal; conflicts resolved uniformly at random.
    Uniform,
    /// The packet with the most remaining current-path edges wins.
    #[default]
    FurthestToGo,
    /// The packet deflected most often wins (starvation freedom).
    Aging,
}

impl StreamPriority {
    /// The priority rule a run spec's algorithm name selects in
    /// streaming mode. The streaming driver runs the shared
    /// conflict-resolution core directly, so only the priority-rule
    /// algorithms map onto it (the Busch phase algorithm and the
    /// store-and-forward baselines are batch-only).
    pub fn for_algo(algo: &str) -> Result<StreamPriority, String> {
        match algo {
            "greedy" => Ok(StreamPriority::Uniform),
            "ftg" => Ok(StreamPriority::FurthestToGo),
            "aging" => Ok(StreamPriority::Aging),
            other => Err(format!(
                "algorithm '{other}' does not support streaming arrivals \
                 (streaming algos: greedy|ftg|aging)"
            )),
        }
    }
}

/// Configuration of a streaming run.
#[derive(Clone, Copy, Debug)]
pub struct StreamingConfig {
    /// Injection-queue bounds.
    pub admission: AdmissionControl,
    /// Conflict priority rule.
    pub priority: StreamPriority,
    /// Safety cap on simulated steps (the loop is open-ended; a cap
    /// keeps adversarial schedules finite).
    pub max_steps: u64,
    /// Record the per-step active-packet trace.
    pub trace: bool,
    /// Record every movement event for independent replay auditing.
    pub record: bool,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            admission: AdmissionControl::default(),
            priority: StreamPriority::default(),
            max_steps: 5_000_000,
            trace: false,
            record: false,
        }
    }
}

/// Result of a streaming run: the standard statistics plus the
/// injection/admission accounting.
#[derive(Clone, Debug)]
pub struct StreamingOutcome {
    /// Standard routing statistics. Dropped packets stay uninjected and
    /// undelivered; delivered-vs-dropped accounting is exact:
    /// `delivered + dropped == arrivals` when the run drained.
    pub stats: RouteStats,
    /// The movement record, when [`StreamingConfig::record`] was set.
    pub record: Option<RunRecord>,
    /// Packets made available by the arrival schedule.
    pub arrivals: u64,
    /// Packets admitted into the network (injected or trivially
    /// delivered at injection).
    pub admitted: u64,
    /// Packets dropped by admission control.
    pub dropped: u64,
    /// Peak injection-queue length observed.
    pub peak_deferred: usize,
    /// Peak in-flight count observed at a step end.
    pub peak_in_flight: usize,
    /// Whether every arrival was resolved (delivered or dropped) and
    /// the network drained before the step cap.
    pub drained: bool,
}

impl StreamingOutcome {
    /// Delivered packets per step over the whole run — the steady-state
    /// throughput once the run is long enough to amortize ramp-up.
    pub fn throughput(&self) -> f64 {
        let steps = self.stats.steps_run.max(1);
        self.stats.delivered_at.iter().flatten().count() as f64 / steps as f64
    }
}

/// Routes `problem` in streaming mode: packet `i` becomes available at
/// step `schedule[i]` and flows through admission control. Deterministic
/// given the rng state. `schedule.len()` must equal the problem's packet
/// count.
///
/// The streaming loop executes on the scalar [`Simulation`] substrate.
pub fn route_streaming<R: Rng + ?Sized>(
    problem: &Arc<RoutingProblem>,
    schedule: &[Time],
    cfg: &StreamingConfig,
    rng: &mut R,
) -> StreamingOutcome {
    route_streaming_observed(problem, schedule, cfg, rng, &mut NoopObserver)
}

/// [`route_streaming`] with an attached event sink.
// lint: no-panic
pub fn route_streaming_observed<R: Rng + ?Sized, O: RouteObserver + ?Sized>(
    problem: &Arc<RoutingProblem>,
    schedule: &[Time],
    cfg: &StreamingConfig,
    rng: &mut R,
    observer: &mut O,
) -> StreamingOutcome {
    let n = problem.num_packets();
    // lint: allow-panic(api precondition: the schedule/packet arity contract is the fn's one caller-facing assert)
    assert_eq!(schedule.len(), n, "arrival schedule must time every packet");
    let mut sim = Simulation::builder(Arc::clone(problem), vec![(); n])
        .trace(cfg.trace)
        .recording(cfg.record)
        .observer(observer)
        .build();

    // Arrival order: by step, ties by packet id (generators emit
    // non-decreasing schedules, but an explicit schedule need not be).
    let mut order: Vec<u32> = (0..n as u32).collect();
    // lint: allow-panic(p ranges over 0..n and schedule.len() == n per the arity assert above)
    order.sort_by_key(|&p| (schedule[p as usize], p));
    let mut next_arrival = 0usize;

    // The injection queue, in arrival order. `retain` keeps blocked
    // packets queued without head-of-line blocking across sources.
    let mut queue: Vec<u32> = Vec::new();
    let mut arrivals = 0u64;
    let mut admitted = 0u64;
    let mut dropped = 0u64;
    let mut peak_deferred = 0usize;
    let mut peak_in_flight = 0usize;

    let mut arrivals_buf: Vec<u32> = Vec::new();
    let mut contenders: Vec<Contender> = Vec::new();
    let mut nodes_buf: Vec<leveled_net::NodeId> = Vec::new();
    let mut scratch = conflict::ConflictScratch::default();

    loop {
        let all_arrived = next_arrival >= n;
        if all_arrived && queue.is_empty() && sim.active_count() == 0 {
            break;
        }
        if sim.now() >= cfg.max_steps {
            break;
        }
        let now = sim.now();

        // 1. Every in-network packet must be staged an exit (no rest).
        sim.occupied_nodes_into(&mut nodes_buf);
        for &v in &nodes_buf {
            arrivals_buf.clear();
            arrivals_buf.extend_from_slice(sim.arrivals(v));
            contenders.clear();
            for &p in &arrivals_buf {
                let desired = sim
                    .next_move_of(p)
                    // lint: allow-panic(engine invariant: an active packet is off-destination, so next_move_of is Some)
                    .expect("active packets are not at their destination");
                let priority = match cfg.priority {
                    StreamPriority::Uniform => 0,
                    StreamPriority::FurthestToGo => {
                        let pkt = sim.packet(p);
                        let remaining =
                            pkt.deviation_depth() + (sim.path_of(p).len() - pkt.base_idx());
                        remaining as u32
                    }
                    StreamPriority::Aging => sim.packet(p).deflections(),
                };
                contenders.push(Contender {
                    pkt: p,
                    desired,
                    priority,
                    arrival: sim.packet(p).last_move,
                });
            }
            // lint: allow-panic(RangeFull slicing of a Vec cannot panic)
            if let [c] = contenders[..] {
                sim.stage_exit(c.pkt, c.desired, ExitKind::Advance)
                    // lint: allow-panic(engine invariant: a lone contender's desired slot is free by the bufferless law)
                    .expect("lone desired slot is free");
                continue;
            }
            let exits = conflict::resolve_into(
                &sim,
                v,
                &contenders,
                conflict::DeflectRule::SafeBackward {
                    allow_fallback: true,
                },
                rng,
                &mut scratch,
            )
            // lint: allow-panic(engine invariant: fallback resolution always succeeds within the degree bound)
            .expect("fallback resolution cannot fail within degree bound");
            for &e in exits {
                let kind = if e.won {
                    ExitKind::Advance
                } else {
                    ExitKind::Deflect { safe: e.safe }
                };
                sim.stage_exit(e.pkt, e.mv, kind)
                    // lint: allow-panic(engine invariant: the resolver emits only feasible exits)
                    .expect("resolver produces feasible exits");
            }
        }

        // 2. Arrival intake: packets whose step has come enter the
        // queue, or are dropped if the queue is at its bound.
        while next_arrival < n {
            // lint: allow-panic(loop guard: next_arrival < n and order has exactly n entries)
            let p = order[next_arrival];
            // lint: allow-panic(p < n indexes the length-asserted schedule)
            if schedule[p as usize] > now {
                break;
            }
            next_arrival += 1;
            arrivals += 1;
            sim.observer_mut().on_arrival(now, p);
            if queue.len() >= cfg.admission.max_deferred {
                dropped += 1;
                sim.observer_mut().on_drop(now, p);
                sim.stats_mut().bump("dropped");
            } else {
                queue.push(p);
            }
        }
        peak_deferred = peak_deferred.max(queue.len());

        // 3. Injection under the in-flight cap, oldest arrivals first.
        let mut budget = cfg
            .admission
            .max_in_flight
            .saturating_sub(sim.active_count());
        queue.retain(|&p| {
            if budget == 0 {
                return true;
            }
            // lint: allow-panic(admission invariant: the deferred queue holds only pending packets)
            match sim.try_inject(p).expect("queued packets are pending") {
                InjectOutcome::Injected => {
                    budget -= 1;
                    admitted += 1;
                    false
                }
                InjectOutcome::DeliveredTrivially => {
                    admitted += 1;
                    false
                }
                InjectOutcome::Blocked => true,
            }
        });

        // lint: allow-panic(engine invariant: pass 1 staged an exit for every occupied node)
        sim.finish_step().expect("all arrivals staged");
        peak_in_flight = peak_in_flight.max(sim.active_count());
    }

    let drained = next_arrival >= n && queue.is_empty() && sim.active_count() == 0;
    let (mut stats, record) = sim.into_parts();
    stats.bump_by("arrivals", arrivals);
    stats.bump_by("admitted", admitted);
    StreamingOutcome {
        stats,
        record,
        arrivals,
        admitted,
        dropped,
        peak_deferred,
        peak_in_flight,
        drained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use routing_core::workloads::{self, ArrivalProcess};

    fn poisson_instance(
        pkts: usize,
        rate: f64,
        seed: u64,
    ) -> (Arc<RoutingProblem>, Vec<Time>, ChaCha8Rng) {
        let net = Arc::new(builders::butterfly(5));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let prob = workloads::random_pairs(&net, pkts, &mut rng).unwrap();
        let schedule = ArrivalProcess::Poisson { rate }.schedule(pkts, &mut rng);
        (prob, schedule, rng)
    }

    #[test]
    fn poisson_stream_drains_and_delivers() {
        let (prob, schedule, mut rng) = poisson_instance(24, 0.5, 1);
        let out = route_streaming(&prob, &schedule, &StreamingConfig::default(), &mut rng);
        assert!(out.drained, "{}", out.stats.summary());
        assert!(out.stats.all_delivered());
        assert_eq!(out.arrivals, 24);
        assert_eq!(out.admitted, 24);
        assert_eq!(out.dropped, 0);
        assert!(out.throughput() > 0.0);
        // No packet is injected before its arrival step.
        for (i, inj) in out.stats.injected_at.iter().enumerate() {
            assert!(inj.unwrap() >= schedule[i], "packet {i} injected early");
        }
    }

    #[test]
    fn burst_with_tight_queue_drops_the_overflow() {
        let net = Arc::new(builders::butterfly(4));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let prob = workloads::random_pairs(&net, 16, &mut rng).unwrap();
        // Everyone arrives at step 0; the queue holds 4 and the network 2.
        let schedule = vec![0; 16];
        let cfg = StreamingConfig {
            admission: AdmissionControl {
                max_in_flight: 2,
                max_deferred: 4,
            },
            ..Default::default()
        };
        let out = route_streaming(&prob, &schedule, &cfg, &mut rng);
        assert!(out.drained);
        assert_eq!(out.dropped, 12, "16 arrivals, 2 injectable + 4 queued");
        assert_eq!(out.admitted + out.dropped, out.arrivals);
        assert!(out.peak_in_flight <= 2);
        assert!(out.peak_deferred <= 4);
        let delivered = out.stats.delivered_at.iter().flatten().count() as u64;
        assert_eq!(delivered, out.admitted);
        assert_eq!(out.stats.counter("dropped"), 12);
    }

    #[test]
    fn streaming_is_deterministic_given_seed() {
        let (prob, schedule, _) = poisson_instance(20, 0.3, 5);
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        let o1 = route_streaming(&prob, &schedule, &StreamingConfig::default(), &mut r1);
        let o2 = route_streaming(&prob, &schedule, &StreamingConfig::default(), &mut r2);
        assert_eq!(o1.stats.delivered_at, o2.stats.delivered_at);
        assert_eq!(o1.stats.injected_at, o2.stats.injected_at);
    }

    #[test]
    fn streaming_record_passes_replay_audit() {
        let (prob, schedule, mut rng) = poisson_instance(18, 0.4, 7);
        let cfg = StreamingConfig {
            record: true,
            ..Default::default()
        };
        let out = route_streaming(&prob, &schedule, &cfg, &mut rng);
        let record = out.record.as_ref().expect("recording on");
        let rep = crate::replay::verify(&prob, record, &out.stats).expect("clean replay");
        assert_eq!(rep.delivered, 18);
    }

    #[test]
    fn max_steps_caps_open_ended_runs() {
        let (prob, schedule, mut rng) = poisson_instance(20, 0.1, 11);
        let cfg = StreamingConfig {
            max_steps: 2,
            ..Default::default()
        };
        let out = route_streaming(&prob, &schedule, &cfg, &mut rng);
        assert!(!out.drained);
        assert!(out.stats.steps_run <= 2);
    }

    #[test]
    fn observer_sees_arrivals_and_drops() {
        #[derive(Default)]
        struct Counter {
            arrivals: Vec<(Time, u32)>,
            drops: Vec<(Time, u32)>,
        }
        impl RouteObserver for Counter {
            fn on_arrival(&mut self, t: Time, pkt: u32) {
                self.arrivals.push((t, pkt));
            }
            fn on_drop(&mut self, t: Time, pkt: u32) {
                self.drops.push((t, pkt));
            }
        }
        let net = Arc::new(builders::butterfly(4));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let prob = workloads::random_pairs(&net, 8, &mut rng).unwrap();
        let schedule = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let cfg = StreamingConfig {
            admission: AdmissionControl {
                max_in_flight: 1,
                max_deferred: 2,
            },
            ..Default::default()
        };
        let mut counter = Counter::default();
        let out = route_streaming_observed(&prob, &schedule, &cfg, &mut rng, &mut counter);
        assert_eq!(counter.arrivals.len(), 8);
        assert_eq!(counter.drops.len() as u64, out.dropped);
        for &(t, pkt) in &counter.arrivals {
            assert_eq!(t, schedule[pkt as usize]);
        }
        // Dropped packets were never injected.
        for &(_, pkt) in &counter.drops {
            assert!(out.stats.injected_at[pkt as usize].is_none());
        }
    }
}
