//! The synchronous bufferless (hot-potato) engine.
//!
//! The engine owns the dynamic packet states and enforces the hot-potato
//! model of the paper (§1.1, §2.3):
//!
//! * time is discrete; at each step a node receives packets, a routing
//!   decision is made, and the packets are forwarded;
//! * **no buffering**: every packet that arrives at a node must be staged
//!   an exit in the same step ([`Simulation::finish_step`] fails with
//!   [`SimError::PacketRested`] otherwise);
//! * **link capacity**: at most one packet traverses an edge per direction
//!   per step (at most two packets per link, one per direction);
//! * packets reaching their destination are absorbed on arrival.
//!
//! Routing algorithms drive the engine step by step:
//!
//! ```text
//! loop {
//!     for v in sim.occupied_nodes() {            // nodes with arrivals
//!         // decide one exit per packet, e.g. via conflict::resolve
//!         sim.stage_exit(pkt, mv, kind)?;
//!     }
//!     sim.try_inject(pkt)?;                      // source-side injections
//!     sim.finish_step()?;                        // move, absorb, advance
//! }
//! ```

use crate::kinematics::SimPacket;
use crate::observe::{NoopObserver, RouteObserver};
use crate::record::{MoveEvent, RunRecord, TrivialDelivery};
use crate::stats::{RouteStats, Time};
use leveled_net::ids::DirectedEdge;
use leveled_net::{LeveledNetwork, NodeId};
use routing_core::{EngineKind, PacketId, RoutingProblem};
use std::sync::Arc;

/// Lifecycle of a packet inside the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketStatus {
    /// Waiting at its source, not yet injected.
    Pending,
    /// In flight.
    Active,
    /// Absorbed at its destination.
    Delivered,
}

/// How the caller classifies a staged exit; drives the statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExitKind {
    /// The packet advances along its current path (won its conflict).
    Advance,
    /// The packet was deflected; `safe` records whether the deflection was
    /// backward-and-safe in the sense of the paper's Lemma 2.1.
    Deflect {
        /// Backward along an edge another packet traversed forward this
        /// step (edge recycling), versus an arbitrary free link.
        safe: bool,
    },
    /// A wait-state oscillation move (not a deflection: the edge stays in
    /// the packet's path list).
    Oscillate,
    /// The injection move out of the source node.
    Inject,
}

/// Errors surfaced by the engine. Algorithms treat these as bugs in their
/// own dispatch logic, except for [`SimError::SlotBusy`] which they use to
/// probe availability.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The (edge, direction) slot is already taken this step.
    SlotBusy,
    /// The staged move does not start at the packet's current node.
    NotAtOrigin,
    /// The packet was already staged an exit this step.
    AlreadyStaged,
    /// The packet is not active.
    NotActive,
    /// The packet is not pending (injection only applies to pending
    /// packets).
    NotPending,
    /// `finish_step` found an active packet with no staged exit — a
    /// violation of the hot-potato (bufferless) constraint by the caller.
    PacketRested(PacketId),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::SlotBusy => write!(f, "edge-direction slot already used this step"),
            SimError::NotAtOrigin => write!(f, "move does not start at the packet's node"),
            SimError::AlreadyStaged => write!(f, "packet already staged this step"),
            SimError::NotActive => write!(f, "packet is not active"),
            SimError::NotPending => write!(f, "packet is not pending"),
            SimError::PacketRested(p) => {
                write!(f, "hot-potato violation: packet {p} was left resting")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of an injection attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InjectOutcome {
    /// The packet departed its source along the first edge of its path.
    Injected,
    /// The packet's path is trivial (source == destination); it was
    /// delivered without entering the network.
    DeliveredTrivially,
    /// The first edge's forward slot is occupied; try again next step.
    Blocked,
}

/// Per-step movement summary returned by [`Simulation::finish_step`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct StepReport {
    /// Packets that moved this step (including injections).
    pub moved: usize,
    /// Packets absorbed at their destination.
    pub absorbed: usize,
    /// Packets injected.
    pub injected: usize,
    /// Deflections (safe + fallback).
    pub deflections: usize,
    /// Unsafe (fallback) deflections.
    pub fallback_deflections: usize,
    /// Oscillation moves.
    pub oscillations: usize,
}

/// How much post-hoc auditability a [`SimulationBuilder`] run keeps.
///
/// Engine-level switch only: the Busch router's *online* invariant audits
/// (`I_a..I_f`) are a property of the algorithm, not the engine, and stay
/// on `BuschConfig::check_invariants` in the `busch-router` crate.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AuditLevel {
    /// Keep nothing beyond [`RouteStats`].
    #[default]
    Off,
    /// Record every movement event ([`RunRecord`]) so the run can be
    /// re-verified offline with [`crate::replay::verify`].
    Replay,
}

/// Staged construction of a [`Simulation`]: replaces the old
/// `Simulation::new(problem, metas, trace)` + `enable_recording()` pair.
///
/// ```
/// # use hotpotato_sim::{Simulation, AuditLevel};
/// # use routing_core::{Path, RoutingProblem};
/// # use leveled_net::{builders, NodeId};
/// # use std::sync::Arc;
/// # let net = Arc::new(builders::linear_array(3));
/// # let path = Path::from_nodes(&net, &[NodeId(0), NodeId(1)]).unwrap();
/// # let problem = Arc::new(RoutingProblem::new(net, vec![path]).unwrap());
/// let mut sim: Simulation<()> = Simulation::builder(problem, vec![()])
///     .trace(true)
///     .audits(AuditLevel::Replay)
///     .build();
/// ```
///
/// Attach an event sink with [`SimulationBuilder::observer`]; the type
/// parameter changes from the default [`NoopObserver`] to the sink's
/// type, so an unobserved build stays statically observer-free.
pub struct SimulationBuilder<M, O = NoopObserver> {
    problem: Arc<RoutingProblem>,
    metas: Vec<M>,
    trace: bool,
    recording: bool,
    engine: EngineKind,
    observer: O,
}

impl<M> SimulationBuilder<M> {
    fn new(problem: Arc<RoutingProblem>, metas: Vec<M>) -> Self {
        SimulationBuilder {
            problem,
            metas,
            trace: false,
            recording: false,
            engine: EngineKind::Scalar,
            observer: NoopObserver,
        }
    }
}

impl<M, O> SimulationBuilder<M, O> {
    /// Enables the per-step active-count trace in the statistics.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enables full movement recording for later
    /// [`crate::replay::verify`] auditing.
    pub fn recording(mut self, on: bool) -> Self {
        self.recording = on;
        self
    }

    /// Sets the audit level (an explicit-intent alias for
    /// [`SimulationBuilder::recording`]).
    pub fn audits(self, level: AuditLevel) -> Self {
        self.recording(level == AuditLevel::Replay)
    }

    /// Declares which engine substrate this run selects — the typed
    /// replacement for the deprecated `HOTPOTATO_ENGINE` env var. The
    /// builder itself always constructs the scalar [`Simulation`]
    /// (that *is* the scalar substrate); drivers that own both
    /// substrates (the Busch router, the streaming driver) read the
    /// declaration back via [`Simulation::engine_kind`] and dispatch.
    /// Defaults to [`EngineKind::Scalar`].
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// Attaches an event sink; the simulation feeds it every engine event
    /// (see [`RouteObserver`]). Pass `&mut sink` to keep ownership.
    pub fn observer<O2: RouteObserver>(self, observer: O2) -> SimulationBuilder<M, O2> {
        SimulationBuilder {
            problem: self.problem,
            metas: self.metas,
            trace: self.trace,
            recording: self.recording,
            engine: self.engine,
            observer,
        }
    }

    /// Builds the engine.
    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    pub fn build(self) -> Simulation<M, O>
    where
        O: RouteObserver,
    {
        let SimulationBuilder {
            problem,
            metas,
            trace,
            recording,
            engine,
            observer,
        } = self;
        assert_eq!(metas.len(), problem.num_packets());
        let net = problem.network_arc();
        let n = problem.num_packets();
        let packets: Vec<SimPacket<M>> = problem
            .packets()
            .iter()
            .zip(metas)
            .map(|(spec, meta)| SimPacket::new(spec.id, spec.path.source(), meta))
            .collect();
        let nv = net.num_nodes();
        let ne = net.num_edges();
        let dest = problem
            .packets()
            .iter()
            .map(|spec| spec.path.dest(&net).0)
            .collect();
        let mut stats = RouteStats::new(n);
        if trace {
            stats.active_trace = Some(Vec::new());
        }
        Simulation {
            problem,
            net,
            packets,
            status: vec![PacketStatus::Pending; n],
            now: 0,
            arrivals_flat: Vec::with_capacity(n),
            bucket_start: vec![0; nv],
            bucket_len: vec![0; nv],
            occupied: Vec::new(),
            incoming: Vec::with_capacity(n),
            slot_stamp: vec![0; 2 * ne],
            staged: Vec::new(),
            staged_stamp: vec![0; n],
            stamp: 1,
            staged_arrivals: 0,
            active_list: Vec::with_capacity(n),
            pending_list: (0..n as u32).collect(),
            list_pos: (0..n as u32).collect(),
            dest,
            delivered: 0,
            stats,
            record: if recording {
                Some(RunRecord::default())
            } else {
                None
            },
            engine,
            observer,
        }
    }
}

/// The bufferless simulation engine; `M` is the per-packet metadata type
/// of the driving algorithm, `O` the attached event sink (default:
/// [`NoopObserver`], which compiles to nothing).
///
/// # Internals
///
/// The per-step hot state is allocation-free after construction:
///
/// * Arrivals live in a single flat arena (`arrivals_flat`), grouped by
///   node via `bucket_start`/`bucket_len`, rebuilt in place by
///   [`Simulation::finish_step`] with a stable counting sort — no
///   per-node `Vec`s, no per-step allocation.
/// * `occupied` is the ascending-sorted list of nodes with arrivals,
///   maintained by `finish_step`; [`Simulation::occupied_nodes_into`]
///   copies it into a caller-owned scratch buffer.
/// * Active and pending packet sets are maintained as swap-remove lists
///   (`active_list`/`pending_list` indexed by `list_pos`), so membership
///   updates are O(1) and enumeration is O(set size), not O(N).
pub struct Simulation<M, O = NoopObserver> {
    problem: Arc<RoutingProblem>,
    net: Arc<LeveledNetwork>,
    packets: Vec<SimPacket<M>>,
    status: Vec<PacketStatus>,
    now: Time,
    /// Packet indices of every arrival this step, grouped by node.
    arrivals_flat: Vec<u32>,
    /// Per node: offset of its group in `arrivals_flat` (valid only while
    /// `bucket_len` is non-zero).
    bucket_start: Vec<u32>,
    /// Per node: arrivals this step (zeroed via `occupied` at step end).
    bucket_len: Vec<u32>,
    /// Nodes with at least one arrival this step, ascending.
    occupied: Vec<u32>,
    /// `finish_step` scratch: (node, packet) pairs in staged order.
    incoming: Vec<(u32, u32)>,
    /// Per (edge, direction): stamp of the step that claimed the slot.
    slot_stamp: Vec<u32>,
    staged: Vec<(u32, DirectedEdge, ExitKind)>,
    /// Per packet: stamp of the step it was staged in.
    staged_stamp: Vec<u32>,
    /// Stamp of the current step. Wraps every 2^32 steps, at which point
    /// both stamp arrays are cleared (so stale stamps can never collide).
    stamp: u32,
    /// Packets staged via [`Simulation::stage_exit`] this step — exactly
    /// the arrivals that have been given an exit (injections go through
    /// [`Simulation::try_inject`] and are not arrivals).
    staged_arrivals: u32,
    /// In-flight packet indices (unordered; `list_pos` locates members).
    active_list: Vec<u32>,
    /// Not-yet-injected packet indices (unordered).
    pending_list: Vec<u32>,
    /// Position of each packet in whichever list currently holds it.
    list_pos: Vec<u32>,
    /// Destination node of each packet, precomputed from its path.
    dest: Vec<u32>,
    delivered: usize,
    stats: RouteStats,
    record: Option<RunRecord>,
    /// The engine substrate this run declared (see
    /// [`SimulationBuilder::engine`]).
    engine: EngineKind,
    observer: O,
}

/// Removes `idx` from a swap-remove list, patching the moved element's
/// position entry.
// lint: hot-path
#[inline]
fn list_remove(list: &mut Vec<u32>, pos: &mut [u32], idx: u32) {
    let p = pos[idx as usize] as usize;
    debug_assert_eq!(list[p], idx);
    list.swap_remove(p);
    if let Some(&moved) = list.get(p) {
        pos[moved as usize] = p as u32;
    }
}

impl<M> Simulation<M> {
    /// Starts building an engine over `problem`; `metas` supplies the
    /// initial algorithm metadata for each packet (same order as
    /// `problem.packets()`).
    pub fn builder(problem: Arc<RoutingProblem>, metas: Vec<M>) -> SimulationBuilder<M> {
        SimulationBuilder::new(problem, metas)
    }

    /// Creates an engine over `problem` with the per-step active-count
    /// trace toggled by `trace`.
    #[deprecated(
        since = "0.1.0",
        note = "use Simulation::builder(..).trace(..).build()"
    )]
    pub fn new(problem: Arc<RoutingProblem>, metas: Vec<M>, trace: bool) -> Self {
        SimulationBuilder::new(problem, metas).trace(trace).build()
    }
}

impl<M, O: RouteObserver> Simulation<M, O> {
    /// Enables full run recording: every movement event is logged for
    /// later [`crate::replay::verify`] auditing. Call before the first
    /// step.
    #[deprecated(
        since = "0.1.0",
        note = "use Simulation::builder(..).audits(AuditLevel::Replay).build()"
    )]
    pub fn enable_recording(&mut self) {
        assert_eq!(self.now, 0, "enable recording before the run starts");
        self.record = Some(RunRecord::default());
    }

    /// The attached event sink.
    #[inline]
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the attached event sink, so drivers can emit
    /// their own (e.g. phase-level) events through it mid-run.
    #[inline]
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// The engine substrate this run declared via
    /// [`SimulationBuilder::engine`].
    #[inline]
    pub fn engine_kind(&self) -> EngineKind {
        self.engine
    }

    /// Current simulation time (step number).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The routing problem being simulated.
    #[inline]
    pub fn problem(&self) -> &RoutingProblem {
        &self.problem
    }

    /// The underlying network.
    #[inline]
    pub fn network(&self) -> &LeveledNetwork {
        &self.net
    }

    /// Nodes with at least one arriving packet this step, ascending.
    ///
    /// Allocates a fresh `Vec`; step loops should prefer
    /// [`Simulation::occupied_nodes_into`] with a reused scratch buffer.
    pub fn occupied_nodes(&self) -> Vec<NodeId> {
        self.occupied.iter().map(|&v| NodeId(v)).collect()
    }

    /// Copies the ascending occupied-node list into `out` (cleared first).
    /// The engine maintains the list sorted, so this is a plain copy.
    #[inline]
    pub fn occupied_nodes_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.occupied.iter().map(|&v| NodeId(v)));
    }

    /// Number of nodes with arrivals this step.
    #[inline]
    pub fn occupied_count(&self) -> usize {
        self.occupied.len()
    }

    /// Packet indices that arrived at `node` this step, in staged order.
    #[inline]
    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    pub fn arrivals(&self, node: NodeId) -> &[u32] {
        let i = node.index();
        let len = self.bucket_len[i] as usize;
        if len == 0 {
            return &[];
        }
        let start = self.bucket_start[i] as usize;
        &self.arrivals_flat[start..start + len]
    }

    /// The dynamic state of packet `idx`.
    #[inline]
    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    pub fn packet(&self, idx: u32) -> &SimPacket<M> {
        &self.packets[idx as usize]
    }

    /// Mutable access to packet metadata.
    #[inline]
    pub fn meta_mut(&mut self, idx: u32) -> &mut M {
        &mut self.packets[idx as usize].meta
    }

    /// The preselected path of packet `idx`.
    #[inline]
    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    pub fn path_of(&self, idx: u32) -> &routing_core::Path {
        &self.problem.packets()[idx as usize].path
    }

    /// The next move along packet `idx`'s current path.
    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    pub fn next_move_of(&self, idx: u32) -> Option<DirectedEdge> {
        self.packets[idx as usize].next_move(self.path_of(idx))
    }

    /// Lifecycle status of packet `idx`.
    #[inline]
    pub fn status(&self, idx: u32) -> PacketStatus {
        self.status[idx as usize]
    }

    /// Whether the (edge, direction) slot is still free this step.
    #[inline]
    pub fn slot_free(&self, mv: DirectedEdge) -> bool {
        self.slot_stamp[mv.slot_index()] != self.stamp
    }

    /// Number of delivered packets.
    #[inline]
    pub fn delivered_count(&self) -> usize {
        self.delivered
    }

    /// Number of in-flight packets.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active_list.len()
    }

    /// Number of packets still waiting to be injected.
    #[inline]
    pub fn pending_count(&self) -> usize {
        self.pending_list.len()
    }

    /// Whether every packet has been delivered.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.delivered == self.packets.len()
    }

    /// Indices of all active packets (ascending). Backed by a maintained
    /// list: costs O(A log A) in the number of in-flight packets, not
    /// O(N) in the number of packets.
    pub fn active_indices(&self) -> Vec<u32> {
        let mut v = self.active_list.clone();
        v.sort_unstable();
        v
    }

    /// Indices of all pending (not yet injected) packets (ascending).
    /// Backed by a maintained list, like [`Simulation::active_indices`].
    pub fn pending_indices(&self) -> Vec<u32> {
        let mut v = self.pending_list.clone();
        v.sort_unstable();
        v
    }

    /// The maintained active-packet list, in *unspecified* order and
    /// without allocating. For order-insensitive consumers (auditors
    /// summing over the set); use [`Simulation::active_indices`] when
    /// iteration order must be deterministic.
    #[inline]
    pub fn active_slice(&self) -> &[u32] {
        &self.active_list
    }

    /// The maintained pending-packet list, in *unspecified* order and
    /// without allocating (see [`Simulation::active_slice`]).
    #[inline]
    pub fn pending_slice(&self) -> &[u32] {
        &self.pending_list
    }

    /// Mutable handle to the run statistics (for algorithm counters).
    pub fn stats_mut(&mut self) -> &mut RouteStats {
        &mut self.stats
    }

    /// Read-only handle to the run statistics.
    pub fn stats(&self) -> &RouteStats {
        &self.stats
    }

    /// Stages the exit of active packet `idx` along `mv` this step.
    // lint: hot-path
    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    pub fn stage_exit(
        &mut self,
        idx: u32,
        mv: DirectedEdge,
        kind: ExitKind,
    ) -> Result<(), SimError> {
        let i = idx as usize;
        if self.status[i] != PacketStatus::Active {
            return Err(SimError::NotActive);
        }
        if self.staged_stamp[i] == self.stamp {
            return Err(SimError::AlreadyStaged);
        }
        if self.net.move_origin(mv) != self.packets[i].node() {
            return Err(SimError::NotAtOrigin);
        }
        if !self.slot_free(mv) {
            return Err(SimError::SlotBusy);
        }
        self.slot_stamp[mv.slot_index()] = self.stamp;
        self.staged_stamp[i] = self.stamp;
        self.staged_arrivals += 1;
        self.staged.push((idx, mv, kind));
        Ok(())
    }

    /// Attempts to inject pending packet `idx`: it departs its source along
    /// the first edge of its preselected path if that slot is free.
    ///
    /// Packets with trivial paths are delivered immediately. The engine
    /// does not require *isolation* (no other packets at the source) — the
    /// paper's algorithm arranges isolation by scheduling; algorithms can
    /// check [`Simulation::arrivals`] at the source to audit it.
    // lint: hot-path
    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    pub fn try_inject(&mut self, idx: u32) -> Result<InjectOutcome, SimError> {
        let i = idx as usize;
        if self.status[i] != PacketStatus::Pending {
            return Err(SimError::NotPending);
        }
        let path = &self.problem.packets()[i].path;
        if path.is_empty() {
            self.status[i] = PacketStatus::Delivered;
            self.delivered += 1;
            list_remove(&mut self.pending_list, &mut self.list_pos, idx);
            self.stats.injected_at[i] = Some(self.now);
            self.stats.delivered_at[i] = Some(self.now);
            if let Some(rec) = self.record.as_mut() {
                rec.trivial.push(TrivialDelivery {
                    time: self.now,
                    pkt: PacketId(i as u32),
                });
            }
            self.observer.on_trivial(self.now, idx);
            return Ok(InjectOutcome::DeliveredTrivially);
        }
        let mv = DirectedEdge::forward(path.edges()[0]);
        if !self.slot_free(mv) {
            return Ok(InjectOutcome::Blocked);
        }
        self.slot_stamp[mv.slot_index()] = self.stamp;
        self.staged_stamp[i] = self.stamp;
        self.status[i] = PacketStatus::Active;
        list_remove(&mut self.pending_list, &mut self.list_pos, idx);
        self.list_pos[i] = self.active_list.len() as u32;
        self.active_list.push(idx);
        self.staged.push((idx, mv, ExitKind::Inject));
        Ok(InjectOutcome::Injected)
    }

    /// Applies all staged exits: verifies that *every* arriving packet was
    /// staged (the bufferless constraint), moves packets, absorbs arrivals
    /// at destinations, and advances the clock.
    // lint: hot-path
    // lint: panics-by-design(dense-index invariant surface: packet/node ids are
    // validated at construction, so an OOB here is an engine bug caught by the
    // golden suites, never a client-input path)
    pub fn finish_step(&mut self) -> Result<StepReport, SimError> {
        // Bufferless check: every packet that arrived this step must leave.
        // Every `stage_exit` stages a distinct arrival (injections cannot
        // be re-staged, non-arrivals are not active), so a count comparison
        // suffices; the full scan only runs to name the offender.
        if self.staged_arrivals as usize != self.arrivals_flat.len() {
            for &v in &self.occupied {
                let start = self.bucket_start[v as usize] as usize;
                let len = self.bucket_len[v as usize] as usize;
                for &p in &self.arrivals_flat[start..start + len] {
                    if self.staged_stamp[p as usize] != self.stamp {
                        return Err(SimError::PacketRested(PacketId(p)));
                    }
                }
            }
            unreachable!("staged-arrival count mismatch without a resting packet");
        }

        let mut report = StepReport::default();
        let step = self.now;
        let staged = std::mem::take(&mut self.staged);
        debug_assert!(self.incoming.is_empty());
        for (idx, mv, kind) in &staged {
            let i = *idx as usize;
            if let Some(rec) = self.record.as_mut() {
                rec.moves.push(MoveEvent {
                    time: self.now,
                    pkt: PacketId(*idx),
                    mv: *mv,
                    kind: *kind,
                });
            }
            self.observer.on_move(self.now, *idx, *mv, *kind);
            let path = &self.problem.packets()[i].path;
            let pkt = &mut self.packets[i];
            let deflect = matches!(kind, ExitKind::Deflect { .. });
            pkt.apply_move(&self.net, path, *mv, deflect);
            report.moved += 1;
            match kind {
                ExitKind::Deflect { safe } => {
                    report.deflections += 1;
                    if !safe {
                        report.fallback_deflections += 1;
                    }
                }
                ExitKind::Oscillate => report.oscillations += 1,
                ExitKind::Inject => {
                    report.injected += 1;
                    self.stats.injected_at[i] = Some(self.now);
                }
                ExitKind::Advance => {}
            }
            self.stats.max_deviation[i] = pkt.max_deviation();
            self.stats.deflections[i] = pkt.deflections();

            let arrived_at = pkt.node();
            if arrived_at.0 == self.dest[i] {
                self.status[i] = PacketStatus::Delivered;
                self.delivered += 1;
                list_remove(&mut self.active_list, &mut self.list_pos, *idx);
                self.stats.delivered_at[i] = Some(self.now + 1);
                self.observer.on_deliver(self.now + 1, *idx);
                report.absorbed += 1;
            } else {
                self.incoming.push((arrived_at.0, *idx));
            }
        }
        self.staged = staged;
        self.staged.clear();
        if report.fallback_deflections > 0 {
            self.stats
                .bump_by("fallback_deflections", report.fallback_deflections as u64);
        }

        // Rebuild the arrival arena in place (the old contents were fully
        // consumed by the check above). Stable counting sort: group the
        // (node, packet) pairs by node, preserving staged order within
        // each node, and keep `occupied` ascending.
        for &v in &self.occupied {
            self.bucket_len[v as usize] = 0;
        }
        self.occupied.clear();
        for &(node, _) in &self.incoming {
            let c = &mut self.bucket_len[node as usize];
            if *c == 0 {
                self.occupied.push(node);
            }
            *c += 1;
        }
        self.occupied.sort_unstable();
        let mut off = 0u32;
        for &v in &self.occupied {
            self.bucket_start[v as usize] = off;
            off += self.bucket_len[v as usize];
        }
        self.arrivals_flat.resize(self.incoming.len(), 0);
        // Scatter, using `bucket_start` as the fill cursor; restore after.
        for &(node, pkt) in &self.incoming {
            let cursor = &mut self.bucket_start[node as usize];
            self.arrivals_flat[*cursor as usize] = pkt;
            *cursor += 1;
        }
        for &v in &self.occupied {
            self.bucket_start[v as usize] -= self.bucket_len[v as usize];
        }
        self.incoming.clear();

        self.now += 1;
        self.staged_arrivals = 0;
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp epoch rollover (every 2^32 steps): clear the stale
            // stamps so they cannot collide with the new epoch.
            self.slot_stamp.fill(0);
            self.staged_stamp.fill(0);
            self.stamp = 1;
        }
        if let Some(trace) = self.stats.active_trace.as_mut() {
            trace.push(self.active_list.len() as u32);
        }
        self.observer
            .on_step_end(step, &report, self.active_list.len());
        Ok(report)
    }

    /// Consumes the engine and returns the final statistics.
    pub fn into_stats(self) -> RouteStats {
        self.into_parts().0
    }

    /// Consumes the engine and returns the statistics together with the
    /// movement record (if recording was enabled).
    pub fn into_parts(mut self) -> (RouteStats, Option<RunRecord>) {
        self.stats.steps_run = self.now;
        (self.stats, self.record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders;
    use leveled_net::EdgeId;
    use routing_core::Path;

    fn line_problem(paths: Vec<Vec<u32>>) -> Arc<RoutingProblem> {
        let net = Arc::new(builders::linear_array(6));
        let ps = paths
            .into_iter()
            .map(|nodes| {
                let nodes: Vec<NodeId> = nodes.into_iter().map(NodeId).collect();
                Path::from_nodes(&net, &nodes).unwrap()
            })
            .collect();
        Arc::new(RoutingProblem::new(net, ps).unwrap())
    }

    /// Drive a single packet straight to its destination.
    #[test]
    fn single_packet_advances_to_destination() {
        let prob = line_problem(vec![vec![0, 1, 2, 3]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![()]).trace(true).build();
        assert_eq!(sim.try_inject(0).unwrap(), InjectOutcome::Injected);
        sim.finish_step().unwrap();
        assert_eq!(sim.status(0), PacketStatus::Active);
        assert_eq!(sim.packet(0).node(), NodeId(1));
        for _ in 0..2 {
            let nodes = sim.occupied_nodes();
            assert_eq!(nodes.len(), 1);
            let pkts = sim.arrivals(nodes[0]).to_vec();
            let mv = sim.next_move_of(pkts[0]).unwrap();
            sim.stage_exit(pkts[0], mv, ExitKind::Advance).unwrap();
            sim.finish_step().unwrap();
        }
        assert!(sim.is_done());
        let stats = sim.into_stats();
        assert_eq!(stats.injected_at[0], Some(0));
        assert_eq!(stats.delivered_at[0], Some(3));
        assert_eq!(stats.makespan(), Some(3));
        assert_eq!(stats.deflections[0], 0);
    }

    #[test]
    fn trivial_path_delivered_at_injection() {
        let net = Arc::new(builders::linear_array(3));
        let prob = Arc::new(
            RoutingProblem::new(Arc::clone(&net), vec![Path::trivial(NodeId(1))]).unwrap(),
        );
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![()]).build();
        assert_eq!(
            sim.try_inject(0).unwrap(),
            InjectOutcome::DeliveredTrivially
        );
        assert!(sim.is_done());
    }

    #[test]
    fn injection_blocked_by_slot() {
        // Two packets from the same... sources must differ, so use a packet
        // already moving through the source's first edge.
        let prob = line_problem(vec![vec![0, 1, 2], vec![1, 2, 3]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![(), ()]).build();
        // Inject p0 at t=0; it occupies edge 0->1.
        sim.try_inject(0).unwrap();
        sim.finish_step().unwrap();
        // t=1: p0 is at node 1 and wants edge 1->2; p1 also wants edge
        // 1->2 for injection. Stage p0 first: p1 must block.
        let mv = sim.next_move_of(0).unwrap();
        sim.stage_exit(0, mv, ExitKind::Advance).unwrap();
        assert_eq!(sim.try_inject(1).unwrap(), InjectOutcome::Blocked);
        sim.finish_step().unwrap();
        // t=2: edge 1->2 free again; p1 injects.
        assert_eq!(sim.try_inject(1).unwrap(), InjectOutcome::Injected);
    }

    #[test]
    fn slot_capacity_is_one_per_direction() {
        let prob = line_problem(vec![vec![0, 1, 2], vec![1, 2, 3]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![(), ()]).build();
        sim.try_inject(0).unwrap();
        sim.try_inject(1).unwrap();
        sim.finish_step().unwrap();
        // Both at their second node; p0 at n1 wants 1->2, p1 at n2 wants 2->3.
        let m0 = sim.next_move_of(0).unwrap();
        let m1 = sim.next_move_of(1).unwrap();
        sim.stage_exit(0, m0, ExitKind::Advance).unwrap();
        // Staging p1 on p0's slot fails; its own slot works.
        assert_eq!(
            sim.stage_exit(1, m0, ExitKind::Advance).unwrap_err(),
            SimError::NotAtOrigin
        );
        sim.stage_exit(1, m1, ExitKind::Advance).unwrap();
        sim.finish_step().unwrap();
    }

    #[test]
    fn both_directions_of_an_edge_usable_in_one_step() {
        // At t=1, p1 traverses edge (1,2) forward while p0 traverses the
        // same edge backward — the paper's "at most two packets per link,
        // one per direction" rule.
        let prob = line_problem(vec![vec![1, 2, 3], vec![0, 1, 2]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![(), ()]).build();
        sim.try_inject(0).unwrap(); // p0: 1 -> 2 (forward on edge 1)
        sim.try_inject(1).unwrap(); // p1: 0 -> 1 (forward on edge 0)
        sim.finish_step().unwrap();
        // p0 at node 2 deflects backward over edge 1; p1 at node 1 advances
        // forward over edge 1. Both succeed in the same step.
        let fwd = sim.next_move_of(1).unwrap();
        assert_eq!(fwd, DirectedEdge::forward(EdgeId(1)));
        sim.stage_exit(1, fwd, ExitKind::Advance).unwrap();
        sim.stage_exit(
            0,
            DirectedEdge::backward(EdgeId(1)),
            ExitKind::Deflect { safe: true },
        )
        .unwrap();
        sim.finish_step().unwrap();
        assert_eq!(sim.packet(0).node(), NodeId(1));
        assert_eq!(sim.packet(0).deflections(), 1);
        // p1 was absorbed at its destination node 2.
        assert_eq!(sim.status(1), PacketStatus::Delivered);
    }

    #[test]
    fn resting_packet_is_detected() {
        let prob = line_problem(vec![vec![0, 1, 2]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![()]).build();
        sim.try_inject(0).unwrap();
        sim.finish_step().unwrap();
        // Don't stage anything for the active packet.
        assert_eq!(
            sim.finish_step().unwrap_err(),
            SimError::PacketRested(PacketId(0))
        );
    }

    #[test]
    fn double_stage_rejected() {
        let prob = line_problem(vec![vec![0, 1, 2]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![()]).build();
        sim.try_inject(0).unwrap();
        sim.finish_step().unwrap();
        let mv = sim.next_move_of(0).unwrap();
        sim.stage_exit(0, mv, ExitKind::Advance).unwrap();
        assert_eq!(
            sim.stage_exit(0, DirectedEdge::backward(EdgeId(0)), ExitKind::Advance)
                .unwrap_err(),
            SimError::AlreadyStaged
        );
    }

    #[test]
    fn absorption_happens_on_arrival() {
        let prob = line_problem(vec![vec![0, 1]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![()]).build();
        sim.try_inject(0).unwrap();
        let report = sim.finish_step().unwrap();
        assert_eq!(report.absorbed, 1);
        assert_eq!(report.injected, 1);
        assert!(sim.is_done());
        assert!(sim.occupied_nodes().is_empty());
    }

    #[test]
    fn deflection_statistics_flow_through() {
        let prob = line_problem(vec![vec![0, 1, 2, 3]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![()]).build();
        sim.try_inject(0).unwrap();
        sim.finish_step().unwrap();
        // Deflect backward (unsafe), then advance twice, then resume.
        sim.stage_exit(
            0,
            DirectedEdge::backward(EdgeId(0)),
            ExitKind::Deflect { safe: false },
        )
        .unwrap();
        let report = sim.finish_step().unwrap();
        assert_eq!(report.deflections, 1);
        assert_eq!(report.fallback_deflections, 1);
        while !sim.is_done() {
            let mv = sim.next_move_of(0).unwrap();
            sim.stage_exit(0, mv, ExitKind::Advance).unwrap();
            sim.finish_step().unwrap();
        }
        let stats = sim.into_stats();
        assert_eq!(stats.deflections[0], 1);
        assert_eq!(stats.max_deviation[0], 1);
        assert_eq!(stats.counter("fallback_deflections"), 1);
        // 1 step out + 1 back + 3 forward from node 0 (path has 3 edges).
        assert_eq!(stats.delivered_at[0], Some(5));
    }

    #[test]
    fn active_trace_records_in_flight_counts() {
        let prob = line_problem(vec![vec![0, 1, 2, 3]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![()]).trace(true).build();
        sim.try_inject(0).unwrap();
        sim.finish_step().unwrap();
        while !sim.is_done() {
            let mv = sim.next_move_of(0).unwrap();
            sim.stage_exit(0, mv, ExitKind::Advance).unwrap();
            sim.finish_step().unwrap();
        }
        let stats = sim.into_stats();
        assert_eq!(stats.active_trace.unwrap(), vec![1, 1, 0]);
    }

    #[test]
    fn occupied_nodes_are_sorted_and_deduped() {
        let prob = line_problem(vec![vec![3, 4, 5], vec![1, 2, 3], vec![0, 1, 2]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![(); 3]).build();
        for p in [2u32, 0, 1] {
            sim.try_inject(p).unwrap();
        }
        sim.finish_step().unwrap();
        let nodes = sim.occupied_nodes();
        let mut sorted = nodes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(nodes, sorted);
        assert_eq!(nodes.len(), 3);
    }

    #[test]
    fn counts_track_lifecycle() {
        let prob = line_problem(vec![vec![0, 1, 2], vec![1, 2, 3]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![(), ()]).build();
        assert_eq!(sim.pending_count(), 2);
        assert_eq!(sim.active_count(), 0);
        assert_eq!(sim.delivered_count(), 0);
        sim.try_inject(0).unwrap();
        assert_eq!(sim.pending_count(), 1);
        sim.finish_step().unwrap();
        assert_eq!(sim.active_count(), 1);
        assert_eq!(sim.active_indices(), vec![0]);
        assert_eq!(sim.pending_indices(), vec![1]);
        // Drive packet 0 home.
        while sim.status(0) == PacketStatus::Active {
            let mv = sim.next_move_of(0).unwrap();
            sim.stage_exit(0, mv, ExitKind::Advance).unwrap();
            sim.finish_step().unwrap();
        }
        assert_eq!(sim.delivered_count(), 1);
        assert_eq!(sim.active_count(), 0);
        assert!(!sim.is_done());
    }

    #[test]
    fn slot_free_reflects_staging() {
        let prob = line_problem(vec![vec![0, 1, 2]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![()]).build();
        let mv = DirectedEdge::forward(EdgeId(0));
        assert!(sim.slot_free(mv));
        sim.try_inject(0).unwrap();
        assert!(!sim.slot_free(mv), "injection claims the slot");
        assert!(sim.slot_free(mv.reversed()), "other direction unaffected");
        sim.finish_step().unwrap();
        assert!(sim.slot_free(mv), "slots reset every step");
    }

    #[test]
    #[should_panic(expected = "before the run starts")]
    #[allow(deprecated)]
    fn recording_must_start_at_step_zero() {
        let prob = line_problem(vec![vec![0, 1]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![()]).build();
        sim.try_inject(0).unwrap();
        sim.finish_step().unwrap();
        sim.enable_recording();
    }

    /// The deprecated constructor shims must keep working for one PR so
    /// downstream callers can migrate incrementally.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_route() {
        let prob = line_problem(vec![vec![0, 1, 2]]);
        let mut sim: Simulation<()> = Simulation::new(prob, vec![()], true);
        sim.enable_recording();
        sim.try_inject(0).unwrap();
        sim.finish_step().unwrap();
        while !sim.is_done() {
            let mv = sim.next_move_of(0).unwrap();
            sim.stage_exit(0, mv, ExitKind::Advance).unwrap();
            sim.finish_step().unwrap();
        }
        let (stats, record) = sim.into_parts();
        assert_eq!(stats.delivered_count(), 1);
        assert!(stats.active_trace.is_some());
        assert_eq!(record.expect("recording enabled").moves.len(), 2);
    }

    #[test]
    fn step_report_accounts_every_move_kind() {
        let prob = line_problem(vec![vec![0, 1, 2], vec![1, 2, 3]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![(), ()]).build();
        sim.try_inject(0).unwrap();
        let r = sim.finish_step().unwrap();
        assert_eq!(r.injected, 1);
        assert_eq!(r.moved, 1);
        // p0 at n1: oscillate it backward; also inject p1 from n1? n1 is
        // p1's source: slot (edge 0 backward) vs p1's (edge 1 forward)
        // don't clash.
        sim.stage_exit(0, DirectedEdge::backward(EdgeId(0)), ExitKind::Oscillate)
            .unwrap();
        sim.try_inject(1).unwrap();
        let r = sim.finish_step().unwrap();
        assert_eq!(r.moved, 2);
        assert_eq!(r.oscillations, 1);
        assert_eq!(r.injected, 1);
        assert_eq!(r.deflections, 0);
    }

    #[test]
    fn stage_requires_active_packet() {
        let prob = line_problem(vec![vec![0, 1, 2]]);
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![()]).build();
        let err = sim
            .stage_exit(0, DirectedEdge::forward(EdgeId(0)), ExitKind::Advance)
            .unwrap_err();
        assert_eq!(err, SimError::NotActive);
        sim.try_inject(0).unwrap();
        assert_eq!(sim.try_inject(0).unwrap_err(), SimError::NotPending);
    }
}
