//! The concurrency core of the worker pools, written once against
//! primitives that resolve to `std::sync`/`std::thread` in production
//! and to the vendored `loom` workalike under `--cfg loom`.
//!
//! The split exists so the loom models (`bench/tests/loom_pool.rs`)
//! verify *this* code — the channel/mutex/condvar protocols that both
//! the bench sweep runner's `parallel_map` and the SoA engine's
//! intra-run band sharding build on — rather than a lookalike.
//! Everything schedule-sensitive lives here: worker
//! spawn/dequeue/shutdown ([`PoolCore`]), sweep completion signaling
//! ([`CompletionLatch`]), first-panic capture ([`PanicSlot`]), and the
//! per-band result handoff of the intra-run sharded step
//! ([`BandResults`]). The consumers keep the parts the models do not
//! need: chunking, result slots, and (bench only) the lifetime-erasing
//! transmute.
//!
//! Historically this module lived in the `bench` crate; it moved here so
//! the simulation engine can shard a single run across the same pool
//! (`bench` re-exports it under the old `bench::pool_core` path).

#[cfg(loom)]
use loom::{
    sync::{mpsc, Arc, Condvar, Mutex},
    thread,
};
#[cfg(not(loom))]
use std::{
    sync::{mpsc, Arc, Condvar, Mutex},
    thread,
};

/// A unit of work shipped to a worker.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads draining one shared job queue.
///
/// Workers take the queue mutex only to dequeue, run the job unlocked,
/// and exit when the channel disconnects (every sender dropped). In
/// production the pool lives in a `OnceLock` and is never shut down;
/// [`PoolCore::shutdown`] exists for tests and the loom model, where
/// clean termination of every interleaving is part of what is verified.
pub struct PoolCore {
    sender: Option<mpsc::Sender<Job>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl PoolCore {
    /// Spawns `workers` threads. `on_worker_start` runs first on each
    /// worker (the runner uses it to mark pool threads so nested sweeps
    /// inline instead of deadlocking the pool against itself).
    pub fn new(workers: usize, on_worker_start: fn()) -> PoolCore {
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let receiver = Arc::clone(&receiver);
            handles.push(spawn_worker(i, move || {
                on_worker_start();
                loop {
                    // Hold the queue lock only while dequeueing.
                    let job = match receiver.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => break,
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // channel closed: shut down
                    }
                }
            }));
        }
        PoolCore {
            sender: Some(sender),
            handles,
        }
    }

    /// Enqueues a job; fails only if the pool is shutting down.
    pub fn submit(&self, job: Job) -> Result<(), mpsc::SendError<Job>> {
        self.sender.as_ref().expect("pool is live").send(job)
    }

    /// Disconnects the queue and joins every worker. Queued jobs still
    /// run: disconnection surfaces on a worker's `recv` only once the
    /// queue is drained.
    pub fn shutdown(mut self) {
        self.sender = None; // drop the sender: workers' recv() errors out
        for h in self.handles.drain(..) {
            h.join().expect("sweep worker panicked");
        }
    }
}

#[cfg(not(loom))]
fn spawn_worker(i: usize, body: impl FnOnce() + Send + 'static) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name(format!("hotpotato-sweep-{i}"))
        .spawn(body)
        .expect("spawn sweep worker")
}

#[cfg(loom)]
fn spawn_worker(_i: usize, body: impl FnOnce() + Send + 'static) -> thread::JoinHandle<()> {
    thread::spawn(body)
}

/// Counts completed jobs up to a known total; the submitting thread
/// blocks on [`CompletionLatch::wait`] until every job reported in.
pub struct CompletionLatch {
    total: usize,
    done: Mutex<usize>,
    cv: Condvar,
}

impl CompletionLatch {
    /// A latch expecting `total` completions.
    pub fn new(total: usize) -> CompletionLatch {
        CompletionLatch {
            total,
            done: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Records one completion. Must be called exactly once per job —
    /// including jobs that panic, or `wait` never returns.
    pub fn complete_one(&self) {
        *self.done.lock().expect("latch counter") += 1;
        self.cv.notify_all();
    }

    /// Blocks until `total` completions have been recorded.
    pub fn wait(&self) {
        let mut done = self.done.lock().expect("latch counter");
        while *done < self.total {
            done = self.cv.wait(done).expect("latch counter");
        }
    }
}

/// Captures the first panic payload of a job batch so the submitting
/// thread can resume it after the sweep settles.
pub struct PanicSlot {
    slot: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl PanicSlot {
    /// An empty slot.
    pub fn new() -> PanicSlot {
        PanicSlot {
            slot: Mutex::new(None),
        }
    }

    /// Stores `payload` unless a panic was already recorded.
    pub fn record(&self, payload: Box<dyn std::any::Any + Send>) {
        self.slot.lock().expect("panic slot").get_or_insert(payload);
    }

    /// Takes the recorded payload, if any.
    pub fn take(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.slot.lock().expect("panic slot").take()
    }
}

impl Default for PanicSlot {
    fn default() -> Self {
        Self::new()
    }
}

/// The worker-thread budget shared by every pool in the workspace: the
/// `HOTPOTATO_THREADS` environment variable when set to a positive
/// integer, otherwise the machine's available parallelism. Read on every
/// call, so tests and operators can retune a running process.
#[cfg(not(loom))]
pub fn configured_threads() -> usize {
    match std::env::var("HOTPOTATO_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
    }
}

/// Under loom the thread budget is a fixed small constant: models pick
/// their own thread counts explicitly, and `available_parallelism` is
/// outside the modeled world.
#[cfg(loom)]
pub fn configured_threads() -> usize {
    2
}

/// Per-band result slots for the intra-run sharded step: band `b` posts
/// its output into slot `b`, and the coordinating thread blocks until
/// every slot is filled, then consumes them **in band-index order** —
/// the fixed reduction order that makes the sharded step deterministic
/// regardless of which worker finishes first.
pub struct BandResults<T> {
    total: usize,
    slots: Mutex<Vec<Option<T>>>,
    filled: Mutex<usize>,
    cv: Condvar,
}

impl<T> BandResults<T> {
    /// Slots for `bands` bands, all empty.
    pub fn new(bands: usize) -> BandResults<T> {
        BandResults {
            total: bands,
            slots: Mutex::new((0..bands).map(|_| None).collect()),
            filled: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Posts band `band`'s output. Each band must post exactly once;
    /// double-posting a slot panics (it would mean two workers processed
    /// the same band — the overlap the loom model rules out).
    pub fn post(&self, band: usize, value: T) {
        {
            let mut slots = self.slots.lock().expect("band slots");
            assert!(
                slots[band].replace(value).is_none(),
                "band {band} posted twice: bands must not overlap"
            );
        }
        *self.filled.lock().expect("band fill counter") += 1;
        self.cv.notify_all();
    }

    /// Blocks until every band has posted, then returns the outputs in
    /// band-index order (slot order, not completion order), resetting the
    /// slots for reuse on the next step.
    pub fn wait_all(&self) -> Vec<T> {
        {
            let mut filled = self.filled.lock().expect("band fill counter");
            while *filled < self.total {
                filled = self.cv.wait(filled).expect("band fill counter");
            }
            *filled = 0;
        }
        let mut slots = self.slots.lock().expect("band slots");
        slots
            .iter_mut()
            .map(|s| s.take().expect("every band posted"))
            .collect()
    }
}
