//! Buffered store-and-forward engine (the paper's comparison regime).
//!
//! In store-and-forward routing, nodes buffer packets in per-edge output
//! queues; each edge forwards one packet per step. On leveled networks,
//! Leighton, Maggs, Ranade and Rao [16 in the paper] showed an
//! `O(C + L + log N)` randomized schedule using random initial delays —
//! realized here as the [`QueueDiscipline::RandomRank`] discipline plus
//! [`StoreForwardConfig::initial_delay_cap`]. This engine provides the
//! buffered baseline the experiments compare hot-potato routing against
//! ("the benefit from using buffers is no more than polylogarithmic").

use crate::engine::{ExitKind, StepReport};
use crate::observe::{NoopObserver, RouteObserver};
use crate::stats::{RouteStats, Time};
use leveled_net::ids::DirectedEdge;
use leveled_net::EdgeId;
use rand::Rng;
use routing_core::RoutingProblem;

/// How a contended edge chooses among queued packets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueDiscipline {
    /// First-come, first-served (enqueue order; ties by packet id).
    Fifo,
    /// The packet with the most remaining edges goes first.
    FarthestToGo,
    /// Packets carry a random rank drawn at start; lowest rank goes first
    /// (Ranade-style random priorities).
    RandomRank,
}

/// Configuration of the store-and-forward run.
#[derive(Clone, Copy, Debug)]
pub struct StoreForwardConfig {
    /// Queue service discipline.
    pub discipline: QueueDiscipline,
    /// Each packet waits a uniform random delay in `0..=cap` before
    /// entering its first queue (0 disables delays). The classic schedule
    /// uses `cap = Θ(C)`.
    pub initial_delay_cap: u64,
    /// Per-edge buffer capacity (0 = unbounded). Reference 16 achieves
    /// `O(C + L + log N)` on leveled networks with *constant-size*
    /// buffers; this models the constant. A packet advances only when its
    /// next queue has room (downstream departures are accounted first, so
    /// even capacity 1 pipelines); blocked packets wait.
    pub buffer_cap: usize,
    /// Safety cap on simulated steps.
    pub max_steps: u64,
}

impl Default for StoreForwardConfig {
    fn default() -> Self {
        StoreForwardConfig {
            discipline: QueueDiscipline::Fifo,
            initial_delay_cap: 0,
            buffer_cap: 0,
            max_steps: 10_000_000,
        }
    }
}

/// Result of a store-and-forward run: routing statistics plus buffering
/// metrics hot-potato routing does not need.
#[derive(Clone, Debug)]
pub struct StoreForwardOutcome {
    /// Standard routing statistics (deflections are always zero).
    pub stats: RouteStats,
    /// The largest queue length observed: the buffer space the schedule
    /// actually required.
    pub max_queue: usize,
    /// Total steps packets spent waiting in queues (excluding initial
    /// delays).
    pub total_queue_wait: u64,
    /// (edge, step) occurrences where a full downstream buffer blocked a
    /// transfer (always 0 when buffers are unbounded).
    pub backpressure_stalls: u64,
}

#[derive(Clone, Copy)]
struct QueuedPacket {
    pkt: u32,
    /// Remaining edges after the queued one (for FarthestToGo).
    remaining: u32,
    rank: u32,
    seq: u64,
}

/// Routes `problem` with buffered store-and-forward scheduling.
///
/// ```
/// use hotpotato_sim::store_forward::{route, StoreForwardConfig};
/// use leveled_net::builders;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let net = Arc::new(builders::butterfly(4));
/// let prob = routing_core::workloads::random_pairs(&net, 8, &mut rng).unwrap();
/// let out = route(&prob, StoreForwardConfig::default(), &mut rng);
/// assert!(out.stats.all_delivered());
/// assert_eq!(out.stats.total_deflections(), 0); // buffered: no deflections
/// ```
pub fn route<R: Rng + ?Sized>(
    problem: &RoutingProblem,
    cfg: StoreForwardConfig,
    rng: &mut R,
) -> StoreForwardOutcome {
    route_observed(problem, cfg, rng, &mut NoopObserver)
}

/// [`route`] with an attached event sink. The buffered engine maps onto
/// the hot-potato event vocabulary naturally: a packet's first edge
/// traversal is its injection move, later queue departures are advances,
/// and deflections never happen.
pub fn route_observed<R: Rng + ?Sized, O: RouteObserver + ?Sized>(
    problem: &RoutingProblem,
    cfg: StoreForwardConfig,
    rng: &mut R,
    observer: &mut O,
) -> StoreForwardOutcome {
    let net = problem.network();
    let n = problem.num_packets();
    let mut stats = RouteStats::new(n);
    let mut outcome_max_queue = 0usize;
    let mut total_queue_wait = 0u64;
    let mut backpressure_stalls = 0u64;
    let cap = cfg.buffer_cap;

    // Per-packet progress (index of next edge) and injection delay.
    let mut next_edge = vec![0usize; n];
    let delay: Vec<Time> = (0..n)
        .map(|_| {
            if cfg.initial_delay_cap == 0 {
                0
            } else {
                rng.gen_range(0..=cfg.initial_delay_cap)
            }
        })
        .collect();
    let ranks: Vec<u32> = (0..n).map(|_| rng.gen()).collect();

    // Pending packets sorted by delay (process lazily).
    let mut pending: Vec<u32> = (0..n as u32).collect();
    pending.sort_by_key(|&p| std::cmp::Reverse(delay[p as usize]));

    // One queue per (forward) edge.
    let mut queues: Vec<Vec<QueuedPacket>> = vec![Vec::new(); net.num_edges()];
    let mut busy: Vec<u32> = Vec::new();
    let mut in_busy = vec![false; net.num_edges()];
    let mut seq = 0u64;
    let mut delivered = 0usize;
    let mut in_network = 0usize;
    let mut now: Time = 0;

    let enqueue = |queues: &mut Vec<Vec<QueuedPacket>>,
                   busy: &mut Vec<u32>,
                   in_busy: &mut Vec<bool>,
                   seq: &mut u64,
                   pkt: u32,
                   edge_idx: usize,
                   remaining: u32| {
        queues[edge_idx].push(QueuedPacket {
            pkt,
            remaining,
            rank: ranks[pkt as usize],
            seq: *seq,
        });
        *seq += 1;
        if !in_busy[edge_idx] {
            in_busy[edge_idx] = true;
            busy.push(edge_idx as u32);
        }
    };

    while delivered < n && now < cfg.max_steps {
        // Inject packets whose delay expired (bounded buffers may force a
        // packet to wait at its source until its first queue has room).
        let mut still_pending: Vec<u32> = Vec::new();
        while let Some(&p) = pending.last() {
            if delay[p as usize] > now {
                break;
            }
            pending.pop();
            let path = &problem.packets()[p as usize].path;
            if path.is_empty() {
                stats.injected_at[p as usize] = Some(now);
                stats.delivered_at[p as usize] = Some(now);
                delivered += 1;
                observer.on_trivial(now, p);
                continue;
            }
            let e = path.edges()[0];
            if cap > 0 && queues[e.index()].len() >= cap {
                backpressure_stalls += 1;
                still_pending.push(p);
                continue;
            }
            stats.injected_at[p as usize] = Some(now);
            enqueue(
                &mut queues,
                &mut busy,
                &mut in_busy,
                &mut seq,
                p,
                e.index(),
                (path.len() - 1) as u32,
            );
        }
        // Re-queue blocked injections for the next step.
        for p in still_pending.into_iter().rev() {
            pending.push(p);
        }

        // Each busy edge forwards one packet (chosen by discipline).
        // Select first, apply after, so a packet can't hop twice per step.
        // With bounded buffers, process edges downstream-first (higher
        // tail level first): departures free slots for upstream arrivals
        // in the same step, so even capacity-1 buffers pipeline.
        let mut snapshot: Vec<u32> = busy.clone();
        if cap > 0 {
            snapshot.sort_unstable_by_key(|&ei| {
                std::cmp::Reverse(net.level(net.edge(leveled_net::EdgeId(ei)).tail))
            });
        }
        let mut planned_in = vec![0u32; net.num_edges()];
        let mut moved: Vec<(u32, usize)> = Vec::with_capacity(snapshot.len());
        for &ei in &snapshot {
            // Downstream queues were processed first, so their lengths
            // already reflect this step's departures; only same-step
            // planned arrivals must be added on top.
            let room = |next: usize, queues: &Vec<Vec<QueuedPacket>>, planned_in: &[u32]| {
                cap == 0 || queues[next].len() + (planned_in[next] as usize) < cap
            };
            // Candidate order by discipline; the first whose next hop has
            // room (or who is delivering) departs — no head-of-line block.
            let q = &queues[ei as usize];
            if q.is_empty() {
                continue;
            }
            let mut order: Vec<usize> = (0..q.len()).collect();
            match cfg.discipline {
                QueueDiscipline::Fifo => order.sort_by_key(|&i| (q[i].seq, q[i].pkt)),
                QueueDiscipline::FarthestToGo => {
                    order.sort_by_key(|&i| (std::cmp::Reverse(q[i].remaining), q[i].seq));
                }
                QueueDiscipline::RandomRank => order.sort_by_key(|&i| (q[i].rank, q[i].seq)),
            }
            let mut pick: Option<usize> = None;
            for &i in &order {
                let pkt = q[i].pkt as usize;
                let ne_idx = next_edge[pkt] + 1;
                let path = &problem.packets()[pkt].path;
                if ne_idx == path.len() {
                    pick = Some(i); // delivering: always admissible
                    break;
                }
                let nxt = path.edges()[ne_idx].index();
                if room(nxt, &queues, &planned_in) {
                    pick = Some(i);
                    break;
                }
            }
            let Some(pick) = pick else {
                backpressure_stalls += 1;
                continue;
            };
            let q = &mut queues[ei as usize];
            total_queue_wait += (q.len() - 1) as u64;
            let chosen = q.swap_remove(pick);
            let pkt = chosen.pkt as usize;
            let ne_idx = next_edge[pkt] + 1;
            let path = &problem.packets()[pkt].path;
            if ne_idx < path.len() {
                planned_in[path.edges()[ne_idx].index()] += 1;
            }
            moved.push((chosen.pkt, ei as usize));
        }

        // Apply moves: advance each moved packet to its next queue.
        let mut report = StepReport {
            moved: moved.len(),
            ..StepReport::default()
        };
        for (pkt, edge) in moved {
            let i = pkt as usize;
            let kind = if next_edge[i] == 0 {
                report.injected += 1;
                in_network += 1;
                ExitKind::Inject
            } else {
                ExitKind::Advance
            };
            observer.on_move(now, pkt, DirectedEdge::forward(EdgeId(edge as u32)), kind);
            next_edge[i] += 1;
            let path = &problem.packets()[i].path;
            if next_edge[i] == path.len() {
                stats.delivered_at[i] = Some(now + 1);
                delivered += 1;
                in_network -= 1;
                report.absorbed += 1;
                observer.on_deliver(now + 1, pkt);
            } else {
                let e = path.edges()[next_edge[i]];
                enqueue(
                    &mut queues,
                    &mut busy,
                    &mut in_busy,
                    &mut seq,
                    pkt,
                    e.index(),
                    (path.len() - 1 - next_edge[i]) as u32,
                );
            }
        }

        // Track buffer requirements and drop drained edges from busy.
        busy.retain(|&ei| {
            let len = queues[ei as usize].len();
            outcome_max_queue = outcome_max_queue.max(len);
            if len == 0 {
                in_busy[ei as usize] = false;
                false
            } else {
                true
            }
        });

        observer.on_step_end(now, &report, in_network);
        now += 1;
    }

    stats.steps_run = now;
    StoreForwardOutcome {
        stats,
        max_queue: outcome_max_queue,
        total_queue_wait,
        backpressure_stalls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::{builders, NodeId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use routing_core::{workloads, Path, RoutingProblem};
    use std::sync::Arc;

    fn line_problem(paths: Vec<Vec<u32>>) -> RoutingProblem {
        let net = Arc::new(builders::linear_array(6));
        let ps = paths
            .into_iter()
            .map(|nodes| {
                let nodes: Vec<NodeId> = nodes.into_iter().map(NodeId).collect();
                Path::from_nodes(&net, &nodes).unwrap()
            })
            .collect();
        RoutingProblem::new(net, ps).unwrap()
    }

    #[test]
    fn lone_packet_takes_path_length_steps() {
        let prob = line_problem(vec![vec![0, 1, 2, 3, 4]]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let out = route(&prob, StoreForwardConfig::default(), &mut rng);
        assert!(out.stats.all_delivered());
        assert_eq!(out.stats.delivered_at[0], Some(4));
        assert_eq!(out.max_queue, 1);
        assert_eq!(out.total_queue_wait, 0);
    }

    #[test]
    fn shared_edge_serializes() {
        // Both packets need edge 2->3 at the same time; one waits a step.
        let prob = line_problem(vec![vec![1, 2, 3], vec![2, 3, 4]]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let out = route(&prob, StoreForwardConfig::default(), &mut rng);
        assert!(out.stats.all_delivered());
        // p1 grabs edge(2,3) at t=0; p0 arrives at node 2 at t=1, uses it
        // at t=1 (p1 has moved on). Makespan = lower bound C + D - 1-ish.
        let times: Vec<Time> = out.stats.delivered_at.iter().map(|d| d.unwrap()).collect();
        assert_eq!(times[1], 2);
        assert_eq!(times[0], 2);
    }

    #[test]
    fn true_contention_costs_queue_wait() {
        // Two packets queued on the same first edge simultaneously.
        let net = Arc::new(builders::complete_leveled(2, 2));
        // Nodes: level0 = {0,1}, level1 = {2,3}, level2 = {4,5}.
        // Both packets route through node 2 then edge (2,4).
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let n2 = NodeId(2);
        let n4 = NodeId(4);
        let p0 = Path::from_nodes(&net, &[n0, n2, n4]).unwrap();
        let p1 = Path::from_nodes(&net, &[n1, n2, n4]).unwrap();
        let prob = RoutingProblem::new(net, vec![p0, p1]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let out = route(&prob, StoreForwardConfig::default(), &mut rng);
        assert!(out.stats.all_delivered());
        let mut times: Vec<Time> = out.stats.delivered_at.iter().map(|d| d.unwrap()).collect();
        times.sort_unstable();
        assert_eq!(times, vec![2, 3], "second packet waits one step");
        assert!(out.total_queue_wait >= 1);
        assert!(out.max_queue >= 2);
    }

    #[test]
    fn farthest_to_go_prefers_long_paths() {
        let net = Arc::new(builders::linear_array(6));
        // p0 short (to node 3), p1 long (to node 5); both hit edge (2,3)
        // at the same step after starting at 1 and 2... construct direct
        // contention: both enter edge (2,3)'s queue at t=1.
        let p_short = Path::from_nodes(&net, &[NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        let p_long = Path::from_nodes(&net, &[NodeId(2), NodeId(3), NodeId(4), NodeId(5)]).unwrap();
        let prob = RoutingProblem::new(net, vec![p_short, p_long]).unwrap();
        // With FIFO + same enqueue step, seq decides; make the long packet
        // arrive later so FIFO would favour the short one, then check
        // FarthestToGo overrides. p_long enqueues edge(2,3) at t=0;
        // p_short arrives there t=1 — no contention. Instead force both
        // into the queue at t=0 is impossible with distinct sources; accept
        // contention at t=1: p_long moved at t=0 already. Use delays? Keep
        // it simple: verify discipline field plumbs through without panic.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg = StoreForwardConfig {
            discipline: QueueDiscipline::FarthestToGo,
            ..Default::default()
        };
        let out = route(&prob, cfg, &mut rng);
        assert!(out.stats.all_delivered());
    }

    #[test]
    fn random_rank_with_delays_delivers_everything() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let net = Arc::new(builders::butterfly(5));
        let prob = workloads::random_pairs(&net, 24, &mut rng).unwrap();
        let cfg = StoreForwardConfig {
            discipline: QueueDiscipline::RandomRank,
            initial_delay_cap: prob.congestion() as u64,
            ..Default::default()
        };
        let out = route(&prob, cfg, &mut rng);
        assert!(out.stats.all_delivered());
        // Makespan within sane bounds: at least D, at most max_steps.
        let mk = out.stats.makespan().unwrap();
        assert!(mk >= prob.dilation() as u64);
        assert!(mk < 10_000);
    }

    #[test]
    fn max_steps_caps_runaway() {
        let prob = line_problem(vec![vec![0, 1, 2, 3, 4, 5]]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg = StoreForwardConfig {
            max_steps: 2,
            ..Default::default()
        };
        let out = route(&prob, cfg, &mut rng);
        assert!(!out.stats.all_delivered());
        assert_eq!(out.stats.steps_run, 2);
    }

    #[test]
    fn bounded_buffers_cap_queue_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let net = Arc::new(builders::complete_leveled(10, 4));
        let prob = workloads::funnel(&net, 16, &mut rng).unwrap();
        for cap in [1usize, 2, 4] {
            let cfg = StoreForwardConfig {
                buffer_cap: cap,
                ..Default::default()
            };
            let out = route(&prob, cfg, &mut rng);
            assert!(
                out.stats.all_delivered(),
                "cap={cap}: {}",
                out.stats.summary()
            );
            assert!(
                out.max_queue <= cap,
                "cap={cap}: max_queue={}",
                out.max_queue
            );
        }
    }

    #[test]
    fn capacity_one_line_still_pipelines() {
        // Packets on a line with cap 1: downstream-first processing lets a
        // full buffer drain and refill in the same step, so the pipeline
        // advances every step once primed.
        let net = Arc::new(builders::linear_array(8));
        let p0 = Path::from_nodes(&net, &(0..8).map(NodeId).collect::<Vec<_>>()).unwrap();
        let prob = RoutingProblem::new(net, vec![p0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let cfg = StoreForwardConfig {
            buffer_cap: 1,
            ..Default::default()
        };
        let out = route(&prob, cfg, &mut rng);
        assert!(out.stats.all_delivered());
        // A lone packet is never blocked: exactly path-length steps.
        assert_eq!(out.stats.delivered_at[0], Some(7));
        assert_eq!(out.backpressure_stalls, 0);
    }

    #[test]
    fn bounded_buffers_generate_stalls_under_contention() {
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let net = Arc::new(builders::complete_leveled(8, 4));
        let prob = workloads::funnel(&net, 12, &mut rng).unwrap();
        let bounded = route(
            &prob,
            StoreForwardConfig {
                buffer_cap: 1,
                ..Default::default()
            },
            &mut rng,
        );
        let unbounded = route(&prob, StoreForwardConfig::default(), &mut rng);
        assert!(bounded.stats.all_delivered());
        assert!(
            bounded.backpressure_stalls > 0,
            "a funnel must stall at cap 1"
        );
        assert_eq!(unbounded.backpressure_stalls, 0);
        // Bounded is no faster than unbounded.
        assert!(bounded.stats.makespan() >= unbounded.stats.makespan());
    }

    #[test]
    fn constant_buffers_still_near_optimal_on_leveled_networks() {
        // Reference 16's message, qualitatively: constant buffers suffice.
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let net = Arc::new(builders::butterfly(6));
        let prob = workloads::random_pairs(&net, 48, &mut rng).unwrap();
        let c = prob.congestion() as u64;
        let d = prob.dilation() as u64;
        let cfg = StoreForwardConfig {
            buffer_cap: 2,
            discipline: QueueDiscipline::RandomRank,
            initial_delay_cap: c,
            ..Default::default()
        };
        let out = route(&prob, cfg, &mut rng);
        assert!(out.stats.all_delivered());
        assert!(out.stats.makespan().unwrap() <= 4 * (c + d) + 8);
    }

    #[test]
    fn makespan_close_to_c_plus_d_on_funnel() {
        // Store-and-forward should route a funnel in ~C + D steps.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let net = Arc::new(builders::complete_leveled(8, 4));
        let prob = workloads::funnel(&net, 12, &mut rng).unwrap();
        let c = prob.congestion() as u64;
        let d = prob.dilation() as u64;
        let out = route(&prob, StoreForwardConfig::default(), &mut rng);
        assert!(out.stats.all_delivered());
        let mk = out.stats.makespan().unwrap();
        assert!(mk >= c.max(d), "lower bound");
        assert!(
            mk <= 2 * (c + d),
            "FIFO on a funnel is near-optimal; got {mk}"
        );
    }
}
