//! Double-buffered snapshot exchange between a simulation and readers.
//!
//! The engine's step loop is a hot path (`// lint: hot-path` in
//! [`crate::engine`]): it must never block on, or allocate for, an
//! observer. Yet a monitoring service wants a *consistent* view of the
//! live metrics mid-run. This module provides that handoff:
//!
//! * [`SnapshotPublisher`] — the writer half, owned by the simulation
//!   thread. [`SnapshotPublisher::publish_with`] refreshes a snapshot
//!   using only `try_lock`: if a reader momentarily holds a buffer the
//!   publish is *skipped* (and counted), never waited on. The step loop
//!   therefore runs at full speed whether or not anyone is scraping.
//! * [`SnapshotReader`] — the (clonable) reader half, handed to HTTP
//!   handler threads. [`SnapshotReader::acquire`] always observes an
//!   *untorn* snapshot: the value passed to the closure was written in
//!   full under the same lock the reader now holds.
//!
//! # Protocol
//!
//! Two buffer slots plus a front index:
//!
//! ```text
//! slots[0]: Mutex<(seq, T)>   ┐ one is "front" (readers), the other
//! slots[1]: Mutex<(seq, T)>   ┘ "back" (writer fills it)
//! front:    Mutex<usize>      which slot readers should take
//! ```
//!
//! The writer fills the back slot (`try_lock`; skip on contention),
//! stamps a sequence number, releases it, then flips `front` to the
//! freshly filled slot (`try_lock` again; on contention the flip is
//! retried on the next publish — the data is already in place). The
//! reader locks `front`, reads the index, *drops* the front guard, then
//! locks the indicated slot. No thread ever holds two locks at once, so
//! no lock ordering exists to violate and deadlock is impossible by
//! construction. Torn reads are impossible because every read of a
//! buffer happens under the same mutex every write of it happens under.
//!
//! One documented relaxation: a reader that races the flip may lock the
//! slot *after* the writer has started refilling it — the `try_lock`
//! writer then skips, so the reader still sees a complete (possibly
//! one-publish-stale) snapshot. Consequently the sequence number a
//! single reader observes across consecutive acquires is not strictly
//! monotone; it can step back by one around a flip. Readers that need
//! monotone views keep the max of the sequence numbers they have seen.
//!
//! The core is `#[cfg(loom)]`-gated exactly like [`crate::observe`]'s
//! sibling `bench::pool_core`, so `crates/serve/tests/loom_serve.rs` can
//! model-check publish/read races, torn-snapshot impossibility, and
//! shutdown under the vendored bounded-exhaustive scheduler.

#[cfg(loom)]
use loom::sync::{Arc, Mutex};
#[cfg(not(loom))]
use std::sync::{Arc, Mutex};

use std::sync::{LockResult, PoisonError};

/// One buffered snapshot: a sequence number and the payload.
struct Slot<T> {
    /// 0 while the slot still holds its seed value; then the publish
    /// counter at the time the slot was last filled.
    seq: u64,
    value: T,
}

/// State shared between the publisher and every reader.
struct Shared<T> {
    slots: [Mutex<Slot<T>>; 2],
    /// Index of the slot readers should acquire.
    front: Mutex<usize>,
}

/// Ignore lock poisoning: a panicked writer leaves a complete snapshot
/// (it is only ever mutated inside `fill`, and a panicking `fill` aborts
/// the publish), and the vendored loom never poisons at all.
fn relax<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Writer half of the exchange; owned by the simulation thread.
///
/// Not clonable: exactly one writer exists per exchange, which is what
/// makes the skip-on-contention protocol race-free.
pub struct SnapshotPublisher<T> {
    shared: Arc<Shared<T>>,
    /// The slot the writer fills next (always `1 - front` once steady).
    back: usize,
    /// Publish counter; the next successful fill stamps `next_seq + 1`.
    next_seq: u64,
    /// Back slot holds a filled snapshot the front flip hasn't shown yet.
    pending_flip: bool,
    skipped_fills: u64,
    skipped_flips: u64,
}

/// Reader half of the exchange; clonable, one per consumer thread.
pub struct SnapshotReader<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for SnapshotReader<T> {
    fn clone(&self) -> Self {
        SnapshotReader {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Creates an exchange seeded with two buffers (sequence number 0).
///
/// The two seeds should be indistinguishable "empty" snapshots: until
/// the first publish lands, readers observe `seed_front` under sequence
/// number 0.
pub fn snapshot_exchange<T>(
    seed_front: T,
    seed_back: T,
) -> (SnapshotPublisher<T>, SnapshotReader<T>) {
    let shared = Arc::new(Shared {
        slots: [
            Mutex::new(Slot {
                seq: 0,
                value: seed_front,
            }),
            Mutex::new(Slot {
                seq: 0,
                value: seed_back,
            }),
        ],
        front: Mutex::new(0),
    });
    (
        SnapshotPublisher {
            shared: Arc::clone(&shared),
            back: 1,
            next_seq: 0,
            pending_flip: false,
            skipped_fills: 0,
            skipped_flips: 0,
        },
        SnapshotReader { shared },
    )
}

impl<T> SnapshotPublisher<T> {
    /// Refreshes the back buffer via `fill` and flips it to the front —
    /// without ever blocking. Returns `true` if readers can now see a
    /// newer snapshot than before the call.
    ///
    /// On contention (a reader holds the back slot, or the front index)
    /// the corresponding half is skipped and counted; a skipped flip is
    /// retried automatically on the next publish, a skipped fill simply
    /// means this snapshot is dropped and the next one will be fresher.
    // lint: hot-path
    // lint: no-panic
    pub fn publish_with(&mut self, fill: impl FnOnce(&mut T)) -> bool {
        // lint: allow-panic(slots has fixed arity 2; back is always 0 or 1)
        match self.shared.slots[self.back].try_lock() {
            Ok(mut slot) => {
                fill(&mut slot.value);
                self.next_seq += 1;
                slot.seq = self.next_seq;
                self.pending_flip = true;
            }
            Err(_) => self.skipped_fills += 1,
        }
        if self.pending_flip {
            match self.shared.front.try_lock() {
                Ok(mut front) => {
                    *front = self.back;
                    self.back = 1 - self.back;
                    self.pending_flip = false;
                    return true;
                }
                Err(_) => self.skipped_flips += 1,
            }
        }
        false
    }

    /// Final, *blocking* publish for quiesce/shutdown: waits for any
    /// in-flight reader, fills the back buffer, and flips it front.
    /// After `flush_with` returns, every subsequent acquire observes the
    /// flushed snapshot (or a newer one). Never called from the step
    /// loop — only once, after the run completes.
    // lint: no-panic
    pub fn flush_with(&mut self, fill: impl FnOnce(&mut T)) {
        {
            // lint: allow-panic(slots has fixed arity 2; back is always 0 or 1)
            let mut slot = relax(self.shared.slots[self.back].lock());
            fill(&mut slot.value);
            self.next_seq += 1;
            slot.seq = self.next_seq;
        }
        let mut front = relax(self.shared.front.lock());
        *front = self.back;
        drop(front);
        self.back = 1 - self.back;
        self.pending_flip = false;
    }

    /// Sequence number of the most recently *filled* snapshot (0 if no
    /// publish has succeeded yet). Readers may still be one behind if
    /// the latest flip was skipped.
    pub fn seq(&self) -> u64 {
        self.next_seq
    }

    /// `(skipped_fills, skipped_flips)` — publishes dropped because a
    /// reader momentarily held the back slot or the front index.
    pub fn skipped(&self) -> (u64, u64) {
        (self.skipped_fills, self.skipped_flips)
    }
}

impl<T> SnapshotReader<T> {
    /// Runs `f` over the current front snapshot (sequence number first).
    /// The snapshot is untorn: `f` observes exactly what one
    /// `publish_with`/`flush_with` fill wrote. Sequence number 0 means
    /// the seed value — nothing has been published yet.
    ///
    /// Holding the slot only for the duration of `f` keeps writer skips
    /// rare; `f` should copy what it needs and return.
    // lint: no-panic
    pub fn acquire<R>(&self, f: impl FnOnce(u64, &T) -> R) -> R {
        let front = *relax(self.shared.front.lock());
        // Front guard dropped here: never hold two locks at once.
        // lint: allow-panic(slots has fixed arity 2; front is always 0 or 1)
        let slot = relax(self.shared.slots[front].lock());
        f(slot.seq, &slot.value)
    }

    /// Convenience: the sequence number currently visible to readers.
    pub fn seq(&self) -> u64 {
        self.acquire(|seq, _| seq)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn seed_is_visible_at_seq_zero() {
        let (_pub, reader) = snapshot_exchange(7u32, 7u32);
        assert_eq!(reader.acquire(|seq, v| (seq, *v)), (0, 7));
    }

    #[test]
    fn publish_makes_value_visible_with_monotone_seq() {
        let (mut publisher, reader) = snapshot_exchange(0u32, 0u32);
        for i in 1..=5u32 {
            assert!(publisher.publish_with(|v| *v = i * 10));
            assert_eq!(reader.acquire(|seq, v| (seq, *v)), (u64::from(i), i * 10));
        }
        assert_eq!(publisher.skipped(), (0, 0));
    }

    #[test]
    fn flush_is_final_and_readers_see_it() {
        let (mut publisher, reader) = snapshot_exchange(0u32, 0u32);
        publisher.publish_with(|v| *v = 1);
        publisher.flush_with(|v| *v = 99);
        assert_eq!(reader.acquire(|seq, v| (seq, *v)), (2, 99));
        let other = reader.clone();
        assert_eq!(other.acquire(|_, v| *v), 99);
    }

    #[test]
    fn concurrent_reader_never_sees_torn_pair() {
        // The payload is a pair the writer always keeps equal; a torn
        // read would observe unequal halves.
        let (mut publisher, reader) = snapshot_exchange((0u64, 0u64), (0u64, 0u64));
        let t = std::thread::spawn(move || {
            for _ in 0..200 {
                let (seq, ok) = reader.acquire(|seq, &(a, b)| (seq, a == b));
                assert!(ok, "torn snapshot at seq {seq}");
            }
        });
        for i in 1..=200u64 {
            publisher.publish_with(|v| *v = (i, i));
        }
        publisher.flush_with(|v| *v = (9999, 9999));
        t.join().unwrap();
    }
}
