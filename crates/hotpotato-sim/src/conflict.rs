//! Conflict resolution with priority winners and safe backward deflections.
//!
//! This module is the operational form of the paper's Lemma 2.1. At a node
//! `v` at step `t`, several packets may desire the same (edge, direction)
//! slot; exactly one can have it. [`resolve`] picks, per contested slot,
//! the contender with the highest priority (ties broken uniformly at
//! random) and deflects every loser **backward and safely**: onto an edge
//! through which some packet arrived *forward* into `v` this very step, so
//! the edge is "recycled" from the winner's path list into the loser's
//! (the paper's safe deflection). Preference order for a loser's
//! deflection edge:
//!
//! 1. its **own** forward-arrival edge, reversed (go back where it came
//!    from) — always free unless another packet took it;
//! 2. any other free forward-arrival edge of the node, reversed;
//! 3. *(only if `allow_fallback`)* any free exit of the node in any
//!    direction — this breaks Lemma 2.1's guarantees and is counted by the
//!    caller, but keeps scaled-parameter runs and unsafe baselines
//!    well-defined.
//!
//! The counting argument of Lemma 2.1 guarantees that, when packets are
//! injected in isolation, steps 1–2 always succeed for the paper's
//! algorithm; the unit tests exercise exactly the induction's cases.

use crate::engine::Simulation;
use crate::observe::RouteObserver;
use leveled_net::ids::{DirectedEdge, Direction};
use leveled_net::{LeveledNetwork, NodeId};
use rand::Rng;

/// The minimal engine surface conflict resolution reads: the network and
/// the per-step (edge, direction) slot occupancy. Both the scalar
/// [`Simulation`] and the data-oriented [`crate::soa::SoaEngine`] implement
/// it, so [`resolve_into`] — including its randomness consumption — is
/// literally the same code on both engines. That shared body is what makes
/// the SoA engine's golden equivalence (bit-identical stats and trace
/// against the scalar oracle) hold by construction rather than by
/// re-implementation.
pub trait SlotView {
    /// The network topology.
    fn network(&self) -> &LeveledNetwork;
    /// Whether the (edge, direction) slot is still free this step.
    fn slot_free(&self, mv: DirectedEdge) -> bool;
}

impl<M, O: RouteObserver> SlotView for Simulation<M, O> {
    #[inline]
    fn network(&self) -> &LeveledNetwork {
        Simulation::network(self)
    }

    #[inline]
    fn slot_free(&self, mv: DirectedEdge) -> bool {
        Simulation::slot_free(self, mv)
    }
}

/// One packet competing for an exit at a node.
#[derive(Clone, Copy, Debug)]
pub struct Contender {
    /// Packet index in the simulation.
    pub pkt: u32,
    /// The slot the packet wants (its current-path move, or its
    /// oscillation move for wait-state packets).
    pub desired: DirectedEdge,
    /// Priority; higher wins (paper: excited > normal > wait).
    pub priority: u32,
    /// The move that brought the packet here this step (safe-deflection
    /// candidates are the forward ones among these).
    pub arrival: Option<DirectedEdge>,
}

/// The exit assigned to one contender.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResolvedExit {
    /// Packet index.
    pub pkt: u32,
    /// The assigned move.
    pub mv: DirectedEdge,
    /// Whether the packet won its desired slot.
    pub won: bool,
    /// For losers: whether the deflection was backward-and-safe.
    pub safe: bool,
}

/// Resolution failure: a loser could not be assigned any admissible exit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConflictError {
    /// No safe backward edge was free and fallback was disabled.
    NoSafeExit {
        /// The packet left without an exit.
        pkt: u32,
    },
    /// Even with fallback, no free exit existed (cannot happen when the
    /// per-direction arrival bound holds: arrivals ≤ degree = exits).
    NoExitAtAll {
        /// The packet left without an exit.
        pkt: u32,
    },
}

impl std::fmt::Display for ConflictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConflictError::NoSafeExit { pkt } => {
                write!(
                    f,
                    "packet #{pkt}: no safe backward deflection edge available"
                )
            }
            ConflictError::NoExitAtAll { pkt } => {
                write!(
                    f,
                    "packet #{pkt}: node has no free exits (arrival bound violated?)"
                )
            }
        }
    }
}

impl std::error::Error for ConflictError {}

/// How losers of a conflict are deflected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeflectRule {
    /// The paper's rule: backward along a safely recycled edge, preferring
    /// the loser's own arrival edge. `allow_fallback` permits an arbitrary
    /// free link when no safe edge exists (counted as unsafe).
    SafeBackward {
        /// Fall back to any free link instead of erroring.
        allow_fallback: bool,
    },
    /// Ablation rule (`A4`): losers take a uniformly random free exit in
    /// any direction. This abandons Lemma 2.1 entirely — current paths can
    /// become invalid and per-set congestion can grow (Lemma 4.10 breaks).
    Arbitrary,
}

/// Reusable buffers for [`resolve_into`]. One instance per step loop
/// amortizes every per-resolution allocation away; the contents carry no
/// state between calls.
#[derive(Default)]
pub struct ConflictScratch {
    /// Slots claimed during this resolution (on top of engine state).
    local_used: Vec<usize>,
    /// Contender index permutation, grouped by desired slot.
    order: Vec<usize>,
    /// Per-contender assignment, filled out of order.
    out: Vec<Option<ResolvedExit>>,
    /// Contender indices that lost their group.
    losers: Vec<usize>,
    /// Highest-priority members of the current group (tie candidates).
    top: Vec<usize>,
    /// Safe-deflection pool: forward arrivals into the node, reversed.
    safe_pool: Vec<DirectedEdge>,
    /// Free exits (Arbitrary rule only).
    frees: Vec<DirectedEdge>,
    /// The in-order result handed back to the caller.
    result: Vec<ResolvedExit>,
}

/// Resolves all conflicts at `node` for this step. Returns one exit per
/// contender, in the order given.
///
/// `allow_fallback` permits non-safe deflections (any free link) when no
/// safe backward edge is available — required for baselines that inject
/// without isolation, and for scaled-parameter runs of the paper's
/// algorithm where the w.h.p. preconditions can fail.
///
/// Allocating convenience wrapper around [`resolve_into`].
pub fn resolve<S: SlotView + ?Sized, R: Rng + ?Sized>(
    sim: &S,
    node: NodeId,
    contenders: &[Contender],
    allow_fallback: bool,
    rng: &mut R,
) -> Result<Vec<ResolvedExit>, ConflictError> {
    resolve_with(
        sim,
        node,
        contenders,
        DeflectRule::SafeBackward { allow_fallback },
        rng,
    )
}

/// [`resolve`] with an explicit [`DeflectRule`] (used by the safe-deflection
/// ablation). Allocating convenience wrapper around [`resolve_into`].
pub fn resolve_with<S: SlotView + ?Sized, R: Rng + ?Sized>(
    sim: &S,
    node: NodeId,
    contenders: &[Contender],
    rule: DeflectRule,
    rng: &mut R,
) -> Result<Vec<ResolvedExit>, ConflictError> {
    let mut scratch = ConflictScratch::default();
    resolve_into(sim, node, contenders, rule, rng, &mut scratch).map(<[_]>::to_vec)
}

/// The allocation-free resolution core: like [`resolve_with`], but all
/// working memory lives in the caller's [`ConflictScratch`], and the
/// result is a borrow of the scratch rather than a fresh `Vec`. Step
/// loops call this once per occupied node with a single scratch instance.
///
/// Consumes randomness identically to [`resolve_with`] (one draw per
/// contested group with a free slot, plus one per loser under
/// [`DeflectRule::Arbitrary`]).
// lint: hot-path
// lint: panics-by-design(dense-index invariant surface: packet/node ids are
// validated at construction, so an OOB here is an engine bug caught by the
// golden suites, never a client-input path)
pub fn resolve_into<'s, S: SlotView + ?Sized, R: Rng + ?Sized>(
    sim: &S,
    node: NodeId,
    contenders: &[Contender],
    rule: DeflectRule,
    rng: &mut R,
    scratch: &'s mut ConflictScratch,
) -> Result<&'s [ResolvedExit], ConflictError> {
    let net = sim.network();
    debug_assert!(contenders
        .iter()
        .all(|c| net.move_origin(c.desired) == node));

    // Locally-claimed slots this resolution (on top of engine-level state).
    let local_used = &mut scratch.local_used;
    local_used.clear();
    let free = |local_used: &[usize], mv: DirectedEdge, sim: &S| -> bool {
        sim.slot_free(mv) && !local_used.contains(&mv.slot_index())
    };

    // Group contenders by desired slot (sort a local index permutation).
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..contenders.len());
    order.sort_by_key(|&i| (contenders[i].desired.slot_index(), i));

    let out = &mut scratch.out;
    out.clear();
    out.resize(contenders.len(), None);
    let losers = &mut scratch.losers;
    losers.clear();

    let mut g = 0;
    while g < order.len() {
        let slot = contenders[order[g]].desired.slot_index();
        let mut h = g;
        while h < order.len() && contenders[order[h]].desired.slot_index() == slot {
            h += 1;
        }
        let group = &order[g..h];
        // The slot could already be taken at the engine level (e.g. by an
        // exit staged at this node earlier); then everyone loses.
        let winner = if free(local_used, contenders[group[0]].desired, sim) {
            let best = group
                .iter()
                .map(|&i| contenders[i].priority)
                .max()
                .expect("non-empty group");
            let top = &mut scratch.top;
            top.clear();
            top.extend(
                group
                    .iter()
                    .copied()
                    .filter(|&i| contenders[i].priority == best),
            );
            Some(top[rng.gen_range(0..top.len())])
        } else {
            None
        };
        for &i in group {
            if Some(i) == winner {
                let c = &contenders[i];
                local_used.push(c.desired.slot_index());
                out[i] = Some(ResolvedExit {
                    pkt: c.pkt,
                    mv: c.desired,
                    won: true,
                    safe: true,
                });
            } else {
                losers.push(i);
            }
        }
        g = h;
    }

    // Safe-deflection pool: forward arrivals into this node, reversed.
    let safe_pool = &mut scratch.safe_pool;
    safe_pool.clear();
    safe_pool.extend(contenders.iter().filter_map(|c| match c.arrival {
        Some(a) if a.dir == Direction::Forward => Some(a.reversed()),
        _ => None,
    }));

    for &i in losers.iter() {
        let c = &contenders[i];
        let mut chosen: Option<(DirectedEdge, bool)> = None;
        match rule {
            DeflectRule::SafeBackward { .. } => {
                // 1. Own forward-arrival edge.
                let own = match c.arrival {
                    Some(a) if a.dir == Direction::Forward => Some(a.reversed()),
                    _ => None,
                };
                if let Some(mv) = own {
                    if free(local_used, mv, sim) {
                        chosen = Some((mv, true));
                    }
                }
                // 2. Any other free safe edge.
                if chosen.is_none() {
                    for &mv in safe_pool.iter() {
                        if free(local_used, mv, sim) {
                            chosen = Some((mv, true));
                            break;
                        }
                    }
                }
            }
            DeflectRule::Arbitrary => {
                // Ablation: a uniformly random free exit, any direction.
                let frees = &mut scratch.frees;
                frees.clear();
                frees.extend(net.exits(node).filter(|&mv| free(local_used, mv, sim)));
                if !frees.is_empty() {
                    chosen = Some((frees[rng.gen_range(0..frees.len())], false));
                }
            }
        }
        // 3. Fallback: any free exit.
        if chosen.is_none() {
            if rule
                == (DeflectRule::SafeBackward {
                    allow_fallback: false,
                })
            {
                return Err(ConflictError::NoSafeExit { pkt: c.pkt });
            }
            for mv in net.exits(node) {
                if free(local_used, mv, sim) {
                    chosen = Some((mv, false));
                    break;
                }
            }
        }
        match chosen {
            Some((mv, safe)) => {
                local_used.push(mv.slot_index());
                out[i] = Some(ResolvedExit {
                    pkt: c.pkt,
                    mv,
                    won: false,
                    safe,
                });
            }
            None => return Err(ConflictError::NoExitAtAll { pkt: c.pkt }),
        }
    }

    let result = &mut scratch.result;
    result.clear();
    result.extend(out.iter().map(|e| e.expect("all assigned")));
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::{EdgeId, NetworkBuilder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use routing_core::{Path, RoutingProblem};
    use std::sync::Arc;

    /// Three-level fan: two level-0 nodes feed one level-1 node, which has
    /// two edges to level 2.
    ///
    /// n0 --e0--> n2 --e2--> n3
    /// n1 --e1--> n2 --e3--> n4
    fn fan() -> Arc<RoutingProblem> {
        let mut b = NetworkBuilder::new("fan");
        let n0 = b.add_node(0);
        let n1 = b.add_node(0);
        let n2 = b.add_node(1);
        let n3 = b.add_node(2);
        let n4 = b.add_node(2);
        let e0 = b.add_edge(n0, n2).unwrap();
        let e1 = b.add_edge(n1, n2).unwrap();
        let e2 = b.add_edge(n2, n3).unwrap();
        let _e3 = b.add_edge(n2, n4).unwrap();
        let net = Arc::new(b.build().unwrap());
        // Both packets want n2 -> n3 (edge e2).
        let p0 = Path::new(&net, n0, vec![e0, e2]).unwrap();
        let p1 = Path::new(&net, n1, vec![e1, e2]).unwrap();
        Arc::new(RoutingProblem::new(net, vec![p0, p1]).unwrap())
    }

    /// Sets up the fan with both packets arrived at n2 (after one step).
    fn fan_sim() -> Simulation<()> {
        let prob = fan();
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![(), ()]).build();
        sim.try_inject(0).unwrap();
        sim.try_inject(1).unwrap();
        sim.finish_step().unwrap();
        assert_eq!(sim.arrivals(NodeId(2)).len(), 2);
        sim
    }

    fn contender<M, O: RouteObserver>(
        sim: &Simulation<M, O>,
        pkt: u32,
        priority: u32,
    ) -> Contender {
        Contender {
            pkt,
            desired: sim.next_move_of(pkt).unwrap(),
            priority,
            arrival: sim.packet(pkt).last_move,
        }
    }

    #[test]
    fn winner_takes_slot_loser_deflected_safely_backward() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let sim = fan_sim();
        let cs = vec![contender(&sim, 0, 1), contender(&sim, 1, 1)];
        let exits = resolve(&sim, NodeId(2), &cs, false, &mut rng).unwrap();
        let winners: Vec<&ResolvedExit> = exits.iter().filter(|e| e.won).collect();
        assert_eq!(winners.len(), 1);
        assert_eq!(winners[0].mv, DirectedEdge::forward(EdgeId(2)));
        let loser = exits.iter().find(|e| !e.won).unwrap();
        assert!(loser.safe, "deflection must be safe");
        assert_eq!(loser.mv.dir, Direction::Backward);
        // Loser goes back along its own arrival edge.
        let own = if loser.pkt == 0 { EdgeId(0) } else { EdgeId(1) };
        assert_eq!(loser.mv.edge, own);
    }

    #[test]
    fn higher_priority_always_wins() {
        for seed in 0..20 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let sim = fan_sim();
            let cs = vec![contender(&sim, 0, 0), contender(&sim, 1, 2)];
            let exits = resolve(&sim, NodeId(2), &cs, false, &mut rng).unwrap();
            assert!(!exits[0].won, "seed {seed}");
            assert!(exits[1].won, "seed {seed}");
        }
    }

    #[test]
    fn equal_priority_ties_are_random() {
        let mut wins0 = 0;
        let trials = 200;
        for seed in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let sim = fan_sim();
            let cs = vec![contender(&sim, 0, 1), contender(&sim, 1, 1)];
            let exits = resolve(&sim, NodeId(2), &cs, false, &mut rng).unwrap();
            if exits[0].won {
                wins0 += 1;
            }
        }
        assert!(
            (40..160).contains(&wins0),
            "tie-break badly skewed: {wins0}/{trials}"
        );
    }

    #[test]
    fn distinct_desired_slots_all_win() {
        // Reroute packet 1 to use e3 so there is no conflict.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sim = fan_sim();
        let desired1 = DirectedEdge::forward(EdgeId(3));
        let cs = vec![
            contender(&sim, 0, 1),
            Contender {
                pkt: 1,
                desired: desired1,
                priority: 1,
                arrival: sim.packet(1).last_move,
            },
        ];
        let exits = resolve(&sim, NodeId(2), &cs, false, &mut rng).unwrap();
        assert!(exits.iter().all(|e| e.won));
        // All assigned slots are distinct.
        assert_ne!(exits[0].mv, exits[1].mv);
    }

    #[test]
    fn no_safe_exit_errors_without_fallback() {
        // Both fan packets stand at n2, but we present them with *no*
        // forward-arrival information (as if they had arrived backward):
        // the safe-deflection pool is empty, so the loser fails without
        // fallback and takes an arbitrary free exit with it.
        let sim = fan_sim();
        let desired = sim.next_move_of(0).unwrap(); // e2 forward
        let cs = vec![
            Contender {
                pkt: 0,
                desired,
                priority: 0,
                arrival: None,
            },
            Contender {
                pkt: 1,
                desired,
                priority: 1,
                arrival: None,
            },
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let err = resolve(&sim, NodeId(2), &cs, false, &mut rng).unwrap_err();
        assert_eq!(err, ConflictError::NoSafeExit { pkt: 0 });
        // With fallback, the loser takes any free exit (unsafe), here the
        // other forward edge e3.
        let exits = resolve(&sim, NodeId(2), &cs, true, &mut rng).unwrap();
        let loser = exits.iter().find(|e| !e.won).unwrap();
        assert!(!loser.safe);
        assert_eq!(loser.mv, DirectedEdge::forward(EdgeId(3)));
    }

    #[test]
    fn pool_edges_used_at_most_once() {
        // Three packets converge on one node and all want the same edge:
        // two losers must take two *distinct* backward edges.
        let mut b = NetworkBuilder::new("tri");
        let s0 = b.add_node(0);
        let s1 = b.add_node(0);
        let s2 = b.add_node(0);
        let mid = b.add_node(1);
        let top = b.add_node(2);
        let e0 = b.add_edge(s0, mid).unwrap();
        let e1 = b.add_edge(s1, mid).unwrap();
        let e2 = b.add_edge(s2, mid).unwrap();
        let e3 = b.add_edge(mid, top).unwrap();
        let net = Arc::new(b.build().unwrap());
        let paths = vec![
            Path::new(&net, s0, vec![e0, e3]).unwrap(),
            Path::new(&net, s1, vec![e1, e3]).unwrap(),
            Path::new(&net, s2, vec![e2, e3]).unwrap(),
        ];
        let prob = Arc::new(RoutingProblem::new(net, paths).unwrap());
        let mut sim: Simulation<()> = Simulation::builder(prob, vec![(), (), ()]).build();
        for p in 0..3 {
            sim.try_inject(p).unwrap();
        }
        sim.finish_step().unwrap();
        let cs: Vec<Contender> = (0..3).map(|p| contender(&sim, p, 1)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let exits = resolve(&sim, mid, &cs, false, &mut rng).unwrap();
        assert_eq!(exits.iter().filter(|e| e.won).count(), 1);
        let mut slots: Vec<usize> = exits.iter().map(|e| e.mv.slot_index()).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 3, "all exits distinct");
        for e in exits.iter().filter(|e| !e.won) {
            assert!(e.safe);
            assert_eq!(e.mv.dir, Direction::Backward);
        }
    }

    #[test]
    fn resolution_respects_engine_level_slot_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut sim = fan_sim();
        // Claim e2-forward at the engine level using packet 0 itself, then
        // resolve only packet 1: it must lose and deflect safely.
        let mv = sim.next_move_of(0).unwrap();
        sim.stage_exit(0, mv, crate::engine::ExitKind::Advance)
            .unwrap();
        let cs = vec![contender(&sim, 1, 3)];
        let exits = resolve(&sim, NodeId(2), &cs, false, &mut rng).unwrap();
        assert!(!exits[0].won, "engine-level slot already taken");
        assert!(exits[0].safe);
        assert_eq!(exits[0].mv, DirectedEdge::backward(EdgeId(1)));
    }
}
