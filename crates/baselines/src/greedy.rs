//! Greedy hot-potato routing: the folklore baseline.
//!
//! Every packet is injected as early as possible (from step 0, retrying
//! while its first link is busy). At each node, every packet tries the
//! next move of its current path; conflicts are decided uniformly at
//! random or by a static priority rule, and losers are deflected backward
//! and safely when possible (falling back to any free link — greedy
//! injection provides no isolation guarantee, so Lemma 2.1's precondition
//! can fail).
//!
//! Greedy hot-potato routing has no general `O(C + D)`-style bound on
//! leveled networks — the point of the paper — but is fast in easy
//! regimes; the `T4` comparison experiment quantifies both sides.

use hotpotato_sim::conflict::{self, Contender};
use hotpotato_sim::{
    ExitKind, InjectOutcome, NoopObserver, RouteObserver, RouteOutcome, RouteStats, Router,
    Simulation,
};
use rand::{Rng, RngCore};
use routing_core::RoutingProblem;
use std::sync::Arc;

/// Conflict-resolution priority rule for the greedy baseline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GreedyPriority {
    /// All packets equal; ties (i.e. everything) resolved uniformly at
    /// random.
    Uniform,
    /// The packet with the most remaining current-path edges wins
    /// (furthest-to-go first).
    FurthestToGo,
    /// The packet deflected most often wins (aging): the standard
    /// starvation-freedom device in practical deflection routers — a
    /// packet's priority only ever rises, so it eventually outranks all
    /// rivals on its route.
    Aging,
}

/// Configuration of the greedy baseline.
#[derive(Clone, Copy, Debug)]
pub struct GreedyConfig {
    /// Priority rule.
    pub priority: GreedyPriority,
    /// Safety cap on simulated steps.
    pub max_steps: u64,
    /// Record the per-step active-packet trace.
    pub trace: bool,
    /// Record every movement event for independent replay auditing.
    pub record: bool,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            priority: GreedyPriority::Uniform,
            max_steps: 5_000_000,
            trace: false,
            record: false,
        }
    }
}

/// Result of a greedy run.
#[derive(Clone, Debug)]
pub struct GreedyOutcome {
    /// Standard routing statistics.
    pub stats: RouteStats,
    /// The movement record, when [`GreedyConfig::record`] was set.
    pub record: Option<hotpotato_sim::RunRecord>,
}

/// The greedy hot-potato router.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyRouter {
    cfg: GreedyConfig,
}

impl GreedyRouter {
    /// Uniform-priority greedy with default limits.
    pub fn new() -> Self {
        GreedyRouter::default()
    }

    /// Greedy with an explicit configuration.
    pub fn with_config(cfg: GreedyConfig) -> Self {
        GreedyRouter { cfg }
    }

    /// Routes `problem` greedily. Deterministic given the rng state.
    /// Takes the problem behind an `Arc` so the engine shares it without
    /// deep-cloning the paths.
    pub fn route<R: Rng + ?Sized>(
        &self,
        problem: &Arc<RoutingProblem>,
        rng: &mut R,
    ) -> GreedyOutcome {
        self.route_observed(problem, rng, &mut NoopObserver)
    }

    /// [`GreedyRouter::route`] with an event sink: every engine event
    /// (injection, movement, deflection, delivery, step report) is fed to
    /// `observer`. With [`NoopObserver`] this monomorphizes to exactly the
    /// unobserved run.
    pub fn route_observed<R: Rng + ?Sized, O: RouteObserver + ?Sized>(
        &self,
        problem: &Arc<RoutingProblem>,
        rng: &mut R,
        observer: &mut O,
    ) -> GreedyOutcome {
        let mut sim = Simulation::builder(Arc::clone(problem), vec![(); problem.num_packets()])
            .trace(self.cfg.trace)
            .recording(self.cfg.record)
            .observer(observer)
            .build();
        let mut pending: Vec<u32> = (0..problem.num_packets() as u32).collect();
        let mut arrivals_buf: Vec<u32> = Vec::new();
        let mut contenders: Vec<Contender> = Vec::new();
        let mut nodes_buf: Vec<leveled_net::NodeId> = Vec::new();
        let mut scratch = conflict::ConflictScratch::default();

        while !sim.is_done() && sim.now() < self.cfg.max_steps {
            sim.occupied_nodes_into(&mut nodes_buf);
            for &v in &nodes_buf {
                arrivals_buf.clear();
                arrivals_buf.extend_from_slice(sim.arrivals(v));
                contenders.clear();
                for &p in &arrivals_buf {
                    let desired = sim
                        .next_move_of(p)
                        .expect("active packets are not at their destination");
                    let priority = match self.cfg.priority {
                        GreedyPriority::Uniform => 0,
                        GreedyPriority::FurthestToGo => {
                            let pkt = sim.packet(p);
                            let remaining =
                                pkt.deviation_depth() + (sim.path_of(p).len() - pkt.base_idx());
                            remaining as u32
                        }
                        GreedyPriority::Aging => sim.packet(p).deflections(),
                    };
                    contenders.push(Contender {
                        pkt: p,
                        desired,
                        priority,
                        arrival: sim.packet(p).last_move,
                    });
                }
                // Fast path: a lone packet at a node cannot conflict.
                if let [c] = contenders[..] {
                    sim.stage_exit(c.pkt, c.desired, ExitKind::Advance)
                        .expect("lone desired slot is free");
                    continue;
                }
                let exits = conflict::resolve_into(
                    &sim,
                    v,
                    &contenders,
                    conflict::DeflectRule::SafeBackward {
                        allow_fallback: true,
                    },
                    rng,
                    &mut scratch,
                )
                .expect("fallback resolution cannot fail within degree bound");
                for &e in exits {
                    let kind = if e.won {
                        ExitKind::Advance
                    } else {
                        ExitKind::Deflect { safe: e.safe }
                    };
                    sim.stage_exit(e.pkt, e.mv, kind)
                        .expect("resolver produces feasible exits");
                }
            }

            // Greedy injection: everyone tries every step until admitted.
            pending.retain(|&p| match sim.try_inject(p).expect("pending") {
                InjectOutcome::Injected | InjectOutcome::DeliveredTrivially => false,
                InjectOutcome::Blocked => true,
            });

            sim.finish_step().expect("all arrivals staged");
        }
        let (stats, record) = sim.into_parts();
        GreedyOutcome { stats, record }
    }
}

impl Router for GreedyRouter {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn route(
        &self,
        problem: &Arc<RoutingProblem>,
        rng: &mut dyn RngCore,
        observer: &mut dyn RouteObserver,
    ) -> RouteOutcome {
        let out = self.route_observed(problem, rng, observer);
        RouteOutcome {
            algorithm: "greedy",
            stats: out.stats,
            record: out.record,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders::{self, ButterflyCoords, MeshCorner};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use routing_core::workloads;

    #[test]
    fn delivers_random_pairs_on_butterfly() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = Arc::new(builders::butterfly(5));
        let prob = workloads::random_pairs(&net, 24, &mut rng).unwrap();
        let out = GreedyRouter::new().route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn delivers_permutation_on_butterfly() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let k = 5;
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let prob = workloads::butterfly_permutation(&net, &coords, &mut rng);
        let out = GreedyRouter::new().route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn delivers_mesh_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (raw, coords) = builders::mesh(8, 8, MeshCorner::TopLeft);
        let net = Arc::new(raw);
        let prob = workloads::mesh_transpose(&net, &coords).unwrap();
        let out = GreedyRouter::new().route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn furthest_to_go_variant_delivers() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let net = Arc::new(builders::complete_leveled(8, 4));
        let prob = workloads::funnel(&net, 12, &mut rng).unwrap();
        let cfg = GreedyConfig {
            priority: GreedyPriority::FurthestToGo,
            ..Default::default()
        };
        let out = GreedyRouter::with_config(cfg).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn aging_variant_delivers_under_heavy_contention() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let k = 6;
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let prob = workloads::butterfly_bit_reversal(&net, &coords);
        let cfg = GreedyConfig {
            priority: GreedyPriority::Aging,
            ..Default::default()
        };
        let out = GreedyRouter::with_config(cfg).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn aging_bounds_worst_case_deflections() {
        // With aging, the most-deflected packet wins every conflict, so
        // per-packet deflections stay close to the uniform variant's
        // *mean*, not its max.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let net = Arc::new(builders::complete_leveled(10, 4));
        let prob = workloads::funnel(&net, 16, &mut rng).unwrap();
        let uni = GreedyRouter::new().route(&prob, &mut rng);
        let cfg = GreedyConfig {
            priority: GreedyPriority::Aging,
            ..Default::default()
        };
        let aging = GreedyRouter::with_config(cfg).route(&prob, &mut rng);
        assert!(uni.stats.all_delivered() && aging.stats.all_delivered());
        let max_aging = aging.stats.deflection_summary().max;
        let max_uni = uni.stats.deflection_summary().max;
        assert!(
            max_aging <= max_uni + 2.0,
            "aging should not worsen the deflection tail: {max_aging} vs {max_uni}"
        );
    }

    #[test]
    fn greedy_injects_everything_early() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 10, &mut rng).unwrap();
        let out = GreedyRouter::new().route(&prob, &mut rng);
        // With 10 packets on a 4-butterfly, injections clear within a few
        // steps (contention on first edges only).
        for inj in out.stats.injected_at.iter().flatten() {
            assert!(*inj < 10, "greedy injection was delayed to {inj}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut wrng = ChaCha8Rng::seed_from_u64(6);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 12, &mut wrng).unwrap();
        let mut r1 = ChaCha8Rng::seed_from_u64(42);
        let mut r2 = ChaCha8Rng::seed_from_u64(42);
        let o1 = GreedyRouter::new().route(&prob, &mut r1);
        let o2 = GreedyRouter::new().route(&prob, &mut r2);
        assert_eq!(o1.stats.delivered_at, o2.stats.delivered_at);
    }

    #[test]
    fn max_steps_caps_runs() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 10, &mut rng).unwrap();
        let cfg = GreedyConfig {
            max_steps: 1,
            ..Default::default()
        };
        let out = GreedyRouter::with_config(cfg).route(&prob, &mut rng);
        assert!(!out.stats.all_delivered());
        assert_eq!(out.stats.steps_run, 1);
    }
}
