//! Greedy hot-potato routing with fixed random priorities.
//!
//! Each packet draws a random rank when routing starts; every conflict is
//! decided by rank (higher wins, ranks are distinct by construction), as
//! in randomized greedy hot-potato routing (Busch–Herlihy–Wattenhofer,
//! reference 11 in the paper). A consistent total order avoids the livelock
//! patterns of uniform tie-breaking: the globally top-ranked packet in
//! flight never loses a conflict, so it advances one level per step.

use hotpotato_sim::conflict::{self, Contender};
use hotpotato_sim::{
    ExitKind, InjectOutcome, NoopObserver, RouteObserver, RouteOutcome, Router, Simulation,
};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};
use routing_core::RoutingProblem;
use std::sync::Arc;

/// Greedy hot-potato routing under a fixed random total order.
#[derive(Clone, Copy, Debug)]
pub struct RandomPriorityRouter {
    /// Safety cap on simulated steps.
    pub max_steps: u64,
    /// Record every movement event for independent replay auditing.
    pub record: bool,
}

impl Default for RandomPriorityRouter {
    fn default() -> Self {
        RandomPriorityRouter {
            max_steps: 5_000_000,
            record: false,
        }
    }
}

impl RandomPriorityRouter {
    /// A router with the default step cap.
    pub fn new() -> Self {
        RandomPriorityRouter::default()
    }

    /// Routes `problem`; deterministic given the rng state. Takes the
    /// problem behind an `Arc` so the engine shares it without cloning.
    pub fn route<R: Rng + ?Sized>(
        &self,
        problem: &Arc<RoutingProblem>,
        rng: &mut R,
    ) -> crate::greedy::GreedyOutcome {
        self.route_observed(problem, rng, &mut NoopObserver)
    }

    /// [`RandomPriorityRouter::route`] with an event sink (see
    /// [`crate::GreedyRouter::route_observed`]).
    pub fn route_observed<R: Rng + ?Sized, O: RouteObserver + ?Sized>(
        &self,
        problem: &Arc<RoutingProblem>,
        rng: &mut R,
        observer: &mut O,
    ) -> crate::greedy::GreedyOutcome {
        let n = problem.num_packets();
        // A random permutation gives distinct ranks — a strict total order.
        let mut ranks: Vec<u32> = (0..n as u32).collect();
        ranks.shuffle(rng);

        let mut sim = Simulation::builder(Arc::clone(problem), ranks)
            .recording(self.record)
            .observer(observer)
            .build();
        let mut pending: Vec<u32> = (0..n as u32).collect();
        let mut arrivals_buf: Vec<u32> = Vec::new();
        let mut contenders: Vec<Contender> = Vec::new();
        let mut nodes_buf: Vec<leveled_net::NodeId> = Vec::new();
        let mut scratch = conflict::ConflictScratch::default();

        while !sim.is_done() && sim.now() < self.max_steps {
            sim.occupied_nodes_into(&mut nodes_buf);
            for &v in &nodes_buf {
                arrivals_buf.clear();
                arrivals_buf.extend_from_slice(sim.arrivals(v));
                contenders.clear();
                for &p in &arrivals_buf {
                    contenders.push(Contender {
                        pkt: p,
                        desired: sim
                            .next_move_of(p)
                            .expect("active packets are not at their destination"),
                        priority: sim.packet(p).meta,
                        arrival: sim.packet(p).last_move,
                    });
                }
                // Fast path: a lone packet at a node cannot conflict.
                if let [c] = contenders[..] {
                    sim.stage_exit(c.pkt, c.desired, ExitKind::Advance)
                        .expect("lone desired slot is free");
                    continue;
                }
                let exits = conflict::resolve_into(
                    &sim,
                    v,
                    &contenders,
                    conflict::DeflectRule::SafeBackward {
                        allow_fallback: true,
                    },
                    rng,
                    &mut scratch,
                )
                .expect("fallback resolution cannot fail within degree bound");
                for &e in exits {
                    let kind = if e.won {
                        ExitKind::Advance
                    } else {
                        ExitKind::Deflect { safe: e.safe }
                    };
                    sim.stage_exit(e.pkt, e.mv, kind)
                        .expect("resolver produces feasible exits");
                }
            }
            pending.retain(|&p| match sim.try_inject(p).expect("pending") {
                InjectOutcome::Injected | InjectOutcome::DeliveredTrivially => false,
                InjectOutcome::Blocked => true,
            });
            sim.finish_step().expect("all arrivals staged");
        }
        let (stats, record) = sim.into_parts();
        crate::greedy::GreedyOutcome { stats, record }
    }
}

impl Router for RandomPriorityRouter {
    fn name(&self) -> &'static str {
        "rank"
    }

    fn route(
        &self,
        problem: &Arc<RoutingProblem>,
        rng: &mut dyn RngCore,
        observer: &mut dyn RouteObserver,
    ) -> RouteOutcome {
        let out = self.route_observed(problem, rng, observer);
        RouteOutcome {
            algorithm: "rank",
            stats: out.stats,
            record: out.record,
        }
    }
}

/// Outcome alias: identical shape to the greedy baseline.
pub type RandomPriorityOutcome = crate::greedy::GreedyOutcome;

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders::{self, ButterflyCoords};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use routing_core::workloads;

    #[test]
    fn delivers_butterfly_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let k = 5;
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let prob = workloads::butterfly_permutation(&net, &coords, &mut rng);
        let out = RandomPriorityRouter::new().route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn delivers_congested_funnel() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = Arc::new(builders::complete_leveled(10, 4));
        let prob = workloads::funnel(&net, 16, &mut rng).unwrap();
        let out = RandomPriorityRouter::new().route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn delivers_bit_reversal_stress() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let k = 6;
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let prob = workloads::butterfly_bit_reversal(&net, &coords);
        let out = RandomPriorityRouter::new().route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut wrng = ChaCha8Rng::seed_from_u64(4);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 12, &mut wrng).unwrap();
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        let o1 = RandomPriorityRouter::new().route(&prob, &mut r1);
        let o2 = RandomPriorityRouter::new().route(&prob, &mut r2);
        assert_eq!(o1.stats.delivered_at, o2.stats.delivered_at);
    }
}
