//! Baseline routing algorithms for comparison against the paper's router.
//!
//! * [`GreedyRouter`] — plain greedy hot-potato routing: every packet is
//!   injected as soon as its first link is free and always tries its next
//!   current-path move; conflicts resolved uniformly at random (or by
//!   furthest-to-go priority), losers deflected backward-and-safe when
//!   possible, arbitrarily otherwise. The folklore algorithm the
//!   experimental literature measures ([4, 5] in the paper).
//! * [`RandomPriorityRouter`] — greedy with *fixed random ranks*: each
//!   packet draws a rank at the start and all conflicts are decided by
//!   rank, in the spirit of Busch–Herlihy–Wattenhofer's randomized greedy
//!   hot-potato routing (reference 11 in the paper).
//! * [`StoreForwardRouter`] — the buffered baseline (re-exported from
//!   `hotpotato-sim`): FIFO or random-rank scheduling on the preselected
//!   paths with optional `Θ(C)` random initial delays, achieving
//!   `O(C + L + log N)` on leveled networks (reference 16).

pub mod greedy;
pub mod random_priority;

pub use greedy::{GreedyConfig, GreedyOutcome, GreedyPriority, GreedyRouter};
pub use hotpotato_sim::store_forward::{QueueDiscipline, StoreForwardConfig, StoreForwardOutcome};
pub use random_priority::RandomPriorityRouter;

/// Convenience façade over [`hotpotato_sim::store_forward::route`] with the
/// same constructor shape as the other baselines.
#[derive(Clone, Copy, Debug)]
pub struct StoreForwardRouter {
    cfg: StoreForwardConfig,
}

impl StoreForwardRouter {
    /// FIFO scheduling without initial delays.
    pub fn fifo() -> Self {
        StoreForwardRouter {
            cfg: StoreForwardConfig::default(),
        }
    }

    /// Random-rank scheduling with initial delays in `0..=delay_cap` — the
    /// classic `O(C + L + log N)` style schedule for leveled networks.
    pub fn random_rank(delay_cap: u64) -> Self {
        StoreForwardRouter {
            cfg: StoreForwardConfig {
                discipline: QueueDiscipline::RandomRank,
                initial_delay_cap: delay_cap,
                ..Default::default()
            },
        }
    }

    /// FIFO scheduling with constant per-edge buffers of size `cap` —
    /// the bounded-buffer regime of reference 16.
    pub fn bounded(cap: usize) -> Self {
        StoreForwardRouter {
            cfg: StoreForwardConfig {
                buffer_cap: cap,
                ..Default::default()
            },
        }
    }

    /// Explicit configuration.
    pub fn with_config(cfg: StoreForwardConfig) -> Self {
        StoreForwardRouter { cfg }
    }

    /// Routes `problem` with buffered store-and-forward scheduling.
    pub fn route<R: rand::Rng + ?Sized>(
        &self,
        problem: &routing_core::RoutingProblem,
        rng: &mut R,
    ) -> StoreForwardOutcome {
        hotpotato_sim::store_forward::route(problem, self.cfg, rng)
    }

    /// [`StoreForwardRouter::route`] with an event sink. Buffered queue
    /// departures map onto the hot-potato event vocabulary: a packet's
    /// first traversal reports as an injection, later ones as advances.
    pub fn route_observed<R: rand::Rng + ?Sized, O: hotpotato_sim::RouteObserver + ?Sized>(
        &self,
        problem: &routing_core::RoutingProblem,
        rng: &mut R,
        observer: &mut O,
    ) -> StoreForwardOutcome {
        hotpotato_sim::store_forward::route_observed(problem, self.cfg, rng, observer)
    }
}

impl hotpotato_sim::Router for StoreForwardRouter {
    fn name(&self) -> &'static str {
        "sf"
    }

    fn route(
        &self,
        problem: &std::sync::Arc<routing_core::RoutingProblem>,
        rng: &mut dyn rand::RngCore,
        observer: &mut dyn hotpotato_sim::RouteObserver,
    ) -> hotpotato_sim::RouteOutcome {
        let out = self.route_observed(problem, rng, observer);
        let mut stats = out.stats;
        stats.counters.insert("max_queue", out.max_queue as u64);
        stats
            .counters
            .insert("total_queue_wait", out.total_queue_wait);
        stats
            .counters
            .insert("backpressure_stalls", out.backpressure_stalls);
        hotpotato_sim::RouteOutcome {
            algorithm: "sf",
            stats,
            record: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use routing_core::workloads;
    use std::sync::Arc;

    #[test]
    fn store_forward_router_facade_routes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 12, &mut rng).unwrap();
        let fifo = StoreForwardRouter::fifo().route(&prob, &mut rng);
        assert!(fifo.stats.all_delivered());
        let rr = StoreForwardRouter::random_rank(prob.congestion() as u64).route(&prob, &mut rng);
        assert!(rr.stats.all_delivered());
    }
}
