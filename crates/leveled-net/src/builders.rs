//! Constructions of the classic topologies the paper cites as leveled
//! networks (§1.1, Figure 1): the butterfly, the mesh in its four corner
//! orientations, linear and multidimensional arrays, the hypercube, trees
//! and fat trees, plus complete and random leveled networks used as
//! synthetic stress topologies.
//!
//! Each builder assigns node identifiers in a documented deterministic
//! order, and coordinate helper types ([`ButterflyCoords`], [`MeshCoords`],
//! [`GridCoords`]) translate between identifiers and logical coordinates so
//! that path-selection strategies (bit-fixing, dimension-order) can be
//! implemented without re-deriving the layout.

use crate::ids::{Level, NodeId};
use crate::network::{LeveledNetwork, NetworkBuilder};
use rand::Rng;

/// Builds the linear array (path) with `n >= 1` nodes: node `i` at level
/// `i`, edges `i -- i+1`. Depth `L = n - 1`.
pub fn linear_array(n: usize) -> LeveledNetwork {
    assert!(n >= 1, "linear array needs at least one node");
    let mut b = NetworkBuilder::with_capacity(format!("linear({n})"), n, n.saturating_sub(1));
    let nodes: Vec<NodeId> = (0..n).map(|i| b.add_node(i as Level)).collect();
    for w in nodes.windows(2) {
        b.add_edge(w[0], w[1]).expect("consecutive levels");
    }
    b.build().expect("valid linear array")
}

/// Coordinate helper for [`butterfly`] networks.
///
/// Node identifiers are assigned level-major: the node in level `l`
/// (`0..=k`) and row `r` (`0..2^k`) has id `l * 2^k + r`.
#[derive(Clone, Copy, Debug)]
pub struct ButterflyCoords {
    /// Butterfly dimension `k`.
    pub k: u32,
}

impl ButterflyCoords {
    /// Number of rows, `2^k`.
    #[inline]
    pub fn rows(&self) -> usize {
        1usize << self.k
    }

    /// The node at `(level, row)`.
    #[inline]
    pub fn node(&self, level: Level, row: usize) -> NodeId {
        debug_assert!(level <= self.k && row < self.rows());
        NodeId((level as usize * self.rows() + row) as u32)
    }

    /// The `(level, row)` of `node`.
    #[inline]
    pub fn coords(&self, node: NodeId) -> (Level, usize) {
        let r = self.rows();
        ((node.index() / r) as Level, node.index() % r)
    }
}

/// Builds the `k`-dimensional butterfly: `(k + 1) * 2^k` nodes in levels
/// `0..=k`; node `(l, r)` connects to `(l + 1, r)` (the *straight* edge) and
/// to `(l + 1, r XOR 2^l)` (the *cross* edge, flipping bit `l`).
///
/// Depth `L = k`; every interior node has degree 4. Bit-fixing paths fix
/// source-row bits one per level, so any `(level-0 row) -> (level-k row)`
/// pair is connected by exactly one valid path.
pub fn butterfly(k: u32) -> LeveledNetwork {
    assert!(k >= 1, "butterfly dimension must be at least 1");
    assert!(k < 28, "butterfly dimension too large to simulate");
    let rows = 1usize << k;
    let coords = ButterflyCoords { k };
    let mut b = NetworkBuilder::with_capacity(
        format!("butterfly({k})"),
        (k as usize + 1) * rows,
        k as usize * rows * 2,
    );
    for l in 0..=k {
        for _ in 0..rows {
            b.add_node(l);
        }
    }
    for l in 0..k {
        for r in 0..rows {
            let here = coords.node(l, r);
            b.add_edge(here, coords.node(l + 1, r)).expect("straight");
            b.add_edge(here, coords.node(l + 1, r ^ (1 << l)))
                .expect("cross");
        }
    }
    b.build().expect("valid butterfly")
}

/// The corner of a mesh chosen as level 0.
///
/// The paper (§1.1) notes that the mesh can be viewed as a leveled network
/// in four different ways, according to which corner node is level 0. The
/// level of cell `(r, c)` is its Manhattan distance from the chosen corner,
/// and valid paths move monotonically away from it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MeshCorner {
    /// Level 0 at `(0, 0)`; forward = down or right.
    TopLeft,
    /// Level 0 at `(0, cols - 1)`; forward = down or left.
    TopRight,
    /// Level 0 at `(rows - 1, 0)`; forward = up or right.
    BottomLeft,
    /// Level 0 at `(rows - 1, cols - 1)`; forward = up or left.
    BottomRight,
}

impl MeshCorner {
    /// All four orientations, for sweeps.
    pub const ALL: [MeshCorner; 4] = [
        MeshCorner::TopLeft,
        MeshCorner::TopRight,
        MeshCorner::BottomLeft,
        MeshCorner::BottomRight,
    ];

    fn label(self) -> &'static str {
        match self {
            MeshCorner::TopLeft => "TL",
            MeshCorner::TopRight => "TR",
            MeshCorner::BottomLeft => "BL",
            MeshCorner::BottomRight => "BR",
        }
    }
}

/// Coordinate helper for [`mesh`] networks.
///
/// Node identifiers are assigned row-major: cell `(r, c)` has id
/// `r * cols + c`, regardless of the corner orientation.
#[derive(Clone, Copy, Debug)]
pub struct MeshCoords {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Which corner is level 0.
    pub corner: MeshCorner,
}

impl MeshCoords {
    /// The node at cell `(r, c)`.
    #[inline]
    pub fn node(&self, r: usize, c: usize) -> NodeId {
        debug_assert!(r < self.rows && c < self.cols);
        NodeId((r * self.cols + c) as u32)
    }

    /// The cell `(r, c)` of `node`.
    #[inline]
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        (node.index() / self.cols, node.index() % self.cols)
    }

    /// The level of cell `(r, c)`: Manhattan distance from the level-0
    /// corner.
    #[inline]
    pub fn level(&self, r: usize, c: usize) -> Level {
        let dr = match self.corner {
            MeshCorner::TopLeft | MeshCorner::TopRight => r,
            MeshCorner::BottomLeft | MeshCorner::BottomRight => self.rows - 1 - r,
        };
        let dc = match self.corner {
            MeshCorner::TopLeft | MeshCorner::BottomLeft => c,
            MeshCorner::TopRight | MeshCorner::BottomRight => self.cols - 1 - c,
        };
        (dr + dc) as Level
    }

    /// Whether `(r2, c2)` is reachable from `(r1, c1)` by a valid (forward)
    /// path in this orientation, i.e. the move is monotone away from the
    /// level-0 corner in both axes.
    pub fn reachable(&self, (r1, c1): (usize, usize), (r2, c2): (usize, usize)) -> bool {
        let row_ok = match self.corner {
            MeshCorner::TopLeft | MeshCorner::TopRight => r2 >= r1,
            MeshCorner::BottomLeft | MeshCorner::BottomRight => r2 <= r1,
        };
        let col_ok = match self.corner {
            MeshCorner::TopLeft | MeshCorner::BottomLeft => c2 >= c1,
            MeshCorner::TopRight | MeshCorner::BottomRight => c2 <= c1,
        };
        row_ok && col_ok
    }
}

/// Builds the `rows x cols` mesh, leveled by Manhattan distance from the
/// chosen `corner` (§1.1, Figure 1). Depth `L = rows + cols - 2`.
///
/// Returns the network together with a [`MeshCoords`] helper.
pub fn mesh(rows: usize, cols: usize, corner: MeshCorner) -> (LeveledNetwork, MeshCoords) {
    assert!(rows >= 1 && cols >= 1, "mesh must be non-empty");
    let coords = MeshCoords { rows, cols, corner };
    let mut b = NetworkBuilder::with_capacity(
        format!("mesh({rows}x{cols},{})", corner.label()),
        rows * cols,
        rows * cols * 2,
    );
    for r in 0..rows {
        for c in 0..cols {
            b.add_node(coords.level(r, c));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.add_edge(coords.node(r, c), coords.node(r + 1, c))
                    .expect("vertical neighbours differ by one level");
            }
            if c + 1 < cols {
                b.add_edge(coords.node(r, c), coords.node(r, c + 1))
                    .expect("horizontal neighbours differ by one level");
            }
        }
    }
    (b.build().expect("valid mesh"), coords)
}

/// Coordinate helper for [`multidim_array`] networks.
///
/// Node identifiers are assigned in mixed-radix order with the **last**
/// dimension varying fastest (row-major generalization).
#[derive(Clone, Debug)]
pub struct GridCoords {
    /// Extent of each dimension.
    pub dims: Vec<usize>,
}

impl GridCoords {
    /// The node with coordinates `coord`.
    pub fn node(&self, coord: &[usize]) -> NodeId {
        debug_assert_eq!(coord.len(), self.dims.len());
        let mut id = 0usize;
        for (x, d) in coord.iter().zip(&self.dims) {
            debug_assert!(x < d);
            id = id * d + x;
        }
        NodeId(id as u32)
    }

    /// The coordinates of `node`.
    pub fn coords(&self, node: NodeId) -> Vec<usize> {
        let mut rem = node.index();
        let mut out = vec![0usize; self.dims.len()];
        for i in (0..self.dims.len()).rev() {
            out[i] = rem % self.dims[i];
            rem /= self.dims[i];
        }
        out
    }

    /// The level of `coord`: the coordinate sum (distance from the origin
    /// corner).
    pub fn level(&self, coord: &[usize]) -> Level {
        coord.iter().sum::<usize>() as Level
    }
}

/// Builds the multidimensional array with extents `dims`, leveled by
/// coordinate sum (origin corner at level 0).
/// Depth `L = sum(dims[i] - 1)`.
///
/// `multidim_array(&[2; d])` is the `d`-dimensional hypercube leveled by
/// popcount; `multidim_array(&[r, c])` coincides with the top-left mesh.
pub fn multidim_array(dims: &[usize]) -> (LeveledNetwork, GridCoords) {
    assert!(!dims.is_empty(), "need at least one dimension");
    assert!(dims.iter().all(|&d| d >= 1), "dimensions must be positive");
    let total: usize = dims.iter().product();
    assert!(total <= (u32::MAX as usize), "grid too large");
    let coords = GridCoords {
        dims: dims.to_vec(),
    };
    let dim_str: Vec<String> = dims.iter().map(std::string::ToString::to_string).collect();
    let mut b = NetworkBuilder::with_capacity(
        format!("array({})", dim_str.join("x")),
        total,
        total * dims.len(),
    );
    let mut coord = vec![0usize; dims.len()];
    for _ in 0..total {
        b.add_node(coords.level(&coord));
        // increment mixed-radix counter (last dimension fastest)
        for i in (0..dims.len()).rev() {
            coord[i] += 1;
            if coord[i] < dims[i] {
                break;
            }
            coord[i] = 0;
        }
    }
    let mut coord = vec![0usize; dims.len()];
    for id in 0..total {
        let here = NodeId(id as u32);
        for i in 0..dims.len() {
            if coord[i] + 1 < dims[i] {
                coord[i] += 1;
                let next = coords.node(&coord);
                coord[i] -= 1;
                b.add_edge(here, next).expect("adjacent levels");
            }
        }
        for i in (0..dims.len()).rev() {
            coord[i] += 1;
            if coord[i] < dims[i] {
                break;
            }
            coord[i] = 0;
        }
    }
    (b.build().expect("valid array"), coords)
}

/// Builds the `d`-dimensional hypercube leveled by popcount (a special case
/// of [`multidim_array`] with all extents 2). Depth `L = d`.
pub fn hypercube(d: u32) -> (LeveledNetwork, GridCoords) {
    assert!((1..26).contains(&d), "hypercube dimension out of range");
    let (mut net, coords) = multidim_array(&vec![2usize; d as usize]);
    // Rename for clarity in reports.
    net = rename(net, format!("hypercube({d})"));
    (net, coords)
}

fn rename(net: LeveledNetwork, name: String) -> LeveledNetwork {
    // Rebuild with the new name; cheap relative to construction and keeps
    // `LeveledNetwork` immutable.
    let mut b = NetworkBuilder::with_capacity(name, net.num_nodes(), net.num_edges());
    for nid in net.nodes() {
        b.add_node(net.level(nid));
    }
    for eid in net.edge_ids() {
        let e = net.edge(eid);
        b.add_edge(e.tail, e.head).expect("already valid");
    }
    b.build().expect("already valid")
}

/// Builds the complete leveled network: levels `0..=depth`, each with
/// `width` nodes, complete bipartite connections between consecutive
/// levels. Node id `l * width + i` sits at level `l`.
pub fn complete_leveled(depth: Level, width: usize) -> LeveledNetwork {
    assert!(width >= 1, "width must be positive");
    let nl = depth as usize + 1;
    let mut b = NetworkBuilder::with_capacity(
        format!("complete({depth},{width})"),
        nl * width,
        depth as usize * width * width,
    );
    for l in 0..nl {
        for _ in 0..width {
            b.add_node(l as Level);
        }
    }
    for l in 0..depth as usize {
        for i in 0..width {
            for j in 0..width {
                b.add_edge(
                    NodeId((l * width + i) as u32),
                    NodeId(((l + 1) * width + j) as u32),
                )
                .expect("consecutive levels");
            }
        }
    }
    b.build().expect("valid complete leveled network")
}

/// Builds a random leveled network: level `l` gets a width drawn uniformly
/// from `width_range`, consecutive nodes are joined by a random bipartite
/// graph where each potential edge appears with probability `edge_prob`,
/// and a deterministic "spine" matching guarantees every non-sink node has
/// a forward edge and every non-source node has a backward edge (so the
/// network is routable and has no dead ends).
pub fn random_leveled<R: Rng + ?Sized>(
    depth: Level,
    width_range: std::ops::RangeInclusive<usize>,
    edge_prob: f64,
    rng: &mut R,
) -> LeveledNetwork {
    assert!(*width_range.start() >= 1, "levels must be non-empty");
    assert!((0.0..=1.0).contains(&edge_prob), "probability out of range");
    let widths: Vec<usize> = (0..=depth)
        .map(|_| rng.gen_range(width_range.clone()))
        .collect();
    let mut b = NetworkBuilder::new(format!("random(L={depth})"));
    let mut level_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(widths.len());
    for (l, &w) in widths.iter().enumerate() {
        level_nodes.push((0..w).map(|_| b.add_node(l as Level)).collect());
    }
    for l in 0..depth as usize {
        let (lo, hi) = (&level_nodes[l], &level_nodes[l + 1]);
        let mut connected_lo = vec![false; lo.len()];
        let mut connected_hi = vec![false; hi.len()];
        for (i, &u) in lo.iter().enumerate() {
            for (j, &v) in hi.iter().enumerate() {
                if rng.gen_bool(edge_prob) {
                    b.add_edge(u, v).expect("consecutive levels");
                    connected_lo[i] = true;
                    connected_hi[j] = true;
                }
            }
        }
        // Spine: ensure no dead ends in either direction.
        let m = lo.len().max(hi.len());
        for x in 0..m {
            let i = x % lo.len();
            let j = x % hi.len();
            if !connected_lo[i] || !connected_hi[j] {
                b.add_edge(lo[i], hi[j]).expect("consecutive levels");
                connected_lo[i] = true;
                connected_hi[j] = true;
            }
        }
    }
    b.build().expect("valid random leveled network")
}

/// Builds the complete binary tree of the given `height`, rooted at level 0
/// (leaves at level `height`). Node ids follow heap order: the root is 0
/// and node `i` has children `2i + 1` and `2i + 2`. Depth `L = height`.
pub fn binary_tree(height: Level) -> LeveledNetwork {
    let n = (1usize << (height + 1)) - 1;
    let mut b = NetworkBuilder::with_capacity(format!("btree({height})"), n, n - 1);
    for i in 0..n {
        let level = usize::BITS - 1 - (i + 1).leading_zeros();
        b.add_node(level);
    }
    for i in 0..n {
        let l = 2 * i + 1;
        let r = 2 * i + 2;
        if l < n {
            b.add_edge(NodeId(i as u32), NodeId(l as u32)).unwrap();
        }
        if r < n {
            b.add_edge(NodeId(i as u32), NodeId(r as u32)).unwrap();
        }
    }
    b.build().expect("valid binary tree")
}

/// Builds a fat tree of the given `height`: the complete binary tree where
/// the link between a depth-`d` node and its child is replicated
/// `min(2^(height - 1 - d), max_parallel)` times, so capacity grows toward
/// the root as in Leiserson's fat trees. Node ids follow heap order as in
/// [`binary_tree`].
pub fn fat_tree(height: Level, max_parallel: usize) -> LeveledNetwork {
    assert!(max_parallel >= 1, "need at least one parallel edge");
    let n = (1usize << (height + 1)) - 1;
    let mut b = NetworkBuilder::new(format!("fattree({height},{max_parallel})"));
    for i in 0..n {
        let level = usize::BITS - 1 - (i + 1).leading_zeros();
        b.add_node(level);
    }
    for i in 0..n {
        let depth = usize::BITS - 1 - (i + 1).leading_zeros();
        let copies = if height == 0 {
            1
        } else {
            (1usize << (height - 1).saturating_sub(depth)).min(max_parallel)
        };
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                for _ in 0..copies {
                    b.add_edge(NodeId(i as u32), NodeId(child as u32)).unwrap();
                }
            }
        }
    }
    b.build().expect("valid fat tree")
}

/// Coordinate helper for rectangular layered networks (`levels x rows`
/// node grids) such as [`benes`]. Node id = `level * rows + row`.
#[derive(Clone, Copy, Debug)]
pub struct LayeredCoords {
    /// Number of levels (`L + 1`).
    pub levels: u32,
    /// Nodes per level.
    pub rows: usize,
}

impl LayeredCoords {
    /// The node at `(level, row)`.
    #[inline]
    pub fn node(&self, level: Level, row: usize) -> NodeId {
        debug_assert!(level < self.levels && row < self.rows);
        NodeId((level as usize * self.rows + row) as u32)
    }

    /// The `(level, row)` of `node`.
    #[inline]
    pub fn coords(&self, node: NodeId) -> (Level, usize) {
        (
            (node.index() / self.rows) as Level,
            node.index() % self.rows,
        )
    }
}

/// Builds the `k`-dimensional Beneš network: a butterfly followed by its
/// mirror image — levels `0..=2k`, each with `2^k` nodes. Level `l < k`
/// crosses bit `l` (as in [`butterfly`]); level `l >= k` crosses bit
/// `2k - 1 - l`, undoing the first half. The Beneš network is
/// *rearrangeable*: every permutation is routable with edge congestion 1.
/// Depth `L = 2k`.
pub fn benes(k: u32) -> (LeveledNetwork, LayeredCoords) {
    assert!((1..27).contains(&k), "Beneš dimension out of range");
    let rows = 1usize << k;
    let coords = LayeredCoords {
        levels: 2 * k + 1,
        rows,
    };
    let mut b = NetworkBuilder::with_capacity(
        format!("benes({k})"),
        (2 * k as usize + 1) * rows,
        2 * k as usize * rows * 2,
    );
    for l in 0..=(2 * k) {
        for _ in 0..rows {
            b.add_node(l);
        }
    }
    for l in 0..(2 * k) {
        let bit = if l < k { l } else { 2 * k - 1 - l };
        for r in 0..rows {
            let here = coords.node(l, r);
            b.add_edge(here, coords.node(l + 1, r)).expect("straight");
            b.add_edge(here, coords.node(l + 1, r ^ (1 << bit)))
                .expect("cross");
        }
    }
    (b.build().expect("valid Beneš network"), coords)
}

/// Builds the unrolled (leveled) shuffle-exchange network of dimension `k`:
/// levels `0..=k`, each with `2^k` nodes; node `(l, r)` connects to
/// `(l + 1, rot(r))` and `(l + 1, rot(r) XOR 1)` where `rot` is a cyclic
/// left rotation of the `k`-bit row index. Node ids are level-major as in
/// [`butterfly`], and [`ButterflyCoords`] applies.
pub fn shuffle_exchange_unrolled(k: u32) -> LeveledNetwork {
    assert!((1..28).contains(&k), "dimension out of range");
    let rows = 1usize << k;
    let coords = ButterflyCoords { k };
    let rot = |r: usize| -> usize { ((r << 1) | (r >> (k - 1))) & (rows - 1) };
    let mut b = NetworkBuilder::with_capacity(
        format!("shuffle-exchange({k})"),
        (k as usize + 1) * rows,
        k as usize * rows * 2,
    );
    for l in 0..=k {
        for _ in 0..rows {
            b.add_node(l);
        }
    }
    for l in 0..k {
        for r in 0..rows {
            let here = coords.node(l, r);
            b.add_edge(here, coords.node(l + 1, rot(r))).unwrap();
            b.add_edge(here, coords.node(l + 1, rot(r) ^ 1)).unwrap();
        }
    }
    b.build().expect("valid shuffle-exchange")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn linear_array_shape() {
        let net = linear_array(5);
        assert_eq!(net.num_nodes(), 5);
        assert_eq!(net.num_edges(), 4);
        assert_eq!(net.depth(), 4);
        assert_eq!(net.level_widths(), vec![1; 5]);
        net.validate().unwrap();
    }

    #[test]
    fn linear_array_single_node() {
        let net = linear_array(1);
        assert_eq!(net.depth(), 0);
        assert_eq!(net.num_edges(), 0);
        net.validate().unwrap();
    }

    #[test]
    fn butterfly_counts() {
        for k in 1..=6u32 {
            let net = butterfly(k);
            let rows = 1usize << k;
            assert_eq!(net.num_nodes(), (k as usize + 1) * rows, "k={k}");
            assert_eq!(net.num_edges(), k as usize * rows * 2, "k={k}");
            assert_eq!(net.depth(), k);
            net.validate().unwrap();
        }
    }

    #[test]
    fn butterfly_cross_edges_flip_level_bit() {
        let k = 4;
        let net = butterfly(k);
        let c = ButterflyCoords { k };
        for l in 0..k {
            for r in 0..c.rows() {
                let here = c.node(l, r);
                let heads: Vec<usize> = net
                    .fwd_edges(here)
                    .iter()
                    .map(|&e| c.coords(net.edge(e).head).1)
                    .collect();
                assert!(heads.contains(&r), "straight edge present");
                assert!(heads.contains(&(r ^ (1 << l))), "cross edge flips bit l");
            }
        }
    }

    #[test]
    fn butterfly_unique_path_between_extreme_rows() {
        // In a butterfly there is exactly one valid path from any level-0
        // node to any level-k node.
        let k = 3;
        let net = butterfly(k);
        let c = ButterflyCoords { k };
        // Count paths by forward DP.
        let src = c.node(0, 5);
        let mut count = vec![0u64; net.num_nodes()];
        count[src.index()] = 1;
        for l in 0..k {
            for r in 0..c.rows() {
                let v = c.node(l, r);
                let cv = count[v.index()];
                if cv > 0 {
                    for &e in net.fwd_edges(v) {
                        count[net.edge(e).head.index()] += cv;
                    }
                }
            }
        }
        for r in 0..c.rows() {
            assert_eq!(count[c.node(k, r).index()], 1, "row {r}");
        }
    }

    #[test]
    fn mesh_shapes_for_all_corners() {
        for corner in MeshCorner::ALL {
            let (net, coords) = mesh(3, 4, corner);
            assert_eq!(net.num_nodes(), 12);
            assert_eq!(net.num_edges(), 3 * 3 + 2 * 4); // vertical + horizontal
            assert_eq!(net.depth(), 5);
            net.validate().unwrap();
            // Exactly one node at level 0 (the corner) and one at level L.
            assert_eq!(net.nodes_at_level(0).len(), 1);
            assert_eq!(net.nodes_at_level(net.depth()).len(), 1);
            // Level-0 node is at the right corner.
            let zero = net.nodes_at_level(0)[0];
            let (r, c) = coords.coords(zero);
            assert_eq!(coords.level(r, c), 0);
        }
    }

    #[test]
    fn mesh_corner_levels() {
        let (_, tl) = mesh(3, 3, MeshCorner::TopLeft);
        assert_eq!(tl.level(0, 0), 0);
        assert_eq!(tl.level(2, 2), 4);
        let (_, br) = mesh(3, 3, MeshCorner::BottomRight);
        assert_eq!(br.level(2, 2), 0);
        assert_eq!(br.level(0, 0), 4);
        let (_, tr) = mesh(3, 3, MeshCorner::TopRight);
        assert_eq!(tr.level(0, 2), 0);
        assert_eq!(tr.level(2, 0), 4);
        let (_, bl) = mesh(3, 3, MeshCorner::BottomLeft);
        assert_eq!(bl.level(2, 0), 0);
        assert_eq!(bl.level(0, 2), 4);
    }

    #[test]
    fn mesh_reachability_is_monotone() {
        let (net, coords) = mesh(4, 4, MeshCorner::TopLeft);
        assert!(coords.reachable((1, 1), (3, 2)));
        assert!(!coords.reachable((1, 1), (0, 2)));
        // Cross-check against graph reachability.
        let mask = net.reachable_mask(coords.node(1, 1));
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(
                    mask[coords.node(r, c).index()],
                    coords.reachable((1, 1), (r, c)),
                    "cell ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn mesh_diagonal_level_widths() {
        let (net, _) = mesh(4, 4, MeshCorner::TopLeft);
        assert_eq!(net.level_widths(), vec![1, 2, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn multidim_array_matches_mesh() {
        let (grid, gc) = multidim_array(&[3, 4]);
        let (m, _) = mesh(3, 4, MeshCorner::TopLeft);
        assert_eq!(grid.num_nodes(), m.num_nodes());
        assert_eq!(grid.num_edges(), m.num_edges());
        assert_eq!(grid.depth(), m.depth());
        assert_eq!(gc.node(&[2, 3]), NodeId(11));
        assert_eq!(gc.coords(NodeId(11)), vec![2, 3]);
    }

    #[test]
    fn hypercube_levels_are_popcounts() {
        let (net, gc) = hypercube(4);
        assert_eq!(net.num_nodes(), 16);
        assert_eq!(net.num_edges(), 32); // d * 2^(d-1)
        assert_eq!(net.depth(), 4);
        for nid in net.nodes() {
            let pop: usize = gc.coords(nid).iter().sum();
            assert_eq!(net.level(nid), pop as Level);
        }
        net.validate().unwrap();
    }

    #[test]
    fn complete_leveled_counts() {
        let net = complete_leveled(3, 4);
        assert_eq!(net.num_nodes(), 16);
        assert_eq!(net.num_edges(), 3 * 16);
        assert_eq!(net.depth(), 3);
        for nid in net.nodes() {
            let l = net.level(nid);
            let fwd = if l < 3 { 4 } else { 0 };
            let bwd = if l > 0 { 4 } else { 0 };
            assert_eq!(net.fwd_edges(nid).len(), fwd);
            assert_eq!(net.bwd_edges(nid).len(), bwd);
        }
    }

    #[test]
    fn random_leveled_has_no_dead_ends() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for _ in 0..10 {
            let net = random_leveled(8, 2..=6, 0.3, &mut rng);
            net.validate().unwrap();
            for nid in net.nodes() {
                let l = net.level(nid);
                if l < net.depth() {
                    assert!(!net.fwd_edges(nid).is_empty(), "dead end at {nid}");
                }
                if l > 0 {
                    assert!(!net.bwd_edges(nid).is_empty(), "unreachable {nid}");
                }
            }
        }
    }

    #[test]
    fn random_leveled_zero_prob_still_routable() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let net = random_leveled(5, 1..=4, 0.0, &mut rng);
        net.validate().unwrap();
        for nid in net.nodes() {
            if net.level(nid) < net.depth() {
                assert!(!net.fwd_edges(nid).is_empty());
            }
        }
    }

    #[test]
    fn binary_tree_shape() {
        let net = binary_tree(3);
        assert_eq!(net.num_nodes(), 15);
        assert_eq!(net.num_edges(), 14);
        assert_eq!(net.depth(), 3);
        assert_eq!(net.level_widths(), vec![1, 2, 4, 8]);
        net.validate().unwrap();
    }

    #[test]
    fn fat_tree_capacity_grows_toward_root() {
        let net = fat_tree(3, 8);
        net.validate().unwrap();
        // Root (level 0) to each child: 2^(3-1-0) = 4 parallel edges.
        let root = NodeId(0);
        assert_eq!(net.fwd_edges(root).len(), 8); // two children x 4 copies
                                                  // A leaf's parent link: 2^(3-1-2) = 1 copy.
        let leaf_parent_level = 2u32;
        let some_l2 = net.nodes_at_level(leaf_parent_level)[0];
        assert_eq!(net.fwd_edges(some_l2).len(), 2); // two children x 1 copy
    }

    #[test]
    fn fat_tree_respects_max_parallel() {
        let net = fat_tree(4, 2);
        let root = NodeId(0);
        assert_eq!(net.fwd_edges(root).len(), 4); // two children x min(8, 2)
    }

    #[test]
    fn benes_shape() {
        for k in 1..=4u32 {
            let (net, coords) = benes(k);
            let rows = 1usize << k;
            assert_eq!(net.num_nodes(), (2 * k as usize + 1) * rows, "k={k}");
            assert_eq!(net.num_edges(), 2 * k as usize * rows * 2, "k={k}");
            assert_eq!(net.depth(), 2 * k);
            net.validate().unwrap();
            let (l, r) = coords.coords(coords.node(k, rows - 1));
            assert_eq!((l, r), (k, rows - 1));
        }
    }

    #[test]
    fn benes_connects_all_input_output_pairs_with_many_paths() {
        // Rearrangeability implies full connectivity; path counts between
        // any (input, output) pair are equal (2^k through the full Beneš).
        let k = 3;
        let (net, coords) = benes(k);
        let rows = 1usize << k;
        for sr in [0usize, 3, 7] {
            for dr in [0usize, 5, 7] {
                let n = crate_count_paths(&net, coords.node(0, sr), coords.node(2 * k, dr));
                assert_eq!(n, rows as f64, "sr={sr} dr={dr}");
            }
        }
    }

    /// Local forward path-count DP (mirror of routing-core's count_paths,
    /// inlined here to avoid a dev-dependency cycle).
    fn crate_count_paths(net: &LeveledNetwork, src: NodeId, dst: NodeId) -> f64 {
        let mut count = vec![0.0f64; net.num_nodes()];
        count[dst.index()] = 1.0;
        let (sl, dl) = (net.level(src), net.level(dst));
        for l in (sl..dl).rev() {
            for &v in net.nodes_at_level(l) {
                let mut c = 0.0;
                for &e in net.fwd_edges(v) {
                    c += count[net.edge(e).head.index()];
                }
                count[v.index()] = c;
            }
        }
        count[src.index()]
    }

    #[test]
    fn benes_mirror_symmetry() {
        // Level l and level 2k-1-l cross the same bit.
        let k = 3;
        let (net, coords) = benes(k);
        for l in 0..k {
            let mirror = 2 * k - 1 - l;
            for r in 0..coords.rows {
                let heads_a: std::collections::BTreeSet<usize> = net
                    .fwd_edges(coords.node(l, r))
                    .iter()
                    .map(|&e| coords.coords(net.edge(e).head).1)
                    .collect();
                let heads_b: std::collections::BTreeSet<usize> = net
                    .fwd_edges(coords.node(mirror, r))
                    .iter()
                    .map(|&e| coords.coords(net.edge(e).head).1)
                    .collect();
                assert_eq!(heads_a, heads_b, "l={l} r={r}");
            }
        }
    }

    #[test]
    fn shuffle_exchange_shape() {
        let net = shuffle_exchange_unrolled(3);
        assert_eq!(net.num_nodes(), 4 * 8);
        assert_eq!(net.num_edges(), 3 * 16);
        assert_eq!(net.depth(), 3);
        net.validate().unwrap();
        // Every level-k row is reachable from row 0 at level 0.
        let c = ButterflyCoords { k: 3 };
        let mask = net.reachable_mask(c.node(0, 0));
        for r in 0..8 {
            assert!(mask[c.node(3, r).index()], "row {r} reachable");
        }
    }
}
