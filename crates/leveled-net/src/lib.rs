//! Leveled-network substrate for hot-potato routing.
//!
//! A *leveled network* of depth `L` (Busch, SPAA 2002, §1.1) consists of
//! `L + 1` levels of nodes, numbered `0..=L`, such that every node belongs to
//! exactly one level and every edge connects nodes in *consecutive* levels.
//! Edges are oriented from the lower level to the higher level (`tail` at
//! level `l`, `head` at level `l + 1`), but during routing they are used in
//! both directions: at any time step at most two packets can traverse a link,
//! one per direction.
//!
//! This crate provides:
//!
//! * [`LeveledNetwork`] — an immutable, validated leveled network with
//!   CSR-style forward/backward adjacency,
//! * [`NetworkBuilder`] — an incremental builder that checks the leveling
//!   constraints,
//! * [`builders`] — the classic multiprocessor topologies the paper lists as
//!   leveled networks (butterfly, mesh in its four corner orientations,
//!   linear and multidimensional arrays, hypercube, trees and fat trees,
//!   complete and random leveled networks),
//! * [`render`] — textual/DOT renderings used to regenerate Figure 1.
//!
//! # Example
//!
//! ```
//! use leveled_net::builders;
//!
//! let net = builders::butterfly(3);
//! assert_eq!(net.depth(), 3);            // levels 0..=3
//! assert_eq!(net.num_nodes(), 4 * 8);    // (k+1) * 2^k
//! assert_eq!(net.num_edges(), 3 * 16);   // k * 2^(k+1)
//! net.validate().unwrap();
//! ```

pub mod builders;
pub mod ids;
pub mod levelize;
pub mod network;
pub mod render;

pub use ids::{Direction, EdgeId, Level, NodeId};
pub use levelize::{levelize, Dag, LevelizeError, Levelized};
pub use network::{Edge, LeveledNetwork, NetworkBuilder, NetworkError};
