//! Compact identifier types for nodes, edges, and traversal directions.
//!
//! Nodes and edges are identified by dense `u32` indices so that adjacency
//! and per-entity state can live in flat arrays. `u32` keeps hot simulator
//! structures half the size of `usize` indices on 64-bit targets (networks
//! with more than 2³² nodes are far beyond the simulated scales).

use std::fmt;

/// A level number in a leveled network (`0..=L`).
pub type Level = u32;

/// Dense identifier of a node in a [`crate::LeveledNetwork`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Dense identifier of an edge in a [`crate::LeveledNetwork`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    #[inline]
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The direction in which an edge is traversed.
///
/// Edges are *oriented* tail → head (lower level → higher level), but
/// hot-potato routing uses them in both directions: a `Forward` traversal
/// moves a packet one level up, a `Backward` traversal one level down
/// (a *backward deflection* in the paper's terminology).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Tail → head: from level `l` to level `l + 1`.
    Forward,
    /// Head → tail: from level `l + 1` to level `l`.
    Backward,
}

impl Direction {
    /// The opposite traversal direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }

    /// Index 0 for forward, 1 for backward — used to address the two
    /// per-step capacity slots of an edge.
    #[inline]
    pub fn slot(self) -> usize {
        match self {
            Direction::Forward => 0,
            Direction::Backward => 1,
        }
    }
}

/// A directed traversal of an edge: the atomic unit of packet movement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DirectedEdge {
    /// The edge being traversed.
    pub edge: EdgeId,
    /// The traversal direction.
    pub dir: Direction,
}

impl DirectedEdge {
    /// Forward traversal of `edge`.
    #[inline]
    pub fn forward(edge: EdgeId) -> Self {
        DirectedEdge {
            edge,
            dir: Direction::Forward,
        }
    }

    /// Backward traversal of `edge`.
    #[inline]
    pub fn backward(edge: EdgeId) -> Self {
        DirectedEdge {
            edge,
            dir: Direction::Backward,
        }
    }

    /// The same edge traversed in the opposite direction.
    #[inline]
    pub fn reversed(self) -> Self {
        DirectedEdge {
            edge: self.edge,
            dir: self.dir.reverse(),
        }
    }

    /// Index into a `2 * num_edges` slot table (forward slots first).
    #[inline]
    pub fn slot_index(self) -> usize {
        self.edge.index() * 2 + self.dir.slot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_format() {
        let n = NodeId(7);
        let e = EdgeId(11);
        assert_eq!(n.index(), 7);
        assert_eq!(e.index(), 11);
        assert_eq!(format!("{n}"), "n7");
        assert_eq!(format!("{e:?}"), "e11");
        assert_eq!(NodeId::from(7u32), n);
        assert_eq!(EdgeId::from(11u32), e);
    }

    #[test]
    fn direction_reverse_is_involution() {
        assert_eq!(Direction::Forward.reverse(), Direction::Backward);
        assert_eq!(Direction::Backward.reverse(), Direction::Forward);
        assert_eq!(Direction::Forward.reverse().reverse(), Direction::Forward);
    }

    #[test]
    fn directed_edge_slots_are_distinct_per_direction() {
        let f = DirectedEdge::forward(EdgeId(3));
        let b = DirectedEdge::backward(EdgeId(3));
        assert_ne!(f.slot_index(), b.slot_index());
        assert_eq!(f.slot_index(), 6);
        assert_eq!(b.slot_index(), 7);
        assert_eq!(f.reversed(), b);
        assert_eq!(b.reversed(), f);
    }
}
