//! Textual renderings of leveled networks.
//!
//! These power the Figure 1 reproduction (`tables -- f1`): a compact
//! per-level summary, an ASCII sketch of the level structure, and Graphviz
//! DOT output for small instances.

use crate::network::LeveledNetwork;
use std::fmt::Write as _;

/// One line per level: level number, node count, and edge count to the next
/// level — the "leveled decomposition" of Figure 1.
pub fn level_summary(net: &LeveledNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} nodes, {} edges, depth L = {}",
        net.name(),
        net.num_nodes(),
        net.num_edges(),
        net.depth()
    );
    let mut edges_from_level = vec![0usize; net.num_levels()];
    for e in net.edge_ids() {
        let tail = net.edge(e).tail;
        edges_from_level[net.level(tail) as usize] += 1;
    }
    for l in 0..=net.depth() {
        let width = net.nodes_at_level(l).len();
        if l < net.depth() {
            let _ = writeln!(
                out,
                "  level {l:>3}: {width:>6} nodes, {:>7} edges to level {}",
                edges_from_level[l as usize],
                l + 1
            );
        } else {
            let _ = writeln!(out, "  level {l:>3}: {width:>6} nodes");
        }
    }
    out
}

/// A one-line histogram of level widths, e.g. `1 2 3 4 3 2 1` for a 4x4
/// mesh leveled from a corner.
pub fn width_profile(net: &LeveledNetwork) -> String {
    net.level_widths()
        .iter()
        .map(std::string::ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Graphviz DOT output with nodes ranked by level. Intended for small
/// networks (a few hundred nodes).
pub fn to_dot(net: &LeveledNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", net.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for l in 0..=net.depth() {
        let _ = write!(out, "  {{ rank=same;");
        for n in net.nodes_at_level(l) {
            let _ = write!(out, " {};", n.0);
        }
        let _ = writeln!(out, " }}");
    }
    for e in net.edge_ids() {
        let edge = net.edge(e);
        let _ = writeln!(out, "  {} -> {};", edge.tail.0, edge.head.0);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn summary_mentions_every_level() {
        let net = builders::linear_array(4);
        let s = level_summary(&net);
        for l in 0..=3 {
            assert!(
                s.contains(&format!("level   {l}")),
                "missing level {l}:\n{s}"
            );
        }
        assert!(s.contains("depth L = 3"));
    }

    #[test]
    fn width_profile_matches_mesh_diagonals() {
        let (net, _) = builders::mesh(3, 3, builders::MeshCorner::TopLeft);
        assert_eq!(width_profile(&net), "1 2 3 2 1");
    }

    #[test]
    fn dot_output_is_well_formed() {
        let net = builders::butterfly(2);
        let dot = to_dot(&net);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        // One arrow per edge.
        assert_eq!(dot.matches(" -> ").count(), net.num_edges());
        // One rank group per level.
        assert_eq!(dot.matches("rank=same").count(), net.num_levels());
    }
}
