//! The [`LeveledNetwork`] graph type and its builder.
//!
//! The network is immutable after construction. Adjacency is stored in two
//! CSR (compressed sparse row) tables:
//!
//! * `fwd` — for each node `v`, the edges whose *tail* is `v` (traversing
//!   them forward moves a packet from `level(v)` to `level(v) + 1`);
//! * `bwd` — for each node `v`, the edges whose *head* is `v` (traversing
//!   them backward moves a packet from `level(v)` to `level(v) - 1`).
//!
//! Parallel edges are permitted (they arise naturally in fat trees); self
//! loops and intra-level edges are not, by definition of a leveled network.

use crate::ids::{DirectedEdge, Direction, EdgeId, Level, NodeId};

/// An edge of a leveled network, oriented from the lower level (`tail`) to
/// the higher level (`head`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Endpoint at level `l`.
    pub tail: NodeId,
    /// Endpoint at level `l + 1`.
    pub head: NodeId,
}

impl Edge {
    /// The endpoint reached when traversing the edge in `dir` starting from
    /// the other endpoint.
    #[inline]
    pub fn endpoint(&self, dir: Direction) -> NodeId {
        match dir {
            Direction::Forward => self.head,
            Direction::Backward => self.tail,
        }
    }

    /// The endpoint opposite to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of the edge.
    #[inline]
    pub fn other(&self, node: NodeId) -> NodeId {
        if node == self.tail {
            self.head
        } else {
            assert_eq!(node, self.head, "node is not an endpoint of this edge");
            self.tail
        }
    }
}

/// Errors detected while building or validating a leveled network.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetworkError {
    /// An edge's endpoints are not in consecutive levels.
    NotConsecutiveLevels {
        /// Offending edge.
        edge: EdgeId,
        /// Level of the edge's tail.
        tail_level: Level,
        /// Level of the edge's head.
        head_level: Level,
    },
    /// A node identifier was out of range.
    UnknownNode(NodeId),
    /// Some level in `0..=L` contains no nodes.
    EmptyLevel(Level),
    /// The network has no nodes at all.
    Empty,
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::NotConsecutiveLevels {
                edge,
                tail_level,
                head_level,
            } => write!(
                f,
                "edge {edge} connects levels {tail_level} and {head_level}, \
                 which are not consecutive"
            ),
            NetworkError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetworkError::EmptyLevel(l) => write!(f, "level {l} contains no nodes"),
            NetworkError::Empty => write!(f, "the network has no nodes"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A validated, immutable leveled network.
#[derive(Clone, Debug)]
pub struct LeveledNetwork {
    name: String,
    level_of: Vec<Level>,
    edges: Vec<Edge>,
    /// CSR offsets/targets: edges with tail == node.
    fwd_off: Vec<u32>,
    fwd_edges: Vec<EdgeId>,
    /// CSR offsets/targets: edges with head == node.
    bwd_off: Vec<u32>,
    bwd_edges: Vec<EdgeId>,
    /// Nodes grouped by level (CSR).
    lvl_off: Vec<u32>,
    lvl_nodes: Vec<NodeId>,
    depth: Level,
}

impl LeveledNetwork {
    /// A short human-readable name of the topology (e.g. `"butterfly(5)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.level_of.len()
    }

    /// Number of (undirected, oriented) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The depth `L`: levels are numbered `0..=L`.
    #[inline]
    pub fn depth(&self) -> Level {
        self.depth
    }

    /// Number of levels, `L + 1`.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.depth as usize + 1
    }

    /// The level of `node`.
    #[inline]
    pub fn level(&self, node: NodeId) -> Level {
        self.level_of[node.index()]
    }

    /// The edge record for `edge`.
    #[inline]
    pub fn edge(&self, edge: EdgeId) -> Edge {
        self.edges[edge.index()]
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.level_of.len() as u32).map(NodeId)
    }

    /// Iterator over all edge identifiers.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// The nodes at `level`.
    #[inline]
    pub fn nodes_at_level(&self, level: Level) -> &[NodeId] {
        let l = level as usize;
        let lo = self.lvl_off[l] as usize;
        let hi = self.lvl_off[l + 1] as usize;
        &self.lvl_nodes[lo..hi]
    }

    /// Edges leaving `node` forward (to level `level(node) + 1`).
    #[inline]
    pub fn fwd_edges(&self, node: NodeId) -> &[EdgeId] {
        let i = node.index();
        let lo = self.fwd_off[i] as usize;
        let hi = self.fwd_off[i + 1] as usize;
        &self.fwd_edges[lo..hi]
    }

    /// Edges leaving `node` backward (to level `level(node) - 1`).
    #[inline]
    pub fn bwd_edges(&self, node: NodeId) -> &[EdgeId] {
        let i = node.index();
        let lo = self.bwd_off[i] as usize;
        let hi = self.bwd_off[i + 1] as usize;
        &self.bwd_edges[lo..hi]
    }

    /// Total degree of `node` (forward plus backward incident edges).
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.fwd_edges(node).len() + self.bwd_edges(node).len()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|n| self.degree(n)).max().unwrap_or(0)
    }

    /// The node reached from `from` by the directed traversal `mv`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `from` is not the origin of `mv`.
    #[inline]
    pub fn traverse(&self, from: NodeId, mv: DirectedEdge) -> NodeId {
        let e = self.edge(mv.edge);
        debug_assert_eq!(
            self.move_origin(mv),
            from,
            "traversal does not start at `from`"
        );
        e.endpoint(mv.dir)
    }

    /// The node a directed traversal starts from.
    #[inline]
    pub fn move_origin(&self, mv: DirectedEdge) -> NodeId {
        let e = self.edge(mv.edge);
        match mv.dir {
            Direction::Forward => e.tail,
            Direction::Backward => e.head,
        }
    }

    /// The node a directed traversal arrives at.
    #[inline]
    pub fn move_target(&self, mv: DirectedEdge) -> NodeId {
        self.edge(mv.edge).endpoint(mv.dir)
    }

    /// All directed traversals leaving `node` (forward edges forward,
    /// backward edges backward).
    pub fn exits(&self, node: NodeId) -> impl Iterator<Item = DirectedEdge> + '_ {
        self.fwd_edges(node)
            .iter()
            .map(|&e| DirectedEdge::forward(e))
            .chain(
                self.bwd_edges(node)
                    .iter()
                    .map(|&e| DirectedEdge::backward(e)),
            )
    }

    /// Re-checks every structural invariant of the leveled network.
    ///
    /// Construction already enforces these; `validate` exists so tests and
    /// downstream code can assert the invariants on arbitrary instances.
    pub fn validate(&self) -> Result<(), NetworkError> {
        if self.level_of.is_empty() {
            return Err(NetworkError::Empty);
        }
        for (i, e) in self.edges.iter().enumerate() {
            let lt = self.level(e.tail);
            let lh = self.level(e.head);
            if lh != lt + 1 {
                return Err(NetworkError::NotConsecutiveLevels {
                    edge: EdgeId(i as u32),
                    tail_level: lt,
                    head_level: lh,
                });
            }
        }
        for l in 0..=self.depth {
            if self.nodes_at_level(l).is_empty() {
                return Err(NetworkError::EmptyLevel(l));
            }
        }
        Ok(())
    }

    /// Per-level node counts (the "width profile" of the network).
    pub fn level_widths(&self) -> Vec<usize> {
        (0..=self.depth)
            .map(|l| self.nodes_at_level(l).len())
            .collect()
    }

    /// The set of nodes that can reach `dest` by a valid (forward) path,
    /// including `dest` itself, as a boolean mask indexed by node.
    ///
    /// Computed by a backward sweep from `dest`; `O(V + E)`.
    pub fn reaches_mask(&self, dest: NodeId) -> Vec<bool> {
        let mut mask = vec![false; self.num_nodes()];
        mask[dest.index()] = true;
        let mut frontier = vec![dest];
        while let Some(v) = frontier.pop() {
            for &e in self.bwd_edges(v) {
                let u = self.edge(e).tail;
                if !mask[u.index()] {
                    mask[u.index()] = true;
                    frontier.push(u);
                }
            }
        }
        mask
    }

    /// The set of nodes reachable from `src` by a valid (forward) path,
    /// including `src` itself, as a boolean mask indexed by node.
    pub fn reachable_mask(&self, src: NodeId) -> Vec<bool> {
        let mut mask = vec![false; self.num_nodes()];
        mask[src.index()] = true;
        let mut frontier = vec![src];
        while let Some(v) = frontier.pop() {
            for &e in self.fwd_edges(v) {
                let w = self.edge(e).head;
                if !mask[w.index()] {
                    mask[w.index()] = true;
                    frontier.push(w);
                }
            }
        }
        mask
    }
}

/// Incremental builder for [`LeveledNetwork`].
///
/// ```
/// use leveled_net::{NetworkBuilder, NodeId};
///
/// let mut b = NetworkBuilder::new("tiny");
/// let a = b.add_node(0);
/// let c = b.add_node(1);
/// b.add_edge(a, c).unwrap();
/// let net = b.build().unwrap();
/// assert_eq!(net.depth(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    name: String,
    level_of: Vec<Level>,
    edges: Vec<Edge>,
}

impl NetworkBuilder {
    /// Creates an empty builder; `name` labels the resulting topology.
    pub fn new(name: impl Into<String>) -> Self {
        NetworkBuilder {
            name: name.into(),
            level_of: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Creates an empty builder with node/edge capacity hints.
    pub fn with_capacity(name: impl Into<String>, nodes: usize, edges: usize) -> Self {
        NetworkBuilder {
            name: name.into(),
            level_of: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a node at `level` and returns its identifier.
    pub fn add_node(&mut self, level: Level) -> NodeId {
        let id = NodeId(self.level_of.len() as u32);
        self.level_of.push(level);
        id
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.level_of.len()
    }

    /// Adds an edge between `a` and `b`, which must lie in consecutive
    /// levels (in either order); the edge is oriented low → high.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<EdgeId, NetworkError> {
        let la = *self
            .level_of
            .get(a.index())
            .ok_or(NetworkError::UnknownNode(a))?;
        let lb = *self
            .level_of
            .get(b.index())
            .ok_or(NetworkError::UnknownNode(b))?;
        let id = EdgeId(self.edges.len() as u32);
        let edge = if lb == la + 1 {
            Edge { tail: a, head: b }
        } else if la == lb + 1 {
            Edge { tail: b, head: a }
        } else {
            return Err(NetworkError::NotConsecutiveLevels {
                edge: id,
                tail_level: la,
                head_level: lb,
            });
        };
        self.edges.push(edge);
        Ok(id)
    }

    /// Finalizes the network, computing adjacency tables and validating
    /// that every level `0..=L` is non-empty.
    pub fn build(self) -> Result<LeveledNetwork, NetworkError> {
        if self.level_of.is_empty() {
            return Err(NetworkError::Empty);
        }
        let n = self.level_of.len();
        let depth = *self.level_of.iter().max().expect("non-empty");

        // Forward CSR (by tail) and backward CSR (by head), via counting sort.
        let mut fwd_off = vec![0u32; n + 1];
        let mut bwd_off = vec![0u32; n + 1];
        for e in &self.edges {
            fwd_off[e.tail.index() + 1] += 1;
            bwd_off[e.head.index() + 1] += 1;
        }
        for i in 0..n {
            fwd_off[i + 1] += fwd_off[i];
            bwd_off[i + 1] += bwd_off[i];
        }
        let mut fwd_edges = vec![EdgeId(0); self.edges.len()];
        let mut bwd_edges = vec![EdgeId(0); self.edges.len()];
        let mut fcur = fwd_off.clone();
        let mut bcur = bwd_off.clone();
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            fwd_edges[fcur[e.tail.index()] as usize] = id;
            fcur[e.tail.index()] += 1;
            bwd_edges[bcur[e.head.index()] as usize] = id;
            bcur[e.head.index()] += 1;
        }

        // Level CSR.
        let nl = depth as usize + 1;
        let mut lvl_off = vec![0u32; nl + 1];
        for &l in &self.level_of {
            lvl_off[l as usize + 1] += 1;
        }
        for l in 0..nl {
            lvl_off[l + 1] += lvl_off[l];
        }
        let mut lvl_nodes = vec![NodeId(0); n];
        let mut lcur = lvl_off.clone();
        for (i, &l) in self.level_of.iter().enumerate() {
            lvl_nodes[lcur[l as usize] as usize] = NodeId(i as u32);
            lcur[l as usize] += 1;
        }

        let net = LeveledNetwork {
            name: self.name,
            level_of: self.level_of,
            edges: self.edges,
            fwd_off,
            fwd_edges,
            bwd_off,
            bwd_edges,
            lvl_off,
            lvl_nodes,
            depth,
        };
        net.validate()?;
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -- 1 -- 3
    ///   \- 2 -/
    fn diamond() -> LeveledNetwork {
        let mut b = NetworkBuilder::new("diamond");
        let n0 = b.add_node(0);
        let n1 = b.add_node(1);
        let n2 = b.add_node(1);
        let n3 = b.add_node(2);
        b.add_edge(n0, n1).unwrap();
        b.add_edge(n0, n2).unwrap();
        b.add_edge(n1, n3).unwrap();
        b.add_edge(n3, n2).unwrap(); // reversed argument order: still oriented low->high
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let net = diamond();
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_edges(), 4);
        assert_eq!(net.depth(), 2);
        assert_eq!(net.num_levels(), 3);
        assert_eq!(net.level_widths(), vec![1, 2, 1]);
        assert_eq!(net.fwd_edges(NodeId(0)).len(), 2);
        assert_eq!(net.bwd_edges(NodeId(0)).len(), 0);
        assert_eq!(net.fwd_edges(NodeId(3)).len(), 0);
        assert_eq!(net.bwd_edges(NodeId(3)).len(), 2);
        assert_eq!(net.degree(NodeId(1)), 2);
        assert_eq!(net.max_degree(), 2);
        net.validate().unwrap();
    }

    #[test]
    fn edge_orientation_is_low_to_high_regardless_of_argument_order() {
        let net = diamond();
        // Edge 3 was added as (n3, n2) but must be oriented n2 -> n3.
        let e = net.edge(EdgeId(3));
        assert_eq!(e.tail, NodeId(2));
        assert_eq!(e.head, NodeId(3));
        assert_eq!(e.other(NodeId(2)), NodeId(3));
        assert_eq!(e.other(NodeId(3)), NodeId(2));
    }

    #[test]
    fn traversal_moves_between_endpoints() {
        let net = diamond();
        let mv = DirectedEdge::forward(EdgeId(0));
        assert_eq!(net.move_origin(mv), NodeId(0));
        assert_eq!(net.move_target(mv), NodeId(1));
        assert_eq!(net.traverse(NodeId(0), mv), NodeId(1));
        let back = mv.reversed();
        assert_eq!(net.move_origin(back), NodeId(1));
        assert_eq!(net.traverse(NodeId(1), back), NodeId(0));
    }

    #[test]
    fn exits_enumerates_forward_then_backward() {
        let net = diamond();
        let exits: Vec<_> = net.exits(NodeId(1)).collect();
        assert_eq!(exits.len(), 2);
        assert_eq!(exits[0], DirectedEdge::forward(EdgeId(2)));
        assert_eq!(exits[1], DirectedEdge::backward(EdgeId(0)));
    }

    #[test]
    fn rejects_non_consecutive_edge() {
        let mut b = NetworkBuilder::new("bad");
        let a = b.add_node(0);
        let c = b.add_node(2);
        let err = b.add_edge(a, c).unwrap_err();
        assert!(matches!(err, NetworkError::NotConsecutiveLevels { .. }));
    }

    #[test]
    fn rejects_same_level_edge() {
        let mut b = NetworkBuilder::new("bad");
        let a = b.add_node(1);
        let c = b.add_node(1);
        assert!(b.add_edge(a, c).is_err());
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = NetworkBuilder::new("bad");
        let a = b.add_node(0);
        let err = b.add_edge(a, NodeId(99)).unwrap_err();
        assert_eq!(err, NetworkError::UnknownNode(NodeId(99)));
    }

    #[test]
    fn rejects_empty_network() {
        let b = NetworkBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), NetworkError::Empty);
    }

    #[test]
    fn rejects_empty_level() {
        let mut b = NetworkBuilder::new("gap");
        b.add_node(0);
        b.add_node(2); // level 1 left empty
        assert_eq!(b.build().unwrap_err(), NetworkError::EmptyLevel(1));
    }

    #[test]
    fn reachability_masks() {
        let net = diamond();
        let from0 = net.reachable_mask(NodeId(0));
        assert!(from0.iter().all(|&x| x), "everything reachable from source");
        let to3 = net.reaches_mask(NodeId(3));
        assert!(to3.iter().all(|&x| x), "everything reaches the sink");
        let to1 = net.reaches_mask(NodeId(1));
        assert_eq!(to1, vec![true, true, false, false]);
    }

    #[test]
    fn parallel_edges_are_allowed() {
        let mut b = NetworkBuilder::new("multi");
        let a = b.add_node(0);
        let c = b.add_node(1);
        b.add_edge(a, c).unwrap();
        b.add_edge(a, c).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.num_edges(), 2);
        assert_eq!(net.fwd_edges(a).len(), 2);
        assert_eq!(net.bwd_edges(c).len(), 2);
        net.validate().unwrap();
    }
}
