//! Levelizing arbitrary DAGs.
//!
//! The paper closes with: "It is interesting to extend our work for
//! arbitrary network topologies" (§5). This module provides the natural
//! first step for acyclic topologies: any DAG can be turned into a
//! leveled network by **longest-path layering** plus **edge subdivision**
//! — each node gets the level `longest path from a source`, and an edge
//! spanning `s > 1` levels is replaced by a chain of `s − 1` *dummy
//! relay nodes*. Routing problems on the DAG translate edge-for-chain
//! onto the leveled network, where the paper's router applies verbatim
//! (dummy relays behave exactly like ordinary degree-preserving nodes).
//!
//! The construction preserves reachability and multiplies path lengths by
//! at most the original depth; congestion is preserved exactly (each
//! original edge maps to a private chain).

use crate::ids::{EdgeId, Level, NodeId};
use crate::network::{LeveledNetwork, NetworkBuilder};

/// A directed acyclic graph under construction (nodes are `0..n`).
#[derive(Clone, Debug, Default)]
pub struct Dag {
    num_nodes: usize,
    edges: Vec<(u32, u32)>,
}

/// Errors from levelization.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LevelizeError {
    /// The graph contains a directed cycle.
    Cyclic,
    /// An edge references a node outside `0..n`.
    UnknownNode(u32),
    /// A self-loop was found.
    SelfLoop(u32),
    /// The graph has no nodes.
    Empty,
}

impl std::fmt::Display for LevelizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LevelizeError::Cyclic => write!(f, "graph contains a directed cycle"),
            LevelizeError::UnknownNode(v) => write!(f, "edge references unknown node {v}"),
            LevelizeError::SelfLoop(v) => write!(f, "self loop at node {v}"),
            LevelizeError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for LevelizeError {}

impl Dag {
    /// Creates a DAG with `num_nodes` isolated nodes.
    pub fn new(num_nodes: usize) -> Self {
        Dag {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Adds a directed edge `u -> v`.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.edges.push((u, v));
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }
}

/// The result of levelizing a DAG: the leveled network plus the mapping
/// back to the original graph.
#[derive(Clone, Debug)]
pub struct Levelized {
    /// The resulting leveled network (original nodes first, then dummies).
    pub net: LeveledNetwork,
    /// Image of each original node.
    node_map: Vec<NodeId>,
    /// For each original edge, the chain of leveled edges implementing it
    /// (length = level span of the edge).
    edge_chains: Vec<Vec<EdgeId>>,
    /// Marks dummy (subdivision) nodes in the leveled network.
    is_dummy: Vec<bool>,
    /// The level assigned to each original node.
    levels: Vec<Level>,
}

impl Levelized {
    /// The leveled image of original node `v`.
    pub fn node(&self, v: u32) -> NodeId {
        self.node_map[v as usize]
    }

    /// The level assigned to original node `v` (its longest distance from
    /// a source).
    pub fn level_of(&self, v: u32) -> Level {
        self.levels[v as usize]
    }

    /// The chain of leveled edges implementing original edge `e` (by index
    /// into the DAG's edge list).
    pub fn edge_chain(&self, e: usize) -> &[EdgeId] {
        &self.edge_chains[e]
    }

    /// Whether a leveled node is a subdivision dummy.
    pub fn is_dummy(&self, n: NodeId) -> bool {
        self.is_dummy[n.index()]
    }

    /// Number of dummy nodes introduced.
    pub fn num_dummies(&self) -> usize {
        self.is_dummy.iter().filter(|&&d| d).count()
    }

    /// Translates a path given as a sequence of original *edge indices*
    /// (into the DAG edge list) into the corresponding leveled edge
    /// sequence.
    pub fn translate_edges(&self, dag_edges: &[usize]) -> Vec<EdgeId> {
        let mut out = Vec::new();
        for &e in dag_edges {
            out.extend_from_slice(&self.edge_chains[e]);
        }
        out
    }
}

/// Levelizes `dag` by longest-path layering with edge subdivision.
///
/// ```
/// use leveled_net::levelize::{levelize, Dag};
///
/// // A triangle shortcut: 0 -> 1 -> 2 plus 0 -> 2.
/// let mut dag = Dag::new(3);
/// dag.add_edge(0, 1);
/// dag.add_edge(1, 2);
/// dag.add_edge(0, 2);
/// let lz = levelize(&dag).unwrap();
/// assert_eq!(lz.net.depth(), 2);
/// assert_eq!(lz.num_dummies(), 1);      // the shortcut gets one relay
/// assert_eq!(lz.edge_chain(2).len(), 2); // ... and spans two edges
/// ```
pub fn levelize(dag: &Dag) -> Result<Levelized, LevelizeError> {
    let n = dag.num_nodes;
    if n == 0 {
        return Err(LevelizeError::Empty);
    }
    for &(u, v) in &dag.edges {
        if u as usize >= n {
            return Err(LevelizeError::UnknownNode(u));
        }
        if v as usize >= n {
            return Err(LevelizeError::UnknownNode(v));
        }
        if u == v {
            return Err(LevelizeError::SelfLoop(u));
        }
    }

    // Kahn topological order with longest-path levels.
    let mut indeg = vec![0u32; n];
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(u, v) in &dag.edges {
        indeg[v as usize] += 1;
        adj[u as usize].push(v);
    }
    let mut level = vec![0 as Level; n];
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut seen = 0usize;
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        seen += 1;
        for &v in &adj[u as usize] {
            level[v as usize] = level[v as usize].max(level[u as usize] + 1);
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                queue.push(v);
            }
        }
    }
    if seen != n {
        return Err(LevelizeError::Cyclic);
    }

    // Build the leveled network: original nodes first, dummies appended.
    // Dummies may create levels with no original nodes; the builder
    // requires all levels 0..=L non-empty, which subdivision guarantees
    // for every level that any edge crosses. Isolated high-level gaps
    // cannot occur: levels are longest-path distances, so every level
    // l <= L is realized by some node on a longest path.
    let mut b = NetworkBuilder::with_capacity("levelized", n + dag.edges.len(), dag.edges.len());
    for &lv in level.iter().take(n) {
        b.add_node(lv);
    }
    let node_map: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let mut is_dummy = vec![false; n];
    let mut edge_chains = Vec::with_capacity(dag.edges.len());
    for &(u, v) in &dag.edges {
        let (lu, lv) = (level[u as usize], level[v as usize]);
        debug_assert!(lv > lu, "topological levels are strictly increasing");
        let mut chain = Vec::with_capacity((lv - lu) as usize);
        let mut prev = node_map[u as usize];
        for l in (lu + 1)..lv {
            let d = b.add_node(l);
            is_dummy.push(true);
            chain.push(b.add_edge(prev, d).expect("consecutive levels"));
            prev = d;
        }
        chain.push(
            b.add_edge(prev, node_map[v as usize])
                .expect("consecutive levels"),
        );
        edge_chains.push(chain);
    }
    let net = b.build().map_err(|_| LevelizeError::Empty)?;
    is_dummy.resize(net.num_nodes(), true);

    Ok(Levelized {
        net,
        node_map,
        edge_chains,
        is_dummy,
        levels: level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    /// A diamond with a long shortcut:  0 -> 1 -> 2 -> 3 and 0 -> 3.
    fn shortcut_dag() -> Dag {
        let mut d = Dag::new(4);
        d.add_edge(0, 1);
        d.add_edge(1, 2);
        d.add_edge(2, 3);
        d.add_edge(0, 3);
        d
    }

    #[test]
    fn longest_path_levels() {
        let lz = levelize(&shortcut_dag()).unwrap();
        assert_eq!(lz.level_of(0), 0);
        assert_eq!(lz.level_of(1), 1);
        assert_eq!(lz.level_of(2), 2);
        assert_eq!(lz.level_of(3), 3);
        assert_eq!(lz.net.depth(), 3);
        lz.net.validate().unwrap();
    }

    #[test]
    fn long_edges_get_subdivided() {
        let lz = levelize(&shortcut_dag()).unwrap();
        // The shortcut 0 -> 3 spans 3 levels: 2 dummies, chain of 3 edges.
        assert_eq!(lz.num_dummies(), 2);
        assert_eq!(lz.edge_chain(3).len(), 3);
        for &(e, len) in &[(0usize, 1usize), (1, 1), (2, 1)] {
            assert_eq!(lz.edge_chain(e).len(), len);
        }
        // Chain edges concatenate to a valid leveled walk 0 -> 3.
        let chain = lz.edge_chain(3);
        let mut at = lz.node(0);
        for &e in chain {
            assert_eq!(lz.net.edge(e).tail, at);
            at = lz.net.edge(e).head;
        }
        assert_eq!(at, lz.node(3));
    }

    #[test]
    fn dummies_are_marked() {
        let lz = levelize(&shortcut_dag()).unwrap();
        for v in 0..4 {
            assert!(!lz.is_dummy(lz.node(v)));
        }
        let dummies: Vec<NodeId> = lz.net.nodes().filter(|&nd| lz.is_dummy(nd)).collect();
        assert_eq!(dummies.len(), 2);
        // Dummies sit on levels 1 and 2.
        let mut lv: Vec<Level> = dummies.iter().map(|&d| lz.net.level(d)).collect();
        lv.sort_unstable();
        assert_eq!(lv, vec![1, 2]);
    }

    #[test]
    fn translate_edges_concatenates_chains() {
        let lz = levelize(&shortcut_dag()).unwrap();
        let edges = lz.translate_edges(&[0, 1, 2]);
        assert_eq!(edges.len(), 3);
        let single = lz.translate_edges(&[3]);
        assert_eq!(single.len(), 3);
    }

    #[test]
    fn cycle_detected() {
        let mut d = Dag::new(3);
        d.add_edge(0, 1);
        d.add_edge(1, 2);
        d.add_edge(2, 0);
        assert_eq!(levelize(&d).unwrap_err(), LevelizeError::Cyclic);
    }

    #[test]
    fn self_loop_detected() {
        let mut d = Dag::new(2);
        d.add_edge(1, 1);
        assert_eq!(levelize(&d).unwrap_err(), LevelizeError::SelfLoop(1));
    }

    #[test]
    fn unknown_node_detected() {
        let mut d = Dag::new(2);
        d.add_edge(0, 5);
        assert_eq!(levelize(&d).unwrap_err(), LevelizeError::UnknownNode(5));
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(levelize(&Dag::new(0)).unwrap_err(), LevelizeError::Empty);
    }

    #[test]
    fn edgeless_graph_levelizes_flat() {
        let lz = levelize(&Dag::new(5)).unwrap();
        assert_eq!(lz.net.depth(), 0);
        assert_eq!(lz.net.num_nodes(), 5);
        assert_eq!(lz.num_dummies(), 0);
    }

    #[test]
    fn random_dags_levelize_validly() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for trial in 0..30 {
            let n = rng.gen_range(2..40);
            let mut d = Dag::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.15) {
                        d.add_edge(u, v);
                    }
                }
            }
            let lz = levelize(&d).unwrap();
            lz.net.validate().unwrap();
            // Every original edge's chain spans exactly its level gap.
            for (i, &(u, v)) in d.edges().iter().enumerate() {
                let span = (lz.level_of(v) - lz.level_of(u)) as usize;
                assert_eq!(lz.edge_chain(i).len(), span, "trial {trial} edge {i}");
            }
            // Congestion preserved: chains are edge-disjoint by
            // construction (each chain has private dummies).
            let mut used = std::collections::HashSet::new();
            for i in 0..d.num_edges() {
                for &e in lz.edge_chain(i) {
                    assert!(used.insert(e), "chains must be edge-disjoint");
                }
            }
        }
    }
}
