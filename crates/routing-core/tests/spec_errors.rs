//! Pinned error messages for every way a run spec can be malformed.
//!
//! `parse_run_spec` is the single text entry point the CLI, the serve
//! layer and the bench harness all funnel through — its error strings
//! ARE the user interface for a mistyped spec. Each test pins the exact
//! message so a reworded or mis-attributed error (wrong segment blamed,
//! valid set dropped from the hint) fails here, not in a user's
//! terminal.

use routing_core::spec::{parse_run_spec, parse_topo, RunSpec};

/// The `Err` payload of a spec, as an owned string.
fn err(spec: &str) -> String {
    parse_run_spec(spec).expect_err(spec)
}

#[test]
fn arity_too_short_and_too_long() {
    let msg = "run spec 'bf:10' must be TOPO/WL[/ALGO[/SEED[/ARRIVAL]]], \
               e.g. bf:10/bitrev/busch/7 or bf:10/pairs:64/greedy/7/poisson:0.5";
    assert_eq!(err("bf:10"), msg);
    assert_eq!(
        err("bf:10/bitrev/busch/7/poisson:0.5/extra"),
        msg.replace("'bf:10'", "'bf:10/bitrev/busch/7/poisson:0.5/extra'")
    );
}

#[test]
fn empty_segments_are_blamed_by_name() {
    assert_eq!(
        err("/bitrev/busch"),
        "run spec '/bitrev/busch' has an empty topo segment"
    );
    assert_eq!(
        err("bf:10//busch"),
        "run spec 'bf:10//busch' has an empty workload segment"
    );
    assert_eq!(
        err("bf:10/bitrev//7"),
        "run spec 'bf:10/bitrev//7' has an empty algo segment"
    );
    assert_eq!(
        err("bf:10/bitrev/busch//poisson:0.5"),
        "run spec 'bf:10/bitrev/busch//poisson:0.5' has an empty seed segment"
    );
    assert_eq!(
        err("bf:10/bitrev/busch/7/"),
        "run spec 'bf:10/bitrev/busch/7/' has an empty arrival segment"
    );
}

#[test]
fn unknown_algorithm_lists_the_valid_set() {
    assert_eq!(
        err("bf:10/bitrev/nosuch"),
        "unknown algorithm 'nosuch' (known: busch|greedy|ftg|rank|sf|sfrank|aging)"
    );
}

#[test]
fn bad_seed_is_named() {
    assert_eq!(err("bf:10/bitrev/busch/x"), "bad run seed 'x'");
    assert_eq!(err("bf:10/bitrev/busch/-1"), "bad run seed '-1'");
}

#[test]
fn bad_arrival_segments() {
    assert_eq!(
        err("bf:10/bitrev/greedy/7/nosuch:1"),
        "unknown arrival process 'nosuch' (poisson|burst|replay|adversarial)"
    );
    assert_eq!(
        err("bf:10/bitrev/greedy/7/poisson:fast"),
        "bad poisson rate 'fast'"
    );
    assert_eq!(
        err("bf:10/bitrev/greedy/7/poisson:0"),
        "poisson rate 0 must be positive and finite"
    );
    assert_eq!(
        err("bf:10/bitrev/greedy/7/burst:4"),
        "burst needs SIZE:PERIOD, got '4'"
    );
    assert_eq!(
        err("bf:10/bitrev/greedy/7/replay:3,1"),
        "replay arrival steps must be non-decreasing"
    );
}

#[test]
fn malformed_topo_surfaces_at_instantiation() {
    // The topo grammar is deliberately checked at problem construction,
    // not parse time — but the message is still pinned end to end.
    let spec = parse_run_spec("nosuch:4/bitrev/busch/7").expect("parse defers topo checks");
    assert_eq!(
        spec.instantiate().err().expect("unknown topology"),
        "unknown topology 'nosuch'"
    );
    assert_eq!(
        parse_topo("bf:99").err().expect("dimension bound"),
        "butterfly dimension 99 out of range (1..=27)"
    );
}

#[test]
fn malformed_workload_surfaces_at_instantiation() {
    let spec = parse_run_spec("bf:4/nosuch/busch/7").expect("parse defers workload checks");
    assert_eq!(
        spec.instantiate().err().expect("unknown workload"),
        "unknown workload 'nosuch'"
    );
    let spec = parse_run_spec("bf:4/pairs/busch/7").expect("parse defers workload checks");
    assert_eq!(
        spec.instantiate().err().expect("missing argument"),
        "workload 'pairs' needs an argument"
    );
}

#[test]
fn valid_specs_still_parse() {
    // Guard against the new validation rejecting the documented examples.
    assert!(parse_run_spec("bf:10/bitrev/busch/7").is_ok());
    assert!(parse_run_spec("bf:10/pairs:64/greedy/7/poisson:0.5").is_ok());
    assert!(parse_run_spec("mesh:8x8/transpose").is_ok());
    assert_eq!(
        parse_run_spec("bf:4/bitrev").unwrap(),
        RunSpec::batch("bf:4", "bitrev", "busch", 1)
    );
}
