//! Preselected-path strategies.
//!
//! The paper takes preselected paths as given ("we do not consider how
//! these paths are selected, but how to design fast routing algorithms
//! given the paths", §1.1). This module provides the standard selections
//! used by the experiments:
//!
//! * [`MinimalPathSampler`] / [`random_minimal`] — uniformly random valid
//!   path among all valid paths between two nodes (on leveled networks
//!   every valid path is minimal, so this is uniform minimal-path
//!   selection);
//! * [`first_minimal`] — the deterministic lexicographically-first valid
//!   path (an adversarially *congesting* choice, useful in stress tests);
//! * [`bit_fixing`] — the unique butterfly path fixing row bits one level
//!   at a time;
//! * [`dimension_order_mesh`] — row-first or column-first monotone mesh
//!   paths, the classic mesh selection with `C = O(n)` for permutations.

use crate::path::Path;
use leveled_net::builders::{ButterflyCoords, MeshCoords};
use leveled_net::{LeveledNetwork, NodeId};
use rand::Rng;

/// Precomputed path counts toward a fixed destination, supporting `O(D)`
/// uniformly-random path sampling from any source.
///
/// Counts are kept per level with automatic rescaling, so sampling stays
/// correct even when the number of paths overflows any integer type (e.g.
/// `width^L` paths in a complete leveled network): choices at a node only
/// ever compare counts of nodes in a single level, which share a scale.
#[derive(Clone, Debug)]
pub struct MinimalPathSampler {
    dest: NodeId,
    /// Scaled count of valid paths from each node to `dest` (0 if none).
    count: Vec<f64>,
}

impl MinimalPathSampler {
    /// Builds the sampler for destination `dest`; `O(V + E)`.
    pub fn new(net: &LeveledNetwork, dest: NodeId) -> Self {
        let mut count = vec![0.0f64; net.num_nodes()];
        count[dest.index()] = 1.0;
        let dl = net.level(dest);
        // Sweep levels downward; rescale a finished level if it grew huge.
        const CAP: f64 = 1e100;
        for l in (0..dl).rev() {
            let mut level_max = 0.0f64;
            for &v in net.nodes_at_level(l) {
                let mut c = 0.0;
                for &e in net.fwd_edges(v) {
                    c += count[net.edge(e).head.index()];
                }
                count[v.index()] = c;
                level_max = level_max.max(c);
            }
            if level_max > CAP {
                for &v in net.nodes_at_level(l) {
                    count[v.index()] /= CAP;
                }
            }
        }
        MinimalPathSampler { dest, count }
    }

    /// The destination this sampler targets.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// Whether any valid path exists from `src` to the destination.
    pub fn reaches(&self, src: NodeId) -> bool {
        self.count[src.index()] > 0.0 || src == self.dest
    }

    /// Samples a uniformly-random valid path from `src` to the destination,
    /// or `None` if unreachable.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        net: &LeveledNetwork,
        src: NodeId,
        rng: &mut R,
    ) -> Option<Path> {
        if src == self.dest {
            return Some(Path::trivial(src));
        }
        if self.count[src.index()] == 0.0 {
            return None;
        }
        let mut edges = Vec::with_capacity((net.level(self.dest) - net.level(src)) as usize);
        let mut at = src;
        while at != self.dest {
            let fwd = net.fwd_edges(at);
            let total: f64 = fwd
                .iter()
                .map(|&e| self.count[net.edge(e).head.index()])
                .sum();
            debug_assert!(total > 0.0);
            let mut pick = rng.gen::<f64>() * total;
            let mut chosen = None;
            for &e in fwd {
                let w = self.count[net.edge(e).head.index()];
                if w <= 0.0 {
                    continue;
                }
                pick -= w;
                chosen = Some(e);
                if pick <= 0.0 {
                    break;
                }
            }
            let e = chosen.expect("positive total weight");
            edges.push(e);
            at = net.edge(e).head;
        }
        Some(Path::new(net, src, edges).expect("constructed path is valid"))
    }
}

/// Samples a uniformly-random valid path from `src` to `dst`
/// (convenience wrapper around [`MinimalPathSampler`]).
pub fn random_minimal<R: Rng + ?Sized>(
    net: &LeveledNetwork,
    src: NodeId,
    dst: NodeId,
    rng: &mut R,
) -> Option<Path> {
    MinimalPathSampler::new(net, dst).sample(net, src, rng)
}

/// The deterministic lexicographically-first valid path from `src` to
/// `dst` (at each node, the first forward edge that still reaches `dst`).
///
/// Used adversarially: funneling many packets through first-fit paths
/// concentrates congestion.
pub fn first_minimal(net: &LeveledNetwork, src: NodeId, dst: NodeId) -> Option<Path> {
    if src == dst {
        return Some(Path::trivial(src));
    }
    let mask = net.reaches_mask(dst);
    if !mask[src.index()] {
        return None;
    }
    let mut edges = Vec::new();
    let mut at = src;
    while at != dst {
        let e = net
            .fwd_edges(at)
            .iter()
            .copied()
            .find(|&e| mask[net.edge(e).head.index()])
            .expect("mask guarantees a continuing edge");
        edges.push(e);
        at = net.edge(e).head;
    }
    Some(Path::new(net, src, edges).expect("constructed path is valid"))
}

/// The unique butterfly path from `(level 0, src_row)` to
/// `(level k, dst_row)`, fixing row bit `l` at level `l`.
pub fn bit_fixing(
    net: &LeveledNetwork,
    coords: &ButterflyCoords,
    src_row: usize,
    dst_row: usize,
) -> Path {
    let k = coords.k;
    let mut nodes = Vec::with_capacity(k as usize + 1);
    let mut row = src_row;
    nodes.push(coords.node(0, row));
    for l in 0..k {
        let bit = 1usize << l;
        row = (row & !bit) | (dst_row & bit);
        nodes.push(coords.node(l + 1, row));
    }
    debug_assert_eq!(row, dst_row);
    Path::from_nodes(net, &nodes).expect("butterfly bit-fixing path is valid")
}

/// Which axis a dimension-order mesh path traverses first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MeshAxis {
    /// Move along rows (vertically) first, then along columns.
    RowFirst,
    /// Move along columns (horizontally) first, then along rows.
    ColFirst,
}

/// The dimension-order path between two mesh cells, or `None` if the
/// destination is not forward-reachable in this orientation.
pub fn dimension_order_mesh(
    net: &LeveledNetwork,
    coords: &MeshCoords,
    src: (usize, usize),
    dst: (usize, usize),
    axis: MeshAxis,
) -> Option<Path> {
    if !coords.reachable(src, dst) {
        return None;
    }
    let (r1, c1) = src;
    let (r2, c2) = dst;
    let mut nodes = Vec::new();
    let push_row_leg = |nodes: &mut Vec<NodeId>, c: usize| {
        let mut r = r1;
        nodes.push(coords.node(r, c));
        while r != r2 {
            r = if r2 > r { r + 1 } else { r - 1 };
            nodes.push(coords.node(r, c));
        }
    };
    let push_col_leg = |nodes: &mut Vec<NodeId>, r: usize| {
        let mut c = c1;
        nodes.push(coords.node(r, c));
        while c != c2 {
            c = if c2 > c { c + 1 } else { c - 1 };
            nodes.push(coords.node(r, c));
        }
    };
    match axis {
        MeshAxis::RowFirst => {
            push_row_leg(&mut nodes, c1);
            let mut c = c1;
            while c != c2 {
                c = if c2 > c { c + 1 } else { c - 1 };
                nodes.push(coords.node(r2, c));
            }
        }
        MeshAxis::ColFirst => {
            push_col_leg(&mut nodes, r1);
            let mut r = r1;
            while r != r2 {
                r = if r2 > r { r + 1 } else { r - 1 };
                nodes.push(coords.node(r, c2));
            }
        }
    }
    Some(Path::from_nodes(net, &nodes).expect("dimension-order path is valid"))
}

/// Number of distinct valid paths from `src` to `dst`, as an `f64`
/// (exact for counts below 2^53; order-of-magnitude beyond).
pub fn count_paths(net: &LeveledNetwork, src: NodeId, dst: NodeId) -> f64 {
    if src == dst {
        return 1.0;
    }
    if net.level(src) >= net.level(dst) {
        return 0.0;
    }
    let mut count = vec![0.0f64; net.num_nodes()];
    count[dst.index()] = 1.0;
    let dl = net.level(dst);
    let sl = net.level(src);
    for l in (sl..dl).rev() {
        for &v in net.nodes_at_level(l) {
            let mut c = 0.0;
            for &e in net.fwd_edges(v) {
                c += count[net.edge(e).head.index()];
            }
            count[v.index()] = c;
        }
    }
    count[src.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders::{self, MeshCorner};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sampler_reaches_matches_mask() {
        let net = builders::butterfly(3);
        let dst = NodeId(net.num_nodes() as u32 - 1);
        let sampler = MinimalPathSampler::new(&net, dst);
        let mask = net.reaches_mask(dst);
        for v in net.nodes() {
            assert_eq!(sampler.reaches(v), mask[v.index()], "node {v}");
        }
    }

    #[test]
    fn sampled_paths_are_valid_and_end_at_dest() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = builders::complete_leveled(6, 4);
        let dst = net.nodes_at_level(6)[2];
        let sampler = MinimalPathSampler::new(&net, dst);
        for &src in net.nodes_at_level(0) {
            for _ in 0..5 {
                let p = sampler.sample(&net, src, &mut rng).unwrap();
                p.validate(&net).unwrap();
                assert_eq!(p.source(), src);
                assert_eq!(p.dest(&net), dst);
                assert_eq!(p.len() as u32, 6);
            }
        }
    }

    #[test]
    fn sampling_is_uniform_on_the_diamond() {
        // Two paths of equal weight: frequencies should be ~50/50.
        let mut b = leveled_net::NetworkBuilder::new("diamond");
        let n0 = b.add_node(0);
        let n1 = b.add_node(1);
        let n2 = b.add_node(1);
        let n3 = b.add_node(2);
        b.add_edge(n0, n1).unwrap();
        b.add_edge(n0, n2).unwrap();
        b.add_edge(n1, n3).unwrap();
        b.add_edge(n2, n3).unwrap();
        let net = b.build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let sampler = MinimalPathSampler::new(&net, n3);
        let mut via_n1 = 0usize;
        let trials = 4000;
        for _ in 0..trials {
            let p = sampler.sample(&net, n0, &mut rng).unwrap();
            if p.nodes(&net)[1] == n1 {
                via_n1 += 1;
            }
        }
        let frac = via_n1 as f64 / trials as f64;
        assert!((0.45..0.55).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn random_minimal_unreachable_is_none() {
        let net = builders::linear_array(4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // Backwards pair: no valid path.
        assert!(random_minimal(&net, NodeId(3), NodeId(0), &mut rng).is_none());
    }

    #[test]
    fn trivial_sample_for_equal_endpoints() {
        let net = builders::linear_array(4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let p = random_minimal(&net, NodeId(2), NodeId(2), &mut rng).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn first_minimal_is_deterministic_and_valid() {
        let net = builders::complete_leveled(4, 3);
        let src = net.nodes_at_level(0)[1];
        let dst = net.nodes_at_level(4)[2];
        let a = first_minimal(&net, src, dst).unwrap();
        let b = first_minimal(&net, src, dst).unwrap();
        assert_eq!(a, b);
        a.validate(&net).unwrap();
        assert_eq!(a.dest(&net), dst);
    }

    #[test]
    fn bit_fixing_path_hits_destination_row() {
        let k = 5;
        let net = builders::butterfly(k);
        let coords = ButterflyCoords { k };
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..50 {
            let sr = rng.gen_range(0..coords.rows());
            let dr = rng.gen_range(0..coords.rows());
            let p = bit_fixing(&net, &coords, sr, dr);
            p.validate(&net).unwrap();
            assert_eq!(p.source(), coords.node(0, sr));
            assert_eq!(p.dest(&net), coords.node(k, dr));
            assert_eq!(p.len() as u32, k);
        }
    }

    #[test]
    fn bit_fixing_matches_unique_path_count() {
        let k = 3;
        let net = builders::butterfly(k);
        let coords = ButterflyCoords { k };
        // There is exactly one valid path per (src row, dst row) pair.
        for sr in 0..coords.rows() {
            for dr in 0..coords.rows() {
                let n = count_paths(&net, coords.node(0, sr), coords.node(k, dr));
                assert_eq!(n, 1.0, "sr={sr} dr={dr}");
            }
        }
    }

    #[test]
    fn dimension_order_paths_for_all_corners() {
        for corner in MeshCorner::ALL {
            let (net, coords) = builders::mesh(5, 5, corner);
            // Pick the level-0 corner cell as source, level-L corner as dest.
            let src = {
                let n = net.nodes_at_level(0)[0];
                coords.coords(n)
            };
            let dst = {
                let n = net.nodes_at_level(net.depth())[0];
                coords.coords(n)
            };
            for axis in [MeshAxis::RowFirst, MeshAxis::ColFirst] {
                let p = dimension_order_mesh(&net, &coords, src, dst, axis).unwrap();
                p.validate(&net).unwrap();
                assert_eq!(p.len() as u32, net.depth());
            }
        }
    }

    #[test]
    fn dimension_order_rejects_unreachable() {
        let (net, coords) = builders::mesh(4, 4, MeshCorner::TopLeft);
        assert!(dimension_order_mesh(&net, &coords, (2, 2), (1, 3), MeshAxis::RowFirst).is_none());
    }

    #[test]
    fn dimension_order_axes_differ() {
        let (net, coords) = builders::mesh(4, 4, MeshCorner::TopLeft);
        let a = dimension_order_mesh(&net, &coords, (0, 0), (2, 2), MeshAxis::RowFirst).unwrap();
        let b = dimension_order_mesh(&net, &coords, (0, 0), (2, 2), MeshAxis::ColFirst).unwrap();
        assert_ne!(a, b);
        assert_eq!(a.len(), b.len());
        // Row-first visits (1,0); col-first visits (0,1).
        assert_eq!(a.nodes(&net)[1], coords.node(1, 0));
        assert_eq!(b.nodes(&net)[1], coords.node(0, 1));
    }

    #[test]
    fn count_paths_on_complete_leveled() {
        let net = builders::complete_leveled(3, 2);
        let src = net.nodes_at_level(0)[0];
        let dst = net.nodes_at_level(3)[0];
        // width^(L-1) intermediate choices per inner level: 2 * 2 = 4.
        assert_eq!(count_paths(&net, src, dst), 4.0);
    }

    #[test]
    fn count_paths_zero_backward() {
        let net = builders::linear_array(3);
        assert_eq!(count_paths(&net, NodeId(2), NodeId(0)), 0.0);
        assert_eq!(count_paths(&net, NodeId(1), NodeId(1)), 1.0);
    }

    #[test]
    fn huge_path_counts_still_sample() {
        // width^L far beyond u64: 8^80. The sampler must not overflow.
        let net = builders::complete_leveled(80, 8);
        let dst = net.nodes_at_level(80)[0];
        let sampler = MinimalPathSampler::new(&net, dst);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let src = net.nodes_at_level(0)[0];
        let p = sampler.sample(&net, src, &mut rng).unwrap();
        assert_eq!(p.len(), 80);
        p.validate(&net).unwrap();
    }
}
