//! Text specs for topologies and workloads.
//!
//! The CLI, the experiment harness, and the trace analyzer all need to
//! name an instance in a single string — `butterfly:10` + `bitrev` — and
//! reconstruct exactly the same [`RoutingProblem`] from it. This module
//! owns that grammar so a trace file's `meta` line (which records the
//! specs and the seed) is sufficient to rebuild the problem offline and
//! replay-verify the run against it.
//!
//! ```text
//! topology SPEC:
//!   butterfly:K | mesh:RxC[:tl|tr|bl|br] | linear:N | complete:LxW
//!   hypercube:D | tree:H | fattree:H[:CAP] | shuffle:K | benes:K
//!   random:L[:WMAX[:PROB[:SEED]]]
//!
//! workload WL:
//!   pairs:N | m2m:N | permutation | bitrev | transpose
//!   hotspot:N:D | funnel:N | level:FROM:TO | blast:FROM:TO
//! ```
//!
//! Reconstruction determinism: `random:*` topologies carry their own seed
//! (default 1) and draw from a private rng, and every randomized workload
//! draws from the caller's rng in a fixed order — so (topo spec, workload
//! spec, seed) identifies the instance exactly.

use crate::problem::RoutingProblem;
use crate::workloads;
use leveled_net::builders::{self, ButterflyCoords, MeshCoords, MeshCorner};
use leveled_net::LeveledNetwork;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A parsed topology plus the coordinate helpers some workloads need.
pub struct ParsedTopo {
    /// The network.
    pub net: Arc<LeveledNetwork>,
    /// Coordinates when the spec was a butterfly (for `permutation` /
    /// `bitrev`).
    pub butterfly: Option<ButterflyCoords>,
    /// Coordinates when the spec was a mesh (for `transpose`).
    pub mesh: Option<MeshCoords>,
}

/// Parses a topology spec (see the module docs for the grammar).
pub fn parse_topo(spec: &str) -> Result<ParsedTopo, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let kind = parts[0];
    let arg = |i: usize| -> Result<&str, String> {
        parts
            .get(i)
            .copied()
            .ok_or_else(|| format!("topology '{kind}' needs an argument at position {i}"))
    };
    let num = |s: &str| -> Result<u32, String> {
        s.parse::<u32>().map_err(|_| format!("bad number '{s}'"))
    };
    let plain = |net: LeveledNetwork| ParsedTopo {
        net: Arc::new(net),
        butterfly: None,
        mesh: None,
    };
    match kind {
        "butterfly" | "bf" => {
            let k = num(arg(1)?)?;
            if !(1..28).contains(&k) {
                return Err(format!("butterfly dimension {k} out of range (1..=27)"));
            }
            Ok(ParsedTopo {
                net: Arc::new(builders::butterfly(k)),
                butterfly: Some(ButterflyCoords { k }),
                mesh: None,
            })
        }
        "mesh" => {
            let dims: Vec<&str> = arg(1)?.split('x').collect();
            if dims.len() != 2 {
                return Err("mesh needs RxC, e.g. mesh:8x8".into());
            }
            let (r, c) = (num(dims[0])? as usize, num(dims[1])? as usize);
            let corner = match parts.get(2).copied().unwrap_or("tl") {
                "tl" => MeshCorner::TopLeft,
                "tr" => MeshCorner::TopRight,
                "bl" => MeshCorner::BottomLeft,
                "br" => MeshCorner::BottomRight,
                other => return Err(format!("unknown mesh corner '{other}'")),
            };
            let (net, coords) = builders::mesh(r, c, corner);
            Ok(ParsedTopo {
                net: Arc::new(net),
                butterfly: None,
                mesh: Some(coords),
            })
        }
        "linear" => Ok(plain(builders::linear_array(num(arg(1)?)? as usize))),
        "complete" => {
            let dims: Vec<&str> = arg(1)?.split('x').collect();
            if dims.len() != 2 {
                return Err("complete needs LxW, e.g. complete:10x4".into());
            }
            Ok(plain(builders::complete_leveled(
                num(dims[0])?,
                num(dims[1])? as usize,
            )))
        }
        "hypercube" => Ok(plain(builders::hypercube(num(arg(1)?)?).0)),
        "tree" => Ok(plain(builders::binary_tree(num(arg(1)?)?))),
        "fattree" => {
            let h = num(arg(1)?)?;
            let cap = parts.get(2).map(|s| num(s)).transpose()?.unwrap_or(4) as usize;
            Ok(plain(builders::fat_tree(h, cap)))
        }
        "shuffle" => {
            let k = num(arg(1)?)?;
            if !(1..28).contains(&k) {
                return Err(format!(
                    "shuffle-exchange dimension {k} out of range (1..=27)"
                ));
            }
            Ok(plain(builders::shuffle_exchange_unrolled(k)))
        }
        "benes" => {
            let k = num(arg(1)?)?;
            if !(1..27).contains(&k) {
                return Err(format!("Beneš dimension {k} out of range (1..=26)"));
            }
            Ok(plain(builders::benes(k).0))
        }
        "random" => {
            let l = num(arg(1)?)?;
            let wmax = parts.get(2).map(|s| num(s)).transpose()?.unwrap_or(4) as usize;
            let prob = parts
                .get(3)
                .map(|s| {
                    s.parse::<f64>()
                        .map_err(|_| format!("bad probability '{s}'"))
                })
                .transpose()?
                .unwrap_or(0.3);
            let seed = parts.get(4).map(|s| num(s)).transpose()?.unwrap_or(1) as u64;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Ok(plain(builders::random_leveled(l, 1..=wmax, prob, &mut rng)))
        }
        other => Err(format!("unknown topology '{other}'")),
    }
}

/// Parses a workload spec against `topo`, drawing any randomness from
/// `rng` (see the module docs for the grammar).
pub fn parse_workload<R: Rng + ?Sized>(
    spec: &str,
    topo: &ParsedTopo,
    rng: &mut R,
) -> Result<Arc<RoutingProblem>, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |i: usize| -> Result<usize, String> {
        parts
            .get(i)
            .ok_or_else(|| format!("workload '{}' needs an argument", parts[0]))?
            .parse::<usize>()
            .map_err(|e| format!("bad number: {e}"))
    };
    let net = &topo.net;
    match parts[0] {
        "pairs" => workloads::random_pairs(net, num(1)?, rng).map_err(|e| e.to_string()),
        "m2m" => workloads::many_to_many(net, num(1)?, rng).map_err(|e| e.to_string()),
        "permutation" | "perm" => {
            let coords = topo
                .butterfly
                .ok_or("permutation needs a butterfly topology")?;
            Ok(workloads::butterfly_permutation(net, &coords, rng))
        }
        "bitrev" => {
            let coords = topo.butterfly.ok_or("bitrev needs a butterfly topology")?;
            Ok(workloads::butterfly_bit_reversal(net, &coords))
        }
        "transpose" => {
            let coords = topo.mesh.ok_or("transpose needs a mesh topology")?;
            workloads::mesh_transpose(net, &coords).map_err(|e| e.to_string())
        }
        "hotspot" => workloads::hotspot(net, num(1)?, num(2)?, rng).map_err(|e| e.to_string()),
        "funnel" => workloads::funnel(net, num(1)?, rng).map_err(|e| e.to_string()),
        "level" => workloads::level_to_level(net, num(1)? as u32, num(2)? as u32, rng)
            .map_err(|e| e.to_string()),
        "blast" => workloads::first_fit_blast(net, num(1)? as u32, num(2)? as u32)
            .map_err(|e| e.to_string()),
        other => Err(format!("unknown workload '{other}'")),
    }
}

/// Rebuilds the exact problem identified by `(topo, workload, seed)` — the
/// triple a trace file's `meta` line records. Returns the parsed topology
/// alongside the problem so callers can reuse the network.
pub fn reconstruct_problem(
    topo_spec: &str,
    workload_spec: &str,
    seed: u64,
) -> Result<(ParsedTopo, Arc<RoutingProblem>), String> {
    let topo = parse_topo(topo_spec)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let problem = parse_workload(workload_spec, &topo, &mut rng)?;
    Ok((topo, problem))
}

/// One hosted run, as `hotpotato serve` names it: the instance triple
/// plus the algorithm, parsed from a single `TOPO/WL[/ALGO[/SEED]]`
/// string (`/`-separated because the topo and workload specs themselves
/// use `:`). Example: `bf:10/bitrev/busch/7`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// Topology spec ([`parse_topo`] grammar).
    pub topo: String,
    /// Workload spec ([`parse_workload`] grammar).
    pub workload: String,
    /// Algorithm name (`busch`, `greedy`, ... — validated by the router
    /// dispatch, not here).
    pub algo: String,
    /// Run seed (workload generation and routing share it).
    pub seed: u64,
}

impl RunSpec {
    /// A URL-safe run name, unique per distinct spec:
    /// `bf:10/bitrev/busch/7` → `busch-bf_10-bitrev-7`.
    pub fn name(&self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.algo,
            self.topo.replace(':', "_"),
            self.workload.replace(':', "_"),
            self.seed
        )
    }
}

/// Parses a [`RunSpec`] from `TOPO/WL[/ALGO[/SEED]]`. The algorithm
/// defaults to `busch` and the seed to 1. Structural only: the topo and
/// workload grammars are checked when the problem is reconstructed.
pub fn parse_run_spec(spec: &str) -> Result<RunSpec, String> {
    let parts: Vec<&str> = spec.split('/').collect();
    if !(2..=4).contains(&parts.len()) {
        return Err(format!(
            "run spec '{spec}' must be TOPO/WL[/ALGO[/SEED]], e.g. bf:10/bitrev/busch/7"
        ));
    }
    if parts.iter().any(|p| p.is_empty()) {
        return Err(format!("run spec '{spec}' has an empty component"));
    }
    let seed = match parts.get(3) {
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| format!("bad run seed '{s}'"))?,
        None => 1,
    };
    Ok(RunSpec {
        topo: parts[0].to_string(),
        workload: parts[1].to_string(),
        algo: parts.get(2).copied().unwrap_or("busch").to_string(),
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_specs_parse_with_defaults() {
        let full = parse_run_spec("bf:10/bitrev/greedy/7").unwrap();
        assert_eq!(
            full,
            RunSpec {
                topo: "bf:10".into(),
                workload: "bitrev".into(),
                algo: "greedy".into(),
                seed: 7,
            }
        );
        assert_eq!(full.name(), "greedy-bf_10-bitrev-7");

        let minimal = parse_run_spec("mesh:8x8/transpose").unwrap();
        assert_eq!(minimal.algo, "busch");
        assert_eq!(minimal.seed, 1);

        assert!(parse_run_spec("bf:10").is_err());
        assert!(parse_run_spec("bf:10/bitrev/busch/7/extra").is_err());
        assert!(parse_run_spec("bf:10//busch").is_err());
        assert!(parse_run_spec("bf:10/bitrev/busch/x").is_err());
    }

    #[test]
    fn butterfly_spec_carries_coords() {
        let t = parse_topo("butterfly:3").unwrap();
        assert_eq!(t.butterfly.unwrap().k, 3);
        assert!(t.mesh.is_none());
        assert_eq!(t.net.depth(), 3);
        // Short alias.
        assert_eq!(
            parse_topo("bf:3").unwrap().net.num_nodes(),
            t.net.num_nodes()
        );
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(parse_topo("butterfly").is_err());
        assert!(parse_topo("butterfly:0").is_err());
        assert!(parse_topo("mesh:8").is_err());
        assert!(parse_topo("mesh:8x8:xx").is_err());
        assert!(parse_topo("nosuch:1").is_err());
        let t = parse_topo("linear:4").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(parse_workload("bitrev", &t, &mut rng).is_err());
        assert!(parse_workload("nosuch", &t, &mut rng).is_err());
    }

    #[test]
    fn reconstruction_is_deterministic() {
        for (topo, wl) in [
            ("butterfly:4", "pairs:6"),
            ("butterfly:4", "bitrev"),
            ("random:6:3:0.4:7", "m2m:5"),
            ("mesh:5x5", "transpose"),
        ] {
            let (_, a) = reconstruct_problem(topo, wl, 42).unwrap();
            let (_, b) = reconstruct_problem(topo, wl, 42).unwrap();
            assert_eq!(a.num_packets(), b.num_packets(), "{topo}/{wl}");
            for (pa, pb) in a.packets().iter().zip(b.packets()) {
                assert_eq!(pa.path.source(), pb.path.source(), "{topo}/{wl}");
                assert_eq!(pa.path.edges(), pb.path.edges(), "{topo}/{wl}");
            }
        }
    }
}
