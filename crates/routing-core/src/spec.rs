//! Text specs for topologies and workloads.
//!
//! The CLI, the experiment harness, and the trace analyzer all need to
//! name an instance in a single string — `butterfly:10` + `bitrev` — and
//! reconstruct exactly the same [`RoutingProblem`] from it. This module
//! owns that grammar so a trace file's `meta` line (which records the
//! specs and the seed) is sufficient to rebuild the problem offline and
//! replay-verify the run against it.
//!
//! ```text
//! topology SPEC:
//!   butterfly:K | mesh:RxC[:tl|tr|bl|br] | linear:N | complete:LxW
//!   hypercube:D | tree:H | fattree:H[:CAP] | shuffle:K | benes:K
//!   random:L[:WMAX[:PROB[:SEED]]]
//!
//! workload WL:
//!   pairs:N | m2m:N | permutation | bitrev | transpose
//!   hotspot:N:D | funnel:N | level:FROM:TO | blast:FROM:TO
//! ```
//!
//! Reconstruction determinism: `random:*` topologies carry their own seed
//! (default 1) and draw from a private rng, and every randomized workload
//! draws from the caller's rng in a fixed order — so (topo spec, workload
//! spec, seed) identifies the instance exactly.

use crate::problem::RoutingProblem;
use crate::workloads::{self, ArrivalProcess};
use leveled_net::builders::{self, ButterflyCoords, MeshCoords, MeshCorner};
use leveled_net::LeveledNetwork;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Which simulation engine substrate executes a run.
///
/// This is the one typed surface for engine selection: the CLI
/// (`--engine`), `hotpotato serve`, the bench runner, and tests all pick
/// scalar/SoA by setting it explicitly on a [`RunSpec`] or a
/// `SimulationBuilder`. The legacy `HOTPOTATO_ENGINE` environment
/// variable is honored only as a deprecated fallback (with a one-time
/// warning) when no explicit kind was given — see
/// [`EngineKind::resolve`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The arena-based scalar engine (`Simulation`).
    Scalar,
    /// The data-oriented structure-of-arrays engine (bit-identical to
    /// scalar when run sequentially). The default.
    #[default]
    Soa,
}

impl EngineKind {
    /// Parses an engine name: `scalar` or `soa` (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(EngineKind::Scalar),
            "soa" => Ok(EngineKind::Soa),
            other => Err(format!("unknown engine '{other}' (scalar|soa)")),
        }
    }

    /// The canonical name [`EngineKind::parse`] accepts.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Scalar => "scalar",
            EngineKind::Soa => "soa",
        }
    }

    /// Resolves the engine to run: an explicit choice wins; otherwise
    /// the deprecated `HOTPOTATO_ENGINE` environment variable is
    /// consulted (warning once on stderr); otherwise the default
    /// ([`EngineKind::Soa`]).
    pub fn resolve(explicit: Option<EngineKind>) -> EngineKind {
        if let Some(kind) = explicit {
            return kind;
        }
        match std::env::var("HOTPOTATO_ENGINE") {
            Ok(v) => {
                if let Some(msg) = engine_env_deprecation_notice() {
                    eprintln!("{msg}");
                }
                if v.eq_ignore_ascii_case("scalar") {
                    EngineKind::Scalar
                } else {
                    EngineKind::Soa
                }
            }
            Err(_) => EngineKind::default(),
        }
    }
}

/// The `HOTPOTATO_ENGINE` deprecation warning, handed out exactly once
/// per process: the first caller gets the message, every later caller
/// gets `None`. A sweep instantiates hundreds of [`RunSpec`]s in one
/// process, and each deprecated-env resolution funnels through here, so
/// the warning cannot spam stderr once per run.
pub fn engine_env_deprecation_notice() -> Option<&'static str> {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let mut first = false;
    WARN_ONCE.call_once(|| first = true);
    first.then_some(
        "warning: HOTPOTATO_ENGINE is deprecated; select the engine \
         explicitly (--engine, RunSpec.engine, or SimulationBuilder::engine)",
    )
}

impl std::str::FromStr for EngineKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::parse(s)
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed topology plus the coordinate helpers some workloads need.
pub struct ParsedTopo {
    /// The network.
    pub net: Arc<LeveledNetwork>,
    /// Coordinates when the spec was a butterfly (for `permutation` /
    /// `bitrev`).
    pub butterfly: Option<ButterflyCoords>,
    /// Coordinates when the spec was a mesh (for `transpose`).
    pub mesh: Option<MeshCoords>,
}

/// Parses a topology spec (see the module docs for the grammar).
pub fn parse_topo(spec: &str) -> Result<ParsedTopo, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let kind = parts[0];
    let arg = |i: usize| -> Result<&str, String> {
        parts
            .get(i)
            .copied()
            .ok_or_else(|| format!("topology '{kind}' needs an argument at position {i}"))
    };
    let num = |s: &str| -> Result<u32, String> {
        s.parse::<u32>().map_err(|_| format!("bad number '{s}'"))
    };
    let plain = |net: LeveledNetwork| ParsedTopo {
        net: Arc::new(net),
        butterfly: None,
        mesh: None,
    };
    match kind {
        "butterfly" | "bf" => {
            let k = num(arg(1)?)?;
            if !(1..28).contains(&k) {
                return Err(format!("butterfly dimension {k} out of range (1..=27)"));
            }
            Ok(ParsedTopo {
                net: Arc::new(builders::butterfly(k)),
                butterfly: Some(ButterflyCoords { k }),
                mesh: None,
            })
        }
        "mesh" => {
            let dims: Vec<&str> = arg(1)?.split('x').collect();
            if dims.len() != 2 {
                return Err("mesh needs RxC, e.g. mesh:8x8".into());
            }
            let (r, c) = (num(dims[0])? as usize, num(dims[1])? as usize);
            let corner = match parts.get(2).copied().unwrap_or("tl") {
                "tl" => MeshCorner::TopLeft,
                "tr" => MeshCorner::TopRight,
                "bl" => MeshCorner::BottomLeft,
                "br" => MeshCorner::BottomRight,
                other => return Err(format!("unknown mesh corner '{other}'")),
            };
            let (net, coords) = builders::mesh(r, c, corner);
            Ok(ParsedTopo {
                net: Arc::new(net),
                butterfly: None,
                mesh: Some(coords),
            })
        }
        "linear" => Ok(plain(builders::linear_array(num(arg(1)?)? as usize))),
        "complete" => {
            let dims: Vec<&str> = arg(1)?.split('x').collect();
            if dims.len() != 2 {
                return Err("complete needs LxW, e.g. complete:10x4".into());
            }
            Ok(plain(builders::complete_leveled(
                num(dims[0])?,
                num(dims[1])? as usize,
            )))
        }
        "hypercube" => Ok(plain(builders::hypercube(num(arg(1)?)?).0)),
        "tree" => Ok(plain(builders::binary_tree(num(arg(1)?)?))),
        "fattree" => {
            let h = num(arg(1)?)?;
            let cap = parts.get(2).map(|s| num(s)).transpose()?.unwrap_or(4) as usize;
            Ok(plain(builders::fat_tree(h, cap)))
        }
        "shuffle" => {
            let k = num(arg(1)?)?;
            if !(1..28).contains(&k) {
                return Err(format!(
                    "shuffle-exchange dimension {k} out of range (1..=27)"
                ));
            }
            Ok(plain(builders::shuffle_exchange_unrolled(k)))
        }
        "benes" => {
            let k = num(arg(1)?)?;
            if !(1..27).contains(&k) {
                return Err(format!("Beneš dimension {k} out of range (1..=26)"));
            }
            Ok(plain(builders::benes(k).0))
        }
        "random" => {
            let l = num(arg(1)?)?;
            let wmax = parts.get(2).map(|s| num(s)).transpose()?.unwrap_or(4) as usize;
            let prob = parts
                .get(3)
                .map(|s| {
                    s.parse::<f64>()
                        .map_err(|_| format!("bad probability '{s}'"))
                })
                .transpose()?
                .unwrap_or(0.3);
            let seed = parts.get(4).map(|s| num(s)).transpose()?.unwrap_or(1) as u64;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Ok(plain(builders::random_leveled(l, 1..=wmax, prob, &mut rng)))
        }
        other => Err(format!("unknown topology '{other}'")),
    }
}

/// Parses a workload spec against `topo`, drawing any randomness from
/// `rng` (see the module docs for the grammar).
pub fn parse_workload<R: Rng + ?Sized>(
    spec: &str,
    topo: &ParsedTopo,
    rng: &mut R,
) -> Result<Arc<RoutingProblem>, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |i: usize| -> Result<usize, String> {
        parts
            .get(i)
            .ok_or_else(|| format!("workload '{}' needs an argument", parts[0]))?
            .parse::<usize>()
            .map_err(|e| format!("bad number: {e}"))
    };
    let net = &topo.net;
    match parts[0] {
        "pairs" => workloads::random_pairs(net, num(1)?, rng).map_err(|e| e.to_string()),
        "m2m" => workloads::many_to_many(net, num(1)?, rng).map_err(|e| e.to_string()),
        "permutation" | "perm" => {
            let coords = topo
                .butterfly
                .ok_or("permutation needs a butterfly topology")?;
            Ok(workloads::butterfly_permutation(net, &coords, rng))
        }
        "bitrev" => {
            let coords = topo.butterfly.ok_or("bitrev needs a butterfly topology")?;
            Ok(workloads::butterfly_bit_reversal(net, &coords))
        }
        "transpose" => {
            let coords = topo.mesh.ok_or("transpose needs a mesh topology")?;
            workloads::mesh_transpose(net, &coords).map_err(|e| e.to_string())
        }
        "hotspot" => workloads::hotspot(net, num(1)?, num(2)?, rng).map_err(|e| e.to_string()),
        "funnel" => workloads::funnel(net, num(1)?, rng).map_err(|e| e.to_string()),
        "level" => workloads::level_to_level(net, num(1)? as u32, num(2)? as u32, rng)
            .map_err(|e| e.to_string()),
        "blast" => workloads::first_fit_blast(net, num(1)? as u32, num(2)? as u32)
            .map_err(|e| e.to_string()),
        other => Err(format!("unknown workload '{other}'")),
    }
}

/// Rebuilds the exact problem identified by `(topo, workload, seed)` — the
/// triple a trace file's `meta` line records. Returns the parsed topology
/// alongside the problem so callers can reuse the network.
pub fn reconstruct_problem(
    topo_spec: &str,
    workload_spec: &str,
    seed: u64,
) -> Result<(ParsedTopo, Arc<RoutingProblem>), String> {
    let topo = parse_topo(topo_spec)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let problem = parse_workload(workload_spec, &topo, &mut rng)?;
    Ok((topo, problem))
}

/// One hosted run, as `hotpotato serve` names it: the instance triple
/// plus the algorithm, parsed from a single
/// `TOPO/WL[/ALGO[/SEED[/ARRIVAL]]]` string (`/`-separated because the
/// topo and workload specs themselves use `:`). Examples:
/// `bf:10/bitrev/busch/7` (batch), `bf:10/pairs:64/greedy/7/poisson:0.5`
/// (streaming).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// Topology spec ([`parse_topo`] grammar).
    pub topo: String,
    /// Workload spec ([`parse_workload`] grammar).
    pub workload: String,
    /// Algorithm name (`busch`, `greedy`, ... — validated by the router
    /// dispatch, not here).
    pub algo: String,
    /// Run seed (workload generation, arrival schedule, and routing
    /// share it).
    pub seed: u64,
    /// Arrival-process spec segment ([`ArrivalProcess::parse`] grammar);
    /// `None` selects classic batch mode (all packets ready at step 0).
    pub arrival: Option<String>,
    /// Explicit engine choice; `None` defers to
    /// [`EngineKind::resolve`]'s deprecated-env-var fallback/default.
    pub engine: Option<EngineKind>,
}

impl RunSpec {
    /// A batch-mode spec with no explicit engine — the shape every
    /// pre-streaming call site used.
    pub fn batch(topo: &str, workload: &str, algo: &str, seed: u64) -> Self {
        RunSpec {
            topo: topo.to_string(),
            workload: workload.to_string(),
            algo: algo.to_string(),
            seed,
            arrival: None,
            engine: None,
        }
    }

    /// A URL-safe run name, unique per distinct spec:
    /// `bf:10/bitrev/busch/7` → `busch-bf_10-bitrev-7`; a streaming
    /// spec appends its arrival segment
    /// (`…/poisson:0.5` → `…-7-poisson_0.5`).
    pub fn name(&self) -> String {
        let mut name = format!(
            "{}-{}-{}-{}",
            self.algo,
            self.topo.replace(':', "_"),
            self.workload.replace(':', "_"),
            self.seed
        );
        if let Some(arrival) = &self.arrival {
            name.push('-');
            name.push_str(&arrival.replace([':', ','], "_"));
        }
        name
    }

    /// The parsed arrival process, or `None` for batch mode.
    pub fn arrival_process(&self) -> Result<Option<ArrivalProcess>, String> {
        self.arrival
            .as_deref()
            .map(ArrivalProcess::parse)
            .transpose()
    }

    /// The engine this spec resolves to (explicit choice, else the
    /// deprecated env-var fallback, else the default).
    pub fn engine_kind(&self) -> EngineKind {
        EngineKind::resolve(self.engine)
    }

    /// Builds the exact instance this spec names: parses the topology,
    /// seeds one rng from `seed`, draws the workload from it, and
    /// returns the rng **in its post-workload state** — the router must
    /// continue from that same stream for the run to be reproducible
    /// from the spec alone. This is the single instantiation path shared
    /// by `hotpotato route`, `hotpotato serve`, and the bench harness.
    pub fn instantiate(&self) -> Result<(ParsedTopo, Arc<RoutingProblem>, ChaCha8Rng), String> {
        let topo = parse_topo(&self.topo)?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let problem = parse_workload(&self.workload, &topo, &mut rng)?;
        Ok((topo, problem, rng))
    }
}

/// Every algorithm name some driver dispatches on: the batch routers
/// (`hotpotato route`, serve) plus the streaming-only priority rules.
/// [`parse_run_spec`] validates against this list so a typo fails at
/// parse time with the valid set in the message, not deep in a driver.
pub const KNOWN_ALGOS: &[&str] = &["busch", "greedy", "ftg", "rank", "sf", "sfrank", "aging"];

/// Parses a [`RunSpec`] from `TOPO/WL[/ALGO[/SEED[/ARRIVAL]]]`. The
/// algorithm defaults to `busch`, the seed to 1, and the arrival process
/// to none (batch mode). The algorithm, seed and arrival segments are
/// validated here; the topo and workload grammars are checked when the
/// problem is reconstructed.
pub fn parse_run_spec(spec: &str) -> Result<RunSpec, String> {
    const SEGMENTS: [&str; 5] = ["topo", "workload", "algo", "seed", "arrival"];
    let parts: Vec<&str> = spec.split('/').collect();
    if !(2..=5).contains(&parts.len()) {
        return Err(format!(
            "run spec '{spec}' must be TOPO/WL[/ALGO[/SEED[/ARRIVAL]]], \
             e.g. bf:10/bitrev/busch/7 or bf:10/pairs:64/greedy/7/poisson:0.5"
        ));
    }
    for (i, p) in parts.iter().enumerate() {
        if p.is_empty() {
            return Err(format!(
                "run spec '{spec}' has an empty {} segment",
                SEGMENTS[i]
            ));
        }
    }
    if let Some(algo) = parts.get(2) {
        if !KNOWN_ALGOS.contains(algo) {
            return Err(format!(
                "unknown algorithm '{algo}' (known: {})",
                KNOWN_ALGOS.join("|")
            ));
        }
    }
    let seed = match parts.get(3) {
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| format!("bad run seed '{s}'"))?,
        None => 1,
    };
    let arrival = match parts.get(4) {
        Some(s) => {
            ArrivalProcess::parse(s)?;
            Some((*s).to_string())
        }
        None => None,
    };
    Ok(RunSpec {
        topo: parts[0].to_string(),
        workload: parts[1].to_string(),
        algo: parts.get(2).copied().unwrap_or("busch").to_string(),
        seed,
        arrival,
        engine: None,
    })
}

/// The most runs one sweep expression may expand to — a typo guard
/// (`1..10000000`), not a capacity statement.
pub const MAX_SWEEP_RUNS: usize = 100_000;

/// Expands a **sweep expression** into concrete run specs.
///
/// A sweep expression is a run spec in which any integer may be written
/// as an inclusive range `LO..HI`. Every range position expands over its
/// values and the full cross product is returned, leftmost range varying
/// slowest; each concrete spec is validated through [`parse_run_spec`].
/// Ranges compose with every grammar position that takes an integer —
/// topology sizes, workload counts, and seeds alike:
///
/// ```text
/// bf:6..8/bitrev/busch/1..25        3 sizes × 25 seeds = 75 runs
/// mesh:4x4/transpose/busch/1..50    one instance, 50 seeds
/// bf:8/pairs:64..66/greedy/7/poisson:0.5   3 workload sizes (floats untouched)
/// ```
///
/// A plain run spec (no ranges) expands to itself. Expansion is capped
/// at [`MAX_SWEEP_RUNS`]; descending ranges are rejected.
pub fn expand_sweep(expr: &str) -> Result<Vec<RunSpec>, String> {
    let mut out = Vec::new();
    expand_sweep_into(expr, &mut out)?;
    Ok(out)
}

fn expand_sweep_into(expr: &str, out: &mut Vec<RunSpec>) -> Result<(), String> {
    match find_range(expr)? {
        Some((start, end, lo, hi)) => {
            for v in lo..=hi {
                let concrete = format!("{}{}{}", &expr[..start], v, &expr[end..]);
                expand_sweep_into(&concrete, out)?;
            }
            Ok(())
        }
        None => {
            if out.len() >= MAX_SWEEP_RUNS {
                return Err(format!("sweep expands to more than {MAX_SWEEP_RUNS} runs"));
            }
            out.push(parse_run_spec(expr)?);
            Ok(())
        }
    }
}

/// Finds the leftmost `LO..HI` integer range in `expr` and returns its
/// byte span and bounds. Single dots (`poisson:0.5`, `random:6:3:0.4`)
/// are not ranges: both sides of the `..` must be digit runs.
fn find_range(expr: &str) -> Result<Option<(usize, usize, u64, u64)>, String> {
    let b = expr.as_bytes();
    for i in 0..b.len().saturating_sub(1) {
        if b[i] != b'.' || b[i + 1] != b'.' {
            continue;
        }
        let mut start = i;
        while start > 0 && b[start - 1].is_ascii_digit() {
            start -= 1;
        }
        let mut end = i + 2;
        while end < b.len() && b[end].is_ascii_digit() {
            end += 1;
        }
        if start == i || end == i + 2 {
            continue; // a lone `..` with no digits on one side
        }
        let lo: u64 = expr[start..i]
            .parse()
            .map_err(|_| format!("bad sweep range start in '{expr}'"))?;
        let hi: u64 = expr[i + 2..end]
            .parse()
            .map_err(|_| format!("bad sweep range end in '{expr}'"))?;
        if lo > hi {
            return Err(format!("descending sweep range {lo}..{hi} in '{expr}'"));
        }
        return Ok(Some((start, end, lo, hi)));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_specs_parse_with_defaults() {
        let full = parse_run_spec("bf:10/bitrev/greedy/7").unwrap();
        assert_eq!(
            full,
            RunSpec {
                topo: "bf:10".into(),
                workload: "bitrev".into(),
                algo: "greedy".into(),
                seed: 7,
                arrival: None,
                engine: None,
            }
        );
        assert_eq!(full.name(), "greedy-bf_10-bitrev-7");

        let minimal = parse_run_spec("mesh:8x8/transpose").unwrap();
        assert_eq!(minimal.algo, "busch");
        assert_eq!(minimal.seed, 1);
        assert!(minimal.arrival.is_none());

        let streaming = parse_run_spec("bf:10/pairs:64/greedy/7/poisson:0.5").unwrap();
        assert_eq!(streaming.arrival.as_deref(), Some("poisson:0.5"));
        assert_eq!(
            streaming.arrival_process().unwrap(),
            Some(ArrivalProcess::Poisson { rate: 0.5 })
        );
        assert_eq!(streaming.name(), "greedy-bf_10-pairs_64-7-poisson_0.5");

        assert!(parse_run_spec("bf:10").is_err());
        assert!(parse_run_spec("bf:10/bitrev/busch/7/poisson:0.5/extra").is_err());
        assert!(parse_run_spec("bf:10//busch").is_err());
        assert!(parse_run_spec("bf:10/bitrev/busch/x").is_err());
        assert!(parse_run_spec("bf:10/bitrev/busch/7/nosuch:1").is_err());
    }

    #[test]
    fn engine_kinds_parse_and_resolve() {
        assert_eq!(EngineKind::parse("scalar").unwrap(), EngineKind::Scalar);
        assert_eq!(EngineKind::parse("SoA").unwrap(), EngineKind::Soa);
        assert!(EngineKind::parse("vector").is_err());
        assert_eq!(
            EngineKind::resolve(Some(EngineKind::Scalar)),
            EngineKind::Scalar
        );
        // Explicit choice wins over anything the environment says.
        let spec = RunSpec {
            engine: Some(EngineKind::Scalar),
            ..RunSpec::batch("bf:4", "bitrev", "busch", 1)
        };
        assert_eq!(spec.engine_kind(), EngineKind::Scalar);
        assert_eq!(
            RunSpec::batch("bf:4", "bitrev", "busch", 1).name(),
            "busch-bf_4-bitrev-1"
        );
    }

    #[test]
    fn instantiate_matches_reconstruct_and_returns_live_rng() {
        let spec = parse_run_spec("butterfly:4/pairs:6/greedy/42").unwrap();
        let (_, via_spec, mut rng) = spec.instantiate().unwrap();
        let (_, via_reconstruct) = reconstruct_problem("butterfly:4", "pairs:6", 42).unwrap();
        assert_eq!(via_spec.num_packets(), via_reconstruct.num_packets());
        for (a, b) in via_spec.packets().iter().zip(via_reconstruct.packets()) {
            assert_eq!(a.path.edges(), b.path.edges());
        }
        // The returned rng continues the same stream the workload drew
        // from: instantiating twice and drawing must agree.
        let (_, _, mut rng2) = spec.instantiate().unwrap();
        assert_eq!(rng.gen::<u64>(), rng2.gen::<u64>());
    }

    #[test]
    fn sweeps_expand_cross_products_in_order() {
        let runs = expand_sweep("bf:6..8/bitrev/busch/1..3").unwrap();
        assert_eq!(runs.len(), 9);
        // Leftmost range varies slowest.
        assert_eq!(runs[0], RunSpec::batch("bf:6", "bitrev", "busch", 1));
        assert_eq!(runs[2], RunSpec::batch("bf:6", "bitrev", "busch", 3));
        assert_eq!(runs[3], RunSpec::batch("bf:7", "bitrev", "busch", 1));
        assert_eq!(runs[8], RunSpec::batch("bf:8", "bitrev", "busch", 3));
        // A plain spec expands to itself.
        let one = expand_sweep("mesh:4x4/transpose/busch/7").unwrap();
        assert_eq!(
            one,
            vec![RunSpec::batch("mesh:4x4", "transpose", "busch", 7)]
        );
    }

    #[test]
    fn sweep_ranges_leave_floats_alone_and_reject_bad_shapes() {
        // `poisson:0.5` carries a single dot: not a range.
        let runs = expand_sweep("bf:8/pairs:4..6/greedy/7/poisson:0.5").unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].workload, "pairs:4");
        assert_eq!(runs[2].workload, "pairs:6");
        assert_eq!(runs[0].arrival.as_deref(), Some("poisson:0.5"));

        assert!(
            expand_sweep("bf:8/bitrev/busch/5..3").is_err(),
            "descending"
        );
        assert!(expand_sweep("bf:8/bitrev/nosuch/1..3").is_err(), "bad algo");
        assert!(expand_sweep("bf:8/bitrev/busch/1..999999").is_err(), "cap");
    }

    #[test]
    fn engine_env_deprecation_warns_once_per_process() {
        // The first caller in the process may or may not have run
        // already (test order is unspecified); what is pinned is that
        // once drained, the notice never fires again — the sweep
        // anti-spam contract.
        let _ = engine_env_deprecation_notice();
        assert!(engine_env_deprecation_notice().is_none());
        assert!(engine_env_deprecation_notice().is_none());
    }

    #[test]
    fn butterfly_spec_carries_coords() {
        let t = parse_topo("butterfly:3").unwrap();
        assert_eq!(t.butterfly.unwrap().k, 3);
        assert!(t.mesh.is_none());
        assert_eq!(t.net.depth(), 3);
        // Short alias.
        assert_eq!(
            parse_topo("bf:3").unwrap().net.num_nodes(),
            t.net.num_nodes()
        );
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(parse_topo("butterfly").is_err());
        assert!(parse_topo("butterfly:0").is_err());
        assert!(parse_topo("mesh:8").is_err());
        assert!(parse_topo("mesh:8x8:xx").is_err());
        assert!(parse_topo("nosuch:1").is_err());
        let t = parse_topo("linear:4").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(parse_workload("bitrev", &t, &mut rng).is_err());
        assert!(parse_workload("nosuch", &t, &mut rng).is_err());
    }

    #[test]
    fn reconstruction_is_deterministic() {
        for (topo, wl) in [
            ("butterfly:4", "pairs:6"),
            ("butterfly:4", "bitrev"),
            ("random:6:3:0.4:7", "m2m:5"),
            ("mesh:5x5", "transpose"),
        ] {
            let (_, a) = reconstruct_problem(topo, wl, 42).unwrap();
            let (_, b) = reconstruct_problem(topo, wl, 42).unwrap();
            assert_eq!(a.num_packets(), b.num_packets(), "{topo}/{wl}");
            for (pa, pb) in a.packets().iter().zip(b.packets()) {
                assert_eq!(pa.path.source(), pb.path.source(), "{topo}/{wl}");
                assert_eq!(pa.path.edges(), pb.path.edges(), "{topo}/{wl}");
            }
        }
    }
}
