//! Routing-problem generators.
//!
//! Each generator produces a many-to-one [`RoutingProblem`] (at most one
//! packet per source node) with preselected valid paths. The experiments
//! use them to sweep the paper's two governing parameters independently:
//! `C` via [`funnel`] (which concentrates a chosen number of paths on one
//! edge), `L`/`D` via topology size, and `N` via packet count.

use crate::path::Path;
use crate::paths::{self, MeshAxis, MinimalPathSampler};
use crate::problem::RoutingProblem;
use leveled_net::builders::{ButterflyCoords, MeshCoords};
use leveled_net::{Level, LeveledNetwork, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// Errors raised by workload generators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadError {
    /// The network cannot host the requested number of packets.
    NotEnoughSources {
        /// How many sources were requested.
        requested: usize,
        /// How many admissible sources exist.
        available: usize,
    },
    /// A generator-specific precondition failed (e.g. mesh too small).
    Unsupported(&'static str),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::NotEnoughSources {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} packets but only {available} admissible sources exist"
            ),
            WorkloadError::Unsupported(msg) => write!(f, "unsupported workload: {msg}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// `n` packets from distinct random sources, each to a uniformly random
/// strictly-higher reachable destination, along a uniformly random valid
/// path.
pub fn random_pairs<R: Rng + ?Sized>(
    net: &Arc<LeveledNetwork>,
    n: usize,
    rng: &mut R,
) -> Result<Arc<RoutingProblem>, WorkloadError> {
    // Admissible sources: nodes with at least one forward edge.
    let mut candidates: Vec<NodeId> = net
        .nodes()
        .filter(|&v| !net.fwd_edges(v).is_empty())
        .collect();
    if candidates.len() < n {
        return Err(WorkloadError::NotEnoughSources {
            requested: n,
            available: candidates.len(),
        });
    }
    candidates.shuffle(rng);
    let mut paths_out = Vec::with_capacity(n);
    for &src in candidates.iter().take(n) {
        let mask = net.reachable_mask(src);
        let lvl = net.level(src);
        let dests: Vec<NodeId> = net
            .nodes()
            .filter(|&v| mask[v.index()] && net.level(v) > lvl)
            .collect();
        debug_assert!(!dests.is_empty(), "source has a forward edge");
        let dst = *dests.choose(rng).expect("non-empty");
        let p = paths::random_minimal(net, src, dst, rng).expect("dest is reachable");
        paths_out.push(p);
    }
    RoutingProblem::new(Arc::clone(net), paths_out)
        .map(Arc::new)
        .map_err(|_| unreachable!("distinct sources"))
}

/// A random full permutation on a butterfly: every level-0 node sends to a
/// distinct level-`k` node along its unique bit-fixing path.
pub fn butterfly_permutation<R: Rng + ?Sized>(
    net: &Arc<LeveledNetwork>,
    coords: &ButterflyCoords,
    rng: &mut R,
) -> Arc<RoutingProblem> {
    let rows = coords.rows();
    let mut perm: Vec<usize> = (0..rows).collect();
    perm.shuffle(rng);
    let paths_out = (0..rows)
        .map(|r| paths::bit_fixing(net, coords, r, perm[r]))
        .collect();
    Arc::new(RoutingProblem::new(Arc::clone(net), paths_out).expect("level-0 sources are distinct"))
}

/// The bit-reversal permutation on a butterfly: row `r` sends to row
/// `reverse(r)`. With bit-fixing paths this is the classic adversarial
/// permutation with congestion `Θ(√N)` — a `C ≫ L` stress workload.
pub fn butterfly_bit_reversal(
    net: &Arc<LeveledNetwork>,
    coords: &ButterflyCoords,
) -> Arc<RoutingProblem> {
    let k = coords.k;
    let rows = coords.rows();
    let rev = |r: usize| -> usize {
        let mut out = 0usize;
        for b in 0..k {
            if r & (1 << b) != 0 {
                out |= 1 << (k - 1 - b);
            }
        }
        out
    };
    let paths_out = (0..rows)
        .map(|r| paths::bit_fixing(net, coords, r, rev(r)))
        .collect();
    Arc::new(RoutingProblem::new(Arc::clone(net), paths_out).expect("level-0 sources are distinct"))
}

/// `n` packets on distinct sources, each following a uniformly random
/// forward walk from its source to the network's last level.
///
/// Sources are the first `n` admissible nodes (nodes with at least one
/// forward edge) in ascending id order, so `n` equal to the admissible
/// count puts exactly one packet on every non-final node — the
/// million-packet saturation workload for large instances. Unlike
/// [`random_pairs`] this never materializes per-source reachability
/// masks, so it stays linear in `n · depth` and is usable at bf(16)
/// scale.
pub fn random_walks<R: Rng + ?Sized>(
    net: &Arc<LeveledNetwork>,
    n: usize,
    rng: &mut R,
) -> Result<Arc<RoutingProblem>, WorkloadError> {
    let sources: Vec<NodeId> = net
        .nodes()
        .filter(|&v| !net.fwd_edges(v).is_empty())
        .take(n)
        .collect();
    if sources.len() < n {
        return Err(WorkloadError::NotEnoughSources {
            requested: n,
            available: net
                .nodes()
                .filter(|&v| !net.fwd_edges(v).is_empty())
                .count(),
        });
    }
    let mut paths_out = Vec::with_capacity(n);
    for &src in &sources {
        let mut edges = Vec::new();
        let mut at = src;
        loop {
            let fwd = net.fwd_edges(at);
            if fwd.is_empty() {
                break;
            }
            let e = fwd[rng.gen_range(0..fwd.len())];
            edges.push(e);
            at = net.edge(e).head;
        }
        paths_out.push(Path::new(net, src, edges).expect("forward edges chain"));
    }
    RoutingProblem::new(Arc::clone(net), paths_out)
        .map(Arc::new)
        .map_err(|_| unreachable!("sources are distinct by construction"))
}

/// A hot-spot workload: `num_sources` packets from distinct random sources,
/// each aimed at one of `num_dests` randomly chosen destination nodes
/// (many-to-one concentration).
pub fn hotspot<R: Rng + ?Sized>(
    net: &Arc<LeveledNetwork>,
    num_sources: usize,
    num_dests: usize,
    rng: &mut R,
) -> Result<Arc<RoutingProblem>, WorkloadError> {
    assert!(num_dests >= 1);
    // Destinations: prefer nodes in the upper half of the network so they
    // have many potential sources.
    let mid = net.depth() / 2;
    let mut dest_candidates: Vec<NodeId> = net
        .nodes()
        .filter(|&v| net.level(v) >= mid && net.level(v) >= 1)
        .collect();
    dest_candidates.shuffle(rng);
    let dests: Vec<NodeId> = dest_candidates.into_iter().take(num_dests).collect();
    if dests.is_empty() {
        return Err(WorkloadError::Unsupported(
            "network too shallow for hotspot",
        ));
    }
    let samplers: Vec<MinimalPathSampler> = dests
        .iter()
        .map(|&d| MinimalPathSampler::new(net, d))
        .collect();
    // Sources: nodes that strictly reach at least one destination.
    let mut sources: Vec<NodeId> = net
        .nodes()
        .filter(|&v| {
            samplers
                .iter()
                .any(|s| v != s.dest() && s.reaches(v) && net.level(v) < net.level(s.dest()))
        })
        .collect();
    if sources.len() < num_sources {
        return Err(WorkloadError::NotEnoughSources {
            requested: num_sources,
            available: sources.len(),
        });
    }
    sources.shuffle(rng);
    let mut paths_out = Vec::with_capacity(num_sources);
    for &src in sources.iter().take(num_sources) {
        let viable: Vec<&MinimalPathSampler> = samplers
            .iter()
            .filter(|s| src != s.dest() && s.reaches(src) && net.level(src) < net.level(s.dest()))
            .collect();
        let s = viable.choose(rng).expect("source reaches a destination");
        paths_out.push(s.sample(net, src, rng).expect("reachable"));
    }
    RoutingProblem::new(Arc::clone(net), paths_out)
        .map(Arc::new)
        .map_err(|_| unreachable!("distinct sources"))
}

/// The §5 mesh workload with `C = D = Θ(n)`: on an `n x n` top-left mesh,
/// packet `i` travels from `(i, 0)` to `(n-1, i)` along the row-first
/// dimension-order path (down column 0, then right along the bottom row).
/// All packets share the lowest edge of column 0, so `C = n - 1`, and every
/// path has length exactly `n - 1`, so `D = n - 1`, while `L = 2n - 2`.
pub fn mesh_transpose(
    net: &Arc<LeveledNetwork>,
    coords: &MeshCoords,
) -> Result<Arc<RoutingProblem>, WorkloadError> {
    let n = coords.rows;
    if coords.cols != n {
        return Err(WorkloadError::Unsupported(
            "mesh_transpose needs a square mesh",
        ));
    }
    if n < 2 {
        return Err(WorkloadError::Unsupported("mesh too small"));
    }
    let mut paths_out = Vec::with_capacity(n);
    for i in 0..n {
        let p = paths::dimension_order_mesh(net, coords, (i, 0), (n - 1, i), MeshAxis::RowFirst)
            .expect("monotone in the top-left orientation");
        paths_out.push(p);
    }
    RoutingProblem::new(Arc::clone(net), paths_out)
        .map(Arc::new)
        .map_err(|_| unreachable!("distinct sources"))
}

/// Every node of `from_level` sends to a uniformly random reachable node of
/// `to_level`, along a uniformly random valid path. Skips sources that
/// reach no `to_level` node.
pub fn level_to_level<R: Rng + ?Sized>(
    net: &Arc<LeveledNetwork>,
    from_level: Level,
    to_level: Level,
    rng: &mut R,
) -> Result<Arc<RoutingProblem>, WorkloadError> {
    if from_level >= to_level || to_level > net.depth() {
        return Err(WorkloadError::Unsupported(
            "need from_level < to_level <= L",
        ));
    }
    let dests: Vec<NodeId> = net.nodes_at_level(to_level).to_vec();
    let samplers: Vec<MinimalPathSampler> = dests
        .iter()
        .map(|&d| MinimalPathSampler::new(net, d))
        .collect();
    let mut paths_out = Vec::new();
    for &src in net.nodes_at_level(from_level) {
        let viable: Vec<&MinimalPathSampler> = samplers.iter().filter(|s| s.reaches(src)).collect();
        if let Some(s) = viable.choose(rng) {
            paths_out.push(s.sample(net, src, rng).expect("reachable"));
        }
    }
    if paths_out.is_empty() {
        return Err(WorkloadError::NotEnoughSources {
            requested: net.nodes_at_level(from_level).len(),
            available: 0,
        });
    }
    RoutingProblem::new(Arc::clone(net), paths_out)
        .map(Arc::new)
        .map_err(|_| unreachable!("distinct sources"))
}

/// A congestion-dial workload: funnels up to `count` packets through a
/// single pivot edge near the middle of the network, so the resulting
/// problem has congestion `C ≈ count` independent of `L` and a dilation of
/// `Θ(L)`. This is the workload the `T1` scaling experiment uses to sweep
/// `C` while holding the topology fixed.
///
/// ```
/// use leveled_net::builders;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let net = Arc::new(builders::complete_leveled(10, 4));
/// let prob = routing_core::workloads::funnel(&net, 12, &mut rng).unwrap();
/// assert!(prob.congestion() >= 12); // all paths share the pivot edge
/// ```
///
/// Each packet starts at a distinct node that reaches the pivot's tail,
/// runs to the pivot along a random valid path, crosses the pivot, and
/// continues to a random destination reachable from the pivot's head.
pub fn funnel<R: Rng + ?Sized>(
    net: &Arc<LeveledNetwork>,
    count: usize,
    rng: &mut R,
) -> Result<Arc<RoutingProblem>, WorkloadError> {
    // Pick a pivot edge whose tail level is as close to L/2 as possible,
    // maximizing the number of upstream sources.
    let mid = net.depth() / 2;
    let pivot = net
        .edge_ids()
        .min_by_key(|&e| {
            let lt = net.level(net.edge(e).tail);
            (lt as i64 - mid as i64).abs()
        })
        .ok_or(WorkloadError::Unsupported("network has no edges"))?;
    let pt = net.edge(pivot).tail;
    let ph = net.edge(pivot).head;

    let upstream_sampler = MinimalPathSampler::new(net, pt);
    let mut sources: Vec<NodeId> = net
        .nodes()
        .filter(|&v| upstream_sampler.reaches(v))
        .collect();
    if sources.len() < count {
        return Err(WorkloadError::NotEnoughSources {
            requested: count,
            available: sources.len(),
        });
    }
    sources.shuffle(rng);

    let down_mask = net.reachable_mask(ph);
    let dests: Vec<NodeId> = net.nodes().filter(|&v| down_mask[v.index()]).collect();
    debug_assert!(!dests.is_empty());

    let mut paths_out = Vec::with_capacity(count);
    for &src in sources.iter().take(count) {
        let up = upstream_sampler
            .sample(net, src, rng)
            .expect("source reaches pivot tail");
        let dst = *dests.choose(rng).expect("non-empty");
        let down = paths::random_minimal(net, ph, dst, rng).expect("reachable from pivot head");
        let mut edges = up.edges().to_vec();
        edges.push(pivot);
        edges.extend_from_slice(down.edges());
        paths_out.push(Path::new(net, src, edges).expect("segments chain through the pivot"));
    }
    RoutingProblem::new(Arc::clone(net), paths_out)
        .map(Arc::new)
        .map_err(|_| unreachable!("distinct sources"))
}

/// An adversarial concentration workload: every node of `from_level`
/// routes to a node of `to_level` along its deterministic
/// *lexicographically-first* path ([`paths::first_minimal`]), so traffic
/// piles onto the lexicographically smallest edges — congestion close to
/// the theoretical maximum for the pair of levels. Destinations are
/// assigned round-robin among the `to_level` nodes each source reaches.
pub fn first_fit_blast(
    net: &Arc<LeveledNetwork>,
    from_level: Level,
    to_level: Level,
) -> Result<Arc<RoutingProblem>, WorkloadError> {
    if from_level >= to_level || to_level > net.depth() {
        return Err(WorkloadError::Unsupported(
            "need from_level < to_level <= L",
        ));
    }
    let dests = net.nodes_at_level(to_level);
    let mut paths_out = Vec::new();
    for (i, &src) in net.nodes_at_level(from_level).iter().enumerate() {
        // Round-robin over destinations, skipping unreachable ones.
        let mut chosen = None;
        for off in 0..dests.len() {
            let dst = dests[(i + off) % dests.len()];
            if let Some(p) = paths::first_minimal(net, src, dst) {
                chosen = Some(p);
                break;
            }
        }
        if let Some(p) = chosen {
            paths_out.push(p);
        }
    }
    if paths_out.is_empty() {
        return Err(WorkloadError::NotEnoughSources {
            requested: net.nodes_at_level(from_level).len(),
            available: 0,
        });
    }
    RoutingProblem::new(Arc::clone(net), paths_out)
        .map(Arc::new)
        .map_err(|_| unreachable!("distinct sources"))
}

/// A many-to-many workload (relaxed model, reference 7 in the paper): `total`
/// packets whose sources are drawn **with replacement** from the nodes
/// with forward edges, each to a uniformly random reachable higher-level
/// destination along a random path. The same node may emit several
/// packets; the returned problem reports `is_relaxed() == true`.
pub fn many_to_many<R: Rng + ?Sized>(
    net: &Arc<LeveledNetwork>,
    total: usize,
    rng: &mut R,
) -> Result<Arc<RoutingProblem>, WorkloadError> {
    let candidates: Vec<NodeId> = net
        .nodes()
        .filter(|&v| !net.fwd_edges(v).is_empty())
        .collect();
    if candidates.is_empty() {
        return Err(WorkloadError::NotEnoughSources {
            requested: total,
            available: 0,
        });
    }
    let mut paths_out = Vec::with_capacity(total);
    for _ in 0..total {
        let src = *candidates.choose(rng).expect("non-empty");
        let mask = net.reachable_mask(src);
        let lvl = net.level(src);
        let dests: Vec<NodeId> = net
            .nodes()
            .filter(|&v| mask[v.index()] && net.level(v) > lvl)
            .collect();
        let dst = *dests.choose(rng).expect("source has a forward edge");
        paths_out.push(paths::random_minimal(net, src, dst, rng).expect("reachable"));
    }
    Ok(Arc::new(RoutingProblem::new_relaxed(
        Arc::clone(net),
        paths_out,
    )))
}

/// An arrival process for streaming (continuous-injection) runs: how the
/// packets of a [`RoutingProblem`] become *available for injection* over
/// time, instead of all being ready at step 0 as in batch mode.
///
/// The process assigns each packet an **arrival step**; the streaming
/// driver only starts injecting a packet once the simulation clock
/// reaches that step (and admission control may defer or drop it after
/// that). Spec grammar (the optional fifth `/`-segment of a run spec):
///
/// ```text
/// poisson:RATE          exponential inter-arrival gaps, RATE pkts/step
/// burst:SIZE:PERIOD     periodic bursts: SIZE packets every PERIOD steps
/// replay:T0,T1,..       explicit arrival trace, one step per packet
/// adversarial:SIZE:GAP  worst-case burst train: SIZE-packet bursts with
///                       GAP-step quiet gaps, where a seeded coin per
///                       boundary coalesces adjacent bursts onto one step
/// ```
///
/// Schedules are deterministic given the caller's rng (Poisson and
/// adversarial draw from it; bursts and replays are rng-free).
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate` packets per step (exponential gaps).
    Poisson {
        /// Mean arrivals per step; must be finite and positive.
        rate: f64,
    },
    /// Periodic bursts: `size` packets arrive together every `period`
    /// steps.
    Bursts {
        /// Packets per burst.
        size: u32,
        /// Steps between consecutive bursts.
        period: u64,
    },
    /// A replayed arrival trace: packet `i` arrives at `times[i]`
    /// (packets beyond the list arrive at the last listed step).
    Replay {
        /// Non-decreasing arrival steps.
        times: Vec<u64>,
    },
    /// The worst-case burst train: an on-off schedule of `burst`-packet
    /// bursts separated by `gap` quiet steps, made lumpier by a seeded
    /// coin at every burst boundary that *coalesces* the next burst onto
    /// the current step — so instantaneous load ramps in powers of the
    /// burst size while the long-run rate stays fixed. This is the
    /// schedule that stresses admission control hardest: deterministic
    /// given the run seed, maximally bunched for its average rate.
    Adversarial {
        /// Packets per base burst.
        burst: u32,
        /// Quiet steps between non-coalesced bursts.
        gap: u64,
    },
}

impl ArrivalProcess {
    /// Parses an arrival-process spec segment (see the type docs for the
    /// grammar).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
        match kind {
            "poisson" => {
                let rate: f64 = rest
                    .parse()
                    .map_err(|_| format!("bad poisson rate '{rest}'"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(format!("poisson rate {rate} must be positive and finite"));
                }
                Ok(ArrivalProcess::Poisson { rate })
            }
            "burst" => {
                let (size_s, period_s) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("burst needs SIZE:PERIOD, got '{rest}'"))?;
                let size: u32 = size_s
                    .parse()
                    .map_err(|_| format!("bad burst size '{size_s}'"))?;
                let period: u64 = period_s
                    .parse()
                    .map_err(|_| format!("bad burst period '{period_s}'"))?;
                if size == 0 || period == 0 {
                    return Err("burst size and period must be positive".into());
                }
                Ok(ArrivalProcess::Bursts { size, period })
            }
            "replay" => {
                if rest.is_empty() {
                    return Err("replay needs at least one arrival step".into());
                }
                let times: Vec<u64> = rest
                    .split(',')
                    .map(|s| {
                        s.parse::<u64>()
                            .map_err(|_| format!("bad replay step '{s}'"))
                    })
                    .collect::<Result<_, _>>()?;
                if times.windows(2).any(|w| w[0] > w[1]) {
                    return Err("replay arrival steps must be non-decreasing".into());
                }
                Ok(ArrivalProcess::Replay { times })
            }
            "adversarial" => {
                let (burst_s, gap_s) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("adversarial needs SIZE:GAP, got '{rest}'"))?;
                let burst: u32 = burst_s
                    .parse()
                    .map_err(|_| format!("bad adversarial burst size '{burst_s}'"))?;
                let gap: u64 = gap_s
                    .parse()
                    .map_err(|_| format!("bad adversarial gap '{gap_s}'"))?;
                if burst == 0 || gap == 0 {
                    return Err("adversarial burst size and gap must be positive".into());
                }
                Ok(ArrivalProcess::Adversarial { burst, gap })
            }
            other => Err(format!(
                "unknown arrival process '{other}' (poisson|burst|replay|adversarial)"
            )),
        }
    }

    /// The canonical spec segment this process round-trips through
    /// [`ArrivalProcess::parse`].
    pub fn spec_string(&self) -> String {
        match self {
            ArrivalProcess::Poisson { rate } => format!("poisson:{rate}"),
            ArrivalProcess::Bursts { size, period } => format!("burst:{size}:{period}"),
            ArrivalProcess::Replay { times } => {
                let list: Vec<String> = times.iter().map(u64::to_string).collect();
                format!("replay:{}", list.join(","))
            }
            ArrivalProcess::Adversarial { burst, gap } => format!("adversarial:{burst}:{gap}"),
        }
    }

    /// The arrival step of each of `n` packets, in packet-id order. The
    /// returned schedule is non-decreasing: workloads assign packet ids
    /// in generation order, and the stream admits them in that order.
    pub fn schedule<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u64> {
        match self {
            ArrivalProcess::Poisson { rate } => {
                let mut t = 0.0f64;
                (0..n)
                    .map(|_| {
                        // Exponential gap via inverse CDF; 1-U avoids ln(0).
                        let u: f64 = rng.gen();
                        t += -(1.0 - u).ln() / rate;
                        t as u64
                    })
                    .collect()
            }
            ArrivalProcess::Bursts { size, period } => (0..n)
                .map(|i| (i as u64 / u64::from(*size)) * period)
                .collect(),
            ArrivalProcess::Replay { times } => {
                let last = *times.last().expect("parse requires non-empty");
                (0..n)
                    .map(|i| times.get(i).copied().unwrap_or(last))
                    .collect()
            }
            ArrivalProcess::Adversarial { burst, gap } => {
                // The fixed on-off train, lumpified: after each burst a
                // seeded coin either opens the quiet gap or coalesces the
                // next burst onto the same step. Times only ever advance,
                // so the schedule is non-decreasing by construction.
                let mut times = Vec::with_capacity(n);
                let mut t = 0u64;
                let mut i = 0usize;
                while i < n {
                    for _ in 0..*burst {
                        if i >= n {
                            break;
                        }
                        times.push(t);
                        i += 1;
                    }
                    if rng.gen::<u64>() & 1 == 0 {
                        t += gap;
                    }
                }
                times
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders::{self, MeshCorner};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn arrival_processes_parse_and_round_trip() {
        for spec in [
            "poisson:0.5",
            "burst:8:4",
            "replay:0,0,3,9",
            "adversarial:8:4",
        ] {
            let p = ArrivalProcess::parse(spec).unwrap();
            assert_eq!(p.spec_string(), spec);
            assert_eq!(ArrivalProcess::parse(&p.spec_string()).unwrap(), p);
        }
        for bad in [
            "poisson:0",
            "poisson:-1",
            "poisson:x",
            "burst:0:4",
            "burst:4",
            "replay:",
            "replay:3,1",
            "adversarial:0:4",
            "adversarial:4",
            "uniform:1",
        ] {
            assert!(ArrivalProcess::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn adversarial_schedules_are_seeded_bursty_and_monotone() {
        let p = ArrivalProcess::parse("adversarial:4:10").unwrap();
        let mut a_rng = ChaCha8Rng::seed_from_u64(9);
        let mut b_rng = ChaCha8Rng::seed_from_u64(9);
        let a = p.schedule(64, &mut a_rng);
        assert_eq!(a, p.schedule(64, &mut b_rng), "same seed, same train");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a.len(), 64);
        // Every arrival step is a multiple of the gap, and coalescing
        // produces at least one step carrying more than one base burst.
        assert!(a.iter().all(|t| t % 10 == 0));
        let peak = a
            .iter()
            .map(|t| a.iter().filter(|&u| u == t).count())
            .max()
            .unwrap();
        assert!(peak > 4, "coalescing must exceed the base burst: {peak}");
        // A different seed draws a different train.
        let mut c_rng = ChaCha8Rng::seed_from_u64(10);
        assert_ne!(a, p.schedule(64, &mut c_rng));
    }

    #[test]
    fn arrival_schedules_are_deterministic_and_monotone() {
        let p = ArrivalProcess::parse("poisson:0.25").unwrap();
        let mut a_rng = ChaCha8Rng::seed_from_u64(9);
        let mut b_rng = ChaCha8Rng::seed_from_u64(9);
        let a = p.schedule(100, &mut a_rng);
        let b = p.schedule(100, &mut b_rng);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));

        let bursts = ArrivalProcess::parse("burst:3:10").unwrap();
        let sched = bursts.schedule(7, &mut a_rng);
        assert_eq!(sched, vec![0, 0, 0, 10, 10, 10, 20]);

        let replay = ArrivalProcess::parse("replay:1,4,4").unwrap();
        assert_eq!(replay.schedule(5, &mut a_rng), vec![1, 4, 4, 4, 4]);
    }

    #[test]
    fn random_pairs_respects_count_and_validity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = Arc::new(builders::butterfly(4));
        let prob = random_pairs(&net, 10, &mut rng).unwrap();
        assert_eq!(prob.num_packets(), 10);
        for p in prob.packets() {
            p.path.validate(prob.network()).unwrap();
            assert!(!p.path.is_empty());
        }
    }

    #[test]
    fn random_pairs_rejects_oversubscription() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = Arc::new(builders::linear_array(3));
        // Only nodes 0 and 1 have forward edges.
        let err = random_pairs(&net, 5, &mut rng).unwrap_err();
        assert_eq!(
            err,
            WorkloadError::NotEnoughSources {
                requested: 5,
                available: 2
            }
        );
    }

    #[test]
    fn butterfly_permutation_is_a_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = Arc::new(builders::butterfly(4));
        let coords = ButterflyCoords { k: 4 };
        let prob = butterfly_permutation(&net, &coords, &mut rng);
        assert_eq!(prob.num_packets(), 16);
        let mut dest_rows: Vec<usize> = prob
            .packets()
            .iter()
            .map(|p| coords.coords(p.path.dest(prob.network())).1)
            .collect();
        dest_rows.sort_unstable();
        assert_eq!(dest_rows, (0..16).collect::<Vec<_>>());
        assert_eq!(prob.dilation(), 4);
    }

    #[test]
    fn bit_reversal_has_high_congestion() {
        let k = 8;
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let prob = butterfly_bit_reversal(&net, &coords);
        // Bit reversal concentrates Θ(√N) = 2^(k/2 - 1) paths on middle edges.
        assert!(
            prob.congestion() >= 1 << (k / 2 - 1),
            "C = {} too small",
            prob.congestion()
        );
        assert_eq!(prob.dilation(), k);
    }

    #[test]
    fn hotspot_concentrates_destinations() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = Arc::new(builders::complete_leveled(6, 6));
        let prob = hotspot(&net, 12, 2, &mut rng).unwrap();
        assert_eq!(prob.num_packets(), 12);
        let mut dests: Vec<NodeId> = prob
            .packets()
            .iter()
            .map(|p| p.path.dest(prob.network()))
            .collect();
        dests.sort_unstable();
        dests.dedup();
        assert!(dests.len() <= 2, "at most two destinations");
    }

    #[test]
    fn mesh_transpose_parameters() {
        for n in [4usize, 8, 12] {
            let (raw, coords) = builders::mesh(n, n, MeshCorner::TopLeft);
            let net = Arc::new(raw);
            let prob = mesh_transpose(&net, &coords).unwrap();
            assert_eq!(prob.num_packets(), n);
            assert_eq!(prob.congestion() as usize, n - 1, "C = n - 1");
            assert_eq!(prob.dilation() as usize, n - 1, "D = n - 1");
            assert_eq!(prob.network().depth() as usize, 2 * n - 2);
        }
    }

    #[test]
    fn mesh_transpose_needs_square() {
        let (raw, coords) = builders::mesh(3, 5, MeshCorner::TopLeft);
        let net = Arc::new(raw);
        assert!(mesh_transpose(&net, &coords).is_err());
    }

    #[test]
    fn level_to_level_covers_sources() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let net = Arc::new(builders::butterfly(3));
        let prob = level_to_level(&net, 0, 3, &mut rng).unwrap();
        assert_eq!(prob.num_packets(), 8);
        for p in prob.packets() {
            assert_eq!(prob.network().level(p.path.source()), 0);
            assert_eq!(prob.network().level(p.path.dest(prob.network())), 3);
        }
    }

    #[test]
    fn level_to_level_rejects_bad_levels() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let net = Arc::new(builders::butterfly(3));
        assert!(level_to_level(&net, 2, 2, &mut rng).is_err());
        assert!(level_to_level(&net, 0, 9, &mut rng).is_err());
    }

    #[test]
    fn funnel_dials_congestion() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let net = Arc::new(builders::complete_leveled(10, 5));
        for count in [4usize, 10, 20] {
            let prob = funnel(&net, count, &mut rng).unwrap();
            assert_eq!(prob.num_packets(), count);
            // All paths cross the pivot, so C >= count; and C can't exceed N.
            assert!(prob.congestion() as usize >= count);
            for p in prob.packets() {
                p.path.validate(prob.network()).unwrap();
            }
        }
    }

    #[test]
    fn first_fit_blast_concentrates_congestion() {
        let net = Arc::new(builders::complete_leveled(6, 4));
        let blast = first_fit_blast(&net, 0, 6).unwrap();
        assert_eq!(blast.num_packets(), 4);
        // Deterministic: same workload twice.
        let again = first_fit_blast(&net, 0, 6).unwrap();
        assert_eq!(blast.congestion(), again.congestion());
        // First-fit concentrates: congestion beats a random assignment's
        // typical spread (here: all four paths share the first edges).
        assert!(
            blast.congestion() >= 3,
            "C = {} not concentrated",
            blast.congestion()
        );
        for p in blast.packets() {
            p.path.validate(blast.network()).unwrap();
        }
    }

    #[test]
    fn first_fit_blast_rejects_bad_levels() {
        let net = Arc::new(builders::complete_leveled(4, 2));
        assert!(first_fit_blast(&net, 2, 2).is_err());
        assert!(first_fit_blast(&net, 0, 9).is_err());
    }

    #[test]
    fn many_to_many_allows_shared_sources() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let net = Arc::new(builders::butterfly(3));
        // Far more packets than nodes: sources must repeat.
        let prob = many_to_many(&net, 100, &mut rng).unwrap();
        assert!(prob.is_relaxed());
        assert_eq!(prob.num_packets(), 100);
        let mut sources: Vec<NodeId> = prob.packets().iter().map(|p| p.path.source()).collect();
        sources.sort_unstable();
        sources.dedup();
        assert!(sources.len() < 100, "sources repeat in a relaxed problem");
        for p in prob.packets() {
            p.path.validate(prob.network()).unwrap();
        }
    }

    #[test]
    fn strict_problems_are_not_relaxed() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let net = Arc::new(builders::butterfly(3));
        let prob = random_pairs(&net, 5, &mut rng).unwrap();
        assert!(!prob.is_relaxed());
    }

    #[test]
    fn funnel_reports_capacity() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let net = Arc::new(builders::linear_array(6));
        let err = funnel(&net, 100, &mut rng).unwrap_err();
        assert!(matches!(err, WorkloadError::NotEnoughSources { .. }));
    }
}
