//! Routing problems on arbitrary DAGs via levelization.
//!
//! `leveled_net::levelize` turns any DAG into a leveled network (paper §5
//! future-work direction); this module builds routing problems on the
//! result. Because subdivision dummies have in- and out-degree 1, every
//! valid path between images of original nodes corresponds uniquely to a
//! DAG path, so the standard path-selection machinery applies unchanged —
//! the paper's router then routes the original DAG problem verbatim.

use crate::path::Path;
use crate::paths::MinimalPathSampler;
use crate::problem::RoutingProblem;
use crate::workloads::WorkloadError;
use leveled_net::levelize::{Dag, Levelized};
use leveled_net::{LeveledNetwork, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// A levelized DAG packaged for routing: the shared leveled network plus
/// the levelization mapping.
#[derive(Clone, Debug)]
pub struct DagNetwork {
    net: Arc<LeveledNetwork>,
    lz: Levelized,
}

impl DagNetwork {
    /// Levelizes `dag` and wraps the result for routing.
    pub fn new(dag: &Dag) -> Result<Self, leveled_net::LevelizeError> {
        let lz = leveled_net::levelize(dag)?;
        let net = Arc::new(lz.net.clone());
        Ok(DagNetwork { net, lz })
    }

    /// The leveled network (original nodes first, dummies after).
    pub fn network(&self) -> &Arc<LeveledNetwork> {
        &self.net
    }

    /// The levelization mapping.
    pub fn levelized(&self) -> &Levelized {
        &self.lz
    }

    /// The leveled image of original node `v`.
    pub fn node(&self, v: u32) -> NodeId {
        self.lz.node(v)
    }

    /// Original (non-dummy) nodes in the leveled network.
    pub fn original_nodes(&self) -> Vec<NodeId> {
        self.net.nodes().filter(|&n| !self.lz.is_dummy(n)).collect()
    }

    /// Builds the path for an original-edge-index sequence.
    pub fn path_from_dag_edges(&self, source: u32, dag_edges: &[usize]) -> Path {
        let edges = self.lz.translate_edges(dag_edges);
        Path::new(&self.net, self.node(source), edges)
            .expect("translated chains form a valid leveled path")
    }
}

/// `n` packets between distinct random *original* nodes of the DAG, each
/// to a random reachable original node, along uniformly random paths.
pub fn random_dag_pairs<R: Rng + ?Sized>(
    dagnet: &DagNetwork,
    n: usize,
    rng: &mut R,
) -> Result<Arc<RoutingProblem>, WorkloadError> {
    let originals = dagnet.original_nodes();
    let mut candidates: Vec<NodeId> = originals
        .iter()
        .copied()
        .filter(|&v| !dagnet.network().fwd_edges(v).is_empty())
        .collect();
    if candidates.len() < n {
        return Err(WorkloadError::NotEnoughSources {
            requested: n,
            available: candidates.len(),
        });
    }
    candidates.shuffle(rng);
    let net = dagnet.network();
    let mut paths_out = Vec::with_capacity(n);
    for &src in candidates.iter().take(n) {
        let mask = net.reachable_mask(src);
        let dests: Vec<NodeId> = originals
            .iter()
            .copied()
            .filter(|&v| v != src && mask[v.index()])
            .collect();
        if dests.is_empty() {
            // A source whose only forward reach is dummies cannot exist:
            // dummies always lead to an original node. Defensive skip.
            continue;
        }
        let dst = *dests.choose(rng).expect("non-empty");
        let sampler = MinimalPathSampler::new(net, dst);
        paths_out.push(sampler.sample(net, src, rng).expect("reachable"));
    }
    if paths_out.len() < n {
        return Err(WorkloadError::NotEnoughSources {
            requested: n,
            available: paths_out.len(),
        });
    }
    RoutingProblem::new(Arc::clone(net), paths_out)
        .map(Arc::new)
        .map_err(|_| unreachable!("distinct sources"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_dag(n: usize, p: f64, seed: u64) -> Dag {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut d = Dag::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p) {
                    d.add_edge(u, v);
                }
            }
        }
        d
    }

    #[test]
    fn dag_network_wraps_levelization() {
        let dag = random_dag(20, 0.2, 1);
        let dn = DagNetwork::new(&dag).unwrap();
        dn.network().validate().unwrap();
        assert_eq!(dn.original_nodes().len(), 20);
        for v in 0..20u32 {
            assert!(!dn.levelized().is_dummy(dn.node(v)));
        }
    }

    #[test]
    fn path_from_dag_edges_translates() {
        let mut dag = Dag::new(4);
        dag.add_edge(0, 1); // edge 0
        dag.add_edge(1, 3); // edge 1
        dag.add_edge(1, 2); // edge 2 (forces node 3 to level 3? no: 2)
        dag.add_edge(2, 3); // edge 3
        let dn = DagNetwork::new(&dag).unwrap();
        // DAG path 0 -(e0)-> 1 -(e1)-> 3: edge 1 spans levels 1 -> 3.
        let p = dn.path_from_dag_edges(0, &[0, 1]);
        p.validate(dn.network()).unwrap();
        assert_eq!(p.source(), dn.node(0));
        assert_eq!(p.dest(dn.network()), dn.node(3));
        assert_eq!(p.len(), 3, "subdivided shortcut spans an extra hop");
    }

    #[test]
    fn random_dag_pairs_builds_valid_problems() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let dag = random_dag(30, 0.25, 2);
        let dn = DagNetwork::new(&dag).unwrap();
        let prob = random_dag_pairs(&dn, 10, &mut rng).unwrap();
        assert_eq!(prob.num_packets(), 10);
        for p in prob.packets() {
            p.path.validate(prob.network()).unwrap();
            // Endpoints are original nodes.
            assert!(!dn.levelized().is_dummy(p.path.source()));
            assert!(!dn.levelized().is_dummy(p.path.dest(prob.network())));
        }
    }

    #[test]
    fn oversubscription_reported() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut dag = Dag::new(3);
        dag.add_edge(0, 1);
        dag.add_edge(1, 2);
        let dn = DagNetwork::new(&dag).unwrap();
        // Only nodes 0 and 1 have forward edges.
        assert!(random_dag_pairs(&dn, 3, &mut rng).is_err());
    }
}
