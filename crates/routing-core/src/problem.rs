//! Routing problems: packets with preselected paths, congestion, dilation.

use crate::path::Path;
use leveled_net::{LeveledNetwork, NodeId};
use std::sync::Arc;

/// Dense identifier of a packet within a [`RoutingProblem`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u32);

impl PacketId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A packet: its identifier and its preselected valid path. Source and
/// destination are the path's endpoints.
#[derive(Clone, Debug)]
pub struct PacketSpec {
    /// The packet identifier (equal to its index in the problem).
    pub id: PacketId,
    /// The preselected path from source to destination.
    pub path: Path,
}

/// Errors detected while assembling a [`RoutingProblem`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProblemError {
    /// Two packets share a source node, violating the many-to-one setting
    /// of the paper (each node is the source of at most one packet).
    DuplicateSource(NodeId),
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::DuplicateSource(n) => {
                write!(f, "node {n} is the source of more than one packet")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

/// A many-to-one packet routing problem on a leveled network: `N` packets,
/// each with a preselected valid path, at most one packet per source node.
#[derive(Clone, Debug)]
pub struct RoutingProblem {
    net: Arc<LeveledNetwork>,
    packets: Vec<PacketSpec>,
    relaxed: bool,
}

impl RoutingProblem {
    /// Assembles a problem from preselected paths, validating the
    /// one-packet-per-source constraint (paths themselves are valid by
    /// construction of [`Path`]).
    pub fn new(net: Arc<LeveledNetwork>, paths: Vec<Path>) -> Result<Self, ProblemError> {
        let mut seen = vec![false; net.num_nodes()];
        for p in &paths {
            let s = p.source();
            if seen[s.index()] {
                return Err(ProblemError::DuplicateSource(s));
            }
            seen[s.index()] = true;
        }
        let packets = Self::number(paths);
        Ok(RoutingProblem {
            net,
            packets,
            relaxed: false,
        })
    }

    /// Assembles a *relaxed* (many-to-many) problem in which a node may be
    /// the source of several packets — the setting of Borodin, Rabani and
    /// Schieber (reference 7 in the paper). The paper's injection-isolation
    /// analysis does not cover this case; the router handles it by
    /// retrying injections and counting the isolation violations.
    pub fn new_relaxed(net: Arc<LeveledNetwork>, paths: Vec<Path>) -> Self {
        let packets = Self::number(paths);
        RoutingProblem {
            net,
            packets,
            relaxed: true,
        }
    }

    /// Whether the problem permits several packets per source node.
    pub fn is_relaxed(&self) -> bool {
        self.relaxed
    }

    fn number(paths: Vec<Path>) -> Vec<PacketSpec> {
        paths
            .into_iter()
            .enumerate()
            .map(|(i, path)| PacketSpec {
                id: PacketId(i as u32),
                path,
            })
            .collect()
    }

    /// The underlying network.
    #[inline]
    pub fn network(&self) -> &LeveledNetwork {
        &self.net
    }

    /// A shared handle to the underlying network.
    pub fn network_arc(&self) -> Arc<LeveledNetwork> {
        Arc::clone(&self.net)
    }

    /// The packets, indexed by [`PacketId`].
    #[inline]
    pub fn packets(&self) -> &[PacketSpec] {
        &self.packets
    }

    /// Number of packets `N`.
    #[inline]
    pub fn num_packets(&self) -> usize {
        self.packets.len()
    }

    /// The packet with identifier `id`.
    #[inline]
    pub fn packet(&self, id: PacketId) -> &PacketSpec {
        &self.packets[id.index()]
    }

    /// Per-edge congestion of the preselected paths: entry `e` counts the
    /// packets whose path uses edge `e`.
    pub fn edge_congestion(&self) -> Vec<u32> {
        let mut cong = vec![0u32; self.net.num_edges()];
        for p in &self.packets {
            for &e in p.path.edges() {
                cong[e.index()] += 1;
            }
        }
        cong
    }

    /// The congestion `C`: the maximum number of preselected paths crossing
    /// any single edge. Returns 0 for a problem with only trivial paths.
    pub fn congestion(&self) -> u32 {
        self.edge_congestion().into_iter().max().unwrap_or(0)
    }

    /// The dilation `D`: the maximum preselected path length.
    pub fn dilation(&self) -> u32 {
        self.packets
            .iter()
            .map(|p| p.path.len() as u32)
            .max()
            .unwrap_or(0)
    }

    /// Per-set congestion under a packet-to-set `assignment` (one entry per
    /// packet, values `< num_sets`): for each set, the maximum number of
    /// its packets crossing any single edge — the paper's frontier-set
    /// congestion `C_i` (§2.4).
    pub fn per_set_congestion(&self, assignment: &[u32], num_sets: usize) -> Vec<u32> {
        assert_eq!(assignment.len(), self.packets.len());
        let ne = self.net.num_edges();
        // A dense (num_sets x num_edges) matrix would be large, so
        // collect the sparse (set, edge) incidences and count equal runs
        // after a sort — order-deterministic, and cache-friendlier than
        // per-set hash maps.
        let mut incidences: Vec<(u32, u32)> = Vec::new();
        for (p, &set) in self.packets.iter().zip(assignment) {
            assert!((set as usize) < num_sets, "set id out of range");
            for &e in p.path.edges() {
                debug_assert!(e.index() < ne);
                incidences.push((set, e.0));
            }
        }
        incidences.sort_unstable();
        let mut out = vec![0u32; num_sets];
        let mut run = 0u32;
        for (i, &(set, edge)) in incidences.iter().enumerate() {
            run = if i > 0 && incidences[i - 1] == (set, edge) {
                run + 1
            } else {
                1
            };
            let max = &mut out[set as usize];
            *max = (*max).max(run);
        }
        out
    }

    /// Histogram of path lengths (index = length).
    pub fn path_length_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.dilation() as usize + 1];
        for p in &self.packets {
            h[p.path.len()] += 1;
        }
        h
    }

    /// A compact one-line description: `N`, `C`, `D`, `L`.
    pub fn describe(&self) -> String {
        format!(
            "{}: N={} C={} D={} L={}",
            self.net.name(),
            self.num_packets(),
            self.congestion(),
            self.dilation(),
            self.net.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use leveled_net::builders;

    fn line_problem() -> RoutingProblem {
        let net = Arc::new(builders::linear_array(5));
        let p0 = Path::from_nodes(&net, &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        let p1 = Path::from_nodes(&net, &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)]).unwrap();
        let p2 = Path::from_nodes(&net, &[NodeId(2), NodeId(3)]).unwrap();
        RoutingProblem::new(net, vec![p0, p1, p2]).unwrap()
    }

    #[test]
    fn congestion_and_dilation() {
        let prob = line_problem();
        assert_eq!(prob.num_packets(), 3);
        // Edge 2->3 is used by all three packets.
        assert_eq!(prob.congestion(), 3);
        assert_eq!(prob.dilation(), 3);
    }

    #[test]
    fn edge_congestion_detail() {
        let prob = line_problem();
        let cong = prob.edge_congestion();
        // Edges of linear(5) are 0:0-1, 1:1-2, 2:2-3, 3:3-4.
        assert_eq!(cong, vec![1, 2, 3, 1]);
    }

    #[test]
    fn duplicate_sources_rejected() {
        let net = Arc::new(builders::linear_array(3));
        let a = Path::from_nodes(&net, &[NodeId(0), NodeId(1)]).unwrap();
        let b = Path::from_nodes(&net, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let err = RoutingProblem::new(net, vec![a, b]).unwrap_err();
        assert_eq!(err, ProblemError::DuplicateSource(NodeId(0)));
    }

    #[test]
    fn per_set_congestion_splits_counts() {
        let prob = line_problem();
        // All in one set: same as total congestion.
        let one = prob.per_set_congestion(&[0, 0, 0], 1);
        assert_eq!(one, vec![3]);
        // Split the two long packets apart.
        let split = prob.per_set_congestion(&[0, 1, 0], 2);
        assert_eq!(split, vec![2, 1]);
        // Sets may be empty.
        let sparse = prob.per_set_congestion(&[2, 2, 2], 4);
        assert_eq!(sparse, vec![0, 0, 3, 0]);
    }

    #[test]
    fn trivial_paths_have_zero_congestion() {
        let net = Arc::new(builders::linear_array(2));
        let prob = RoutingProblem::new(net, vec![Path::trivial(NodeId(0))]).unwrap();
        assert_eq!(prob.congestion(), 0);
        assert_eq!(prob.dilation(), 0);
    }

    #[test]
    fn path_length_histogram_counts_all() {
        let prob = line_problem();
        let h = prob.path_length_histogram();
        assert_eq!(h.iter().sum::<usize>(), prob.num_packets());
        assert_eq!(h[3], 2);
        assert_eq!(h[1], 1);
    }

    #[test]
    fn describe_contains_parameters() {
        let prob = line_problem();
        let d = prob.describe();
        assert!(d.contains("N=3"));
        assert!(d.contains("C=3"));
        assert!(d.contains("D=3"));
        assert!(d.contains("L=4"));
    }
}
