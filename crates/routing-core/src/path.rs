//! Valid paths in a leveled network.
//!
//! A *valid path* (paper §2.2) is a sequence of edges `e1, e2, ..., en` in
//! which the head of each edge is the tail of the next, so the path visits
//! nodes in consecutive, increasing levels. Every subpath of a valid path
//! is valid, and the length of a valid path from level `l1` to level `l2`
//! is exactly `l2 - l1`.

use leveled_net::{EdgeId, LeveledNetwork, NodeId};

/// Errors raised when constructing a [`Path`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathError {
    /// Two consecutive edges do not share the required endpoint.
    Broken {
        /// Index (into the edge list) of the second edge of the bad pair.
        at: usize,
    },
    /// The stated source is not the tail of the first edge.
    SourceMismatch,
    /// A node sequence contained a pair of non-adjacent nodes.
    NotAdjacent {
        /// Index (into the node list) of the second node of the bad pair.
        at: usize,
    },
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::Broken { at } => {
                write!(f, "edge #{at} does not continue from the previous edge")
            }
            PathError::SourceMismatch => write!(f, "source is not the tail of the first edge"),
            PathError::NotAdjacent { at } => {
                write!(
                    f,
                    "node #{at} is not a forward neighbour of its predecessor"
                )
            }
        }
    }
}

impl std::error::Error for PathError {}

/// A valid (forward) path: a source node plus a chain of edges, each
/// traversed tail → head. The empty chain represents the trivial path of a
/// packet whose destination equals its source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Path {
    source: NodeId,
    edges: Vec<EdgeId>,
}

impl Path {
    /// The trivial (length-0) path at `node`.
    pub fn trivial(node: NodeId) -> Self {
        Path {
            source: node,
            edges: Vec::new(),
        }
    }

    /// Builds a path from `source` along `edges`, validating the forward
    /// chaining against `net`.
    pub fn new(
        net: &LeveledNetwork,
        source: NodeId,
        edges: Vec<EdgeId>,
    ) -> Result<Self, PathError> {
        let mut at = source;
        for (i, &e) in edges.iter().enumerate() {
            let edge = net.edge(e);
            if edge.tail != at {
                return Err(if i == 0 {
                    PathError::SourceMismatch
                } else {
                    PathError::Broken { at: i }
                });
            }
            at = edge.head;
        }
        Ok(Path { source, edges })
    }

    /// Builds a path visiting exactly the given node sequence, resolving
    /// each consecutive pair to a connecting forward edge (the first one if
    /// there are parallel edges).
    pub fn from_nodes(net: &LeveledNetwork, nodes: &[NodeId]) -> Result<Self, PathError> {
        assert!(!nodes.is_empty(), "a path needs at least one node");
        let mut edges = Vec::with_capacity(nodes.len() - 1);
        for (i, w) in nodes.windows(2).enumerate() {
            let e = edge_between(net, w[0], w[1]).ok_or(PathError::NotAdjacent { at: i + 1 })?;
            edges.push(e);
        }
        Ok(Path {
            source: nodes[0],
            edges,
        })
    }

    /// The source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The destination node (requires the network to resolve edge heads).
    pub fn dest(&self, net: &LeveledNetwork) -> NodeId {
        match self.edges.last() {
            Some(&e) => net.edge(e).head,
            None => self.source,
        }
    }

    /// Number of edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path is trivial (no edges).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edge sequence.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// The full node sequence (source first, destination last).
    pub fn nodes(&self, net: &LeveledNetwork) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.edges.len() + 1);
        out.push(self.source);
        for &e in &self.edges {
            out.push(net.edge(e).head);
        }
        out
    }

    /// Checks validity against `net` (used by tests and auditors; paths
    /// built through the constructors are always valid).
    pub fn validate(&self, net: &LeveledNetwork) -> Result<(), PathError> {
        Path::new(net, self.source, self.edges.clone()).map(|_| ())
    }
}

/// The first forward edge from `tail` to `head`, if the nodes are adjacent
/// consecutive-level nodes.
pub fn edge_between(net: &LeveledNetwork, tail: NodeId, head: NodeId) -> Option<EdgeId> {
    net.fwd_edges(tail)
        .iter()
        .copied()
        .find(|&e| net.edge(e).head == head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders;

    #[test]
    fn trivial_path() {
        let net = builders::linear_array(3);
        let p = Path::trivial(NodeId(1));
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.source(), NodeId(1));
        assert_eq!(p.dest(&net), NodeId(1));
        p.validate(&net).unwrap();
    }

    #[test]
    fn linear_path_roundtrip() {
        let net = builders::linear_array(5);
        let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
        let p = Path::from_nodes(&net, &nodes).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.dest(&net), NodeId(4));
        assert_eq!(p.nodes(&net), nodes);
        p.validate(&net).unwrap();
    }

    #[test]
    fn rejects_broken_chain() {
        let net = builders::butterfly(2);
        // Two arbitrary edges that don't chain.
        let e0 = EdgeId(0);
        let tail = net.edge(e0).tail;
        let bad = net
            .edge_ids()
            .find(|&e| net.edge(e).tail != net.edge(e0).head && e != e0)
            .unwrap();
        let err = Path::new(&net, tail, vec![e0, bad]).unwrap_err();
        assert_eq!(err, PathError::Broken { at: 1 });
    }

    #[test]
    fn rejects_source_mismatch() {
        let net = builders::linear_array(3);
        let e1 = net.fwd_edges(NodeId(1))[0];
        let err = Path::new(&net, NodeId(0), vec![e1]).unwrap_err();
        assert_eq!(err, PathError::SourceMismatch);
    }

    #[test]
    fn rejects_non_adjacent_nodes() {
        let net = builders::linear_array(4);
        let err = Path::from_nodes(&net, &[NodeId(0), NodeId(2)]).unwrap_err();
        assert_eq!(err, PathError::NotAdjacent { at: 1 });
    }

    #[test]
    fn path_length_equals_level_difference() {
        let net = builders::butterfly(4);
        // Any valid path spans exactly level(dest) - level(src) edges.
        let p = Path::new(&net, net.edge(EdgeId(0)).tail, vec![EdgeId(0)]).unwrap();
        let diff = net.level(p.dest(&net)) - net.level(p.source());
        assert_eq!(p.len() as u32, diff);
    }

    #[test]
    fn edge_between_finds_forward_edges_only() {
        let net = builders::linear_array(3);
        assert!(edge_between(&net, NodeId(0), NodeId(1)).is_some());
        assert!(edge_between(&net, NodeId(1), NodeId(0)).is_none());
        assert!(edge_between(&net, NodeId(0), NodeId(2)).is_none());
    }
}
