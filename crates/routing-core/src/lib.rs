//! Routing-problem model for leveled networks.
//!
//! This crate defines the *static* side of a packet-routing problem in the
//! sense of Busch (SPAA 2002, §2):
//!
//! * [`Path`] — a *valid path*: a chain of edges traversed forward, i.e.
//!   visiting consecutive levels from a lower level to a higher one;
//! * [`RoutingProblem`] — a set of packets with preselected valid paths,
//!   at most one packet per source node (the paper's many-to-one setting),
//!   with the two governing parameters **congestion `C`** (max packets per
//!   edge) and **dilation `D`** (max path length);
//! * [`paths`] — preselected-path strategies: uniformly random minimal
//!   paths, deterministic first-fit minimal paths, bit-fixing paths on the
//!   butterfly, dimension-order paths on the mesh;
//! * [`workloads`] — problem generators: random pairs, level-to-level
//!   permutations, hot spots, and the §5 mesh workload with
//!   `C = D = Θ(n)` — plus [`ArrivalProcess`], which times a problem's
//!   packets for streaming (continuous-injection) runs;
//! * [`spec`] — the text grammar naming topologies, workloads, arrival
//!   processes, and engines (`bf:10/bitrev/busch/7[/poisson:0.5]`),
//!   shared by the CLI, `hotpotato serve`, the bench harness, and the
//!   trace analyzer so an instance can be reconstructed from a trace's
//!   `meta` line.

pub mod dag;
pub mod path;
pub mod paths;
pub mod problem;
pub mod spec;
pub mod workloads;

pub use dag::DagNetwork;
pub use path::{Path, PathError};
pub use problem::{PacketId, PacketSpec, ProblemError, RoutingProblem};
pub use spec::{EngineKind, RunSpec};
pub use workloads::ArrivalProcess;
