//! Experiment driver: regenerates every figure and evaluation table.
//!
//! ```text
//! cargo run -p bench --release --bin tables -- all            # everything
//! cargo run -p bench --release --bin tables -- t1 t4          # selected
//! cargo run -p bench --release --bin tables -- all --quick    # smaller sweeps
//! cargo run -p bench --release --bin tables -- all --json out.json
//! ```

use bench::experiments;
use bench::table::sink;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut skip_next = false;
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--json" {
                skip_next = true;
                return false;
            }
            !a.starts_with('-')
        })
        .map(|s| s.as_str())
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        experiments::ALL.to_vec()
    } else {
        ids
    };

    if json_path.is_some() {
        sink::begin();
    }
    let total = Instant::now();
    for id in &ids {
        println!("==================== experiment {id} ====================");
        let t0 = Instant::now();
        if !experiments::dispatch(id, quick) {
            eprintln!(
                "unknown experiment '{id}'; available: {}",
                experiments::ALL.join(", ")
            );
            std::process::exit(2);
        }
        println!("[{} finished in {:.1?}]\n", id, t0.elapsed());
    }
    println!("all experiments done in {:.1?}", total.elapsed());
    if let Some(path) = json_path {
        let tables = sink::finish().unwrap_or_default();
        let doc = serde_json::json!({
            "suite": "hotpotato-routing experiments",
            "quick": quick,
            "experiments": ids,
            "tables": tables,
        });
        std::fs::write(&path, serde_json::to_string_pretty(&doc).expect("serialize"))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote JSON results to {path}");
    }
}
