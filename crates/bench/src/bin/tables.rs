//! Experiment driver: regenerates every figure and evaluation table.
//!
//! ```text
//! cargo run -p bench --release --bin tables -- all            # everything
//! cargo run -p bench --release --bin tables -- t1 t4          # selected
//! cargo run -p bench --release --bin tables -- all --quick    # smaller sweeps
//! cargo run -p bench --release --bin tables -- all --json out.json
//! cargo run -p bench --release --bin tables -- perfjson       # BENCH_PR1.json
//! cargo run -p bench --release --bin tables -- metricsjson    # METRICS_PR2.json
//! cargo run -p bench --release --bin tables -- gate --quick   # telemetry gate
//!     [--baselines F1,F2,..] [--perf-baseline F] [--metrics-baseline F]
//!     [--min-ratio R] [--perf-out F] [--metrics-out F]
//!     [--scrape ADDR] [--scrape-only]
//! ```
//!
//! Gate perf modes: `--baselines` (adaptive, per-component floors from
//! the spread of the listed committed baselines — see
//! [`bench::gate::adaptive_perf_gate`]) or the legacy single
//! `--perf-baseline` + global `--min-ratio`. `--scrape ADDR` adds
//! liveness/exposition checks against a running `hotpotato serve`
//! (`--scrape-only` skips the measurement checks entirely — what the CI
//! smoke job uses).

use bench::experiments;
use bench::table::sink;
use std::time::Instant;

/// Runs the PERF suite `repeats` times, keeps each component's best
/// (fastest) run, and renders the machine-readable baseline document.
fn measure_perf_doc(quick: bool) -> serde_json::Value {
    let repeats = if quick { 1 } else { 5 };
    let mut best: Option<experiments::perf::PerfReport> = None;
    for i in 0..repeats {
        eprintln!("perfjson: measuring pass {}/{repeats}...", i + 1);
        let rep = experiments::perf::measure(quick);
        best = Some(match best.take() {
            None => rep,
            Some(mut acc) => {
                for (a, b) in acc.rows.iter_mut().zip(rep.rows) {
                    assert_eq!(a.component, b.component);
                    if b.wall_s < a.wall_s {
                        *a = b;
                    }
                }
                acc
            }
        });
    }
    let mut rep = best.expect("at least one pass");
    eprintln!("perfjson: measuring large-instance row...");
    rep.rows.push(experiments::perf::measure_large(quick));
    eprintln!("perfjson: measuring steady-state streaming row...");
    rep.rows.push(experiments::perf::measure_streaming(quick));
    eprintln!("perfjson: measuring sharded trace-verify row...");
    rep.rows.push(experiments::perf::measure_verify(quick));
    eprintln!("perfjson: measuring fleet-throughput row...");
    rep.rows.push(experiments::perf::measure_fleet(quick));
    let rows: Vec<serde_json::Value> = rep
        .rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "component": r.component,
                "k": r.k,
                "packets": r.packets,
                "wall_s": r.wall_s,
                "repeats": r.repeats,
                "steps": r.steps,
                "steps_per_s": r.steps_per_s(),
                "moves": r.moves,
                "moves_per_s": r.moves_per_s(),
                "packets_per_s": r.packets_per_s(),
                "peak_rss_bytes": r.peak_rss_bytes,
                "rss_bytes_per_packet": r.rss_bytes_per_packet(),
                "violations": r.violations,
                "runs": r.runs,
                "runs_per_s": r.runs_per_s(),
            })
        })
        .collect();
    serde_json::json!({
        "suite": "hotpotato-routing perf baseline",
        "instance": "butterfly bit-reversal + saturation random walks",
        "quick": quick,
        "k": rep.k,
        "packets": rep.n,
        "nodes": rep.nodes,
        "edges": rep.edges,
        "repeats": repeats,
        "policy": "best of repeats per component; inner repeats until 50ms wall",
        "rows": rows,
    })
}

/// `perfjson` mode: writes the perf baseline document.
fn perfjson(quick: bool, out_path: &str) {
    let doc = measure_perf_doc(quick);
    std::fs::write(
        out_path,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )
    .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote perf baseline to {out_path}");
}

/// `gate` mode: re-measures perf and metrics, compares against the
/// committed baselines with explicit tolerances, and exits non-zero on
/// any regression (see [`bench::gate`]).
fn gate_mode(quick: bool, args: &[String]) -> ! {
    let flag = |name: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(std::string::String::as_str)
    };
    let scrape_addr = flag("--scrape");
    let scrape_only = args.iter().any(|a| a == "--scrape-only");
    if scrape_only && scrape_addr.is_none() {
        eprintln!("--scrape-only needs --scrape ADDR");
        std::process::exit(2);
    }
    let read_doc = |path: &str| -> serde_json::Value {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
    };

    let mut findings = Vec::new();
    if !scrape_only {
        let metrics_base_path = flag("--metrics-baseline").unwrap_or("METRICS_PR2.json");
        let metrics_base = read_doc(metrics_base_path);

        let perf_cur = measure_perf_doc(quick);
        if let Some(out) = flag("--perf-out") {
            std::fs::write(
                out,
                serde_json::to_string_pretty(&perf_cur).expect("serialize"),
            )
            .unwrap_or_else(|e| panic!("writing {out}: {e}"));
        }
        eprintln!("gate: collecting metrics run...");
        let metrics_cur = experiments::metrics::collect(quick).to_json();
        if let Some(out) = flag("--metrics-out") {
            std::fs::write(
                out,
                serde_json::to_string_pretty(&metrics_cur).expect("serialize"),
            )
            .unwrap_or_else(|e| panic!("writing {out}: {e}"));
        }

        match flag("--baselines") {
            Some(list) => {
                // Adaptive mode: per-component floors from the spread of
                // the listed baselines (oldest first).
                let baselines: Vec<serde_json::Value> = list.split(',').map(read_doc).collect();
                findings.extend(bench::gate::adaptive_perf_gate(&baselines, &perf_cur));
            }
            None => {
                let perf_base_path = flag("--perf-baseline").unwrap_or("BENCH_PR1.json");
                let min_ratio: f64 = flag("--min-ratio")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(bench::gate::GLOBAL_MIN_RATIO);
                findings.extend(bench::gate::perf_gate(
                    &read_doc(perf_base_path),
                    &perf_cur,
                    min_ratio,
                ));
            }
        }
        findings.extend(bench::gate::metrics_gate(&metrics_base, &metrics_cur));
    }
    if let Some(addr) = scrape_addr {
        let fetch = |path: &str| -> (u16, String) {
            serve::http::http_get(addr, path)
                .unwrap_or_else(|e| panic!("scraping http://{addr}{path}: {e}"))
        };
        let (hz_status, hz_body) = fetch("/healthz");
        let (metrics_status, metrics_text) = fetch("/metrics");
        assert_eq!(
            metrics_status, 200,
            "GET /metrics returned {metrics_status}"
        );
        findings.extend(bench::gate::scrape_gate(hz_status, &hz_body, &metrics_text));
    }
    for f in &findings {
        println!(
            "{} {:32} {}",
            if f.ok { "PASS" } else { "FAIL" },
            f.check,
            f.detail
        );
    }
    let ok = bench::gate::passed(&findings);
    println!(
        "gate: {} ({} checks, {} failed)",
        if ok { "PASS" } else { "FAIL" },
        findings.len(),
        findings.iter().filter(|f| !f.ok).count()
    );
    std::process::exit(i32::from(!ok));
}

/// `metricsjson` mode: one instrumented reference run, serialized whole —
/// histograms, occupancy, frame progress, congestion watermarks vs the
/// Lemma 2.2 bound, and the section profile.
fn metricsjson(quick: bool, out_path: &str) {
    let rep = experiments::metrics::collect(quick);
    std::fs::write(
        out_path,
        serde_json::to_string_pretty(&rep.to_json()).expect("serialize"),
    )
    .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote metrics artifact to {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    if args.iter().any(|a| a == "perfjson") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map_or("BENCH_PR1.json", |s| s.as_str());
        perfjson(quick, out);
        return;
    }
    if args.iter().any(|a| a == "gate") {
        gate_mode(quick, &args);
    }
    if args.iter().any(|a| a == "metricsjson") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map_or("METRICS_PR2.json", |s| s.as_str());
        metricsjson(quick, out);
        return;
    }
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut skip_next = false;
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--json" {
                skip_next = true;
                return false;
            }
            !a.starts_with('-')
        })
        .map(std::string::String::as_str)
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        experiments::ALL.to_vec()
    } else {
        ids
    };

    if json_path.is_some() {
        sink::begin();
    }
    let total = Instant::now();
    for id in &ids {
        println!("==================== experiment {id} ====================");
        let t0 = Instant::now();
        if !experiments::dispatch(id, quick) {
            eprintln!(
                "unknown experiment '{id}'; available: {}",
                experiments::ALL.join(", ")
            );
            std::process::exit(2);
        }
        println!("[{} finished in {:.1?}]\n", id, t0.elapsed());
    }
    println!("all experiments done in {:.1?}", total.elapsed());
    if let Some(path) = json_path {
        let tables = sink::finish().unwrap_or_default();
        let doc = serde_json::json!({
            "suite": "hotpotato-routing experiments",
            "quick": quick,
            "experiments": ids,
            "tables": tables,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("serialize"),
        )
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote JSON results to {path}");
    }
}
