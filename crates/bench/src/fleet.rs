//! Fleet artifact collection for the bench tables.
//!
//! `tables t1`/`t8` used to average bespoke per-run counters; they now
//! build their rows from the same [`FleetAggregator`] rollup the live
//! `/fleet` endpoint serves, so a table cell and a fleet cell are the
//! same artifact. Determinism at any worker count is structural:
//! [`parallel_map`] writes results back by index (submission order), the
//! fold below walks that order sequentially, and every statistic the
//! aggregator reports is computed from *sorted* samples with a
//! cell-keyed bootstrap seed — so `HOTPOTATO_THREADS=1` and `=32`
//! produce byte-identical tables.

use crate::runner::parallel_map;
use hotpotato_trace::{FleetAggregator, FleetSample};
use routing_core::spec::RunSpec;
use serve::run_fleet_spec;

/// Executes every spec on the worker pool and folds the samples into
/// one aggregation, in submission order.
pub fn collect_specs(specs: Vec<RunSpec>, verify: bool) -> FleetAggregator {
    collect_with(specs, |spec| run_fleet_spec(&spec, verify))
}

/// Parses and executes every spec string. Panics on a malformed spec —
/// table definitions are code, not input.
pub fn collect_strs(specs: &[String], verify: bool) -> FleetAggregator {
    let specs: Vec<RunSpec> = specs
        .iter()
        .map(|s| routing_core::spec::parse_run_spec(s).expect("table specs parse"))
        .collect();
    collect_specs(specs, verify)
}

/// The generic collector: any item type, any sample producer. `t8` uses
/// this to run parameter points [`RunSpec`] cannot express (custom
/// frame heights), while still folding through the fleet artifact.
pub fn collect_with<T, F>(items: Vec<T>, produce: F) -> FleetAggregator
where
    T: Send,
    F: Fn(T) -> Result<FleetSample, String> + Sync,
{
    let results = parallel_map(items, produce);
    let mut agg = FleetAggregator::new();
    for result in results {
        match result {
            Ok(sample) => agg.record(sample),
            Err(_) => agg.record_failure(),
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::parallel_map_with_threads;

    fn specs() -> Vec<RunSpec> {
        routing_core::spec::expand_sweep("bf:5/bitrev/busch/1..4").expect("sweep")
    }

    #[test]
    fn fleet_artifacts_are_identical_at_any_worker_count() {
        let runs: Vec<Vec<Result<FleetSample, String>>> = [1usize, 2, 7]
            .iter()
            .map(|&threads| {
                parallel_map_with_threads(specs(), |s| run_fleet_spec(&s, true), threads)
            })
            .collect();
        let docs: Vec<String> = runs
            .into_iter()
            .map(|results| {
                let mut agg = FleetAggregator::new();
                for r in results {
                    agg.record(r.expect("clean runs"));
                }
                serde_json::to_string(&agg.to_json()).expect("serialize")
            })
            .collect();
        assert_eq!(docs[0], docs[1], "1 thread == 2 threads, byte for byte");
        assert_eq!(docs[0], docs[2], "1 thread == 7 threads, byte for byte");
    }

    #[test]
    fn failures_fold_as_failed_runs() {
        let agg = collect_with(vec![1u64, 2, 3], |i| {
            if i == 2 {
                Err("boom".into())
            } else {
                run_fleet_spec(
                    &routing_core::spec::parse_run_spec(&format!("bf:5/bitrev/busch/{i}"))
                        .expect("spec"),
                    false,
                )
            }
        });
        assert_eq!(agg.runs(), 2);
        assert_eq!(agg.failed(), 1);
    }
}
