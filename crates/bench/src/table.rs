//! Minimal aligned-column table rendering for experiment output, with an
//! optional process-wide JSON sink (`tables --json`).

use serde::Serialize;
use std::fmt::Write as _;

/// A titled table with a header row and string cells; renders with
/// right-aligned, width-fitted columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title, printed above the header.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows; ragged rows are padded with empty cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Serialize for Table {
    fn to_json(&self) -> serde::Value {
        serde::Value::object([
            ("title", self.title.to_json()),
            ("header", self.header.to_json()),
            ("rows", self.rows.to_json()),
            ("notes", self.notes.to_json()),
        ])
    }
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (already stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a note line printed under the table.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncol = self
            .rows
            .iter()
            .map(std::vec::Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; ncol];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |row: &[String], width: &[usize], out: &mut String| {
            for (i, w) in width.iter().enumerate() {
                let empty = String::new();
                let cell = row.get(i).unwrap_or(&empty);
                let pad = w - cell.chars().count();
                let _ = write!(out, "{}{}  ", " ".repeat(pad), cell);
            }
            let _ = writeln!(out);
        };
        line(&self.header, &width, &mut out);
        let total: usize = width.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            line(row, &width, &mut out);
        }
        for note in &self.notes {
            let _ = writeln!(out, "  * {note}");
        }
        out
    }

    /// Prints the table to stdout and forwards it to the JSON sink when
    /// one is active.
    pub fn print(&self) {
        println!("{}", self.render());
        sink::push(self);
    }
}

/// Process-wide table collector backing the `tables --json` mode.
pub mod sink {
    use super::Table;
    use std::sync::Mutex;

    static COLLECTOR: Mutex<Option<Vec<serde_json::Value>>> = Mutex::new(None);

    /// Starts collecting every printed table.
    pub fn begin() {
        *COLLECTOR.lock().expect("sink lock") = Some(Vec::new());
    }

    /// Records a table if collection is active.
    pub fn push(table: &Table) {
        if let Some(v) = COLLECTOR.lock().expect("sink lock").as_mut() {
            v.push(serde_json::to_value(table).expect("tables serialize"));
        }
    }

    /// Stops collecting and returns everything recorded, if active.
    pub fn finish() -> Option<Vec<serde_json::Value>> {
        COLLECTOR.lock().expect("sink lock").take()
    }
}

/// Formats a float with three significant decimals.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Formats a float in scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "12345".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("a-much-longer-name"));
        assert!(s.contains("* a note"));
        // All data lines have the same width.
        let lines: Vec<&str> = s.lines().skip(1).take(4).collect();
        assert_eq!(
            lines[0].chars().count(),
            lines[2]
                .trim_end()
                .chars()
                .count()
                .max(lines[0].chars().count()) // header >= rows
        );
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new("ragged", &["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(3.21987), "3.22");
        assert_eq!(f(42.123), "42.1");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(sci(1234.5), "1.23e3");
    }
}
