//! Experiment harness regenerating every figure and evaluation claim of
//! the paper (see `DESIGN.md` §5 for the experiment index).
//!
//! The `tables` binary dispatches to one module per experiment:
//!
//! | id | paper artifact | module |
//! |----|----------------|--------|
//! | f1 | Figure 1 (leveled networks) | [`experiments::f1`] |
//! | f2 | Figure 2 (frontier-frames) | [`experiments::f2`] |
//! | t1 | Theorem 2.6 `Õ(C+L)` scaling | [`experiments::t1`] |
//! | t2 | Lemma 2.2 per-set congestion | [`experiments::t2`] |
//! | t3 | invariants `I_a..I_f` | [`experiments::t3`] |
//! | t4 | algorithm comparison / buffer benefit | [`experiments::t4`] |
//! | t5 | §5 mesh application | [`experiments::t5`] |
//! | t6 | §1.2 path-deviation claim | [`experiments::t6`] |
//! | t7 | §2.1 parameter formulas | [`experiments::t7`] |
//! | t8 | Theorem 2.6's probability, measured | [`experiments::t8`] |
//! | a1 | ablation: excitation probability `q` | [`experiments::a1`] |
//! | a2 | ablation: round length `w` and frame height `m` | [`experiments::a2`] |
//! | a3 | ablation: number of frontier sets | [`experiments::a3`] |
//! | a4 | ablation: safe backward deflections | [`experiments::a4`] |
//! | a5 | ablation: injection discipline | [`experiments::a5`] |
//! | perf | simulator throughput (not a paper artifact) | [`experiments::perf`] |

pub mod experiments;
pub mod fleet;
pub mod gate;
pub mod runner;
pub mod table;

pub use hotpotato_sim::pool_core;
pub use runner::{average, parallel_map, RunSummary};
pub use table::Table;
