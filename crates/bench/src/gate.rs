//! Telemetry regression gate: compares freshly measured perf and metrics
//! documents against the committed baselines with explicit tolerances.
//!
//! Three kinds of checks:
//!
//! * **Perf** ([`perf_gate`]) — every component of the committed perf
//!   baseline (`BENCH_PR1.json`) must still exist and its `moves_per_s`
//!   throughput must be at least `min_ratio` × the baseline value.
//!   `moves_per_s` is the yardstick because it is roughly scale-free:
//!   quick CI runs use a smaller butterfly than the committed full
//!   baseline, and per-move cost is what a regression actually changes.
//!   The ratio is deliberately generous (CI machines differ); it exists
//!   to catch order-of-magnitude cliffs, not single-digit noise.
//!   [`adaptive_perf_gate`] replaces the single global ratio with
//!   per-component floors derived from the *spread* between several
//!   committed baselines (`BENCH_PR1.json` vs `BENCH_PR3.json`):
//!   components whose history agrees tightly gate tightly, noisy ones
//!   stay forgiving, and nothing is ever stricter than the history
//!   justifies (see [`adaptive_ratio`]).
//! * **Scrape** ([`scrape_gate`]) — well-formedness of a live
//!   `hotpotato serve` endpoint: `/healthz` liveness and a `/metrics`
//!   exposition whose lines parse, whose required families are declared
//!   and sampled, and whose histogram buckets are cumulative.
//! * **Metrics** ([`metrics_gate`]) — scale-independent telemetry
//!   invariants of the fresh instrumented run: every packet delivered,
//!   zero unsafe deflections, and the Lemma 2.2 contract that the
//!   per-set congestion watermark never exceeds `ln(L·N)`. When the
//!   fresh run is the same instance as the committed baseline
//!   (`METRICS_PR2.json`), the seeded run is deterministic, so makespan,
//!   total deflections, and the watermark must match **exactly**.
//!
//! Every check produces a [`Finding`]; the `tables gate` subcommand
//! prints them all and fails the process if any failed.

use serde::Value;

/// One gate check outcome.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Short check identifier, e.g. `perf/busch (audited)`.
    pub check: String,
    /// Whether the check passed.
    pub ok: bool,
    /// Human-readable evidence (measured vs bound).
    pub detail: String,
}

impl Finding {
    fn pass(check: impl Into<String>, detail: impl Into<String>) -> Finding {
        Finding {
            check: check.into(),
            ok: true,
            detail: detail.into(),
        }
    }

    fn fail(check: impl Into<String>, detail: impl Into<String>) -> Finding {
        Finding {
            check: check.into(),
            ok: false,
            detail: detail.into(),
        }
    }
}

/// Whether every finding passed.
pub fn passed(findings: &[Finding]) -> bool {
    findings.iter().all(|f| f.ok)
}

fn f64_at(doc: &Value, path: &[&str]) -> Option<f64> {
    let mut v = doc;
    for key in path {
        v = v.get(key)?;
    }
    v.as_f64()
}

/// Compares a fresh perf document against the committed baseline.
///
/// Both documents use the `perfjson` shape (`rows[]` with `component`
/// and `moves_per_s`). Every baseline component must be present and no
/// slower than `min_ratio` × baseline throughput.
pub fn perf_gate(baseline: &Value, current: &Value, min_ratio: f64) -> Vec<Finding> {
    let mut out = Vec::new();
    let empty = Vec::new();
    let base_rows = baseline
        .get("rows")
        .and_then(|r| r.as_array())
        .unwrap_or(&empty);
    let cur_rows = current
        .get("rows")
        .and_then(|r| r.as_array())
        .unwrap_or(&empty);
    if base_rows.is_empty() {
        out.push(Finding::fail("perf/baseline", "baseline has no rows"));
        return out;
    }
    for base in base_rows {
        let name = base
            .get("component")
            .and_then(|c| c.as_str())
            .unwrap_or("?");
        let check = format!("perf/{name}");
        let Some(base_mps) = f64_at(base, &["moves_per_s"]) else {
            out.push(Finding::fail(check, "baseline row has no moves_per_s"));
            continue;
        };
        let cur = cur_rows
            .iter()
            .find(|r| r.get("component").and_then(|c| c.as_str()) == Some(name));
        let Some(cur) = cur else {
            out.push(Finding::fail(
                check,
                format!("component '{name}' missing from the fresh measurement"),
            ));
            continue;
        };
        let Some(cur_mps) = f64_at(cur, &["moves_per_s"]) else {
            out.push(Finding::fail(check, "fresh row has no moves_per_s"));
            continue;
        };
        let floor = base_mps * min_ratio;
        let detail = format!(
            "{cur_mps:.0} moves/s vs baseline {base_mps:.0} (floor {min_ratio:.2}× = {floor:.0})"
        );
        if cur_mps >= floor {
            out.push(Finding::pass(check, detail));
        } else {
            out.push(Finding::fail(check, detail));
        }
    }
    out
}

/// The cross-machine floor ratio: the most lenient bound any check may
/// use. A component with no spread evidence (a single committed
/// baseline) falls back to exactly this — the historical `--min-ratio`
/// default.
pub const GLOBAL_MIN_RATIO: f64 = 0.25;

/// Derives a per-component floor ratio from the spread of that
/// component's throughput across committed baselines.
///
/// `spread` is the relative gap between the slowest and fastest
/// committed measurement (`1 - min/max`). The allowed drop below the
/// *fastest* baseline is three spreads plus a 10% pad — same-machine
/// noise observed across PRs, tripled, is a generous envelope for a real
/// CI runner — clamped so the derived floor is never more lenient than
/// [`GLOBAL_MIN_RATIO`] and never tighter than 0.90.
pub fn adaptive_ratio(spread: f64) -> f64 {
    (1.0 - (3.0 * spread + 0.10)).clamp(GLOBAL_MIN_RATIO, 0.90)
}

/// Compares a fresh perf document against *several* committed baselines,
/// deriving each component's floor from the spread between them instead
/// of one global ratio (baselines that agree tightly gate tightly;
/// noisy components stay forgiving).
///
/// The newest baseline (last in `baselines`) defines the component set;
/// the reference throughput for each component is the fastest committed
/// measurement.
pub fn adaptive_perf_gate(baselines: &[Value], current: &Value) -> Vec<Finding> {
    let mut out = Vec::new();
    let empty = Vec::new();
    let Some(newest) = baselines.last() else {
        out.push(Finding::fail("perf/baselines", "no baselines given"));
        return out;
    };
    let newest_rows = newest
        .get("rows")
        .and_then(|r| r.as_array())
        .unwrap_or(&empty);
    if newest_rows.is_empty() {
        out.push(Finding::fail(
            "perf/baselines",
            "newest baseline has no rows",
        ));
        return out;
    }
    let cur_rows = current
        .get("rows")
        .and_then(|r| r.as_array())
        .unwrap_or(&empty);
    for base in newest_rows {
        let name = base
            .get("component")
            .and_then(|c| c.as_str())
            .unwrap_or("?");
        let check = format!("perf/{name}");
        // Every committed measurement of this component, across baselines.
        let history: Vec<f64> = baselines
            .iter()
            .filter_map(|doc| {
                doc.get("rows")?
                    .as_array()?
                    .iter()
                    .find(|r| r.get("component").and_then(|c| c.as_str()) == Some(name))
                    .and_then(|r| f64_at(r, &["moves_per_s"]))
            })
            .collect();
        let Some(&reference) = history.iter().max_by(|a, b| a.total_cmp(b)) else {
            out.push(Finding::fail(check, "no baseline has moves_per_s"));
            continue;
        };
        let slowest = history.iter().copied().fold(f64::INFINITY, f64::min);
        let ratio = if history.len() >= 2 {
            adaptive_ratio(1.0 - slowest / reference)
        } else {
            GLOBAL_MIN_RATIO
        };
        let cur = cur_rows
            .iter()
            .find(|r| r.get("component").and_then(|c| c.as_str()) == Some(name));
        let Some(cur) = cur else {
            out.push(Finding::fail(
                check,
                format!("component '{name}' missing from the fresh measurement"),
            ));
            continue;
        };
        let Some(cur_mps) = f64_at(cur, &["moves_per_s"]) else {
            out.push(Finding::fail(check, "fresh row has no moves_per_s"));
            continue;
        };
        let floor = reference * ratio;
        let detail = format!(
            "{cur_mps:.0} moves/s vs best-of-{} baselines {reference:.0} (adaptive floor {ratio:.2}× = {floor:.0})",
            history.len(),
        );
        if cur_mps >= floor {
            out.push(Finding::pass(check, detail));
        } else {
            out.push(Finding::fail(check, detail));
        }
    }
    out
}

/// Families a live `/metrics` scrape must expose (present from the very
/// first snapshot — none depend on run progress).
const REQUIRED_FAMILIES: &[&str] = &[
    "hotpotato_steps_total",
    "hotpotato_moves_total",
    "hotpotato_deliveries_total",
    "hotpotato_deflections_total",
    "hotpotato_deflections_per_packet",
    "hotpotato_snapshot_seq",
    "hotpotato_run_finished",
];

/// Validates a live scrape of `hotpotato serve`: `/healthz` liveness
/// plus well-formedness of the `/metrics` exposition (line shapes,
/// required families, and cumulativity of every histogram series). Pure
/// over the fetched bodies, so CI failures reproduce offline.
pub fn scrape_gate(healthz_status: u16, healthz_body: &str, metrics_text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    if healthz_status == 200 && healthz_body == "ok\n" {
        out.push(Finding::pass("scrape/healthz", "200 ok"));
    } else {
        out.push(Finding::fail(
            "scrape/healthz",
            format!("status {healthz_status}, body {healthz_body:?}"),
        ));
    }

    let mut malformed = Vec::new();
    let mut samples = 0usize;
    for line in metrics_text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        // `name value` or `name{labels} value`; the value parses as f64
        // (`+Inf` buckets appear only inside `le` labels, never as values
        // of these families).
        match line.rsplit_once(' ') {
            Some((name, value)) if !name.is_empty() && value.parse::<f64>().is_ok() => {
                samples += 1;
            }
            _ => malformed.push(line),
        }
    }
    if malformed.is_empty() && samples > 0 {
        out.push(Finding::pass(
            "scrape/exposition",
            format!("{samples} well-formed samples"),
        ));
    } else {
        out.push(Finding::fail(
            "scrape/exposition",
            format!("{samples} samples, malformed lines: {malformed:?}"),
        ));
    }

    for family in REQUIRED_FAMILIES {
        let declared = metrics_text.lines().any(|l| {
            l.strip_prefix("# TYPE ")
                .is_some_and(|r| r.split_whitespace().next() == Some(family))
        });
        let sampled = metrics_text
            .lines()
            .any(|l| l.starts_with(family) && !l.starts_with('#'));
        if declared && sampled {
            out.push(Finding::pass(
                format!("scrape/{family}"),
                "declared + sampled",
            ));
        } else {
            out.push(Finding::fail(
                format!("scrape/{family}"),
                format!("declared={declared} sampled={sampled}"),
            ));
        }
    }

    // Histogram cumulativity: within each `_bucket` series (same labels
    // modulo `le`), counts never decrease in document order and the
    // closing bucket is `+Inf`.
    let mut last: Option<(String, f64)> = None;
    let mut cumulative_ok = true;
    let mut buckets_seen = 0usize;
    for line in metrics_text.lines() {
        let Some(rest) = line
            .split_once("_bucket{")
            .map(|(name, rest)| (name.to_owned(), rest))
        else {
            if last.is_some() {
                // Series ended: the final bucket must have been +Inf.
                if let Some((labels, _)) = &last {
                    if !labels.contains("le=\"+Inf\"") {
                        cumulative_ok = false;
                    }
                }
                last = None;
            }
            continue;
        };
        let (series, labels_and_value) = rest;
        let Some((labels, value)) = labels_and_value.rsplit_once(' ') else {
            cumulative_ok = false;
            continue;
        };
        let value: f64 = value.parse().unwrap_or(f64::NAN);
        buckets_seen += 1;
        let key_prefix = {
            // Labels minus the trailing `le="..."}`.
            labels.split(",le=\"").next().unwrap_or("").to_owned()
        };
        let series_key = format!("{series}|{key_prefix}");
        match &last {
            Some((prev_key, prev_value))
                if prev_key.starts_with(&series_key) && value < *prev_value =>
            {
                cumulative_ok = false;
            }
            _ => {}
        }
        last = Some((format!("{series_key}|{labels}"), value));
    }
    if let Some((labels, _)) = &last {
        if !labels.contains("le=\"+Inf\"") {
            cumulative_ok = false;
        }
    }
    if cumulative_ok && buckets_seen > 0 {
        out.push(Finding::pass(
            "scrape/histograms",
            format!("{buckets_seen} cumulative bucket samples"),
        ));
    } else {
        out.push(Finding::fail(
            "scrape/histograms",
            format!("cumulativity violated or no buckets ({buckets_seen} seen)"),
        ));
    }
    out
}

/// Checks the telemetry invariants of a fresh metrics document against
/// the committed baseline (see the module docs for the contract).
pub fn metrics_gate(baseline: &Value, current: &Value) -> Vec<Finding> {
    let mut out = Vec::new();

    // Scale-independent invariants of the fresh run.
    match (
        f64_at(current, &["metrics", "delivered"]),
        f64_at(current, &["metrics", "packets"]),
    ) {
        (Some(d), Some(n)) if d == n => out.push(Finding::pass(
            "metrics/delivered",
            format!("{d:.0}/{n:.0} packets delivered"),
        )),
        (d, n) => out.push(Finding::fail(
            "metrics/delivered",
            format!("delivered {d:?} of {n:?} packets"),
        )),
    }
    match f64_at(current, &["metrics", "deflections", "unsafe"]) {
        Some(0.0) => out.push(Finding::pass(
            "metrics/safe-deflections",
            "0 unsafe deflections",
        )),
        u => out.push(Finding::fail(
            "metrics/safe-deflections",
            format!("unsafe deflections: {u:?}"),
        )),
    }
    // Lemma 2.2: per-set congestion watermark stays under ln(L·N).
    match (
        f64_at(current, &["metrics", "congestion", "watermark_max"]),
        f64_at(current, &["metrics", "congestion", "ln_ln_bound"]),
    ) {
        (Some(w), Some(b)) if w <= b => out.push(Finding::pass(
            "metrics/watermark",
            format!("congestion watermark {w:.0} ≤ ln(L·N) = {b:.3}"),
        )),
        (w, b) => out.push(Finding::fail(
            "metrics/watermark",
            format!("congestion watermark {w:?} exceeds ln(L·N) bound {b:?}"),
        )),
    }

    // Same instance as the baseline ⇒ the seeded run is deterministic
    // and the telemetry must match exactly.
    let same_instance = f64_at(baseline, &["k"]).is_some()
        && f64_at(baseline, &["k"]) == f64_at(current, &["k"])
        && f64_at(baseline, &["packets"]) == f64_at(current, &["packets"]);
    if same_instance {
        for (name, path) in [
            ("metrics/makespan", &["makespan"] as &[&str]),
            ("metrics/deflections", &["metrics", "deflections", "total"]),
            (
                "metrics/watermark-exact",
                &["metrics", "congestion", "watermark_max"],
            ),
        ] {
            let (b, c) = (f64_at(baseline, path), f64_at(current, path));
            let detail = format!("baseline {b:?} vs fresh {c:?} (exact match required)");
            if b.is_some() && b == c {
                out.push(Finding::pass(name, detail));
            } else {
                out.push(Finding::fail(name, detail));
            }
        }
    } else {
        out.push(Finding::pass(
            "metrics/determinism",
            "different instance size than baseline; exact-match checks skipped",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn perf_doc(mps: f64) -> Value {
        json!({
            "k": 12,
            "rows": [
                json!({ "component": "busch (audited)", "moves_per_s": mps }),
            ],
        })
    }

    #[test]
    fn perf_gate_applies_min_ratio_floor() {
        let base = perf_doc(1_000_000.0);
        let ok = perf_gate(&base, &perf_doc(600_000.0), 0.5);
        assert!(passed(&ok), "{ok:?}");
        let slow = perf_gate(&base, &perf_doc(400_000.0), 0.5);
        assert!(!passed(&slow), "{slow:?}");
        // A missing component is a failure, not a silent skip.
        let missing = perf_gate(&base, &json!({ "rows": Value::Array(Vec::new()) }), 0.5);
        assert!(!passed(&missing), "{missing:?}");
    }

    fn perf_doc_named(rows: &[(&str, f64)]) -> Value {
        let rows: Vec<Value> = rows
            .iter()
            .map(|(name, mps)| json!({ "component": *name, "moves_per_s": *mps }))
            .collect();
        json!({ "k": 12, "rows": Value::Array(rows) })
    }

    #[test]
    fn adaptive_ratio_tracks_spread_within_clamps() {
        // Tight history → tight floor; 14% spread (the observed
        // PR1-vs-PR3 gap) → ~0.48; huge spread → never below the
        // cross-machine global.
        assert_eq!(adaptive_ratio(0.0), 0.90);
        let mid = adaptive_ratio(0.14);
        assert!((0.45..0.50).contains(&mid), "{mid}");
        assert_eq!(adaptive_ratio(0.5), GLOBAL_MIN_RATIO);
    }

    #[test]
    fn adaptive_gate_derives_per_component_floors() {
        // "steady" has a tight history (2% spread → 0.84 floor ratio);
        // "noisy" a wide one (20% spread → 0.30).
        let old = perf_doc_named(&[("steady", 1_000_000.0), ("noisy", 1_000_000.0)]);
        let new = perf_doc_named(&[("steady", 980_000.0), ("noisy", 800_000.0)]);
        let baselines = vec![old, new];
        // 0.82 of the best: passes the noisy floor (0.30), fails the
        // steady one (0.84).
        let fresh = perf_doc_named(&[("steady", 820_000.0), ("noisy", 820_000.0)]);
        let findings = adaptive_perf_gate(&baselines, &fresh);
        let by_name = |n: &str| {
            findings
                .iter()
                .find(|f| f.check == format!("perf/{n}"))
                .unwrap()
        };
        assert!(!by_name("steady").ok, "{findings:?}");
        assert!(by_name("noisy").ok, "{findings:?}");
        // Healthy throughput passes everything.
        let healthy = perf_doc_named(&[("steady", 990_000.0), ("noisy", 990_000.0)]);
        assert!(passed(&adaptive_perf_gate(&baselines, &healthy)));
        // A missing component is a failure, not a silent skip.
        let missing = adaptive_perf_gate(&baselines, &perf_doc_named(&[("steady", 990_000.0)]));
        assert!(!passed(&missing), "{missing:?}");
    }

    #[test]
    fn adaptive_gate_skips_components_absent_from_older_baselines() {
        // A component introduced by the newest baseline has no history
        // in older documents: the gate must fall back to the global
        // ratio for it — not error, not demand the old docs carry it —
        // while components with full history keep their derived floors.
        let old = perf_doc_named(&[("classic", 1_000_000.0)]);
        let new = perf_doc_named(&[("classic", 980_000.0), ("large", 2_000_000.0)]);
        let baselines = vec![old, new];
        let fresh = perf_doc_named(&[("classic", 990_000.0), ("large", 600_000.0)]);
        // "large": 0.30 of its single reference — above the 0.25 global
        // fallback even though it is far below any derived tight floor.
        let findings = adaptive_perf_gate(&baselines, &fresh);
        assert!(passed(&findings), "{findings:?}");
        // The fallback is still a floor: dropping under it fails.
        let too_slow = perf_doc_named(&[("classic", 990_000.0), ("large", 400_000.0)]);
        assert!(!passed(&adaptive_perf_gate(&baselines, &too_slow)));
        // Rows carrying extra fields (packets_per_s, peak_rss_bytes, ...)
        // must not confuse history collection.
        let decorated = json!({ "k": 16, "rows": [json!({
            "component": "classic", "moves_per_s": 990_000.0,
            "packets_per_s": 4_000.0, "peak_rss_bytes": 123_456_789u64,
            "violations": 0,
        })] });
        let only_classic = vec![perf_doc_named(&[("classic", 1_000_000.0)]), decorated];
        let fresh2 = perf_doc_named(&[("classic", 900_000.0)]);
        assert!(passed(&adaptive_perf_gate(&only_classic, &fresh2)));
    }

    #[test]
    fn adaptive_gate_single_baseline_falls_back_to_global_ratio() {
        let only = vec![perf_doc_named(&[("c", 1_000_000.0)])];
        // 0.30 of baseline: above the 0.25 global fallback.
        let fresh = perf_doc_named(&[("c", 300_000.0)]);
        assert!(passed(&adaptive_perf_gate(&only, &fresh)));
        let too_slow = perf_doc_named(&[("c", 200_000.0)]);
        assert!(!passed(&adaptive_perf_gate(&only, &too_slow)));
        assert!(!passed(&adaptive_perf_gate(&[], &fresh)));
    }

    const GOOD_SCRAPE: &str = "\
# HELP hotpotato_steps_total Steps.\n\
# TYPE hotpotato_steps_total counter\n\
hotpotato_steps_total{run=\"a\"} 320\n\
# TYPE hotpotato_moves_total counter\n\
hotpotato_moves_total{run=\"a\"} 10\n\
# TYPE hotpotato_deliveries_total counter\n\
hotpotato_deliveries_total{run=\"a\"} 0\n\
# TYPE hotpotato_deflections_total counter\n\
hotpotato_deflections_total{run=\"a\",kind=\"safe\"} 2\n\
# TYPE hotpotato_deflections_per_packet histogram\n\
hotpotato_deflections_per_packet_bucket{run=\"a\",le=\"0\"} 5\n\
hotpotato_deflections_per_packet_bucket{run=\"a\",le=\"1\"} 8\n\
hotpotato_deflections_per_packet_bucket{run=\"a\",le=\"+Inf\"} 9\n\
hotpotato_deflections_per_packet_sum{run=\"a\"} 6\n\
hotpotato_deflections_per_packet_count{run=\"a\"} 9\n\
# TYPE hotpotato_snapshot_seq gauge\n\
hotpotato_snapshot_seq{run=\"a\"} 40\n\
# TYPE hotpotato_run_finished gauge\n\
hotpotato_run_finished{run=\"a\"} 0\n";

    #[test]
    fn scrape_gate_accepts_a_well_formed_exposition() {
        let findings = scrape_gate(200, "ok\n", GOOD_SCRAPE);
        assert!(passed(&findings), "{findings:?}");
    }

    #[test]
    fn scrape_gate_rejects_problems() {
        assert!(!passed(&scrape_gate(500, "boom", GOOD_SCRAPE)));
        // A malformed sample line.
        let broken = format!("{GOOD_SCRAPE}what_is_this\n");
        assert!(!passed(&scrape_gate(200, "ok\n", &broken)));
        // A missing required family.
        let no_steps = GOOD_SCRAPE.replace("hotpotato_steps_total", "hp_steps");
        assert!(!passed(&scrape_gate(200, "ok\n", &no_steps)));
        // Non-cumulative buckets.
        let decreasing = GOOD_SCRAPE.replace(
            "hotpotato_deflections_per_packet_bucket{run=\"a\",le=\"1\"} 8",
            "hotpotato_deflections_per_packet_bucket{run=\"a\",le=\"1\"} 3",
        );
        assert!(!passed(&scrape_gate(200, "ok\n", &decreasing)));
    }

    fn metrics_doc(k: u64, delivered: u64, watermark: f64, makespan: u64) -> Value {
        json!({
            "k": k,
            "packets": 1024,
            "makespan": makespan,
            "metrics": json!({
                "packets": 1024,
                "delivered": delivered,
                "deflections": json!({ "total": 6046, "unsafe": 0 }),
                "congestion": json!({ "watermark_max": watermark, "ln_ln_bound": 9.234 }),
            }),
        })
    }

    #[test]
    fn metrics_gate_checks_invariants_and_determinism() {
        let base = metrics_doc(10, 1024, 8.0, 64004);
        assert!(
            passed(&metrics_gate(&base, &base)),
            "self-compare must pass"
        );
        // Watermark above the Lemma 2.2 bound fails.
        let hot = metrics_doc(10, 1024, 12.0, 64004);
        assert!(!passed(&metrics_gate(&base, &hot)));
        // Same instance with a different makespan fails (determinism).
        let drift = metrics_doc(10, 1024, 8.0, 64123);
        assert!(!passed(&metrics_gate(&base, &drift)));
        // Different instance: exact checks skipped, invariants still run.
        let quick = metrics_doc(8, 1024, 8.0, 9999);
        assert!(passed(&metrics_gate(&base, &quick)));
        let undelivered = metrics_doc(8, 1000, 8.0, 9999);
        assert!(!passed(&metrics_gate(&base, &undelivered)));
    }
}
