//! Telemetry regression gate: compares freshly measured perf and metrics
//! documents against the committed baselines with explicit tolerances.
//!
//! Two kinds of checks:
//!
//! * **Perf** ([`perf_gate`]) — every component of the committed perf
//!   baseline (`BENCH_PR1.json`) must still exist and its `moves_per_s`
//!   throughput must be at least `min_ratio` × the baseline value.
//!   `moves_per_s` is the yardstick because it is roughly scale-free:
//!   quick CI runs use a smaller butterfly than the committed full
//!   baseline, and per-move cost is what a regression actually changes.
//!   The ratio is deliberately generous (CI machines differ); it exists
//!   to catch order-of-magnitude cliffs, not single-digit noise.
//! * **Metrics** ([`metrics_gate`]) — scale-independent telemetry
//!   invariants of the fresh instrumented run: every packet delivered,
//!   zero unsafe deflections, and the Lemma 2.2 contract that the
//!   per-set congestion watermark never exceeds `ln(L·N)`. When the
//!   fresh run is the same instance as the committed baseline
//!   (`METRICS_PR2.json`), the seeded run is deterministic, so makespan,
//!   total deflections, and the watermark must match **exactly**.
//!
//! Every check produces a [`Finding`]; the `tables gate` subcommand
//! prints them all and fails the process if any failed.

use serde::Value;

/// One gate check outcome.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Short check identifier, e.g. `perf/busch (audited)`.
    pub check: String,
    /// Whether the check passed.
    pub ok: bool,
    /// Human-readable evidence (measured vs bound).
    pub detail: String,
}

impl Finding {
    fn pass(check: impl Into<String>, detail: impl Into<String>) -> Finding {
        Finding {
            check: check.into(),
            ok: true,
            detail: detail.into(),
        }
    }

    fn fail(check: impl Into<String>, detail: impl Into<String>) -> Finding {
        Finding {
            check: check.into(),
            ok: false,
            detail: detail.into(),
        }
    }
}

/// Whether every finding passed.
pub fn passed(findings: &[Finding]) -> bool {
    findings.iter().all(|f| f.ok)
}

fn f64_at(doc: &Value, path: &[&str]) -> Option<f64> {
    let mut v = doc;
    for key in path {
        v = v.get(key)?;
    }
    v.as_f64()
}

/// Compares a fresh perf document against the committed baseline.
///
/// Both documents use the `perfjson` shape (`rows[]` with `component`
/// and `moves_per_s`). Every baseline component must be present and no
/// slower than `min_ratio` × baseline throughput.
pub fn perf_gate(baseline: &Value, current: &Value, min_ratio: f64) -> Vec<Finding> {
    let mut out = Vec::new();
    let empty = Vec::new();
    let base_rows = baseline
        .get("rows")
        .and_then(|r| r.as_array())
        .unwrap_or(&empty);
    let cur_rows = current
        .get("rows")
        .and_then(|r| r.as_array())
        .unwrap_or(&empty);
    if base_rows.is_empty() {
        out.push(Finding::fail("perf/baseline", "baseline has no rows"));
        return out;
    }
    for base in base_rows {
        let name = base
            .get("component")
            .and_then(|c| c.as_str())
            .unwrap_or("?");
        let check = format!("perf/{name}");
        let Some(base_mps) = f64_at(base, &["moves_per_s"]) else {
            out.push(Finding::fail(check, "baseline row has no moves_per_s"));
            continue;
        };
        let cur = cur_rows
            .iter()
            .find(|r| r.get("component").and_then(|c| c.as_str()) == Some(name));
        let Some(cur) = cur else {
            out.push(Finding::fail(
                check,
                format!("component '{name}' missing from the fresh measurement"),
            ));
            continue;
        };
        let Some(cur_mps) = f64_at(cur, &["moves_per_s"]) else {
            out.push(Finding::fail(check, "fresh row has no moves_per_s"));
            continue;
        };
        let floor = base_mps * min_ratio;
        let detail = format!(
            "{cur_mps:.0} moves/s vs baseline {base_mps:.0} (floor {min_ratio:.2}× = {floor:.0})"
        );
        if cur_mps >= floor {
            out.push(Finding::pass(check, detail));
        } else {
            out.push(Finding::fail(check, detail));
        }
    }
    out
}

/// Checks the telemetry invariants of a fresh metrics document against
/// the committed baseline (see the module docs for the contract).
pub fn metrics_gate(baseline: &Value, current: &Value) -> Vec<Finding> {
    let mut out = Vec::new();

    // Scale-independent invariants of the fresh run.
    match (
        f64_at(current, &["metrics", "delivered"]),
        f64_at(current, &["metrics", "packets"]),
    ) {
        (Some(d), Some(n)) if d == n => out.push(Finding::pass(
            "metrics/delivered",
            format!("{d:.0}/{n:.0} packets delivered"),
        )),
        (d, n) => out.push(Finding::fail(
            "metrics/delivered",
            format!("delivered {d:?} of {n:?} packets"),
        )),
    }
    match f64_at(current, &["metrics", "deflections", "unsafe"]) {
        Some(0.0) => out.push(Finding::pass(
            "metrics/safe-deflections",
            "0 unsafe deflections",
        )),
        u => out.push(Finding::fail(
            "metrics/safe-deflections",
            format!("unsafe deflections: {u:?}"),
        )),
    }
    // Lemma 2.2: per-set congestion watermark stays under ln(L·N).
    match (
        f64_at(current, &["metrics", "congestion", "watermark_max"]),
        f64_at(current, &["metrics", "congestion", "ln_ln_bound"]),
    ) {
        (Some(w), Some(b)) if w <= b => out.push(Finding::pass(
            "metrics/watermark",
            format!("congestion watermark {w:.0} ≤ ln(L·N) = {b:.3}"),
        )),
        (w, b) => out.push(Finding::fail(
            "metrics/watermark",
            format!("congestion watermark {w:?} exceeds ln(L·N) bound {b:?}"),
        )),
    }

    // Same instance as the baseline ⇒ the seeded run is deterministic
    // and the telemetry must match exactly.
    let same_instance = f64_at(baseline, &["k"]).is_some()
        && f64_at(baseline, &["k"]) == f64_at(current, &["k"])
        && f64_at(baseline, &["packets"]) == f64_at(current, &["packets"]);
    if same_instance {
        for (name, path) in [
            ("metrics/makespan", &["makespan"] as &[&str]),
            ("metrics/deflections", &["metrics", "deflections", "total"]),
            (
                "metrics/watermark-exact",
                &["metrics", "congestion", "watermark_max"],
            ),
        ] {
            let (b, c) = (f64_at(baseline, path), f64_at(current, path));
            let detail = format!("baseline {b:?} vs fresh {c:?} (exact match required)");
            if b.is_some() && b == c {
                out.push(Finding::pass(name, detail));
            } else {
                out.push(Finding::fail(name, detail));
            }
        }
    } else {
        out.push(Finding::pass(
            "metrics/determinism",
            "different instance size than baseline; exact-match checks skipped",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn perf_doc(mps: f64) -> Value {
        json!({
            "k": 12,
            "rows": [
                json!({ "component": "busch (audited)", "moves_per_s": mps }),
            ],
        })
    }

    #[test]
    fn perf_gate_applies_min_ratio_floor() {
        let base = perf_doc(1_000_000.0);
        let ok = perf_gate(&base, &perf_doc(600_000.0), 0.5);
        assert!(passed(&ok), "{ok:?}");
        let slow = perf_gate(&base, &perf_doc(400_000.0), 0.5);
        assert!(!passed(&slow), "{slow:?}");
        // A missing component is a failure, not a silent skip.
        let missing = perf_gate(&base, &json!({ "rows": Value::Array(Vec::new()) }), 0.5);
        assert!(!passed(&missing), "{missing:?}");
    }

    fn metrics_doc(k: u64, delivered: u64, watermark: f64, makespan: u64) -> Value {
        json!({
            "k": k,
            "packets": 1024,
            "makespan": makespan,
            "metrics": json!({
                "packets": 1024,
                "delivered": delivered,
                "deflections": json!({ "total": 6046, "unsafe": 0 }),
                "congestion": json!({ "watermark_max": watermark, "ln_ln_bound": 9.234 }),
            }),
        })
    }

    #[test]
    fn metrics_gate_checks_invariants_and_determinism() {
        let base = metrics_doc(10, 1024, 8.0, 64004);
        assert!(
            passed(&metrics_gate(&base, &base)),
            "self-compare must pass"
        );
        // Watermark above the Lemma 2.2 bound fails.
        let hot = metrics_doc(10, 1024, 12.0, 64004);
        assert!(!passed(&metrics_gate(&base, &hot)));
        // Same instance with a different makespan fails (determinism).
        let drift = metrics_doc(10, 1024, 8.0, 64123);
        assert!(!passed(&metrics_gate(&base, &drift)));
        // Different instance: exact checks skipped, invariants still run.
        let quick = metrics_doc(8, 1024, 8.0, 9999);
        assert!(passed(&metrics_gate(&base, &quick)));
        let undelivered = metrics_doc(8, 1000, 8.0, 9999);
        assert!(!passed(&metrics_gate(&base, &undelivered)));
    }
}
