//! A5 — ablation: the frame-scheduled injection discipline.
//!
//! The paper injects each packet exactly when its frame's rear inner level
//! passes over its source (§3, "Packet Injection"), which — together with
//! `I_f` — guarantees *isolation*: no other packet is present at the
//! source, so the fresh packet cannot be deflected on its first step and
//! Lemma 2.1's induction gets off the ground. This ablation replaces the
//! schedule with greedy-style injection at step 0 and measures what
//! breaks: isolation (`I_a`), set disjointness (`I_d`), frame containment
//! (`I_c`), and ultimately Lemma 2.1 itself (unsafe deflections appear).

use crate::runner::parallel_map;
use crate::table::Table;
use busch_router::{BuschConfig, BuschRouter, Params};
use leveled_net::builders::{self, ButterflyCoords};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::workloads;
use std::sync::Arc;

/// Runs A5.
pub fn run(quick: bool) {
    let seeds: u64 = if quick { 3 } else { 8 };
    let k = 6;
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let params = Params::scaled(6, 36, 0.1, (prob.congestion() / 2).max(1));

    let mut t = Table::new(
        format!("A5: scheduled vs eager injection (bf({k}) bit-reversal, {seeds} seeds)"),
        &[
            "injection rule",
            "delivered",
            "makespan",
            "Ia viol",
            "Id viol",
            "Ic viol",
            "unsafe defl",
            "mean latency",
        ],
    );
    for (label, eager) in [("frame-scheduled (paper)", false), ("eager (step 0)", true)] {
        let cfg = BuschConfig {
            eager_injection: eager,
            ..BuschConfig::new(params)
        };
        let runs = parallel_map((0..seeds).collect::<Vec<u64>>(), |s| {
            let mut rng = ChaCha8Rng::seed_from_u64(9500 + s);
            let out = BuschRouter::with_config(cfg).route(&prob, &mut rng);
            (
                out.stats.delivered_count(),
                out.stats.makespan().unwrap_or(0),
                out.invariants.isolation_violations,
                out.invariants.cross_set_meetings,
                out.invariants.frame_escapes,
                out.stats.counter("fallback_deflections"),
                out.stats.mean_latency(),
            )
        });
        let delivered: usize = runs.iter().map(|r| r.0).sum::<usize>() / runs.len();
        let makespan = runs.iter().map(|r| r.1).sum::<u64>() / seeds;
        let ia: u64 = runs.iter().map(|r| r.2).sum();
        let id: u64 = runs.iter().map(|r| r.3).sum();
        let ic: u64 = runs.iter().map(|r| r.4).sum();
        let unsafe_defl: u64 = runs.iter().map(|r| r.5).sum();
        let latency = runs.iter().map(|r| r.6).sum::<f64>() / runs.len() as f64;
        t.row(vec![
            label.to_string(),
            format!("{}/{}", delivered, prob.num_packets()),
            makespan.to_string(),
            ia.to_string(),
            id.to_string(),
            ic.to_string(),
            unsafe_defl.to_string(),
            format!("{latency:.1}"),
        ]);
    }
    t.note("measured: eager injection makes packets of different frontier sets");
    t.note("meet constantly (Id explodes) — the frame/phase structure no longer");
    t.note("means anything, so every guarantee built on set disjointness (frame");
    t.note("containment, per-set congestion, round analysis) is forfeit. Ia stays");
    t.note("0 only because all step-0 sources are trivially empty; the schedule's");
    t.note("cost is the pipeline latency, its value is the worst-case guarantee");
    t.print();
}
