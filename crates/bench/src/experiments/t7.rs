//! T7 — §2.1 parameter formulas and §4.4 total time, tabulated.
//!
//! Evaluates the reconstructed parameter formulas over a `(C, L, N)` grid:
//! `a`, `m`, `q`, `w`, the set count `⌈aC⌉`, the phase count `⌈aC⌉·m + L`,
//! the total time `(⌈aC⌉·m + L)·m·w` (Proposition 4.25), the success
//! probability `p(aCm + L)` against Theorem 2.6's `1 − 1/(LN)` bound, and
//! the Õ factor `T / (C + L)` next to `ln⁹(LN)` — making the paper's own
//! "not really practical" remark quantitative.

use crate::table::{f, sci, Table};
use busch_router::PaperParams;

/// Runs T7.
pub fn run(_quick: bool) {
    let mut t = Table::new(
        "T7: the paper's literal parameters over a (C, L, N) grid (§2.1, §4.4)",
        &[
            "C",
            "L",
            "N",
            "ln(LN)",
            "sets ⌈aC⌉",
            "m",
            "q",
            "w",
            "phases",
            "total time",
            "T/(C+L)",
            "ln⁹(LN)",
            "succ ≥ 1-1/LN",
        ],
    );
    let grid: &[(u64, u64, u64)] = &[
        (4, 8, 16),
        (16, 16, 256),
        (64, 32, 1024),
        (256, 64, 4096),
        (1024, 128, 65536),
        (4096, 256, 1 << 20),
    ];
    for &(c, l, n) in grid {
        let p = PaperParams::new(c, l, n);
        let ok = p.success_probability() >= p.success_lower_bound() - 4.0 * f64::EPSILON;
        t.row(vec![
            c.to_string(),
            l.to_string(),
            n.to_string(),
            f(p.ln_ln),
            f(p.num_sets()),
            f(p.m),
            sci(p.q),
            sci(p.w),
            sci(p.total_phases()),
            sci(p.total_time()),
            sci(p.polylog_factor()),
            sci(p.ln_ln.powi(9)),
            ok.to_string(),
        ]);
    }
    t.note("total time tracks ln⁹(LN)·(C+L): optimal up to the polylog factor,");
    t.note("but the constants make the literal schedule astronomically long —");
    t.note("the paper's own 'not really practical' remark; simulations use the");
    t.note("same algorithm under scaled (m, w, q, sets), see T1/T3");
    t.print();
}
