//! A2 — ablation: round length `w` and frame height `m`.
//!
//! The paper sizes rounds (`w`) so every packet parks w.h.p. within one
//! round, and frames (`m = ln²(LN) + 5`) so three rear levels stay empty
//! at each phase end (`I_f`). We sweep both on a fixed congested instance
//! and measure where the machinery starts to fail — quantifying how much
//! of the paper's generous sizing is actually needed at this scale.

use crate::runner::parallel_map;
use crate::table::Table;
use busch_router::{BuschRouter, Params};
use leveled_net::builders::{self, ButterflyCoords};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::{workloads, RoutingProblem};
use std::sync::Arc;

fn sweep_row(t: &mut Table, label: String, prob: &Arc<RoutingProblem>, params: Params, seeds: u64) {
    let runs = parallel_map((0..seeds).collect::<Vec<u64>>(), |s| {
        let mut rng = ChaCha8Rng::seed_from_u64(7000 + s);
        let out = BuschRouter::new(params).route(prob, &mut rng);
        (
            out.stats.delivered_count(),
            out.stats.makespan().unwrap_or(0),
            out.invariants.rear_levels_occupied,
            out.invariants.frame_escapes,
            out.invariants.total_violations(),
        )
    });
    let delivered: usize = runs.iter().map(|r| r.0).sum::<usize>() / runs.len();
    let makespan = runs.iter().map(|r| r.1).sum::<u64>() / seeds;
    let if_v: u64 = runs.iter().map(|r| r.2).sum();
    let ic_v: u64 = runs.iter().map(|r| r.3).sum();
    let all_v: u64 = runs.iter().map(|r| r.4).sum();
    t.row(vec![
        label,
        params.m.to_string(),
        params.w.to_string(),
        format!("{}/{}", delivered, prob.num_packets()),
        makespan.to_string(),
        if_v.to_string(),
        ic_v.to_string(),
        all_v.to_string(),
    ]);
}

/// Runs A2.
pub fn run(quick: bool) {
    let seeds: u64 = if quick { 3 } else { 8 };
    let k = 6;
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let sets = (prob.congestion() / 4).max(1);

    let header: &[&str] = &[
        "sweep",
        "m",
        "w",
        "delivered",
        "makespan",
        "If viol",
        "Ic viol",
        "all viol",
    ];

    let mut t = Table::new(
        format!("A2a: round length w at m=6 (bf({k}) bit-reversal, {seeds} seeds)"),
        header,
    );
    for &w in &[6u32, 12, 24, 48, 96] {
        sweep_row(
            &mut t,
            format!("w={w}"),
            &prob,
            Params::scaled(6, w, 0.1, sets),
            seeds,
        );
    }
    t.note("short rounds leave packets unparked at round ends: If violations,");
    t.note("then frame escapes; beyond ~6m the extra length is pure overhead");
    t.print();

    let mut t = Table::new(
        format!("A2b: frame height m at w=8m (bf({k}) bit-reversal, {seeds} seeds)"),
        header,
    );
    for &m in &[3u32, 4, 6, 8, 12] {
        sweep_row(
            &mut t,
            format!("m={m}"),
            &prob,
            Params::scaled(m, 8 * m, 0.1, sets),
            seeds,
        );
    }
    t.note("small frames have too few rounds/target levels to park everyone;");
    t.note("the paper's m = ln²(LN)+5 is generous — m ≈ ln(LN) suffices here");
    t.print();
}
