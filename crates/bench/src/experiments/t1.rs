//! T1 — Theorem 2.6: routing time is `Õ(C + L)`.
//!
//! Three sweeps isolate each variable of the bound:
//!
//! * **C-sweep** — a funnel workload dials congestion on a fixed topology;
//! * **L-sweep** — fixed congestion on deeper and deeper networks;
//! * **N-sweep** — growing butterflies with proportional packet counts.
//!
//! Every table is built from a **fleet artifact**: the sweep's specs run
//! through [`crate::fleet::collect_strs`] (the same per-run envelope and
//! [`FleetAggregator`] fold that backs the live `/fleet` endpoint), and
//! each row reads its own cell back out of the rollup document — mean
//! makespan `T`, the normalized ratio `T/(C+L)` with its bootstrap 95%
//! CI, deliveries, and violations. The rollup's log-log fit of
//! `ln T` on `ln (C+L)` is printed as each sweep's scaling verdict:
//! Theorem 2.6 predicts an exponent ≈ 1 up to polylog factors, so a
//! clearly superlinear fit would falsify the reproduction. Because the
//! aggregation is deterministic at any worker count, these tables are
//! byte-identical however the runs were scheduled.
//!
//! Run seeds drive the whole spec — workload generation *and* routing —
//! so per-cell congestion is a (narrow) range rather than one value; the
//! `sets/m` column shows [`Params::auto`] for the first seed's instance.
//!
//! [`FleetAggregator`]: hotpotato_trace::FleetAggregator

use crate::fleet::collect_strs;
use crate::table::{f, Table};
use busch_router::Params;
use hotpotato_trace::FleetAggregator;
use serde::Value;

const HEADER: &[&str] = &[
    "instance",
    "N",
    "C",
    "D",
    "L",
    "sets/m",
    "T (steps)",
    "T/(C+L)",
    "ratio CI95",
    "delivered",
    "viol",
];

/// One sweep row: a display label plus every spec that feeds its cell.
struct SweepRow {
    label: String,
    specs: Vec<String>,
}

fn sweep_row(label: impl Into<String>, spec: impl Fn(u64) -> String, seeds: u64) -> SweepRow {
    SweepRow {
        label: label.into(),
        specs: (0..seeds).map(|s| spec(1000 + s)).collect(),
    }
}

/// Collects every row's specs into one fleet aggregation, then renders
/// each row from its cell of the rollup document.
fn render_sweep(t: &mut Table, rows: &[SweepRow]) -> FleetAggregator {
    let specs: Vec<String> = rows.iter().flat_map(|r| r.specs.clone()).collect();
    let agg = collect_strs(&specs, false);
    assert_eq!(agg.failed(), 0, "T1 sweep runs must all complete");
    let doc = agg.to_json();
    for row in rows {
        // The row's first spec identifies its cell (topo, packets) and a
        // representative instance for the parameter column.
        let spec = routing_core::spec::parse_run_spec(&row.specs[0]).expect("table specs parse");
        let (_, problem, _) = spec.instantiate().expect("table specs instantiate");
        let params = Params::auto(&problem);
        let cell = find_cell(&doc, &spec.topo, problem.num_packets() as u64);
        table_row(t, &row.label, cell, params);
    }
    agg
}

fn find_cell<'a>(doc: &'a Value, topo: &str, packets: u64) -> &'a Value {
    doc["cells"]
        .as_array()
        .expect("fleet rollup has cells")
        .iter()
        .find(|c| c["topo"].as_str() == Some(topo) && c["packets"].as_u64() == Some(packets))
        .expect("row cell present in fleet rollup")
}

fn table_row(t: &mut Table, label: &str, cell: &Value, params: Params) {
    let u = |v: &Value| v.as_u64().expect("rollup u64");
    let range = |v: &Value| {
        let (lo, hi) = (u(&v["min"]), u(&v["max"]));
        if lo == hi {
            lo.to_string()
        } else {
            format!("{lo}-{hi}")
        }
    };
    let ratio = &cell["ratio_c_plus_l"];
    let ci = ratio["ci95"].as_array().expect("rollup ci95");
    let fl = |v: &Value| v.as_f64().expect("rollup f64");
    t.row(vec![
        label.to_string(),
        u(&cell["packets"]).to_string(),
        range(&cell["congestion"]),
        range(&cell["dilation"]),
        u(&cell["levels"]).to_string(),
        format!("{}/{}", params.num_sets, params.m),
        f(fl(&cell["steps"]["mean"])),
        f(fl(&ratio["mean"])),
        format!("[{}, {}]", f(fl(&ci[0])), f(fl(&ci[1]))),
        format!(
            "{}/{}",
            u(&cell["delivered"]),
            u(&cell["runs"]) * u(&cell["packets"])
        ),
        u(&cell["violations"]).to_string(),
    ]);
}

/// Appends the sweep's log-log scaling verdict (Theorem 2.6 predicts an
/// exponent ≈ 1 up to polylog factors).
fn fit_note(t: &mut Table, agg: &FleetAggregator) {
    if let Some(fit) = agg.fit() {
        t.note(format!(
            "fleet fit: T ~ (C+L)^{:.2}, 95% CI [{:.2}, {:.2}], r²={:.3}, {} runs",
            fit.exponent, fit.ci95.0, fit.ci95.1, fit.r2, fit.points
        ));
    }
}

/// Runs T1.
pub fn run(quick: bool) {
    let seeds = if quick { 2 } else { 5 };

    // --- C sweep: funnel on a fixed complete leveled network. ---
    let mut t = Table::new(
        "T1a: C-sweep (funnel on complete(16,8); Theorem 2.6 predicts T/(C+L) ~ polylog)",
        HEADER,
    );
    let counts: &[usize] = if quick {
        &[4, 16, 48]
    } else {
        &[4, 8, 16, 32, 64]
    };
    let rows: Vec<SweepRow> = counts
        .iter()
        .map(|&count| {
            sweep_row(
                format!("funnel C≈{count}"),
                move |s| format!("complete:16x8/funnel:{count}/busch/{s}"),
                seeds,
            )
        })
        .collect();
    let agg = render_sweep(&mut t, &rows);
    t.note("C grows 16x while L, N-per-C stay fixed: T grows linearly in C");
    fit_note(&mut t, &agg);
    t.print();

    // --- L sweep: fixed funnel congestion on deeper networks. ---
    let mut t = Table::new(
        "T1b: L-sweep (funnel C≈12 on complete(L,6) for growing L)",
        HEADER,
    );
    let depths: &[u32] = if quick { &[8, 32] } else { &[8, 16, 32, 64] };
    let rows: Vec<SweepRow> = depths
        .iter()
        .map(|&l| {
            sweep_row(
                format!("L={l}"),
                move |s| format!("complete:{l}x6/funnel:12/busch/{s}"),
                seeds,
            )
        })
        .collect();
    let agg = render_sweep(&mut t, &rows);
    t.note("L grows 8x at fixed C: T grows linearly in L");
    fit_note(&mut t, &agg);
    t.print();

    // --- N sweep: butterflies with a full row of packets. ---
    let mut t = Table::new(
        "T1c: N-sweep (random permutations on growing butterflies)",
        HEADER,
    );
    let ks: &[u32] = if quick { &[4, 6] } else { &[4, 5, 6, 7, 8] };
    let rows: Vec<SweepRow> = ks
        .iter()
        .map(|&k| {
            sweep_row(
                format!("butterfly({k})"),
                move |s| format!("bf:{k}/permutation/busch/{s}"),
                seeds,
            )
        })
        .collect();
    let agg = render_sweep(&mut t, &rows);
    t.note("N grows 16x; T/(C+L) grows only with the polylog params (m, w)");
    fit_note(&mut t, &agg);
    t.print();

    // --- Scale demonstration: adversarial bit-reversal up to N = 4096. ---
    if !quick {
        let mut t = Table::new(
            "T1d: scale (bit-reversal on large butterflies, C = Θ(√N), 1 seed)",
            HEADER,
        );
        let rows: Vec<SweepRow> = [8u32, 10, 12]
            .iter()
            .map(|&k| {
                sweep_row(
                    format!("butterfly({k}) bitrev"),
                    move |s| format!("bf:{k}/bitrev/busch/{s}"),
                    1,
                )
            })
            .collect();
        let agg = render_sweep(&mut t, &rows);
        t.note("N to 4096, C to 32, network to 53k nodes: invariants stay clean,");
        t.note("T tracks the schedule (⌈sets⌉·m + L)·m·w linearly");
        fit_note(&mut t, &agg);
        t.print();
    }
}
