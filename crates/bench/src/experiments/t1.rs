//! T1 — Theorem 2.6: routing time is `Õ(C + L)`.
//!
//! Three sweeps isolate each variable of the bound:
//!
//! * **C-sweep** — a funnel workload dials congestion on a fixed topology;
//! * **L-sweep** — fixed congestion on deeper and deeper networks;
//! * **N-sweep** — growing butterflies with proportional packet counts.
//!
//! For each point we report the measured makespan `T` and the normalized
//! ratio `T / (C + L)`. Theorem 2.6 predicts the ratio stays bounded by a
//! polylog as `C` or `L` grow (the schedule is `(⌈aC⌉·m + L)·m·w` steps);
//! a superlinear trend in either sweep would falsify the reproduction.

use crate::runner::{self, average, parallel_map};
use crate::table::{f, Table};
use busch_router::Params;
use leveled_net::builders;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::{workloads, RoutingProblem};
use std::sync::Arc;

fn row_for(t: &mut Table, label: &str, prob: &Arc<RoutingProblem>, params: Params, seeds: u64) {
    let runs = parallel_map((0..seeds).collect::<Vec<u64>>(), |seed| {
        runner::run_busch(prob, params, 1000 + seed)
    });
    let avg = average(&runs);
    let c = prob.congestion() as u64;
    let l = prob.network().depth() as u64;
    let cl = (c + l).max(1);
    t.row(vec![
        label.to_string(),
        prob.num_packets().to_string(),
        c.to_string(),
        prob.dilation().to_string(),
        l.to_string(),
        format!("{}/{}", params.num_sets, params.m),
        avg.makespan.to_string(),
        f(avg.makespan as f64 / cl as f64),
        format!("{}/{}", avg.delivered, avg.n),
        avg.violations.to_string(),
    ]);
}

const HEADER: &[&str] = &[
    "instance",
    "N",
    "C",
    "D",
    "L",
    "sets/m",
    "T (steps)",
    "T/(C+L)",
    "delivered",
    "viol",
];

/// Runs T1.
pub fn run(quick: bool) {
    let seeds = if quick { 2 } else { 5 };

    // --- C sweep: funnel on a fixed complete leveled network. ---
    let mut t = Table::new(
        "T1a: C-sweep (funnel on complete(16,8); Theorem 2.6 predicts T/(C+L) ~ polylog)",
        HEADER,
    );
    let net = Arc::new(builders::complete_leveled(16, 8));
    let counts: &[usize] = if quick {
        &[4, 16, 48]
    } else {
        &[4, 8, 16, 32, 64]
    };
    for &count in counts {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let prob = workloads::funnel(&net, count, &mut rng).expect("fits");
        let params = Params::auto(&prob);
        row_for(&mut t, &format!("funnel C≈{count}"), &prob, params, seeds);
    }
    t.note("C grows 16x while L, N-per-C stay fixed: T grows linearly in C");
    t.print();

    // --- L sweep: fixed funnel congestion on deeper networks. ---
    let mut t = Table::new(
        "T1b: L-sweep (funnel C≈12 on complete(L,6) for growing L)",
        HEADER,
    );
    let depths: &[u32] = if quick { &[8, 32] } else { &[8, 16, 32, 64] };
    for &l in depths {
        let net = Arc::new(builders::complete_leveled(l, 6));
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let prob = workloads::funnel(&net, 12, &mut rng).expect("fits");
        let params = Params::auto(&prob);
        row_for(&mut t, &format!("L={l}"), &prob, params, seeds);
    }
    t.note("L grows 8x at fixed C: T grows linearly in L");
    t.print();

    // --- N sweep: butterflies with a full row of packets. ---
    let mut t = Table::new(
        "T1c: N-sweep (random permutations on growing butterflies)",
        HEADER,
    );
    let ks: &[u32] = if quick { &[4, 6] } else { &[4, 5, 6, 7, 8] };
    for &k in ks {
        let net = Arc::new(builders::butterfly(k));
        let coords = leveled_net::builders::ButterflyCoords { k };
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        let prob = workloads::butterfly_permutation(&net, &coords, &mut rng);
        let params = Params::auto(&prob);
        row_for(&mut t, &format!("butterfly({k})"), &prob, params, seeds);
    }
    t.note("N grows 16x; T/(C+L) grows only with the polylog params (m, w)");
    t.print();

    // --- Scale demonstration: adversarial bit-reversal up to N = 4096. ---
    if !quick {
        let mut t = Table::new(
            "T1d: scale (bit-reversal on large butterflies, C = Θ(√N), 1 seed)",
            HEADER,
        );
        for k in [8u32, 10, 12] {
            let net = Arc::new(builders::butterfly(k));
            let coords = leveled_net::builders::ButterflyCoords { k };
            let prob = workloads::butterfly_bit_reversal(&net, &coords);
            let params = Params::auto(&prob);
            row_for(&mut t, &format!("butterfly({k}) bitrev"), &prob, params, 1);
        }
        t.note("N to 4096, C to 32, network to 53k nodes: invariants stay clean,");
        t.note("T tracks the schedule (⌈sets⌉·m + L)·m·w linearly");
        t.print();
    }
}
