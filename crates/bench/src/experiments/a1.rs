//! A1 — ablation: the excitation probability `q`.
//!
//! The excited state (highest priority, entered with probability `q` per
//! step) is the paper's mechanism for guaranteeing that packets reach
//! their targets within a round despite conflicts (Lemmas 4.13–4.15).
//! We sweep `q` on a congested instance — including `q = 0`, i.e. no
//! excited state at all — and measure delivery, makespan, and the round
//! failures that surface as `I_f` violations.

use crate::runner::parallel_map;
use crate::table::{f, Table};
use busch_router::{BuschRouter, Params};
use hotpotato_sim::MetricsObserver;
use leveled_net::builders::{self, ButterflyCoords};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::workloads;
use std::sync::Arc;

/// Runs A1.
pub fn run(quick: bool) {
    let seeds: u64 = if quick { 3 } else { 8 };
    let k = 8;
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let c = prob.congestion();

    let mut t = Table::new(
        format!("A1: excitation probability sweep on bf({k}) bit-reversal (C={c}), {seeds} seeds"),
        &[
            "q",
            "delivered",
            "makespan",
            "mean latency",
            "excitations",
            "deflections",
            "If viol",
            "all viol",
        ],
    );
    // A single frontier set carrying the full congestion C, with tight
    // rounds (w = 3m): conflicts are frequent and rounds barely long
    // enough, so the excited state's guarantee is load-bearing.
    let sets = 1;
    for &q in &[0.0, 0.01, 0.05, 0.1, 0.25, 0.5] {
        let params = Params::scaled(6, 18, q, sets);
        let runs = parallel_map((0..seeds).collect::<Vec<u64>>(), |s| {
            let mut rng = ChaCha8Rng::seed_from_u64(6000 + s);
            let out = BuschRouter::new(params).route(&prob, &mut rng);
            (
                out.stats.delivered_count(),
                out.stats.makespan().unwrap_or(0),
                out.stats.mean_latency(),
                out.stats.counter("excitations"),
                out.stats.total_deflections(),
                out.invariants.rear_levels_occupied,
                out.invariants.total_violations(),
            )
        });
        let kf = runs.len() as f64;
        let delivered: usize = runs.iter().map(|r| r.0).sum::<usize>() / runs.len();
        let makespan = runs.iter().map(|r| r.1).sum::<u64>() / seeds;
        let latency = runs.iter().map(|r| r.2).sum::<f64>() / kf;
        let excite = runs.iter().map(|r| r.3).sum::<u64>() / seeds;
        let defl = runs.iter().map(|r| r.4).sum::<u64>() / seeds;
        let if_viol: u64 = runs.iter().map(|r| r.5).sum();
        let viol: u64 = runs.iter().map(|r| r.6).sum();
        t.row(vec![
            f(q),
            format!("{}/{}", delivered, prob.num_packets()),
            makespan.to_string(),
            f(latency),
            excite.to_string(),
            defl.to_string(),
            if_viol.to_string(),
            viol.to_string(),
        ]);
    }
    t.note("finding: delivery, makespan and round failures are insensitive to q");
    t.note("at simulation scale — the excited state is a worst-case *proof device*");
    t.note("(Lemmas 4.13-4.15 need it to bound round-failure probability against");
    t.note("adversarial conflict patterns), not a practical accelerator; its cost");
    t.note("(the excitations column) is likewise negligible");
    t.print();

    // Frame progress on one instrumented run (observer-fed): how far each
    // frontier set's packets actually are, against the theoretical
    // frontier `phi_i(k) = k - i*m` the analysis schedules them behind.
    let params = Params::scaled(6, 18, 0.1, sets);
    let mut rng = ChaCha8Rng::seed_from_u64(6000);
    let mut metrics = MetricsObserver::new(&prob);
    let out = BuschRouter::new(params).route_observed(&prob, &mut rng, &mut metrics);
    let mut t = Table::new(
        format!(
            "A1b: frame progress vs frontier (q=0.1, seed 6000, {} phases)",
            out.phases_elapsed
        ),
        &[
            "phase",
            "set",
            "frontier phi_i(k)",
            "max level",
            "in flight",
        ],
    );
    for row in metrics.frame_progress().iter().take(12) {
        t.row(vec![
            row.phase.to_string(),
            row.set.to_string(),
            row.frontier.to_string(),
            row.max_level.to_string(),
            row.in_flight.to_string(),
        ]);
    }
    t.note("rows come from the RouteObserver event stream (phase ends with");
    t.note("in-flight packets); max level never passes the frontier (I_c):");
    t.note("phi_i(k) is the frame's leading level, chased phase by phase");
    t.print();
}
