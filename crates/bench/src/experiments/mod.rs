//! One module per experiment; each exposes `run(quick: bool)` which prints
//! its tables to stdout. See `DESIGN.md` §5 and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub mod a1;
pub mod a2;
pub mod a3;
pub mod a4;
pub mod a5;
pub mod f1;
pub mod f2;
pub mod metrics;
pub mod perf;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
pub mod t6;
pub mod t7;
pub mod t8;

/// All experiment ids in canonical order.
pub const ALL: &[&str] = &[
    "f1", "f2", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "a1", "a2", "a3", "a4", "a5",
    "metrics", "perf",
];

/// Dispatches one experiment by id; returns false for unknown ids.
pub fn dispatch(id: &str, quick: bool) -> bool {
    match id {
        "f1" => f1::run(quick),
        "f2" => f2::run(quick),
        "t1" => t1::run(quick),
        "t2" => t2::run(quick),
        "t3" => t3::run(quick),
        "t4" => t4::run(quick),
        "t5" => t5::run(quick),
        "t6" => t6::run(quick),
        "t7" => t7::run(quick),
        "t8" => t8::run(quick),
        "a1" => a1::run(quick),
        "a2" => a2::run(quick),
        "a3" => a3::run(quick),
        "a4" => a4::run(quick),
        "a5" => a5::run(quick),
        "metrics" => metrics::run(quick),
        "perf" => perf::run(quick),
        _ => return false,
    }
    true
}
