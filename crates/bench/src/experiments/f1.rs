//! F1 — Figure 1: leveled networks.
//!
//! The paper's Figure 1 shows a generic leveled network, a butterfly, and
//! a mesh leveled from a corner. This experiment constructs every topology
//! the paper names as representable leveled networks (§1.1), verifies the
//! level partition and edge orientation, and prints the leveled
//! decomposition — including the mesh in all four corner orientations.

use crate::table::Table;
use leveled_net::builders::{self, MeshCorner};
use leveled_net::{render, LeveledNetwork};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs F1.
pub fn run(_quick: bool) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let nets: Vec<LeveledNetwork> = vec![
        builders::butterfly(3),
        builders::mesh(4, 4, MeshCorner::TopLeft).0,
        builders::mesh(4, 4, MeshCorner::TopRight).0,
        builders::mesh(4, 4, MeshCorner::BottomLeft).0,
        builders::mesh(4, 4, MeshCorner::BottomRight).0,
        builders::linear_array(8),
        builders::hypercube(4).0,
        builders::multidim_array(&[3, 3, 3]).0,
        builders::complete_leveled(4, 3),
        builders::binary_tree(3),
        builders::fat_tree(3, 4),
        builders::shuffle_exchange_unrolled(3),
        builders::random_leveled(6, 2..=5, 0.4, &mut rng),
    ];

    let mut t = Table::new(
        "F1: leveled decompositions (paper Figure 1, §1.1)",
        &["network", "nodes", "edges", "L", "max deg", "width profile"],
    );
    for net in &nets {
        net.validate()
            .expect("every builder yields a valid leveled network");
        t.row(vec![
            net.name().to_string(),
            net.num_nodes().to_string(),
            net.num_edges().to_string(),
            net.depth().to_string(),
            net.max_degree().to_string(),
            render::width_profile(net),
        ]);
    }
    t.note("every edge verified to connect consecutive levels (low -> high)");
    t.note("the four mesh rows are the paper's four corner orientations");
    t.print();

    println!("{}", render::level_summary(&nets[0]));
    println!("{}", render::level_summary(&nets[1]));
}
