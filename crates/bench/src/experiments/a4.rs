//! A4 — ablation: safe backward deflections (Lemma 2.1).
//!
//! Safe deflections *recycle* edges between path lists: the loser takes
//! over exactly the edge the winner consumed, so current paths stay valid
//! and per-set congestion never increases (Lemma 4.10). We compare the
//! paper's rule against an arbitrary-deflection variant (losers take any
//! free link) and measure exactly what breaks: path validity (`I_b`),
//! congestion non-increase (`I_e`), and deviation depths.

use crate::runner::parallel_map;
use crate::table::Table;
use busch_router::{BuschConfig, BuschRouter, Params};
use hotpotato_sim::MetricsObserver;
use leveled_net::builders::{self, ButterflyCoords};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::workloads;
use std::sync::Arc;

/// Runs A4.
pub fn run(quick: bool) {
    let seeds: u64 = if quick { 3 } else { 8 };
    let k = 6;
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let sets = (prob.congestion() / 4).max(1);
    let params = Params::scaled(6, 36, 0.1, sets);

    let mut t = Table::new(
        format!("A4: safe backward vs arbitrary deflection (bf({k}) bit-reversal, {seeds} seeds)"),
        &[
            "deflection rule",
            "delivered",
            "makespan",
            "max dev",
            "unsafe defl",
            "Ib paths",
            "Ie viol",
            "Ic viol",
        ],
    );
    for (label, arbitrary) in [
        ("safe backward (paper)", false),
        ("arbitrary free link", true),
    ] {
        let cfg = BuschConfig {
            arbitrary_deflections: arbitrary,
            ..BuschConfig::new(params)
        };
        let runs = parallel_map((0..seeds).collect::<Vec<u64>>(), |s| {
            let mut rng = ChaCha8Rng::seed_from_u64(9000 + s);
            let out = BuschRouter::with_config(cfg).route(&prob, &mut rng);
            (
                out.stats.delivered_count(),
                out.stats.makespan().unwrap_or(0),
                out.stats.max_deviation_overall(),
                out.invariants.invalid_current_paths,
                out.invariants.congestion_exceeded,
                out.invariants.frame_escapes,
                out.stats.counter("fallback_deflections"),
            )
        });
        let delivered: usize = runs.iter().map(|r| r.0).sum::<usize>() / runs.len();
        let makespan = runs.iter().map(|r| r.1).sum::<u64>() / seeds;
        let max_dev = runs.iter().map(|r| r.2).max().unwrap();
        let ib: u64 = runs.iter().map(|r| r.3).sum();
        let ie: u64 = runs.iter().map(|r| r.4).sum();
        let ic: u64 = runs.iter().map(|r| r.5).sum();
        let unsafe_defl: u64 = runs.iter().map(|r| r.6).sum();
        t.row(vec![
            label.to_string(),
            format!("{}/{}", delivered, prob.num_packets()),
            makespan.to_string(),
            max_dev.to_string(),
            unsafe_defl.to_string(),
            ib.to_string(),
            ie.to_string(),
            ic.to_string(),
        ]);
    }
    t.note("the safe rule produces *zero* unsafe deflections: Lemma 2.1's");
    t.note("guarantee (valid paths, non-increasing per-set congestion) holds");
    t.note("unconditionally. The arbitrary rule emits thousands of unsafe moves;");
    t.note("packets recover by phase end at this scale (Ib/Ie columns measure");
    t.note("phase-end state), but every guarantee of the analysis is forfeit —");
    t.note("the induction of §4 has nothing to stand on without safe deflections");
    t.print();

    // Observer-fed deflection anatomy of one run per rule: where the
    // deflections land (by level) and how unevenly they hit packets.
    let mut t = Table::new(
        "A4b: deflection anatomy (seed 9000, one run per rule)".to_string(),
        &[
            "deflection rule",
            "safe",
            "unsafe",
            "by level (0..L)",
            "per-packet histogram (defl:pkts)",
        ],
    );
    for (label, arbitrary) in [
        ("safe backward (paper)", false),
        ("arbitrary free link", true),
    ] {
        let cfg = BuschConfig {
            arbitrary_deflections: arbitrary,
            ..BuschConfig::new(params)
        };
        let mut rng = ChaCha8Rng::seed_from_u64(9000);
        let mut metrics = MetricsObserver::new(&prob);
        BuschRouter::with_config(cfg).route_observed(&prob, &mut rng, &mut metrics);
        let by_level: Vec<String> = metrics
            .deflections_by_level()
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let hist: Vec<String> = metrics
            .deflection_histogram()
            .iter()
            .take(6)
            .map(|(d, c)| format!("{d}:{c}"))
            .collect();
        t.row(vec![
            label.to_string(),
            metrics.safe_deflections().to_string(),
            metrics.unsafe_deflections().to_string(),
            by_level.join(" "),
            hist.join(" "),
        ]);
    }
    t.note("safe deflections push packets *backward*, so they concentrate on");
    t.note("low levels; the arbitrary rule scatters them across the network");
    t.print();
}
