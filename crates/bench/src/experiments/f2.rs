//! F2 — Figure 2: the frontier-frame pipeline.
//!
//! Reproduces the geometry of the paper's Figure 2 (a leveled network with
//! `L = 11` and frames of `m = 3` inner levels): the frame occupancy per
//! phase, the frontier positions `φ_i(k) = k − i·m`, the receding target
//! level within a phase, and the injection phase per source level —
//! verifying non-overlap and the one-level-per-phase shift throughout.

use crate::table::Table;
use busch_router::FrameSchedule;

/// Runs F2.
pub fn run(quick: bool) {
    let (l, m, sets) = (11u32, 3u32, 4u32);
    let s = FrameSchedule::new(m, sets, l);

    let mut t = Table::new(
        format!("F2: frontier-frame pipeline (Figure 2; L={l}, m={m}, {sets} frames)"),
        &["phase", "levels 0..=L (digit = frame id)", "frontiers φ_i"],
    );
    let end = if quick {
        s.end_phase().min(16)
    } else {
        s.end_phase()
    };
    for phase in 0..end {
        let mut cells = String::new();
        for level in 0..=l {
            match (0..sets).find(|&i| s.contains(i, phase, level)) {
                Some(i) => cells.push_str(&format!("{i}")),
                None => cells.push('.'),
            }
        }
        let fronts: Vec<String> = (0..sets)
            .map(|i| s.frontier(i, phase).to_string())
            .collect();
        t.row(vec![phase.to_string(), cells, fronts.join(",")]);
        // Structural checks mirroring the figure.
        for i in 0..sets.saturating_sub(1) {
            let (lo_i, _) = s.frame_range(i, phase);
            let (_, hi_j) = s.frame_range(i + 1, phase);
            assert!(hi_j < lo_i, "frames must never overlap");
        }
    }
    t.note("frames shift exactly one level forward per phase and never overlap");
    t.note(format!(
        "all frames leave the network at phase {}",
        s.end_phase()
    ));
    t.print();

    let mut tt = Table::new(
        "F2b: target level within a phase (recedes one inner level per round)",
        &[
            "round",
            "target inner level",
            "target network level (frame 0, phase 5)",
        ],
    );
    for round in 0..m {
        tt.row(vec![
            round.to_string(),
            s.target_inner_level(round).to_string(),
            s.target_level(0, 5, round).to_string(),
        ]);
    }
    tt.print();

    let mut ti = Table::new(
        "F2c: injection phases (source at inner level m-1 when injected)",
        &["source level", "frame 0", "frame 1", "frame 2"],
    );
    for src in 0..=l.min(8) {
        ti.row(vec![
            src.to_string(),
            s.injection_phase(0, src).to_string(),
            s.injection_phase(1, src).to_string(),
            s.injection_phase(2, src).to_string(),
        ]);
    }
    ti.print();
}
