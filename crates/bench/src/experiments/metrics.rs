//! METRICS — the structured-observability artifact.
//!
//! Routes the bf(k) bit-reversal reference instance (k = 8 quick, 10
//! full) with a [`MetricsObserver`] and a [`SectionProfiler`] attached
//! to the paper's router, then reports what the event stream shows:
//! per-frontier-set congestion watermarks against the Lemma 2.2
//! `ln(L·N)` bound, frame progress against the theoretical frontier
//! `φ_i(k)`, the deflection histogram, and where the router spends its
//! time. The `tables metricsjson` mode serializes [`collect`]'s output
//! to `METRICS_PR2.json` so the empirical Lemma 2.2 check is
//! machine-readable.

use crate::table::{f, Table};
use busch_router::{BuschRouter, Params};
use hotpotato_sim::{MetricsObserver, SectionProfiler};
use leveled_net::builders::{self, ButterflyCoords};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::workloads;
use std::sync::Arc;

/// Everything the metrics run produced.
pub struct MetricsReport {
    /// Butterfly order of the instance.
    pub k: u32,
    /// Number of packets.
    pub n: usize,
    /// Instance congestion `C`.
    pub congestion: u32,
    /// Makespan of the instrumented run.
    pub makespan: u64,
    /// Phases elapsed.
    pub phases: u64,
    /// The filled metrics sink.
    pub metrics: MetricsObserver,
    /// The filled section profiler.
    pub profile: SectionProfiler,
}

impl MetricsReport {
    /// The machine-readable document written by `tables metricsjson`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "suite": "hotpotato-routing metrics",
            "instance": "butterfly bit-reversal",
            "k": self.k,
            "packets": self.n,
            "congestion": self.congestion,
            "makespan": self.makespan,
            "phases": self.phases,
            "metrics": self.metrics.to_json(),
            "sections": self.profile.to_json(),
        })
    }
}

/// Runs the instrumented reference run and returns the raw sinks.
pub fn collect(quick: bool) -> MetricsReport {
    let k = if quick { 8 } else { 10 };
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let params = Params::auto(&prob);
    let mut rng = ChaCha8Rng::seed_from_u64(0x0b5e);

    // Sparse occupancy sampling: the committed artifact needs the shape
    // of the series, not a per-64-step trace.
    let mut observer = (
        MetricsObserver::new(&prob).with_occupancy_sampling(1024),
        SectionProfiler::new(),
    );
    let out = BuschRouter::new(params).route_observed(&prob, &mut rng, &mut observer);
    assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    let (metrics, profile) = observer;
    MetricsReport {
        k,
        n: prob.num_packets(),
        congestion: prob.congestion(),
        makespan: out.stats.makespan().unwrap_or(0),
        phases: out.phases_elapsed,
        metrics,
        profile,
    }
}

/// Runs METRICS.
pub fn run(quick: bool) {
    let rep = collect(quick);
    let m = &rep.metrics;
    let bound = m.ln_ln_bound();

    let mut t = Table::new(
        format!(
            "METRICS: per-set congestion watermarks vs Lemma 2.2 on bf({}) \
             bit-reversal (N={}, C={}, {} sets)",
            rep.k,
            rep.n,
            rep.congestion,
            m.congestion_watermarks().len()
        ),
        &["set", "initial C_i", "watermark", "ln(L*N) bound", "within"],
    );
    for (i, (&wm, &init)) in m
        .congestion_watermarks()
        .iter()
        .zip(m.congestion_initial())
        .enumerate()
    {
        t.row(vec![
            i.to_string(),
            init.to_string(),
            wm.to_string(),
            f(bound),
            if (wm as f64) <= bound { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.note("Lemma 2.2: w.h.p. every frontier set's congestion is O(ln(L*N));");
    t.note("the audit watermarks are the measured left-hand side");
    t.print();

    let mut t = Table::new(
        format!(
            "METRICS: frame progress vs theoretical frontier \
             (phases={}, makespan={})",
            rep.phases, rep.makespan
        ),
        &[
            "phase",
            "set",
            "frontier phi_i(k)",
            "max level",
            "in flight",
        ],
    );
    // The full series is in the JSON artifact; print the head.
    for row in m.frame_progress().iter().take(if quick { 8 } else { 16 }) {
        t.row(vec![
            row.phase.to_string(),
            row.set.to_string(),
            row.frontier.to_string(),
            row.max_level.to_string(),
            row.in_flight.to_string(),
        ]);
    }
    t.note("invariant I_c: set i's packets stay inside the frame whose leading");
    t.note("level is phi_i(k) = k - i*m; max level tracks how closely the frame");
    t.note("hugs its frontier");
    t.print();

    let mut t = Table::new(
        "METRICS: deflections and section profile".to_string(),
        &["quantity", "value"],
    );
    t.row(vec![
        "deflections (safe / unsafe)".into(),
        format!("{} / {}", m.safe_deflections(), m.unsafe_deflections()),
    ]);
    let hist = m.deflection_histogram();
    let tail = hist.last().map_or(0, |&(d, _)| d);
    t.row(vec![
        "deflection histogram".into(),
        format!("{} buckets, max {} per packet", hist.len(), tail),
    ]);
    t.row(vec![
        "level watermark (max)".into(),
        m.level_watermarks()
            .iter()
            .max()
            .copied()
            .unwrap_or(0)
            .to_string(),
    ]);
    t.row(vec!["sections".into(), rep.profile.summary()]);
    t.note("sections are timed only because the profiler opts in via");
    t.note("wants_timing(); unobserved runs never read the clock");
    t.print();
}
