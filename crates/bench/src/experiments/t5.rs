//! T5 — §5 application: the n×n mesh with `C = D = Θ(n)` paths.
//!
//! The paper's closing section points to the mesh as the immediate
//! application: with optimal paths of congestion and dilation `n`, the
//! router delivers in time `Õ(n)`. We run the transpose-to-border workload
//! (`C = D = n − 1`, `L = 2n − 2`) for growing `n` and report the measured
//! Õ factor `T / max(C, D)`; Theorem 2.6 predicts it grows at most
//! polylogarithmically in `n`.

use crate::runner::{self, average, parallel_map};
use crate::table::{f, Table};
use busch_router::Params;
use leveled_net::builders::{self, MeshCorner};
use routing_core::workloads;
use std::sync::Arc;

/// Runs T5.
pub fn run(quick: bool) {
    let seeds: u64 = if quick { 2 } else { 5 };
    let sizes: &[usize] = if quick { &[4, 8, 16] } else { &[4, 8, 16, 32] };

    let mut t = Table::new(
        "T5: n x n mesh, C = D = n - 1 (paper §5); expected T = Õ(n)",
        &[
            "n",
            "C",
            "D",
            "L",
            "lower",
            "busch T",
            "Õ factor",
            "greedy T",
            "store-fwd T",
            "delivered",
        ],
    );
    let mut factors: Vec<f64> = Vec::new();
    for &n in sizes {
        let (raw, coords) = builders::mesh(n, n, MeshCorner::TopLeft);
        let net = Arc::new(raw);
        let prob = workloads::mesh_transpose(&net, &coords).unwrap();
        let params = Params::auto(&prob);
        let lower = prob.congestion().max(prob.dilation()) as u64;

        let busch = average(&parallel_map((0..seeds).collect::<Vec<u64>>(), |s| {
            runner::run_busch(&prob, params, 4000 + s)
        }));
        let greedy = runner::run_greedy(&prob, 4100);
        let sf = runner::run_store_forward(&prob, 4200);
        let factor = busch.makespan as f64 / lower as f64;
        factors.push(factor);
        t.row(vec![
            n.to_string(),
            prob.congestion().to_string(),
            prob.dilation().to_string(),
            net.depth().to_string(),
            lower.to_string(),
            busch.makespan.to_string(),
            f(factor),
            greedy.makespan.to_string(),
            sf.makespan.to_string(),
            format!("{}/{}", busch.delivered, busch.n),
        ]);
    }
    if factors.len() >= 2 {
        let growth = factors.last().unwrap() / factors.first().unwrap();
        let span = sizes.last().unwrap() / sizes.first().unwrap();
        t.note(format!(
            "Õ factor grew {growth:.1}x while n grew {span}x: polylog, not polynomial"
        ));
    }
    t.note("the transpose workload pipelines perfectly for greedy/buffered routing");
    t.note("(no temporal contention), so they sit exactly at the lower bound here");
    t.print();
}
