//! T2 — Lemma 2.2: random frontier-set assignment keeps per-set
//! congestion logarithmic.
//!
//! Splitting the packets uniformly into `⌈aC⌉ ≈ C/ln(LN)·2e³` sets leaves
//! every set's congestion at most `ln(LN)` w.h.p. We measure the
//! distribution of `max_i C_i` over many random assignments, for several
//! set-count choices, on two high-congestion instances.

use crate::runner::parallel_map;
use crate::table::{f, Table};
use busch_router::schedule::assign_sets;
use leveled_net::builders::{self, ButterflyCoords};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::{workloads, RoutingProblem};
use std::sync::Arc;

fn measure(t: &mut Table, label: &str, prob: &Arc<RoutingProblem>, trials: u64) {
    let c = prob.congestion();
    let l = prob.network().depth() as f64;
    let n = prob.num_packets() as f64;
    let ln_ln = (l * n).ln().max(1.0);
    // Set-count choices: the paper's aC (with a = 2e³/ln(LN)), C/ln, C/2, C.
    let a = 2.0 * std::f64::consts::E.powi(3) / ln_ln;
    let choices = [
        ("paper aC", ((a * c as f64).ceil() as u32).max(1)),
        ("C/ln(LN)", ((c as f64 / ln_ln).ceil() as u32).max(1)),
        ("C/2", (c / 2).max(1)),
        ("C", c.max(1)),
    ];
    for (name, sets) in choices {
        let maxima = parallel_map((0..trials).collect::<Vec<u64>>(), |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let assignment = assign_sets(prob.num_packets(), sets, &mut rng);
            *prob
                .per_set_congestion(&assignment, sets as usize)
                .iter()
                .max()
                .unwrap()
        });
        let mean = maxima.iter().map(|&x| x as f64).sum::<f64>() / maxima.len() as f64;
        let max = *maxima.iter().max().unwrap();
        let within = maxima.iter().filter(|&&x| (x as f64) <= ln_ln).count();
        t.row(vec![
            label.to_string(),
            name.to_string(),
            sets.to_string(),
            c.to_string(),
            f(ln_ln),
            f(mean),
            max.to_string(),
            format!("{}/{}", within, maxima.len()),
        ]);
    }
}

/// Runs T2.
pub fn run(quick: bool) {
    let trials = if quick { 40 } else { 200 };
    let mut t = Table::new(
        "T2: per-frontier-set congestion under random assignment (Lemma 2.2)",
        &[
            "instance",
            "set rule",
            "sets",
            "C",
            "ln(LN)",
            "mean max C_i",
            "worst C_i",
            "≤ ln(LN)",
        ],
    );

    {
        let k = 10;
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let prob = workloads::butterfly_bit_reversal(&net, &coords);
        measure(&mut t, "bit-reversal bf(10)", &prob, trials);
    }
    {
        let net = Arc::new(builders::complete_leveled(24, 10));
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let prob = workloads::funnel(&net, 96, &mut rng).expect("fits");
        measure(&mut t, "funnel C≈96", &prob, trials);
    }

    t.note("with the paper's aC sets, max_i C_i stays at/below ln(LN) in almost all trials");
    t.note("fewer sets trade schedule length for higher per-set congestion (ablation A3)");
    t.print();
}
