//! A3 — ablation: the number of frontier sets.
//!
//! Splitting packets into `⌈aC⌉` sets is the paper's congestion-reduction
//! device (§2.4): more sets mean less per-set congestion (easier rounds)
//! but a longer pipeline (`sets·m + L` phases). We sweep the set count on
//! a fixed instance and expose the trade-off: delivery reliability and
//! invariant cleanliness versus total schedule length.

use crate::runner::parallel_map;
use crate::table::{f, Table};
use busch_router::{schedule::assign_sets, BuschRouter, Params};
use leveled_net::builders::{self, ButterflyCoords};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::workloads;
use std::sync::Arc;

/// Runs A3.
pub fn run(quick: bool) {
    let seeds: u64 = if quick { 3 } else { 8 };
    let k = 6;
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let c = prob.congestion();

    let mut t = Table::new(
        format!("A3: frontier-set count sweep (bf({k}) bit-reversal, C={c}, {seeds} seeds)"),
        &[
            "sets",
            "mean max C_i",
            "sched phases",
            "delivered",
            "makespan",
            "deflections",
            "viol",
        ],
    );
    let mut choices: Vec<u32> = vec![1, (c / 4).max(1), (c / 2).max(1), c, 2 * c];
    choices.dedup();
    for sets in choices {
        let params = Params::scaled(6, 36, 0.1, sets);
        let runs = parallel_map((0..seeds).collect::<Vec<u64>>(), |s| {
            let mut rng = ChaCha8Rng::seed_from_u64(8000 + s);
            // Measure the per-set congestion this seed's assignment yields.
            let mut arng = ChaCha8Rng::seed_from_u64(8000 + s);
            let assignment = assign_sets(prob.num_packets(), sets, &mut arng);
            let max_ci = *prob
                .per_set_congestion(&assignment, sets as usize)
                .iter()
                .max()
                .unwrap();
            let out = BuschRouter::new(params).route(&prob, &mut rng);
            (
                max_ci,
                out.stats.delivered_count(),
                out.stats.makespan().unwrap_or(0),
                out.stats.total_deflections(),
                out.invariants.total_violations(),
            )
        });
        let kf = runs.len() as f64;
        let mean_ci = runs.iter().map(|r| r.0 as f64).sum::<f64>() / kf;
        let delivered: usize = runs.iter().map(|r| r.1).sum::<usize>() / runs.len();
        let makespan = runs.iter().map(|r| r.2).sum::<u64>() / seeds;
        let defl = runs.iter().map(|r| r.3).sum::<u64>() / seeds;
        let viol: u64 = runs.iter().map(|r| r.4).sum();
        t.row(vec![
            sets.to_string(),
            f(mean_ci),
            params.scheduled_phases(net.depth()).to_string(),
            format!("{}/{}", delivered, prob.num_packets()),
            makespan.to_string(),
            defl.to_string(),
            viol.to_string(),
        ]);
    }
    t.note("one set = full congestion per frame: conflict-heavy rounds, more");
    t.note("violations/deflections; many sets = clean rounds, longer pipeline:");
    t.note("the makespan column grows linearly with the set count (sets·m phases)");
    t.print();
}
