//! T3 — the §4 invariants `I_a..I_f`, measured.
//!
//! The analysis proves the six invariants hold w.h.p. under the literal
//! parameters. Under congestion-matched scaled parameters we *measure*
//! them: every run reports per-invariant violation counters, summed here
//! across seeds and workloads. The expected result — matching the paper —
//! is all-zero columns with full delivery.

use crate::runner::parallel_map;
use crate::table::Table;
use busch_router::{BuschRouter, InvariantReport, Params};
use leveled_net::builders::{self, ButterflyCoords, MeshCorner};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::{workloads, RoutingProblem};
use std::sync::Arc;

fn sum_invariants(prob: &Arc<RoutingProblem>, seeds: u64) -> (InvariantReport, usize, usize) {
    // Congestion-matched parameters: one set per two congestion units,
    // frames of 8 levels, long rounds.
    let params = Params::scaled(8, 96, 0.1, (prob.congestion() / 2).max(1));
    let outs = parallel_map((0..seeds).collect::<Vec<u64>>(), |seed| {
        let mut rng = ChaCha8Rng::seed_from_u64(2000 + seed);
        let out = BuschRouter::new(params).route(prob, &mut rng);
        (
            out.invariants,
            out.stats.delivered_count(),
            out.stats.num_packets(),
        )
    });
    let mut total = InvariantReport::default();
    let mut delivered = 0;
    let mut n = 0;
    for (inv, d, nn) in outs {
        total.isolation_violations += inv.isolation_violations;
        total.unsafe_deflections += inv.unsafe_deflections;
        total.invalid_current_paths += inv.invalid_current_paths;
        total.frame_escapes += inv.frame_escapes;
        total.cross_set_meetings += inv.cross_set_meetings;
        total.congestion_exceeded += inv.congestion_exceeded;
        total.rear_levels_occupied += inv.rear_levels_occupied;
        total.phase_checks += inv.phase_checks;
        delivered += d;
        n += nn;
    }
    (total, delivered, n)
}

/// Runs T3.
pub fn run(quick: bool) {
    let seeds = if quick { 3 } else { 10 };
    let mut t = Table::new(
        format!("T3: invariant violations summed over {seeds} seeds (paper §4: all zero w.h.p.)"),
        &[
            "workload",
            "Ia",
            "Ib unsafe",
            "Ib paths",
            "Ic",
            "Id",
            "Ie",
            "If",
            "checks",
            "delivered",
        ],
    );

    let mut wl: Vec<(String, Arc<RoutingProblem>)> = Vec::new();
    {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = Arc::new(builders::butterfly(5));
        wl.push((
            "bf(5) random pairs".into(),
            workloads::random_pairs(&net, 32, &mut rng).unwrap(),
        ));
        let coords = ButterflyCoords { k: 5 };
        let mut rng2 = ChaCha8Rng::seed_from_u64(2);
        wl.push((
            "bf(5) permutation".into(),
            workloads::butterfly_permutation(&net, &coords, &mut rng2),
        ));
        wl.push((
            "bf(6) bit-reversal".into(),
            workloads::butterfly_bit_reversal(
                &Arc::new(builders::butterfly(6)),
                &ButterflyCoords { k: 6 },
            ),
        ));
    }
    {
        let (raw, coords) = builders::mesh(10, 10, MeshCorner::TopLeft);
        let net = Arc::new(raw);
        wl.push((
            "mesh(10) transpose".into(),
            workloads::mesh_transpose(&net, &coords).unwrap(),
        ));
    }
    {
        let net = Arc::new(builders::complete_leveled(12, 6));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        wl.push((
            "hotspot 32->3".into(),
            workloads::hotspot(&net, 32, 3, &mut rng).unwrap(),
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        wl.push((
            "funnel C≈24".into(),
            workloads::funnel(&net, 24, &mut rng).unwrap(),
        ));
    }

    for (name, prob) in &wl {
        let (inv, delivered, n) = sum_invariants(prob, seeds);
        t.row(vec![
            name.clone(),
            inv.isolation_violations.to_string(),
            inv.unsafe_deflections.to_string(),
            inv.invalid_current_paths.to_string(),
            inv.frame_escapes.to_string(),
            inv.cross_set_meetings.to_string(),
            inv.congestion_exceeded.to_string(),
            inv.rear_levels_occupied.to_string(),
            inv.phase_checks.to_string(),
            format!("{delivered}/{n}"),
        ]);
    }
    t.note("Ia: injection isolation; Ib: backward/safe deflections & valid paths;");
    t.note("Ic: frame containment; Id: set disjointness; Ie: congestion non-increase;");
    t.note("If: rear three inner levels empty at phase ends");
    t.print();
}
