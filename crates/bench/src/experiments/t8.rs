//! T8 — the probabilistic guarantee, measured.
//!
//! Theorem 2.6 is a w.h.p. statement: the §4 induction (invariants
//! `I_a..I_f` at every phase end) holds with probability
//! `p(aCm + L) ≥ 1 − 1/(LN)`, and then all packets are absorbed within
//! the schedule. Under scaled parameters the per-phase failure
//! probability is no longer negligible, which makes `p(k)` *measurable*:
//! a run "succeeds" when every phase-end audit is clean **and** all
//! packets arrive within the schedule (zero grace). Sweeping the frame
//! height `m` (the paper's `ln²(LN)+5` knob) and the round length `w`
//! (the Lemma 4.15 knob) traces the empirical `p(k)` curve from 0 to 1.
//!
//! Delivery itself is far more forgiving than the invariants: packets
//! that fall out of their frames still chase their destinations, so the
//! delivered fraction stays at 1 long after the induction starts failing
//! — the theorem's *time bound* is what the induction buys, not delivery
//! as such.

use crate::runner::parallel_map;
use crate::table::{f, Table};
use busch_router::{BuschRouter, Params};
use leveled_net::builders::{self, ButterflyCoords};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::{workloads, RoutingProblem};
use std::sync::Arc;

const HEADER: &[&str] = &[
    "m",
    "w",
    "sched steps",
    "clean-run rate",
    "mean viol",
    "delivered",
    "mean makespan",
];

fn sweep_row(
    t: &mut Table,
    prob: &Arc<RoutingProblem>,
    params: Params,
    trials: u64,
    seed_base: u64,
) {
    let depth = prob.network().depth();
    let runs = parallel_map((0..trials).collect::<Vec<u64>>(), |s| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_base + s);
        let out = BuschRouter::new(params).route(prob, &mut rng);
        (
            out.stats.all_delivered() && out.invariants.is_clean(),
            out.invariants.total_violations(),
            out.stats.delivered_count(),
            out.stats.makespan().unwrap_or(0),
        )
    });
    let successes = runs.iter().filter(|r| r.0).count();
    let mean_viol = runs.iter().map(|r| r.1).sum::<u64>() as f64 / runs.len() as f64;
    let delivered: usize = runs.iter().map(|r| r.2).sum::<usize>() / runs.len();
    let mean_mk = runs.iter().map(|r| r.3).sum::<u64>() / trials;
    t.row(vec![
        params.m.to_string(),
        params.w.to_string(),
        params.scheduled_steps(depth).to_string(),
        format!("{successes}/{trials}"),
        f(mean_viol),
        format!("{}/{}", delivered, prob.num_packets()),
        mean_mk.to_string(),
    ]);
}

/// Runs T8.
pub fn run(quick: bool) {
    let trials: u64 = if quick { 20 } else { 100 };
    let k = 6;
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    // One set carries the full congestion C = 4: conflicts are frequent,
    // so the per-round/per-frame failure probability is real.
    let sets = 1;

    let mut t = Table::new(
        format!(
            "T8a: clean-run rate vs frame height m, w = 8m (bf({k}) bit-reversal, \
             {trials} seeds, zero grace)"
        ),
        HEADER,
    );
    for &m in &[4u32, 5, 6, 7, 8, 10, 12] {
        let params = Params {
            m,
            w: 8 * m,
            q: 0.1,
            num_sets: sets,
            grace_factor: 0,
        };
        sweep_row(&mut t, &prob, params, trials, 11_000);
    }
    t.note("success = every phase-end invariant audit clean AND all delivered");
    t.note("within the schedule (zero grace). The paper's m = ln²(LN)+5 sizing is");
    t.note("what makes the induction hold w.h.p.: the clean-run rate climbs from");
    t.note("0 to 1 as m approaches that scale — the empirical p(aCm+L) curve");
    t.print();

    // Second axis: round length at a clean-capable frame height.
    let mut t = Table::new(
        format!(
            "T8b: clean-run rate vs round length w at m = 6 (bf({k}) bit-reversal, \
             {trials} seeds, zero grace)"
        ),
        HEADER,
    );
    let m = 6u32;
    for &w in &[m, 2 * m, 4 * m, 8 * m, 16 * m, 32 * m] {
        let params = Params {
            m,
            w,
            q: 0.1,
            num_sets: sets,
            grace_factor: 0,
        };
        sweep_row(&mut t, &prob, params, trials, 12_000);
    }
    t.note("measured: at the transition height m = 6, lengthening rounds lifts");
    t.note("the clean-run rate only from 0% to ~3% before it saturates — the");
    t.note("frame height (Lemma 4.21's knob) is the binding constraint at");
    t.note("simulation scale, and w (Lemma 4.15's knob) is secondary; one round");
    t.note("of w = m already parks nearly everyone when m is tall enough (T8a)");
    t.print();
}
