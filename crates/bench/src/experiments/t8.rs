//! T8 — the probabilistic guarantee, measured.
//!
//! Theorem 2.6 is a w.h.p. statement: the §4 induction (invariants
//! `I_a..I_f` at every phase end) holds with probability
//! `p(aCm + L) ≥ 1 − 1/(LN)`, and then all packets are absorbed within
//! the schedule. Under scaled parameters the per-phase failure
//! probability is no longer negligible, which makes `p(k)` *measurable*:
//! a run "succeeds" when every phase-end audit is clean **and** all
//! packets arrive within the schedule (zero grace). Sweeping the frame
//! height `m` (the paper's `ln²(LN)+5` knob) and the round length `w`
//! (the Lemma 4.15 knob) traces the empirical `p(k)` curve from 0 to 1.
//!
//! Each parameter point is a **fleet artifact**: the trials run through
//! [`serve::run_fleet_router`] (custom frame heights are not
//! spec-expressible, so the explicit-router entry of the same trace
//! envelope is used) and fold into a [`FleetAggregator`], whose samples
//! carry trace-derived violations, deliveries, and step counts — the
//! same evidence chain the live `/fleet` endpoint serves, deterministic
//! at any worker count.
//!
//! Delivery itself is far more forgiving than the invariants: packets
//! that fall out of their frames still chase their destinations, so the
//! delivered fraction stays at 1 long after the induction starts failing
//! — the theorem's *time bound* is what the induction buys, not delivery
//! as such.
//!
//! [`FleetAggregator`]: hotpotato_trace::FleetAggregator

use crate::fleet::collect_with;
use crate::table::{f, Table};
use busch_router::{BuschRouter, Params};
use leveled_net::builders::{self, ButterflyCoords};
use routing_core::{workloads, RoutingProblem};
use serve::run_fleet_router;
use std::sync::Arc;

const HEADER: &[&str] = &[
    "m",
    "w",
    "sched steps",
    "clean-run rate",
    "mean viol",
    "delivered",
    "mean steps",
];

fn sweep_row(
    t: &mut Table,
    topo: &str,
    prob: &Arc<RoutingProblem>,
    params: Params,
    trials: u64,
    seed_base: u64,
) {
    let depth = prob.network().depth();
    let agg = collect_with((0..trials).collect::<Vec<u64>>(), |s| {
        run_fleet_router(
            &BuschRouter::new(params),
            prob,
            topo,
            "bitrev",
            seed_base + s,
            false,
        )
    });
    assert_eq!(agg.failed(), 0, "T8 trials must all produce samples");
    let packets = prob.num_packets() as u64;
    // A clean run delivers everything within the schedule (zero grace)
    // with a spotless phase-end audit.
    let successes = agg
        .samples()
        .filter(|s| s.delivered == packets && s.violations == 0)
        .count();
    let mean = |g: fn(&hotpotato_trace::FleetSample) -> u64| {
        agg.samples().map(|s| g(s) as f64).sum::<f64>() / trials as f64
    };
    let delivered = agg.samples().map(|s| s.delivered).sum::<u64>() / trials;
    t.row(vec![
        params.m.to_string(),
        params.w.to_string(),
        params.scheduled_steps(depth).to_string(),
        format!("{successes}/{trials}"),
        f(mean(|s| s.violations)),
        format!("{}/{}", delivered, packets),
        f(mean(|s| s.steps)),
    ]);
}

/// Runs T8.
pub fn run(quick: bool) {
    let trials: u64 = if quick { 20 } else { 100 };
    let k = 6;
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let topo = format!("bf:{k}");
    // One set carries the full congestion C = 4: conflicts are frequent,
    // so the per-round/per-frame failure probability is real.
    let sets = 1;

    let mut t = Table::new(
        format!(
            "T8a: clean-run rate vs frame height m, w = 8m (bf({k}) bit-reversal, \
             {trials} seeds, zero grace)"
        ),
        HEADER,
    );
    for &m in &[4u32, 5, 6, 7, 8, 10, 12] {
        let params = Params {
            m,
            w: 8 * m,
            q: 0.1,
            num_sets: sets,
            grace_factor: 0,
        };
        sweep_row(&mut t, &topo, &prob, params, trials, 11_000);
    }
    t.note("success = every phase-end invariant audit clean AND all delivered");
    t.note("within the schedule (zero grace). The paper's m = ln²(LN)+5 sizing is");
    t.note("what makes the induction hold w.h.p.: the clean-run rate climbs from");
    t.note("0 to 1 as m approaches that scale — the empirical p(aCm+L) curve");
    t.print();

    // Second axis: round length at a clean-capable frame height.
    let mut t = Table::new(
        format!(
            "T8b: clean-run rate vs round length w at m = 6 (bf({k}) bit-reversal, \
             {trials} seeds, zero grace)"
        ),
        HEADER,
    );
    let m = 6u32;
    for &w in &[m, 2 * m, 4 * m, 8 * m, 16 * m, 32 * m] {
        let params = Params {
            m,
            w,
            q: 0.1,
            num_sets: sets,
            grace_factor: 0,
        };
        sweep_row(&mut t, &topo, &prob, params, trials, 12_000);
    }
    t.note("measured: at the transition height m = 6, lengthening rounds lifts");
    t.note("the clean-run rate only from 0% to ~3% before it saturates — the");
    t.note("frame height (Lemma 4.21's knob) is the binding constraint at");
    t.note("simulation scale, and w (Lemma 4.15's knob) is secondary; one round");
    t.note("of w = m already parks nearly everyone when m is tall enough (T8a)");
    t.print();
}
