//! T6 — §1.2: "packets stay very close to their preselected paths".
//!
//! A deflected packet prepends the deflection edge to its path list and
//! must undo it; the deviation-stack depth is exactly the distance from
//! the preselected path. The paper argues packets inside their frames stay
//! within polylog distance; structurally the deviation can never exceed
//! the frame height `m`. We sweep instance size and report the deviation
//! distribution for the paper's router against the (unframed) greedy
//! baseline.

use crate::runner::{self, average, parallel_map};
use crate::table::{f, Table};
use busch_router::Params;
use leveled_net::builders::{self, ButterflyCoords};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::workloads;
use std::sync::Arc;

/// Runs T6.
pub fn run(quick: bool) {
    let seeds: u64 = if quick { 2 } else { 5 };
    let ks: &[u32] = if quick { &[4, 6] } else { &[4, 6, 8] };

    let mut t = Table::new(
        "T6: deviation from preselected paths (paper §1.2: polylog distance)",
        &[
            "instance",
            "N",
            "L",
            "m (frame)",
            "busch max dev",
            "busch defl/pkt",
            "greedy max dev",
            "greedy defl/pkt",
            "dev ≤ m?",
        ],
    );
    for &k in ks {
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let prob = workloads::butterfly_permutation(&net, &coords, &mut rng);
        let params = Params::auto(&prob);

        let busch = average(&parallel_map((0..seeds).collect::<Vec<u64>>(), |s| {
            runner::run_busch(&prob, params, 5000 + s)
        }));
        let greedy = average(&parallel_map((0..seeds).collect::<Vec<u64>>(), |s| {
            runner::run_greedy(&prob, 5100 + s)
        }));
        let n = prob.num_packets();
        t.row(vec![
            format!("bf({k}) permutation"),
            n.to_string(),
            net.depth().to_string(),
            params.m.to_string(),
            busch.max_deviation.to_string(),
            f(busch.deflections as f64 / n as f64),
            greedy.max_deviation.to_string(),
            f(greedy.deflections as f64 / n as f64),
            (busch.max_deviation <= params.m).to_string(),
        ]);
    }
    // A high-pressure instance.
    {
        let k = if quick { 6 } else { 8 };
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let prob = workloads::butterfly_bit_reversal(&net, &coords);
        let params = Params::auto(&prob);
        let busch = average(&parallel_map((0..seeds).collect::<Vec<u64>>(), |s| {
            runner::run_busch(&prob, params, 5200 + s)
        }));
        let greedy = average(&parallel_map((0..seeds).collect::<Vec<u64>>(), |s| {
            runner::run_greedy(&prob, 5300 + s)
        }));
        let n = prob.num_packets();
        t.row(vec![
            format!("bf({k}) bit-reversal"),
            n.to_string(),
            net.depth().to_string(),
            params.m.to_string(),
            busch.max_deviation.to_string(),
            f(busch.deflections as f64 / n as f64),
            greedy.max_deviation.to_string(),
            f(greedy.deflections as f64 / n as f64),
            (busch.max_deviation <= params.m).to_string(),
        ]);
    }
    t.note("the frame structurally caps busch's deviation at m = O(polylog)");
    t.note("independent of N and C — the paper's 'stay close to paths' claim");
    t.print();
}
