//! T4 — algorithm comparison: "the benefit from buffers is no more than
//! polylogarithmic" (§1.2).
//!
//! Head-to-head on the evaluation workloads: the paper's router, the two
//! greedy hot-potato baselines, and buffered store-and-forward (FIFO and
//! random-rank), against the `max(C, D)` lower bound. The expected shape:
//!
//! * buffered routing sits near the lower bound;
//! * greedy hot-potato is close behind on these instances (but carries no
//!   guarantee — it can be forced into livelock-like behaviour);
//! * the paper's router pays a polylog *schedule* factor (`m²·w`-ish) over
//!   `C + L` — bounded, predictable, and the whole point of Theorem 2.6.

use crate::runner::{self, average, parallel_map, RunSummary};
use crate::table::{f, Table};
use busch_router::Params;
use leveled_net::builders::{self, ButterflyCoords, MeshCorner};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::{workloads, RoutingProblem};
use std::sync::Arc;

type Algo = (&'static str, fn(&Arc<RoutingProblem>, u64) -> RunSummary);

fn busch_auto(prob: &Arc<RoutingProblem>, seed: u64) -> RunSummary {
    runner::run_busch(prob, Params::auto(prob), seed)
}

const ALGOS: &[Algo] = &[
    ("busch (paper)", busch_auto),
    ("greedy", runner::run_greedy),
    ("random-priority", runner::run_random_priority),
    ("store-fwd FIFO", runner::run_store_forward),
    ("store-fwd ranked", runner::run_store_forward_ranked),
    ("store-fwd buf=2", runner::run_store_forward_bounded),
];

/// Runs T4.
pub fn run(quick: bool) {
    let seeds: u64 = if quick { 2 } else { 5 };

    let mut instances: Vec<(String, Arc<RoutingProblem>)> = Vec::new();
    {
        let k = 6;
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        instances.push((
            format!("bf({k}) permutation"),
            workloads::butterfly_permutation(&net, &coords, &mut rng),
        ));
    }
    if !quick {
        let k = 8;
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        instances.push((
            format!("bf({k}) bit-reversal"),
            workloads::butterfly_bit_reversal(&net, &coords),
        ));
    }
    {
        let n = if quick { 8 } else { 16 };
        let (raw, coords) = builders::mesh(n, n, MeshCorner::TopLeft);
        let net = Arc::new(raw);
        instances.push((
            format!("mesh({n}) transpose"),
            workloads::mesh_transpose(&net, &coords).unwrap(),
        ));
    }
    {
        let net = Arc::new(builders::complete_leveled(12, 6));
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        instances.push((
            "hotspot 32->3".into(),
            workloads::hotspot(&net, 32, 3, &mut rng).unwrap(),
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        instances.push((
            "funnel C≈32".into(),
            workloads::funnel(&net, 32, &mut rng).unwrap(),
        ));
    }

    for (name, prob) in &instances {
        let c = prob.congestion();
        let d = prob.dilation();
        let l = prob.network().depth();
        let lower = c.max(d) as u64;
        let mut t = Table::new(
            format!(
                "T4: {name} — N={n} C={c} D={d} L={l}, lower bound max(C,D)={lower}",
                n = prob.num_packets()
            ),
            &[
                "algorithm",
                "makespan",
                "T/lower",
                "mean latency",
                "deflections",
                "max dev",
                "delivered",
            ],
        );
        for (aname, algo) in ALGOS {
            let runs = parallel_map((0..seeds).collect::<Vec<u64>>(), |s| algo(prob, 3000 + s));
            let avg = average(&runs);
            t.row(vec![
                aname.to_string(),
                avg.makespan.to_string(),
                f(avg.makespan as f64 / lower as f64),
                f(avg.mean_latency),
                avg.deflections.to_string(),
                avg.max_deviation.to_string(),
                format!("{}/{}", avg.delivered, avg.n),
            ]);
        }
        t.note("buffered baselines sit near the lower bound; busch pays its");
        t.note("predictable polylog schedule factor — the buffer benefit is polylog");
        t.print();
    }
}
