//! PERF — simulator throughput (not a paper artifact).
//!
//! Wall-clock throughput of the substrates on fixed large instances:
//! engine steps per second, packet-moves per second, and replay-audit
//! throughput. Complements the Criterion micro-benchmarks with
//! human-readable end-to-end numbers for capacity planning of experiment
//! sweeps.
//!
//! Each component is re-run until its cumulative wall time reaches
//! [`MIN_COMPONENT_WALL_S`] (non-quick mode) and reports its **fastest**
//! run — sub-millisecond components (the greedy router finishes bf(12)
//! in ~1 ms) would otherwise report timer-granularity noise as
//! throughput. The large-instance suite ([`measure_large`]) exercises
//! the data-oriented engine at bf(14) (quick) / bf(16) with a packet on
//! every non-final node — the million-packet saturation target — with
//! invariant audits on and the intra-run banded path enabled. The
//! steady-state suite ([`measure_streaming`]) drives a continuous
//! Poisson injection stream through the admission-controlled streaming
//! loop and reports the sustained delivery rate. The trace-pipeline
//! suite ([`measure_verify`]) records a snapshot-bearing trace in
//! memory and reports sharded replay-verification throughput in trace
//! events per second.
//!
//! [`measure`] returns the raw numbers; [`run`] renders them as a table.
//! The `tables` binary's `perfjson` mode serializes [`measure`]'s output
//! to the committed baseline document (`BENCH_PR6.json`) so perf
//! regressions are machine-checkable.

use crate::table::{f, Table};
use baselines::{GreedyConfig, GreedyRouter, StoreForwardRouter};
use busch_router::{BuschConfig, BuschRouter, Params};
use hotpotato_sim::{route_streaming, JsonlTraceObserver, StreamPriority, StreamingConfig};
use hotpotato_trace::{schema, ShardOptions, Trace};
use leveled_net::builders::{self, ButterflyCoords};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::spec::parse_run_spec;
use routing_core::workloads;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Minimum cumulative wall time per component in non-quick mode: repeat
/// until the total measured time reaches this, then report the fastest
/// single run.
pub const MIN_COMPONENT_WALL_S: f64 = 0.05;

/// One timed component of the PERF suite.
#[derive(Clone, Debug)]
pub struct PerfMeasurement {
    /// Component label ("busch (audited)", "replay audit", ...).
    pub component: &'static str,
    /// Butterfly order of this row's instance.
    pub k: u32,
    /// Packets in this row's instance.
    pub packets: u64,
    /// Wall time of the fastest run, in seconds.
    pub wall_s: f64,
    /// How many runs the component was timed over.
    pub repeats: u32,
    /// Engine steps executed (`None` for non-stepped components).
    pub steps: Option<u64>,
    /// Packet moves performed (real counts, not estimates).
    pub moves: u64,
    /// Process peak resident set (`VmHWM`) after this component ran, if
    /// the platform exposes it. Monotone across the process lifetime, so
    /// attribute it to the largest instance measured up to this row.
    pub peak_rss_bytes: Option<u64>,
    /// Invariant violations observed (`Some(0)` required of audited
    /// large-instance rows; `None` where no audit runs).
    pub violations: Option<u64>,
    /// Sweep runs executed (`Some` only for the fleet-throughput row).
    pub runs: Option<u64>,
}

impl PerfMeasurement {
    /// Steps per wall-clock second (`None` for non-stepped components).
    pub fn steps_per_s(&self) -> Option<f64> {
        self.steps.map(|s| s as f64 / self.wall_s)
    }

    /// Moves per wall-clock second.
    pub fn moves_per_s(&self) -> f64 {
        self.moves as f64 / self.wall_s
    }

    /// Packets routed per wall-clock second.
    pub fn packets_per_s(&self) -> f64 {
        self.packets as f64 / self.wall_s
    }

    /// Peak resident bytes per packet of this row's instance.
    pub fn rss_bytes_per_packet(&self) -> Option<f64> {
        self.peak_rss_bytes
            .map(|b| b as f64 / self.packets.max(1) as f64)
    }

    /// Sweep runs per wall-clock second (fleet-throughput row only).
    pub fn runs_per_s(&self) -> Option<f64> {
        self.runs.map(|r| r as f64 / self.wall_s)
    }
}

/// The full PERF report: the fixed instance plus one row per component.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Butterfly order of the classic-suite instance.
    pub k: u32,
    /// Number of packets on the classic-suite instance.
    pub n: u64,
    /// Nodes in the classic-suite network.
    pub nodes: usize,
    /// Edges in the classic-suite network.
    pub edges: usize,
    /// Timed components.
    pub rows: Vec<PerfMeasurement>,
}

/// The process peak resident set (`VmHWM`) in bytes, from Linux procfs.
/// `None` where the platform does not expose it.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Times `run` repeatedly until the cumulative wall time reaches
/// [`MIN_COMPONENT_WALL_S`] (always exactly once in quick mode) and
/// returns `(best_wall_s, repeats, last_output)`. The fastest run is the
/// throughput estimate — minimum wall time is the standard low-noise
/// statistic for a deterministic workload.
fn timed_best<T>(quick: bool, mut run: impl FnMut() -> T) -> (f64, u32, T) {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut repeats = 0u32;
    let mut out;
    loop {
        let t0 = Instant::now();
        out = run();
        let dt = t0.elapsed().as_secs_f64();
        repeats += 1;
        total += dt;
        best = best.min(dt);
        if quick || total >= MIN_COMPONENT_WALL_S || repeats >= 10_000 {
            return (best, repeats, out);
        }
    }
}

/// Times every component of the classic suite on the fixed bf(k)
/// bit-reversal instance (k = 10 quick, 12 full) and returns the raw
/// numbers.
pub fn measure(quick: bool) -> PerfReport {
    let k = if quick { 10 } else { 12 };
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let n = prob.num_packets() as u64;
    let mut rows = Vec::new();

    // Busch router (invariant audits on, as in the experiments).
    {
        let params = Params::auto(&prob);
        let (wall_s, repeats, out) = timed_best(quick, || {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            BuschRouter::new(params).route(&prob, &mut rng)
        });
        assert!(out.stats.all_delivered());
        rows.push(PerfMeasurement {
            component: "busch (audited)",
            k,
            packets: n,
            wall_s,
            repeats,
            steps: Some(out.stats.steps_run),
            moves: out.stats.counter("moves"),
            peak_rss_bytes: peak_rss_bytes(),
            violations: Some(out.invariants.total_violations()),
            runs: None,
        });
    }

    // Greedy with recording, then the replay audit itself.
    {
        let cfg = GreedyConfig {
            record: true,
            ..Default::default()
        };
        let (wall_s, repeats, out) = timed_best(quick, || {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            GreedyRouter::with_config(cfg).route(&prob, &mut rng)
        });
        assert!(out.stats.all_delivered());
        let record = out.record.as_ref().expect("recording on");
        rows.push(PerfMeasurement {
            component: "greedy (recorded)",
            k,
            packets: n,
            wall_s,
            repeats,
            steps: Some(out.stats.steps_run),
            moves: record.len() as u64,
            peak_rss_bytes: peak_rss_bytes(),
            violations: None,
            runs: None,
        });

        let (wall_s, repeats, rep) = timed_best(quick, || {
            hotpotato_sim::replay::verify(&prob, record, &out.stats).expect("clean")
        });
        rows.push(PerfMeasurement {
            component: "replay audit",
            k,
            packets: n,
            wall_s,
            repeats,
            steps: None,
            moves: rep.moves,
            peak_rss_bytes: peak_rss_bytes(),
            violations: None,
            runs: None,
        });
    }

    // Store-and-forward (moves = sum of path lengths: every packet
    // traverses exactly its path, no deflections).
    {
        let (wall_s, repeats, out) = timed_best(quick, || {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            StoreForwardRouter::fifo().route(&prob, &mut rng)
        });
        assert!(out.stats.all_delivered());
        let moves: u64 = prob.packets().iter().map(|p| p.path.len() as u64).sum();
        rows.push(PerfMeasurement {
            component: "store-and-forward",
            k,
            packets: n,
            wall_s,
            repeats,
            steps: Some(out.stats.steps_run),
            moves,
            peak_rss_bytes: peak_rss_bytes(),
            violations: None,
            runs: None,
        });
    }

    PerfReport {
        k,
        n,
        nodes: net.num_nodes(),
        edges: net.num_edges(),
        rows,
    }
}

/// The large-instance suite: saturation random walks (one packet on
/// every non-final node) on bf(14) quick / bf(16) full — ≥1M packets —
/// routed by the audited Busch router with the intra-run banded engine
/// path enabled. Panics if any packet is undelivered or any invariant
/// is violated: the row's existence in the baseline *is* the claim that
/// the large instance completes cleanly.
pub fn measure_large(quick: bool) -> PerfMeasurement {
    let k = if quick { 14 } else { 16 };
    let net = Arc::new(builders::butterfly(k));
    let n = net
        .nodes()
        .filter(|&v| !net.fwd_edges(v).is_empty())
        .count();
    let mut wl_rng = ChaCha8Rng::seed_from_u64(6);
    let prob = workloads::random_walks(&net, n, &mut wl_rng).expect("every non-final node admits");
    let params = Params::auto(&prob);
    // Large instances always run once: a single route is far past the
    // minimum-wall threshold.
    let (wall_s, repeats, out) = timed_best(true, || {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut cfg = BuschConfig::new(params);
        cfg.parallel_bands = true;
        BuschRouter::with_config(cfg).route(&prob, &mut rng)
    });
    assert!(out.stats.all_delivered(), "large instance must complete");
    assert!(
        out.invariants.is_clean(),
        "large instance violated invariants: {:?}",
        out.invariants
    );
    PerfMeasurement {
        component: "busch (large random-walks)",
        k,
        packets: n as u64,
        wall_s,
        repeats,
        steps: Some(out.stats.steps_run),
        moves: out.stats.counter("moves"),
        peak_rss_bytes: peak_rss_bytes(),
        violations: Some(out.invariants.total_violations()),
        runs: None,
    }
}

/// The steady-state streaming row: a continuous Poisson injection
/// stream on a bf(10) (quick) / bf(12) random-pairs instance at the
/// default admission cap, defined through the same
/// `TOPO/WL/ALGO/SEED/ARRIVAL` run-spec grammar the CLI and the service
/// consume. The reported packets/s is the sustained rate — arrivals
/// keep the network loaded for the whole run, so the figure reflects
/// throughput under continuous load rather than a drain from a full
/// initial population. Panics if the stream fails to drain before the
/// step cap: the row's presence is the claim that the instance reaches
/// steady state and completes.
pub fn measure_streaming(quick: bool) -> PerfMeasurement {
    let k: u32 = if quick { 10 } else { 12 };
    let pairs = if quick { 2048 } else { 8192 };
    let spec = format!("bf:{k}/pairs:{pairs}/greedy/7/poisson:2");
    let run = parse_run_spec(&spec).expect("canonical streaming spec");
    let (_topo, problem, mut rng) = run.instantiate().expect("spec instantiates");
    let process = run
        .arrival_process()
        .expect("arrival grammar")
        .expect("spec carries an arrival segment");
    // Same discipline as the CLI: the schedule is drawn from the
    // post-workload rng and routing continues from that stream.
    let schedule = process.schedule(problem.num_packets(), &mut rng);
    let cfg = StreamingConfig {
        priority: StreamPriority::for_algo(&run.algo).expect("greedy streams"),
        ..StreamingConfig::default()
    };
    let (wall_s, repeats, out) = timed_best(quick, || {
        let mut r = rng.clone();
        route_streaming(&problem, &schedule, &cfg, &mut r)
    });
    assert!(
        out.drained,
        "streaming instance must reach steady state and drain"
    );
    PerfMeasurement {
        component: "greedy (streaming poisson)",
        k,
        packets: problem.num_packets() as u64,
        wall_s,
        repeats,
        steps: Some(out.stats.steps_run),
        moves: out.stats.counter("moves"),
        peak_rss_bytes: peak_rss_bytes(),
        violations: Some(u64::from(!out.drained)),
        runs: None,
    }
}

/// The trace-pipeline row: record a snapshot-bearing JSONL trace of the
/// classic bf(10) quick / bf(12) bit-reversal Busch run in memory —
/// meta/stats envelope and all, exactly as `route --trace-out` writes
/// it — then time sharded replay verification over the worker pool.
/// `moves` carries the trace event count, so this row's moves/s in the
/// committed baseline is verify throughput in events/s. Panics if the
/// clean trace fails to verify: the row's presence is the claim that
/// the recorded stream replays.
pub fn measure_verify(quick: bool) -> PerfMeasurement {
    let k = if quick { 10 } else { 12 };
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let n = prob.num_packets() as u64;
    let params = Params::auto(&prob);
    let meta = schema::Meta {
        schema: schema::SCHEMA_VERSION,
        topo: format!("bf:{k}"),
        workload: "bitrev".to_string(),
        algo: "busch".to_string(),
        seed: 1,
        arrival: String::new(),
        packets: n,
        levels: net.num_levels() as u64,
        congestion: u64::from(prob.congestion()),
        dilation: u64::from(prob.dilation()),
    };
    let mut buf: Vec<u8> = Vec::new();
    writeln!(buf, "{}", schema::meta_line(&meta)).expect("vec sink");
    let mut obs = JsonlTraceObserver::with_snapshots(buf, &prob);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let out = BuschRouter::new(params).route_observed(&prob, &mut rng, &mut obs);
    assert!(out.stats.all_delivered());
    let mut buf = obs.finish().expect("vec sink");
    writeln!(buf, "{}", schema::stats_line(&out.stats)).expect("vec sink");
    let text = String::from_utf8(buf).expect("recorder emits UTF-8");
    let trace = Arc::new(Trace::parse(&text).expect("recorder emits valid traces"));
    let events = trace.events.len() as u64;

    let opts = ShardOptions::default(); // jobs auto-detected, like the banded engine
    let (wall_s, repeats, run) = timed_best(quick, || {
        hotpotato_trace::verify_trace_sharded(&trace, &opts).expect("clean trace verifies")
    });
    PerfMeasurement {
        component: "sharded verify (trace)",
        k,
        packets: n,
        wall_s,
        repeats,
        steps: Some(run.report.steps),
        moves: events,
        peak_rss_bytes: peak_rss_bytes(),
        violations: Some(0),
        runs: None,
    }
}

/// The fleet-throughput row: a fixed ladder of sweep specs (a seed
/// range across butterfly sizes) collected through the same per-run
/// trace envelope, replay verification, and [`FleetAggregator`] fold
/// that `serve --fleet` and the `t1`/`t8` tables use, on the shared
/// worker pool. `moves` carries the real summed per-run move counts
/// (the adaptive gate's yardstick); `runs`/`runs_per_s` ride into the
/// baseline document as the sweep-throughput figure. Panics on any
/// failed run or invariant violation: the row's presence in the
/// baseline is the claim that the ladder completes cleanly.
///
/// [`FleetAggregator`]: hotpotato_trace::FleetAggregator
pub fn measure_fleet(quick: bool) -> PerfMeasurement {
    let (sweep, k) = if quick {
        ("bf:5..6/bitrev/busch/5..10", 6)
    } else {
        ("bf:6..8/bitrev/busch/5..12", 8)
    };
    let specs = routing_core::spec::expand_sweep(sweep).expect("fixed ladder parses");
    let runs = specs.len() as u64;
    // One timed pass: the whole ladder is far past the minimum-wall
    // threshold, like the large row.
    let (wall_s, repeats, agg) =
        timed_best(true, || crate::fleet::collect_specs(specs.clone(), true));
    assert_eq!(agg.failed(), 0, "fleet ladder must complete");
    assert_eq!(agg.violations(), 0, "fleet ladder must be violation-free");
    PerfMeasurement {
        component: "fleet (sweep collect)",
        k,
        packets: agg.samples().map(|s| s.packets).sum(),
        wall_s,
        repeats,
        steps: Some(agg.samples().map(|s| s.steps).sum()),
        moves: agg.samples().map(|s| s.moves).sum(),
        peak_rss_bytes: peak_rss_bytes(),
        violations: Some(agg.violations()),
        runs: Some(runs),
    }
}

/// Runs PERF.
pub fn run(quick: bool) {
    let mut report = measure(quick);
    report.rows.push(measure_large(quick));
    report.rows.push(measure_streaming(quick));
    report.rows.push(measure_verify(quick));
    report.rows.push(measure_fleet(quick));
    let mut t = Table::new(
        format!(
            "PERF: end-to-end throughput; classic rows on bf({}) bit-reversal \
             (N={}, {} nodes, {} edges), large row on saturation random walks",
            report.k, report.n, report.nodes, report.edges
        ),
        &[
            "component",
            "k",
            "packets",
            "best wall (s)",
            "runs",
            "steps/s",
            "moves/s",
            "packets/s",
            "runs/s",
            "peak RSS B/pkt",
        ],
    );
    for row in &report.rows {
        t.row(vec![
            row.component.into(),
            row.k.to_string(),
            row.packets.to_string(),
            f(row.wall_s),
            row.repeats.to_string(),
            row.steps_per_s().map_or_else(|| "-".into(), f),
            f(row.moves_per_s()),
            f(row.packets_per_s()),
            row.runs_per_s().map_or_else(|| "-".into(), f),
            row.rss_bytes_per_packet().map_or_else(|| "-".into(), f),
        ]);
    }
    t.note("best-of-repeats per component; large row audited + banded; streaming row is sustained Poisson load");
    t.note("fleet row: verified sweep ladder through the fleet envelope + aggregation");
    t.print();
}
