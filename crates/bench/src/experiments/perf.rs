//! PERF — simulator throughput (not a paper artifact).
//!
//! Wall-clock throughput of the substrates on fixed large instances:
//! engine steps per second, packet-moves per second, and replay-audit
//! throughput. Complements the Criterion micro-benchmarks with
//! human-readable end-to-end numbers for capacity planning of experiment
//! sweeps.
//!
//! [`measure`] returns the raw numbers; [`run`] renders them as a table.
//! The `tables` binary's `perfjson` mode serializes [`measure`]'s output
//! to `BENCH_PR1.json` so perf regressions are machine-checkable.

use crate::table::{f, Table};
use baselines::{GreedyConfig, GreedyRouter, StoreForwardRouter};
use busch_router::{BuschRouter, Params};
use leveled_net::builders::{self, ButterflyCoords};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::workloads;
use std::sync::Arc;
use std::time::Instant;

/// One timed component of the PERF suite.
#[derive(Clone, Debug)]
pub struct PerfMeasurement {
    /// Component label ("busch (audited)", "replay audit", ...).
    pub component: &'static str,
    /// Wall time in seconds.
    pub wall_s: f64,
    /// Engine steps executed (`None` for non-stepped components).
    pub steps: Option<u64>,
    /// Packet moves performed (real counts, not estimates).
    pub moves: u64,
}

impl PerfMeasurement {
    /// Steps per wall-clock second (`None` for non-stepped components).
    pub fn steps_per_s(&self) -> Option<f64> {
        self.steps.map(|s| s as f64 / self.wall_s)
    }

    /// Moves per wall-clock second.
    pub fn moves_per_s(&self) -> f64 {
        self.moves as f64 / self.wall_s
    }
}

/// The full PERF report: the fixed instance plus one row per component.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Butterfly order of the instance.
    pub k: u32,
    /// Number of packets.
    pub n: u64,
    /// Nodes in the network.
    pub nodes: usize,
    /// Edges in the network.
    pub edges: usize,
    /// Timed components.
    pub rows: Vec<PerfMeasurement>,
}

/// Times every component on the fixed bf(k) bit-reversal instance
/// (k = 10 quick, 12 full) and returns the raw numbers.
pub fn measure(quick: bool) -> PerfReport {
    let k = if quick { 10 } else { 12 };
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let n = prob.num_packets() as u64;
    let mut rows = Vec::new();

    // Busch router (invariant audits on, as in the experiments).
    {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let params = Params::auto(&prob);
        let t0 = Instant::now();
        let out = BuschRouter::new(params).route(&prob, &mut rng);
        let dt = t0.elapsed().as_secs_f64();
        assert!(out.stats.all_delivered());
        rows.push(PerfMeasurement {
            component: "busch (audited)",
            wall_s: dt,
            steps: Some(out.stats.steps_run),
            moves: out.stats.counter("moves"),
        });
    }

    // Greedy with recording, then the replay audit itself.
    {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cfg = GreedyConfig {
            record: true,
            ..Default::default()
        };
        let t0 = Instant::now();
        let out = GreedyRouter::with_config(cfg).route(&prob, &mut rng);
        let dt = t0.elapsed().as_secs_f64();
        assert!(out.stats.all_delivered());
        let record = out.record.as_ref().expect("recording on");
        rows.push(PerfMeasurement {
            component: "greedy (recorded)",
            wall_s: dt,
            steps: Some(out.stats.steps_run),
            moves: record.len() as u64,
        });

        let t0 = Instant::now();
        let rep = hotpotato_sim::replay::verify(&prob, record, &out.stats).expect("clean");
        let dt = t0.elapsed().as_secs_f64();
        rows.push(PerfMeasurement {
            component: "replay audit",
            wall_s: dt,
            steps: None,
            moves: rep.moves,
        });
    }

    // Store-and-forward (moves = sum of path lengths: every packet
    // traverses exactly its path, no deflections).
    {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t0 = Instant::now();
        let out = StoreForwardRouter::fifo().route(&prob, &mut rng);
        let dt = t0.elapsed().as_secs_f64();
        assert!(out.stats.all_delivered());
        let moves: u64 = prob.packets().iter().map(|p| p.path.len() as u64).sum();
        rows.push(PerfMeasurement {
            component: "store-and-forward",
            wall_s: dt,
            steps: Some(out.stats.steps_run),
            moves,
        });
    }

    PerfReport {
        k,
        n,
        nodes: net.num_nodes(),
        edges: net.num_edges(),
        rows,
    }
}

/// Runs PERF.
pub fn run(quick: bool) {
    let report = measure(quick);
    let mut t = Table::new(
        format!(
            "PERF: end-to-end throughput on bf({}) bit-reversal \
             (N={}, {} nodes, {} edges)",
            report.k, report.n, report.nodes, report.edges
        ),
        &[
            "component",
            "wall time (s)",
            "steps",
            "steps/s",
            "moves",
            "moves/s",
        ],
    );
    for row in &report.rows {
        t.row(vec![
            row.component.into(),
            f(row.wall_s),
            row.steps.map_or_else(|| "-".into(), |s| s.to_string()),
            row.steps_per_s().map_or_else(|| "-".into(), f),
            row.moves.to_string(),
            f(row.moves_per_s()),
        ]);
    }
    t.note("single-threaded; experiment sweeps parallelize across seeds/instances");
    t.print();
}
