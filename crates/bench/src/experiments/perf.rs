//! PERF — simulator throughput (not a paper artifact).
//!
//! Wall-clock throughput of the substrates on fixed large instances:
//! engine steps per second, packet-moves per second, and replay-audit
//! throughput. Complements the Criterion micro-benchmarks with
//! human-readable end-to-end numbers for capacity planning of experiment
//! sweeps.

use crate::table::{f, Table};
use baselines::{GreedyConfig, GreedyRouter, StoreForwardRouter};
use busch_router::{BuschRouter, Params};
use leveled_net::builders::{self, ButterflyCoords};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::workloads;
use std::sync::Arc;
use std::time::Instant;

/// Runs PERF.
pub fn run(quick: bool) {
    let k = if quick { 10 } else { 12 };
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let n = prob.num_packets() as u64;

    let mut t = Table::new(
        format!(
            "PERF: end-to-end throughput on bf({k}) bit-reversal \
             (N={n}, {} nodes, {} edges)",
            net.num_nodes(),
            net.num_edges()
        ),
        &[
            "component", "wall time (s)", "steps", "steps/s", "moves", "moves/s",
        ],
    );

    // Busch router (invariant audits on, as in the experiments).
    {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let params = Params::auto(&prob);
        let t0 = Instant::now();
        let out = BuschRouter::new(params).route(&prob, &mut rng);
        let dt = t0.elapsed().as_secs_f64();
        assert!(out.stats.all_delivered());
        let steps = out.stats.steps_run;
        // Estimate moves: every delivered packet moves once per in-flight
        // step; the record is off here, so use latency * N as the measure.
        let moves = (out.stats.mean_latency() * n as f64) as u64;
        t.row(vec![
            "busch (audited)".into(),
            f(dt),
            steps.to_string(),
            f(steps as f64 / dt),
            moves.to_string(),
            f(moves as f64 / dt),
        ]);
    }

    // Greedy with recording, then the replay audit itself.
    {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cfg = GreedyConfig {
            record: true,
            ..Default::default()
        };
        let t0 = Instant::now();
        let out = GreedyRouter::with_config(cfg).route(&prob, &mut rng);
        let dt = t0.elapsed().as_secs_f64();
        assert!(out.stats.all_delivered());
        let record = out.record.as_ref().expect("recording on");
        let moves = record.len() as u64;
        t.row(vec![
            "greedy (recorded)".into(),
            f(dt),
            out.stats.steps_run.to_string(),
            f(out.stats.steps_run as f64 / dt),
            moves.to_string(),
            f(moves as f64 / dt),
        ]);

        let t0 = Instant::now();
        let rep = hotpotato_sim::replay::verify(&prob, record, &out.stats).expect("clean");
        let dt = t0.elapsed().as_secs_f64();
        t.row(vec![
            "replay audit".into(),
            f(dt),
            "-".into(),
            "-".into(),
            rep.moves.to_string(),
            f(rep.moves as f64 / dt),
        ]);
    }

    // Store-and-forward.
    {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t0 = Instant::now();
        let out = StoreForwardRouter::fifo().route(&prob, &mut rng);
        let dt = t0.elapsed().as_secs_f64();
        assert!(out.stats.all_delivered());
        let moves: u64 = prob.packets().iter().map(|p| p.path.len() as u64).sum();
        t.row(vec![
            "store-and-forward".into(),
            f(dt),
            out.stats.steps_run.to_string(),
            f(out.stats.steps_run as f64 / dt),
            moves.to_string(),
            f(moves as f64 / dt),
        ]);
    }

    t.note("single-threaded; experiment sweeps parallelize across seeds/instances");
    t.print();
}
