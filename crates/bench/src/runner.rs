//! Run helpers: condensed per-run summaries, seed averaging, and a small
//! crossbeam-scoped parallel map for sweeps.

use baselines::{GreedyRouter, RandomPriorityRouter, StoreForwardRouter};
use busch_router::{BuschOutcome, BuschRouter, Params};
use hotpotato_sim::RouteStats;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::RoutingProblem;

/// A condensed view of one routing run, sufficient for every table.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Number of packets.
    pub n: usize,
    /// Delivered packets.
    pub delivered: usize,
    /// Makespan (0 when nothing was delivered).
    pub makespan: u64,
    /// Mean in-flight latency.
    pub mean_latency: f64,
    /// Total deflections.
    pub deflections: u64,
    /// Largest deviation-stack depth.
    pub max_deviation: u32,
    /// Invariant violations (0 for baselines).
    pub violations: u64,
    /// Named counters carried over from the run.
    pub counters: std::collections::BTreeMap<&'static str, u64>,
}

impl RunSummary {
    /// Builds a summary from routing statistics.
    pub fn from_stats(stats: &RouteStats, violations: u64) -> Self {
        RunSummary {
            n: stats.num_packets(),
            delivered: stats.delivered_count(),
            makespan: stats.makespan().unwrap_or(0),
            mean_latency: stats.mean_latency(),
            deflections: stats.total_deflections(),
            max_deviation: stats.max_deviation_overall(),
            violations,
            counters: stats.counters.clone(),
        }
    }

    /// Builds a summary from a full Busch outcome.
    pub fn from_busch(out: &BuschOutcome) -> Self {
        RunSummary::from_stats(&out.stats, out.invariants.total_violations())
    }

    /// Whether everything was delivered.
    pub fn complete(&self) -> bool {
        self.delivered == self.n
    }
}

/// Mean-field average of several run summaries (counters summed).
pub fn average(runs: &[RunSummary]) -> RunSummary {
    assert!(!runs.is_empty());
    let k = runs.len() as f64;
    let mut counters = std::collections::BTreeMap::new();
    for r in runs {
        for (&name, &v) in &r.counters {
            *counters.entry(name).or_insert(0) += v;
        }
    }
    RunSummary {
        n: runs[0].n,
        delivered: (runs.iter().map(|r| r.delivered).sum::<usize>() as f64 / k).round() as usize,
        makespan: (runs.iter().map(|r| r.makespan).sum::<u64>() as f64 / k).round() as u64,
        mean_latency: runs.iter().map(|r| r.mean_latency).sum::<f64>() / k,
        deflections: (runs.iter().map(|r| r.deflections).sum::<u64>() as f64 / k).round() as u64,
        max_deviation: runs.iter().map(|r| r.max_deviation).max().unwrap(),
        violations: runs.iter().map(|r| r.violations).sum(),
        counters,
    }
}

/// Routes with the paper's algorithm under `params`; one seed.
pub fn run_busch(problem: &RoutingProblem, params: Params, seed: u64) -> RunSummary {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let out = BuschRouter::new(params).route(problem, &mut rng);
    RunSummary::from_busch(&out)
}

/// Routes with the greedy hot-potato baseline; one seed.
pub fn run_greedy(problem: &RoutingProblem, seed: u64) -> RunSummary {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let out = GreedyRouter::new().route(problem, &mut rng);
    RunSummary::from_stats(&out.stats, 0)
}

/// Routes with the random-priority greedy baseline; one seed.
pub fn run_random_priority(problem: &RoutingProblem, seed: u64) -> RunSummary {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let out = RandomPriorityRouter::new().route(problem, &mut rng);
    RunSummary::from_stats(&out.stats, 0)
}

/// Routes with buffered FIFO store-and-forward; one seed.
pub fn run_store_forward(problem: &RoutingProblem, seed: u64) -> RunSummary {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let out = StoreForwardRouter::fifo().route(problem, &mut rng);
    RunSummary::from_stats(&out.stats, 0)
}

/// Routes with buffered random-rank store-and-forward (`Θ(C)` delays).
pub fn run_store_forward_ranked(problem: &RoutingProblem, seed: u64) -> RunSummary {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let out =
        StoreForwardRouter::random_rank(problem.congestion() as u64).route(problem, &mut rng);
    RunSummary::from_stats(&out.stats, 0)
}

/// Routes with store-and-forward under constant (size-2) buffers — the
/// bounded-buffer regime of reference 16.
pub fn run_store_forward_bounded(problem: &RoutingProblem, seed: u64) -> RunSummary {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let out = StoreForwardRouter::bounded(2).route(problem, &mut rng);
    RunSummary::from_stats(&out.stats, 0)
}

/// Runs `f` over `items` on up to `threads` scoped worker threads,
/// preserving order. Used to fan seed/parameter sweeps across cores.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Jobs are handed out by an atomic cursor; each worker takes ownership
    // of its item through the per-slot mutex (taken exactly once).
    let jobs: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = (0..jobs.len()).map(|_| None).collect();
    let mut piles: Vec<Vec<(usize, U)>> = Vec::new();
    crossbeam::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            let jobs = &jobs;
            handles.push(s.spawn(move |_| {
                let mut pile = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let item = jobs[i]
                        .lock()
                        .expect("job mutex")
                        .take()
                        .expect("each job is taken once");
                    pile.push((i, f(item)));
                }
                pile
            }));
        }
        for h in handles {
            piles.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope");
    for pile in piles {
        for (i, u) in pile {
            slots[i] = Some(u);
        }
    }
    slots.into_iter().map(|s| s.expect("all jobs ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders;
    use routing_core::workloads;
    use std::sync::Arc;

    #[test]
    fn parallel_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..200).collect();
        let out = parallel_map(items, |x| x * 3);
        assert_eq!(out, (0..200).map(|x| x * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_map_moves_non_clone_items() {
        // Strings are Clone but Box<dyn ...> is not; use a move-only type.
        struct MoveOnly(u64);
        let items: Vec<MoveOnly> = (0..50).map(MoveOnly).collect();
        let out = parallel_map(items, |m| m.0 + 1);
        assert_eq!(out, (1..=50).collect::<Vec<u64>>());
    }

    #[test]
    fn run_helpers_produce_complete_summaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 10, &mut rng).unwrap();
        let b = run_busch(&prob, Params::auto(&prob), 1);
        assert!(b.complete());
        let g = run_greedy(&prob, 1);
        assert!(g.complete());
        let r = run_random_priority(&prob, 1);
        assert!(r.complete());
        let s = run_store_forward(&prob, 1);
        assert!(s.complete());
        let sr = run_store_forward_ranked(&prob, 1);
        assert!(sr.complete());
    }

    #[test]
    fn average_combines_runs() {
        let a = RunSummary {
            n: 4,
            delivered: 4,
            makespan: 10,
            mean_latency: 2.0,
            deflections: 4,
            max_deviation: 1,
            violations: 0,
            counters: Default::default(),
        };
        let mut b = a.clone();
        b.makespan = 20;
        b.max_deviation = 3;
        b.violations = 2;
        let avg = average(&[a, b]);
        assert_eq!(avg.makespan, 15);
        assert_eq!(avg.max_deviation, 3);
        assert_eq!(avg.violations, 2);
    }
}
