//! Run helpers: condensed per-run summaries, seed averaging, and a
//! persistent worker pool behind [`parallel_map`] for sweeps.

use baselines::{GreedyRouter, RandomPriorityRouter, StoreForwardRouter};
use busch_router::{BuschOutcome, BuschRouter, Params};
use hotpotato_sim::{RouteStats, Router};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::RoutingProblem;
use std::sync::Arc;

/// A condensed view of one routing run, sufficient for every table.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Number of packets.
    pub n: usize,
    /// Delivered packets.
    pub delivered: usize,
    /// Makespan (0 when nothing was delivered).
    pub makespan: u64,
    /// Mean in-flight latency.
    pub mean_latency: f64,
    /// Total deflections.
    pub deflections: u64,
    /// Largest deviation-stack depth.
    pub max_deviation: u32,
    /// Invariant violations (0 for baselines).
    pub violations: u64,
    /// Named counters carried over from the run.
    pub counters: std::collections::BTreeMap<&'static str, u64>,
}

impl RunSummary {
    /// Builds a summary from routing statistics.
    pub fn from_stats(stats: &RouteStats, violations: u64) -> Self {
        RunSummary {
            n: stats.num_packets(),
            delivered: stats.delivered_count(),
            makespan: stats.makespan().unwrap_or(0),
            mean_latency: stats.mean_latency(),
            deflections: stats.total_deflections(),
            max_deviation: stats.max_deviation_overall(),
            violations,
            counters: stats.counters.clone(),
        }
    }

    /// Builds a summary from a full Busch outcome.
    pub fn from_busch(out: &BuschOutcome) -> Self {
        RunSummary::from_stats(&out.stats, out.invariants.total_violations())
    }

    /// Whether everything was delivered.
    pub fn complete(&self) -> bool {
        self.delivered == self.n
    }
}

/// Mean-field average of several run summaries (counters summed).
pub fn average(runs: &[RunSummary]) -> RunSummary {
    assert!(!runs.is_empty());
    let k = runs.len() as f64;
    let mut counters = std::collections::BTreeMap::new();
    for r in runs {
        for (&name, &v) in &r.counters {
            *counters.entry(name).or_insert(0) += v;
        }
    }
    RunSummary {
        n: runs[0].n,
        delivered: (runs.iter().map(|r| r.delivered).sum::<usize>() as f64 / k).round() as usize,
        makespan: (runs.iter().map(|r| r.makespan).sum::<u64>() as f64 / k).round() as u64,
        mean_latency: runs.iter().map(|r| r.mean_latency).sum::<f64>() / k,
        deflections: (runs.iter().map(|r| r.deflections).sum::<u64>() as f64 / k).round() as u64,
        max_deviation: runs.iter().map(|r| r.max_deviation).max().unwrap(),
        violations: runs.iter().map(|r| r.violations).sum(),
        counters,
    }
}

/// Routes through the algorithm-agnostic [`Router`] interface; one seed.
/// Invariant violations are read back from the `"invariant_violations"`
/// counter (absent, hence zero, for routers that do not audit).
pub fn run_router(router: &dyn Router, problem: &Arc<RoutingProblem>, seed: u64) -> RunSummary {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let out = router.route_unobserved(problem, &mut rng);
    let violations = out
        .stats
        .counters
        .get("invariant_violations")
        .copied()
        .unwrap_or(0);
    RunSummary::from_stats(&out.stats, violations)
}

/// Routes with the paper's algorithm under `params`; one seed.
pub fn run_busch(problem: &Arc<RoutingProblem>, params: Params, seed: u64) -> RunSummary {
    run_router(&BuschRouter::new(params), problem, seed)
}

/// Routes with the greedy hot-potato baseline; one seed.
pub fn run_greedy(problem: &Arc<RoutingProblem>, seed: u64) -> RunSummary {
    run_router(&GreedyRouter::new(), problem, seed)
}

/// Routes with the random-priority greedy baseline; one seed.
pub fn run_random_priority(problem: &Arc<RoutingProblem>, seed: u64) -> RunSummary {
    run_router(&RandomPriorityRouter::new(), problem, seed)
}

/// Routes with buffered FIFO store-and-forward; one seed.
pub fn run_store_forward(problem: &Arc<RoutingProblem>, seed: u64) -> RunSummary {
    run_router(&StoreForwardRouter::fifo(), problem, seed)
}

/// Routes with buffered random-rank store-and-forward (`Θ(C)` delays).
pub fn run_store_forward_ranked(problem: &Arc<RoutingProblem>, seed: u64) -> RunSummary {
    run_router(
        &StoreForwardRouter::random_rank(problem.congestion() as u64),
        problem,
        seed,
    )
}

/// Routes with store-and-forward under constant (size-2) buffers — the
/// bounded-buffer regime of reference 16.
pub fn run_store_forward_bounded(problem: &Arc<RoutingProblem>, seed: u64) -> RunSummary {
    run_router(&StoreForwardRouter::bounded(2), problem, seed)
}

/// The sweep thread budget: the `HOTPOTATO_THREADS` environment variable
/// when set to a positive integer, otherwise the machine's available
/// parallelism. Read on every call, so tests and operators can retune a
/// running process.
pub fn configured_threads() -> usize {
    crate::pool_core::configured_threads()
}

/// The persistent worker pool: a process-wide [`PoolCore`] spawned at
/// first use and reused by every sweep, so per-call cost is queue
/// traffic rather than thread spawns. The schedule-sensitive mechanics
/// live in [`crate::pool_core`], where the loom model verifies them.
mod pool {
    use crate::pool_core::{Job, PoolCore};
    use std::sync::OnceLock;

    static POOL: OnceLock<PoolCore> = OnceLock::new();

    thread_local! {
        /// Set on pool workers so nested sweeps run inline instead of
        /// deadlocking the pool waiting on itself.
        static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    /// Whether the current thread is one of the pool's workers.
    pub(super) fn on_worker_thread() -> bool {
        IS_WORKER.with(std::cell::Cell::get)
    }

    fn mark_worker() {
        IS_WORKER.with(|w| w.set(true));
    }

    fn pool() -> &'static PoolCore {
        POOL.get_or_init(|| {
            let workers = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
            PoolCore::new(workers, mark_worker)
        })
    }

    /// Enqueues a job on the persistent pool.
    pub(super) fn submit(job: Job) {
        pool().submit(job).expect("worker pool alive");
    }
}

/// Runs `f` over `items` on the persistent worker pool, preserving input
/// order in the output. Work is distributed as contiguous chunks, one per
/// requested thread; results are written back by index, so the output is
/// identical for every thread count (including 1). Thread budget comes
/// from [`configured_threads`] (`HOTPOTATO_THREADS` override respected).
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    parallel_map_with_threads(items, f, configured_threads())
}

/// [`parallel_map`] with an explicit thread budget.
pub fn parallel_map_with_threads<T, U, F>(items: Vec<T>, f: F, threads: usize) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    // Inline on trivial budgets and on pool workers themselves (a nested
    // sweep waiting on the pool from inside the pool would deadlock).
    if threads <= 1 || n <= 1 || pool::on_worker_thread() {
        return items.into_iter().map(f).collect();
    }

    // Contiguous chunks, sized as evenly as possible.
    let per = n / threads;
    let extra = n % threads;
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    let mut start = 0;
    for c in 0..threads {
        let len = per + usize::from(c < extra);
        if len == 0 {
            continue;
        }
        chunks.push((start, it.by_ref().take(len).collect()));
        start += len;
    }

    let slots: std::sync::Mutex<Vec<Option<U>>> =
        std::sync::Mutex::new((0..n).map(|_| None).collect());
    let panic_slot = crate::pool_core::PanicSlot::new();
    let latch = crate::pool_core::CompletionLatch::new(chunks.len());

    {
        let f = &f;
        let slots = &slots;
        let panic_slot = &panic_slot;
        let latch = &latch;
        for (chunk_start, chunk) in chunks {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let out: Vec<U> = chunk.into_iter().map(f).collect();
                    let mut guard = slots.lock().expect("result slots");
                    for (offset, u) in out.into_iter().enumerate() {
                        guard[chunk_start + offset] = Some(u);
                    }
                }));
                if let Err(payload) = result {
                    panic_slot.record(payload);
                }
                latch.complete_one();
            });
            // SAFETY: the job borrows `f`, `slots`, `panic_slot` and
            // `latch` from this stack frame. The wait below does not
            // return until every submitted job has run to completion (the
            // latch is hit even when the closure panics), so the borrows
            // outlive every use. Erasing the lifetime is what lets the
            // jobs ride a persistent pool.
            #[allow(unsafe_code)]
            let job: crate::pool_core::Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, crate::pool_core::Job>(job)
            };
            pool::submit(job);
        }

        latch.wait();
    }

    if let Some(payload) = panic_slot.take() {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_inner()
        .expect("result slots")
        .into_iter()
        .map(|s| s.expect("all chunks ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders;
    use routing_core::workloads;
    use std::sync::Arc;

    #[test]
    fn parallel_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..200).collect();
        let out = parallel_map(items, |x| x * 3);
        assert_eq!(out, (0..200).map(|x| x * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_map_moves_non_clone_items() {
        // Strings are Clone but Box<dyn ...> is not; use a move-only type.
        struct MoveOnly(u64);
        let items: Vec<MoveOnly> = (0..50).map(MoveOnly).collect();
        let out = parallel_map(items, |m| m.0 + 1);
        assert_eq!(out, (1..=50).collect::<Vec<u64>>());
    }

    #[test]
    fn identical_results_for_every_thread_count() {
        let work = |x: u64| x.wrapping_mul(0x9e3779b97f4a7c15) >> 7;
        let expect: Vec<u64> = (0..97).map(work).collect();
        let max = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
        for threads in [1, 2, 3, max, max + 5] {
            let out = parallel_map_with_threads((0..97).collect(), work, threads);
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn pool_survives_repeated_sweeps() {
        for round in 0..20 {
            let out = parallel_map((0..16u64).collect(), |x| x + round);
            assert_eq!(out[0], round);
            assert_eq!(out[15], 15 + round);
        }
    }

    #[test]
    fn nested_sweeps_run_inline_without_deadlock() {
        let out = parallel_map((0..8u64).collect(), |x| {
            parallel_map((0..4u64).collect(), move |y| x * 10 + y)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out[1], 10 * 4 + 6);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn panics_propagate_after_sweep_completes() {
        let result = std::panic::catch_unwind(|| {
            parallel_map((0..32u64).collect(), |x| {
                if x == 17 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
        // The pool is still usable afterwards.
        let ok = parallel_map((0..8u64).collect(), |x| x);
        assert_eq!(ok.len(), 8);
    }

    #[test]
    fn run_helpers_produce_complete_summaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 10, &mut rng).unwrap();
        let b = run_busch(&prob, Params::auto(&prob), 1);
        assert!(b.complete());
        let g = run_greedy(&prob, 1);
        assert!(g.complete());
        let r = run_random_priority(&prob, 1);
        assert!(r.complete());
        let s = run_store_forward(&prob, 1);
        assert!(s.complete());
        let sr = run_store_forward_ranked(&prob, 1);
        assert!(sr.complete());
    }

    #[test]
    fn run_router_matches_concrete_helpers() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 10, &mut rng).unwrap();
        // The trait path must draw the same random sequence as the
        // concrete inherent methods: identical summaries, seed for seed.
        let mut direct = ChaCha8Rng::seed_from_u64(7);
        let concrete = BuschRouter::new(Params::auto(&prob)).route(&prob, &mut direct);
        let via_trait = run_router(&BuschRouter::new(Params::auto(&prob)), &prob, 7);
        assert_eq!(via_trait.makespan, concrete.stats.makespan().unwrap_or(0));
        assert_eq!(via_trait.delivered, concrete.stats.delivered_count());
        assert_eq!(via_trait.violations, concrete.invariants.total_violations());
        assert_eq!(
            via_trait.counters.get("phases").copied(),
            Some(concrete.phases_elapsed)
        );

        let mut direct = ChaCha8Rng::seed_from_u64(9);
        let g = GreedyRouter::new().route(&prob, &mut direct);
        let gt = run_router(&GreedyRouter::new(), &prob, 9);
        assert_eq!(gt.makespan, g.stats.makespan().unwrap_or(0));
        assert_eq!(gt.deflections, g.stats.total_deflections());
    }

    #[test]
    fn average_combines_runs() {
        let a = RunSummary {
            n: 4,
            delivered: 4,
            makespan: 10,
            mean_latency: 2.0,
            deflections: 4,
            max_deviation: 1,
            violations: 0,
            counters: Default::default(),
        };
        let mut b = a.clone();
        b.makespan = 20;
        b.max_deviation = 3;
        b.violations = 2;
        let avg = average(&[a, b]);
        assert_eq!(avg.makespan, 15);
        assert_eq!(avg.max_deviation, 3);
        assert_eq!(avg.violations, 2);
    }
}
